#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace manet::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(Time::seconds(3), [&] { order.push_back(3); });
  s.scheduleAt(Time::seconds(1), [&] { order.push_back(1); });
  s.scheduleAt(Time::seconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.scheduleAt(Time::seconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, NowAdvancesWithEvents) {
  Scheduler s;
  Time seen;
  s.scheduleAt(Time::millis(250), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::millis(250));
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int ran = 0;
  s.scheduleAt(Time::seconds(1), [&] { ++ran; });
  s.scheduleAt(Time::seconds(2), [&] { ++ran; });
  s.scheduleAt(Time::seconds(3), [&] { ++ran; });
  s.runUntil(Time::seconds(2));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), Time::seconds(2));
  s.runUntil(Time::seconds(5));
  EXPECT_EQ(ran, 3);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventId id = s.scheduleAt(Time::seconds(1), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelInvalidIdIsSafe) {
  Scheduler s;
  s.cancel(kInvalidEvent);
  s.cancel(99999);
  s.run();
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.scheduleAfter(Time::seconds(1), chain);
  };
  s.scheduleAfter(Time::seconds(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), Time::seconds(5));
}

TEST(SchedulerTest, EventsCanCancelLaterEvents) {
  Scheduler s;
  bool ran = false;
  EventId victim = s.scheduleAt(Time::seconds(2), [&] { ran = true; });
  s.scheduleAt(Time::seconds(1), [&] { s.cancel(victim); });
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, ExecutedCountCountsOnlyRunEvents) {
  Scheduler s;
  s.scheduleAt(Time::seconds(1), [] {});
  EventId id = s.scheduleAt(Time::seconds(2), [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.executedCount(), 1u);
}

TEST(SchedulerTest, PendingCountTracksScheduleAndRun) {
  Scheduler s;
  EXPECT_EQ(s.pendingCount(), 0u);
  s.scheduleAt(Time::seconds(1), [] {});
  s.scheduleAt(Time::seconds(2), [] {});
  EXPECT_EQ(s.pendingCount(), 2u);
  s.runUntil(Time::seconds(1));
  EXPECT_EQ(s.pendingCount(), 1u);
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(SchedulerTest, PendingCountExcludesCancelledEvents) {
  Scheduler s;
  EventId a = s.scheduleAt(Time::seconds(1), [] {});
  s.scheduleAt(Time::seconds(2), [] {});
  s.cancel(a);
  EXPECT_EQ(s.pendingCount(), 1u);
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
}

// Regression: cancelling an id that already fired used to pollute the
// cancelled set, making pendingCount() (queue size minus cancellations)
// wrap around to a huge value.
TEST(SchedulerTest, CancelAfterFireDoesNotUnderflowPendingCount) {
  Scheduler s;
  EventId id = s.scheduleAt(Time::seconds(1), [] {});
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
  s.cancel(id);  // no-op: the event already executed
  EXPECT_EQ(s.pendingCount(), 0u);
  s.scheduleAt(Time::seconds(2), [] {});
  EXPECT_EQ(s.pendingCount(), 1u);
}

TEST(SchedulerTest, DoubleCancelCountsOnce) {
  Scheduler s;
  EventId id = s.scheduleAt(Time::seconds(1), [] {});
  s.scheduleAt(Time::seconds(2), [] {});
  s.cancel(id);
  s.cancel(id);  // second cancel must not double-count
  EXPECT_EQ(s.pendingCount(), 1u);
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
  EXPECT_EQ(s.executedCount(), 1u);
}

TEST(SchedulerTest, HandlerCancellingItselfIsNoOp) {
  Scheduler s;
  EventId self = kInvalidEvent;
  self = s.scheduleAt(Time::seconds(1), [&] { s.cancel(self); });
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
  EXPECT_EQ(s.executedCount(), 1u);
}

TEST(SchedulerTest, PendingCountStaysExactUnderChurn) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) {
      ids.push_back(
          s.scheduleAfter(Time::millis(1 + (round + i) % 7), [] {}));
    }
    // Cancel a mix of live and long-dead ids.
    s.cancel(ids[ids.size() - 1]);
    s.cancel(ids[ids.size() / 2]);
    s.cancel(ids[0]);
    s.runUntil(s.now() + Time::millis(3));
  }
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time when;
  s.scheduleAt(Time::seconds(10), [&] {
    s.scheduleAfter(Time::seconds(5), [&] { when = s.now(); });
  });
  s.run();
  EXPECT_EQ(when, Time::seconds(15));
}

}  // namespace
}  // namespace manet::sim
