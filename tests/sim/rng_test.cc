#include "src/sim/rng.h"

#include <gtest/gtest.h>

namespace manet::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, StreamsAreIndependentOfParentState) {
  Rng parent(7);
  Rng s1 = parent.stream("mobility");
  (void)parent.uniform();  // consuming the parent must not affect children
  Rng s2 = parent.stream("mobility");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1.uniform(), s2.uniform());
}

TEST(RngTest, NamedStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.stream("a");
  Rng b = parent.stream("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SaltedStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.stream("node", 1);
  Rng b = parent.stream("node", 2);
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngTest, UniformRangeRespected) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(99);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= v == 0;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng r(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, BernoulliProbability) {
  Rng r(5);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace manet::sim
