#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace manet::sim {
namespace {

TEST(TimeTest, FactoriesAgree) {
  EXPECT_EQ(Time::seconds(1), Time::millis(1000));
  EXPECT_EQ(Time::millis(1), Time::micros(1000));
  EXPECT_EQ(Time::micros(1), Time::nanos(1000));
  EXPECT_EQ(Time::fromSeconds(2.5), Time::millis(2500));
}

TEST(TimeTest, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t, Time::zero());
  EXPECT_EQ(t.ns(), 0);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::seconds(3);
  const Time b = Time::millis(500);
  EXPECT_EQ((a + b).toSeconds(), 3.5);
  EXPECT_EQ((a - b).toSeconds(), 2.5);
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::millis(3500));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(TimeTest, ScalarScale) {
  EXPECT_EQ(Time::seconds(4) * 0.5, Time::seconds(2));
  EXPECT_EQ(Time::seconds(1) * 2.0, Time::seconds(2));
  EXPECT_EQ(Time::zero() * 100.0, Time::zero());
}

TEST(TimeTest, Ordering) {
  EXPECT_LT(Time::millis(999), Time::seconds(1));
  EXPECT_GT(Time::seconds(1), Time::micros(999999));
  EXPECT_LE(Time::seconds(1), Time::millis(1000));
  EXPECT_LT(Time::seconds(100000), Time::max());
}

TEST(TimeTest, ToSecondsRoundTrip) {
  const Time t = Time::nanos(1234567891);
  EXPECT_NEAR(t.toSeconds(), 1.234567891, 1e-12);
}

}  // namespace
}  // namespace manet::sim
