// EventQueue contract: both implementations must dispatch in strictly
// ascending (at, id) order — the FIFO-among-ties rule every determinism
// guarantee in the simulator rests on.
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/scheduler.h"

namespace manet::sim {
namespace {

/// A deterministic, clumpy timestamp sequence: bursts of equal and
/// near-equal times (MAC-like) plus occasional far-future timers.
std::vector<Time> workload(int n) {
  std::vector<Time> out;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    switch (x % 8) {
      case 0:
        out.push_back(Time::seconds(1 + static_cast<std::int64_t>(x % 20)));
        break;  // far-future timer (calendar overflow territory)
      case 1:
      case 2:
        out.push_back(Time::micros(static_cast<std::int64_t>(x % 50)));
        break;  // tie-heavy burst near t=0
      default:
        out.push_back(Time::micros(static_cast<std::int64_t>(x % 200000)));
        break;  // dense near future
    }
  }
  return out;
}

std::vector<std::pair<Time, EventId>> drain(EventQueue& q) {
  std::vector<std::pair<Time, EventId>> out;
  while (const EventEntry* top = q.peek()) {
    EXPECT_EQ(top->at, q.peek()->at);  // peek is stable
    EventEntry e = q.pop();
    out.emplace_back(e.at, e.id);
  }
  return out;
}

TEST(EventQueueTest, BothKindsPopIdenticalStrictlyOrderedSequences) {
  const std::vector<Time> times = workload(5000);
  auto heap = makeEventQueue(EventQueueKind::kHeap);
  auto cal = makeEventQueue(EventQueueKind::kCalendar);
  EventId id = 1;
  for (Time t : times) {
    heap->push(EventEntry{t, id, EventFn{}, prof::Category::kOther});
    cal->push(EventEntry{t, id, EventFn{}, prof::Category::kOther});
    ++id;
  }
  EXPECT_EQ(heap->size(), times.size());
  EXPECT_EQ(cal->size(), times.size());
  const auto a = drain(*heap);
  const auto b = drain(*cal);
  ASSERT_EQ(a.size(), times.size());
  ASSERT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const bool ordered = a[i - 1].first < a[i].first ||
                         (a[i - 1].first == a[i].first &&
                          a[i - 1].second < a[i].second);
    ASSERT_TRUE(ordered) << "disorder at " << i;
  }
}

TEST(EventQueueTest, InterleavedPushPopStaysOrderedOnBothKinds) {
  // Pops interleaved with pushes at ever-later times, as a simulation does.
  const std::vector<Time> times = workload(2000);
  for (EventQueueKind kind :
       {EventQueueKind::kHeap, EventQueueKind::kCalendar}) {
    auto q = makeEventQueue(kind);
    EventId id = 1;
    Time lastPopped = Time::zero();
    std::size_t pushed = 0;
    std::vector<std::pair<Time, EventId>> popped;
    while (popped.size() < times.size()) {
      while (pushed < times.size() && pushed < popped.size() * 2 + 8) {
        // Keep the sequence schedulable: times must be >= "now".
        q->push(EventEntry{lastPopped + times[pushed], id++, EventFn{},
                           prof::Category::kOther});
        ++pushed;
      }
      EventEntry e = q->pop();
      EXPECT_GE(e.at, lastPopped) << toString(kind) << " went backwards";
      lastPopped = e.at;
      popped.emplace_back(e.at, e.id);
    }
    EXPECT_TRUE(q->empty()) << toString(kind);
  }
}

TEST(EventQueueTest, CalendarRoutesFarTimersThroughOverflow) {
  CalendarEventQueue q;
  q.push(EventEntry{Time::seconds(30), 1, EventFn{}, prof::Category::kOther});
  q.push(EventEntry{Time::micros(5), 2, EventFn{}, prof::Category::kOther});
  EXPECT_EQ(q.overflowSize(), 1u);  // the 30 s timer is beyond the wheel
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().id, 2u);
  // Popping advances the window; the far timer is served (migrating into
  // the wheel or straight off the overflow heap) in correct order.
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, KindParsing) {
  EXPECT_STREQ(toString(EventQueueKind::kHeap), "heap");
  EXPECT_STREQ(toString(EventQueueKind::kCalendar), "calendar");
  EXPECT_EQ(eventQueueKindFromString("heap"), EventQueueKind::kHeap);
  EXPECT_EQ(eventQueueKindFromString("calendar"), EventQueueKind::kCalendar);
  EXPECT_EQ(eventQueueKindFromString("cal"), EventQueueKind::kCalendar);
  EXPECT_THROW(eventQueueKindFromString("bogus"), std::invalid_argument);
}

TEST(EventQueueTest, SchedulerBehavesIdenticallyOnBothQueues) {
  // The same scheduling program — ties, cascading reschedules, cancels —
  // must produce the same firing order and the same event ids.
  auto runProgram = [](EventQueueKind kind) {
    Scheduler sched(kind);
    std::vector<std::string> log;
    // Ties at t=10us, scheduled out of order.
    sched.scheduleAt(Time::micros(10), [&] { log.push_back("tie-a"); });
    sched.scheduleAt(Time::micros(5), [&] {
      log.push_back("early");
      // Cascade: schedule a tie for t=10us from inside a handler; FIFO
      // order puts it after the two pre-scheduled ties.
      sched.scheduleAt(Time::micros(10), [&] { log.push_back("tie-c"); });
      // And a far-future timer that later gets cancelled.
      const EventId doomed = sched.scheduleAt(
          Time::seconds(5), [&] { log.push_back("never"); });
      sched.scheduleAt(Time::seconds(2), [&, doomed] {
        log.push_back("cancel");
        sched.cancel(doomed);
      });
    });
    sched.scheduleAt(Time::micros(10), [&] { log.push_back("tie-b"); });
    EXPECT_EQ(std::string(sched.queueName()), toString(kind));
    EXPECT_EQ(sched.nextEventAt(), Time::micros(5));
    sched.run();
    log.push_back("executed=" + std::to_string(sched.executedCount()));
    return log;
  };
  const auto heapLog = runProgram(EventQueueKind::kHeap);
  const auto calLog = runProgram(EventQueueKind::kCalendar);
  EXPECT_EQ(heapLog,
            (std::vector<std::string>{"early", "tie-a", "tie-b", "tie-c",
                                      "cancel", "executed=5"}));
  EXPECT_EQ(heapLog, calLog);
}

TEST(EventQueueTest, SchedulerIntrospectionIsQueueAgnostic) {
  for (EventQueueKind kind :
       {EventQueueKind::kHeap, EventQueueKind::kCalendar}) {
    Scheduler sched(kind);
    EXPECT_EQ(sched.nextEventAt(), Time::max());
    const EventId a = sched.scheduleAt(Time::millis(1), [] {});
    sched.scheduleAt(Time::millis(2), [] {});
    sched.scheduleAt(Time::seconds(9), [] {});  // calendar overflow
    EXPECT_EQ(sched.pendingCount(), 3u);
    EXPECT_EQ(sched.queueHighWater(), 3u);
    sched.cancel(a);
    EXPECT_EQ(sched.pendingCount(), 2u);
    EXPECT_EQ(sched.nextEventAt(), Time::millis(1));  // lazily cancelled
    sched.run();
    EXPECT_EQ(sched.executedCount(), 2u);
    EXPECT_EQ(sched.pendingCount(), 0u);
  }
}

}  // namespace
}  // namespace manet::sim
