#include "src/telemetry/sampler.h"

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"

namespace manet::telemetry {
namespace {

using sim::Time;

scenario::ScenarioConfig smallScenario() {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 16;
  cfg.field = {700.0, 400.0};
  cfg.numFlows = 4;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = Time::seconds(30);
  cfg.mobilitySeed = 7;
  cfg.telemetry = TelemetryConfig{};  // env-independent
  return cfg;
}

TEST(SamplerTest, DisabledByDefault) {
  const scenario::RunResult r = scenario::runScenario(smallScenario());
  EXPECT_TRUE(r.series.empty());
}

TEST(SamplerTest, ProbesAtConfiguredPeriod) {
  scenario::ScenarioConfig cfg = smallScenario();
  cfg.telemetry.samplePeriod = Time::seconds(1);
  const scenario::RunResult r = scenario::runScenario(cfg);
  // Probes at 1 s, 2 s, ..., up to the 30 s horizon (the probe at exactly
  // the horizon still runs; its successor does not).
  EXPECT_GE(r.series.size(), 29u);
  EXPECT_LE(r.series.size(), 30u);
  ASSERT_FALSE(r.series.empty());
  EXPECT_NEAR(r.series.timeSec.front(), 1.0, 1e-9);
  // Columnar invariant: every column has one value per probe.
  const std::size_t n = r.series.size();
  EXPECT_EQ(r.series.meanCacheSize.size(), n);
  EXPECT_EQ(r.series.invalidEntryFrac.size(), n);
  EXPECT_EQ(r.series.meanSendBufOccupancy.size(), n);
  EXPECT_EQ(r.series.originated.size(), n);
  EXPECT_EQ(r.series.delivered.size(), n);
  EXPECT_EQ(r.series.dropped.size(), n);
  EXPECT_EQ(r.series.cacheHits.size(), n);
  EXPECT_EQ(r.series.linkBreaks.size(), n);
}

TEST(SamplerTest, DeltasSumToFinalCounters) {
  scenario::ScenarioConfig cfg = smallScenario();
  cfg.telemetry.samplePeriod = Time::seconds(1);
  const scenario::RunResult r = scenario::runScenario(cfg);
  std::uint64_t orig = 0, deliv = 0;
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    orig += r.series.originated[i];
    deliv += r.series.delivered[i];
  }
  // Deltas cover everything up to the last probe; the remainder happened in
  // the final partial interval.
  EXPECT_LE(orig, r.metrics.dataOriginated);
  EXPECT_LE(deliv, r.metrics.dataDelivered);
  EXPECT_GT(orig, 0u);
  // At most one probe interval of traffic can be missing.
  EXPECT_GE(orig + 50, r.metrics.dataOriginated);
}

TEST(SamplerTest, CacheStateIsPlausible) {
  scenario::ScenarioConfig cfg = smallScenario();
  cfg.telemetry.samplePeriod = Time::seconds(2);
  const scenario::RunResult r = scenario::runScenario(cfg);
  ASSERT_FALSE(r.series.empty());
  bool sawCache = false;
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    EXPECT_GE(r.series.meanCacheSize[i], 0.0);
    EXPECT_GE(r.series.invalidEntryFrac[i], 0.0);
    EXPECT_LE(r.series.invalidEntryFrac[i], 1.0);
    if (r.series.meanCacheSize[i] > 0.0) sawCache = true;
  }
  EXPECT_TRUE(sawCache);  // active flows must populate caches
}

}  // namespace
}  // namespace manet::telemetry
