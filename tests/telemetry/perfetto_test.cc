// Perfetto export tests: the streaming writer must always leave a valid
// JSON array (checked with the repo's own parser), the sink must lay out
// node/fault tracks correctly, the offline JSONL converter must round-trip
// trace lines, and scheduler dispatch-span capture must stay observational.
#include "src/telemetry/perfetto.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/prof/profiler.h"
#include "src/telemetry/trace.h"
#include "src/util/json.h"

namespace manet::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

util::JsonValue parseFile(const std::string& path) {
  std::string err;
  const auto doc = util::parseJson(slurp(path), &err);
  EXPECT_TRUE(doc.has_value()) << err;
  return doc.value_or(util::JsonValue{});
}

TEST(PerfettoTest, EmptyWriterClosesToValidEmptyArray) {
  const std::string path = ::testing::TempDir() + "/perfetto_empty.json";
  { PerfettoWriter w(path); }  // destructor closes the array
  const util::JsonValue doc = parseFile(path);
  ASSERT_TRUE(doc.isArray());
  EXPECT_TRUE(doc.asArray().empty());
  std::remove(path.c_str());
}

TEST(PerfettoTest, WriterEmitsMetadataInstantAndCompleteEvents) {
  const std::string path = ::testing::TempDir() + "/perfetto_events.json";
  {
    PerfettoWriter w(path);
    ASSERT_TRUE(w.ok());
    w.processName(kPerfettoNodesPid, "nodes");
    w.threadName(kPerfettoNodesPid, 3, "node 3");
    w.instant("pkt_drop:DATA", "packet", 1500.0, kPerfettoNodesPid, 3,
              "{\"uid\":42}");
    w.instant("node_crash", "fault", 2000.0, kPerfettoNodesPid, 3, {},
              /*globalScope=*/true);
    w.complete("routing", "sched", 100.0, 7.5, kPerfettoSchedulerPid, 1);
    EXPECT_EQ(w.eventsWritten(), 5u);
  }
  const util::JsonValue doc = parseFile(path);
  ASSERT_TRUE(doc.isArray());
  const util::JsonArray& a = doc.asArray();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].stringAt("ph"), "M");
  EXPECT_EQ(a[0].stringAt("name"), "process_name");
  EXPECT_EQ(a[2].stringAt("ph"), "i");
  EXPECT_EQ(a[2].stringAt("s"), "t");  // thread scope by default
  EXPECT_DOUBLE_EQ(a[2].numberAt("ts"), 1500.0);
  ASSERT_NE(a[2].find("args"), nullptr);
  EXPECT_DOUBLE_EQ(a[2].find("args")->numberAt("uid"), 42.0);
  EXPECT_EQ(a[3].stringAt("s"), "g");  // fault instants span the view
  EXPECT_EQ(a[4].stringAt("ph"), "X");
  EXPECT_DOUBLE_EQ(a[4].numberAt("dur"), 7.5);
  std::remove(path.c_str());
}

TEST(PerfettoTest, SinkConvertsLiveRecordsWithProvenanceArgs) {
  const std::string path = ::testing::TempDir() + "/perfetto_sink.json";
  {
    PerfettoSink sink(path);
    ASSERT_TRUE(sink.ok());
    TraceRecord t;
    t.at = sim::Time::seconds(1);
    t.event = TraceEvent::kPktDrop;
    t.reason = DropReason::kLinkFailNoSalvage;
    t.node = 4;
    t.kind = net::PacketKind::kData;
    t.uid = 10;
    t.cause = 9;
    t.prov = net::RouteProvenance{3, net::RouteOrigin::kCachedReply, 2,
                                  sim::Time::fromSeconds(0.25), 5};
    sink.record(t);
    TraceRecord crash;
    crash.at = sim::Time::seconds(2);
    crash.event = TraceEvent::kNodeCrash;
    crash.node = 4;
    sink.record(crash);
    sink.writer().close();
  }
  const util::JsonValue doc = parseFile(path);
  ASSERT_TRUE(doc.isArray());
  bool sawDrop = false, sawCrash = false;
  for (const util::JsonValue& ev : doc.asArray()) {
    const std::string name = ev.stringAt("name");
    if (name == "pkt_drop:DATA") {
      sawDrop = true;
      EXPECT_EQ(ev.stringAt("cat"), "packet");
      const util::JsonValue* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->numberAt("uid"), 10.0);
      EXPECT_DOUBLE_EQ(args->numberAt("cause"), 9.0);
      EXPECT_DOUBLE_EQ(args->numberAt("prov"), 3.0);
      EXPECT_EQ(args->stringAt("origin"), "cached_reply");
    }
    if (name == "node_crash") {
      sawCrash = true;
      EXPECT_EQ(ev.stringAt("s"), "g");
    }
  }
  EXPECT_TRUE(sawDrop);
  EXPECT_TRUE(sawCrash);
  std::remove(path.c_str());
}

TEST(PerfettoTest, ConvertJsonlRoundTripsTraceLines) {
  const std::string path = ::testing::TempDir() + "/perfetto_conv.json";
  TraceRecord t;
  t.at = sim::Time::seconds(3);
  t.event = TraceEvent::kPktOriginate;
  t.node = 1;
  t.kind = net::PacketKind::kData;
  t.uid = 5;
  const std::vector<std::string> lines = {toJson(t), "{\"not_a_record\":1}"};
  const long events = convertJsonlToPerfetto(lines, path);
  ASSERT_GT(events, 0);
  const util::JsonValue doc = parseFile(path);
  ASSERT_TRUE(doc.isArray());
  bool sawOriginate = false;
  for (const util::JsonValue& ev : doc.asArray()) {
    if (ev.stringAt("name") == "pkt_originate:DATA") sawOriginate = true;
  }
  EXPECT_TRUE(sawOriginate);
  // An unwritable destination (parent component is a regular file, so
  // parent-dir creation cannot help) reports failure as a negative count.
  const std::string blocker = ::testing::TempDir() + "/perfetto_blocker";
  { std::ofstream(blocker) << "x"; }
  EXPECT_LT(convertJsonlToPerfetto(lines, blocker + "/x.json"), 0);
  std::remove(path.c_str());
  std::remove(blocker.c_str());
}

// ------------------------------------------------------- dispatch spans

TEST(PerfettoTest, SchedulerCapturesDispatchSpansInOrder) {
  sim::Scheduler sched;
  sched.enableSpanCapture(8);
  EXPECT_TRUE(sched.spanCaptureEnabled());
  int fired = 0;
  sched.scheduleAt(sim::Time::seconds(1), [&] { ++fired; },
                   prof::Category::kRouting);
  sched.scheduleAt(sim::Time::seconds(2), [&] { ++fired; },
                   prof::Category::kMac);
  sched.runUntil(sim::Time::seconds(10));
  EXPECT_EQ(fired, 2);
  const auto spans = sched.dispatchSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at, sim::Time::seconds(1));
  EXPECT_EQ(spans[0].cat, prof::Category::kRouting);
  EXPECT_EQ(spans[1].at, sim::Time::seconds(2));
  EXPECT_EQ(spans[1].cat, prof::Category::kMac);
  EXPECT_LT(spans[0].seq, spans[1].seq);
  // No profiler attached: wall fields stay zero (capture is still useful
  // for ordering/category timelines and never perturbs the run).
  EXPECT_EQ(spans[0].wallDurNs, 0u);
}

TEST(PerfettoTest, SpanRingKeepsMostRecentWhenOverCapacity) {
  sim::Scheduler sched;
  sched.enableSpanCapture(2);
  for (int i = 1; i <= 5; ++i) {
    sched.scheduleAt(sim::Time::seconds(i), [] {}, prof::Category::kOther);
  }
  sched.runUntil(sim::Time::seconds(10));
  const auto spans = sched.dispatchSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at, sim::Time::seconds(4));  // oldest-first order
  EXPECT_EQ(spans[1].at, sim::Time::seconds(5));
}

TEST(PerfettoTest, WriteDispatchSpansEmitsSchedulerTracks) {
  const std::string path = ::testing::TempDir() + "/perfetto_spans.json";
  {
    PerfettoWriter w(path);
    std::vector<sim::DispatchSpan> spans;
    spans.push_back({sim::Time::seconds(1), 1, 100, 250,
                     prof::Category::kRouting});
    writeDispatchSpans(w, spans);
  }
  const util::JsonValue doc = parseFile(path);
  ASSERT_TRUE(doc.isArray());
  bool sawSpan = false;
  for (const util::JsonValue& ev : doc.asArray()) {
    if (ev.stringAt("ph") != "X") continue;
    sawSpan = true;
    EXPECT_DOUBLE_EQ(ev.numberAt("pid"),
                     static_cast<double>(kPerfettoSchedulerPid));
    EXPECT_DOUBLE_EQ(ev.numberAt("ts"), 1e6);    // sim time in us
    EXPECT_DOUBLE_EQ(ev.numberAt("dur"), 0.25);  // wall ns -> us
  }
  EXPECT_TRUE(sawSpan);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace manet::telemetry
