// Causal layer unit tests: JSONL line parsing, live-record projection,
// ancestry / child walks, chain rendering, the stale-drop attribution
// report, and the validating JSONL reader feeding all of it.
#include "src/telemetry/causal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/telemetry/trace.h"
#include "src/telemetry/trace_reader.h"

namespace manet::telemetry {
namespace {

CausalRecord rec(double t, const char* event, std::uint64_t uid,
                 std::uint64_t cause = 0) {
  CausalRecord r;
  r.t = t;
  r.event = event;
  r.uid = uid;
  r.cause = cause;
  return r;
}

// ----------------------------------------------------------- age buckets

TEST(CausalTest, AgeBucketBoundaries) {
  EXPECT_EQ(ageBucketLabel(0.0), "<1s");
  EXPECT_EQ(ageBucketLabel(0.999), "<1s");
  EXPECT_EQ(ageBucketLabel(1.0), "1-2s");
  EXPECT_EQ(ageBucketLabel(1.999), "1-2s");
  EXPECT_EQ(ageBucketLabel(2.0), "2-5s");
  EXPECT_EQ(ageBucketLabel(5.0), "5-10s");
  EXPECT_EQ(ageBucketLabel(10.0), ">=10s");
  EXPECT_EQ(ageBucketLabel(1e9), ">=10s");
}

// ------------------------------------------------------------ projection

TEST(CausalTest, ToCausalRecordCarriesProvenanceAndCause) {
  TraceRecord t;
  t.at = sim::Time::seconds(3);
  t.event = TraceEvent::kPktDrop;
  t.reason = DropReason::kLinkFailNoSalvage;
  t.node = 7;
  t.kind = net::PacketKind::kData;
  t.uid = 42;
  t.cause = 41;
  t.src = 1;
  t.dst = 9;
  t.prov = net::RouteProvenance{99, net::RouteOrigin::kSnooped, 5,
                                sim::Time::seconds(1), 4};

  const CausalRecord r = toCausalRecord(t);
  EXPECT_DOUBLE_EQ(r.t, 3.0);
  EXPECT_EQ(r.event, "pkt_drop");
  EXPECT_EQ(r.reason, "link_fail_no_salvage");
  EXPECT_EQ(r.node, 7u);
  EXPECT_EQ(r.kind, "DATA");
  EXPECT_EQ(r.uid, 42u);
  EXPECT_EQ(r.cause, 41u);
  EXPECT_EQ(r.prov, 99u);
  EXPECT_EQ(r.origin, "snooped");
  EXPECT_EQ(r.provNode, 5u);
  EXPECT_DOUBLE_EQ(r.born, 1.0);
  EXPECT_EQ(r.provHops, 4u);
}

TEST(CausalTest, ParseCausalLineRoundTripsThroughJsonl) {
  TraceRecord t;
  t.at = sim::Time::seconds(2);
  t.event = TraceEvent::kCacheHit;
  t.node = 3;
  t.kind = net::PacketKind::kData;
  t.uid = 17;
  t.cause = 11;
  t.src = 3;
  t.dst = 8;
  t.detail = 1;
  t.prov = net::RouteProvenance{5, net::RouteOrigin::kTargetReply, 8,
                                sim::Time::fromSeconds(0.5), 3};

  CausalRecord parsed;
  ASSERT_TRUE(parseCausalLine(toJson(t), parsed));
  const CausalRecord direct = toCausalRecord(t);
  EXPECT_DOUBLE_EQ(parsed.t, direct.t);
  EXPECT_EQ(parsed.event, direct.event);
  EXPECT_EQ(parsed.node, direct.node);
  EXPECT_EQ(parsed.kind, direct.kind);
  EXPECT_EQ(parsed.uid, direct.uid);
  EXPECT_EQ(parsed.cause, direct.cause);
  EXPECT_EQ(parsed.src, direct.src);
  EXPECT_EQ(parsed.dst, direct.dst);
  EXPECT_EQ(parsed.detail, direct.detail);
  EXPECT_EQ(parsed.prov, direct.prov);
  EXPECT_EQ(parsed.origin, direct.origin);
  EXPECT_EQ(parsed.provNode, direct.provNode);
  EXPECT_DOUBLE_EQ(parsed.born, direct.born);
  EXPECT_EQ(parsed.provHops, direct.provHops);
}

TEST(CausalTest, ParseCausalLineRejectsNonRecords) {
  CausalRecord r;
  EXPECT_FALSE(parseCausalLine("{\"foo\":1}", r));
  EXPECT_FALSE(parseCausalLine("", r));
}

// ----------------------------------------------------------- chain walks

TEST(CausalTest, AncestryFollowsCauseLinksRootFirst) {
  CausalIndex idx;
  idx.add(rec(0.0, "pkt_originate", 1));      // data packet (root)
  idx.add(rec(0.1, "pkt_drop", 2, 1));        // RREQ caused by it
  idx.add(rec(0.2, "pkt_deliver", 3, 2));     // RREP caused by the RREQ
  const auto chain = idx.ancestry(3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], 1u);
  EXPECT_EQ(chain[1], 2u);
  EXPECT_EQ(chain[2], 3u);
}

TEST(CausalTest, CausedByListsDirectChildrenAscending) {
  CausalIndex idx;
  idx.add(rec(0.0, "pkt_originate", 1));
  idx.add(rec(0.1, "pkt_forward", 5, 1));
  idx.add(rec(0.2, "pkt_forward", 3, 1));
  idx.add(rec(0.3, "pkt_forward", 9, 3));
  const auto kids = idx.causedBy(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 3u);
  EXPECT_EQ(kids[1], 5u);
}

TEST(CausalTest, AncestryIsCycleGuarded) {
  CausalIndex idx;
  idx.add(rec(0.0, "pkt_forward", 4, 5));  // malformed: 4 <- 5 <- 4
  idx.add(rec(0.1, "pkt_forward", 5, 4));
  const auto chain = idx.ancestry(4);  // must terminate
  EXPECT_GE(chain.size(), 2u);
  EXPECT_EQ(chain.back(), 4u);
}

TEST(CausalTest, RenderChainIsDeterministicAndComplete) {
  CausalIndex a;
  a.add(rec(0.0, "pkt_originate", 1));
  a.add(rec(0.1, "pkt_forward", 2, 1));
  CausalIndex b;
  b.add(rec(0.0, "pkt_originate", 1));
  b.add(rec(0.1, "pkt_forward", 2, 1));

  const std::string out = a.renderChain(2);
  EXPECT_EQ(out, b.renderChain(2));
  EXPECT_NE(out.find("causal chain for uid 2"), std::string::npos);
  EXPECT_NE(out.find("packet 1"), std::string::npos);
  EXPECT_NE(out.find("packet 2 *"), std::string::npos);
  EXPECT_NE(a.renderChain(1).find("caused: 2"), std::string::npos);
}

// ------------------------------------------------------ stale attribution

TEST(CausalTest, StaleReportAttributesProvenancedDrops) {
  CausalIndex idx;
  CausalRecord withProv = rec(4.5, "pkt_drop", 10);
  withProv.kind = "DATA";
  withProv.reason = "link_fail_no_salvage";
  withProv.prov = 77;
  withProv.origin = "snooped";
  withProv.born = 3.0;  // age 1.5s -> bucket "1-2s"
  idx.add(withProv);

  CausalRecord negDrop = withProv;
  negDrop.uid = 11;
  negDrop.reason = "negative_cache";
  negDrop.t = 14.0;  // age 11s -> bucket ">=10s"
  idx.add(negDrop);

  CausalRecord unattributed = rec(5.0, "pkt_drop", 12);
  unattributed.kind = "DATA";
  unattributed.reason = "link_fail_no_salvage";
  idx.add(unattributed);

  // Non-qualifying records do not count: control packet, benign drop.
  CausalRecord rreqDrop = rec(5.1, "pkt_drop", 13);
  rreqDrop.kind = "RREQ";
  rreqDrop.reason = "link_fail_no_salvage";
  idx.add(rreqDrop);
  CausalRecord ttlDrop = rec(5.2, "pkt_drop", 14);
  ttlDrop.kind = "DATA";
  ttlDrop.reason = "ttl_expired";
  idx.add(ttlDrop);

  const StaleReport rep = idx.staleReport();
  EXPECT_EQ(rep.staleDrops, 3u);
  EXPECT_EQ(rep.attributed, 2u);
  EXPECT_EQ(rep.distinctEntries, 1u);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows[0].origin, "snooped");
  EXPECT_EQ(rep.rows[0].ageBucket, "1-2s");
  EXPECT_EQ(rep.rows[0].drops, 1u);
  EXPECT_EQ(rep.rows[1].ageBucket, ">=10s");

  const std::string text = rep.render();
  EXPECT_NE(text.find("stale drops: 3"), std::string::npos);
  EXPECT_NE(text.find("attributed: 2 (66.7%)"), std::string::npos);
  EXPECT_NE(text.find("distinct entries: 1"), std::string::npos);
}

TEST(CausalTest, StaleReportEmptyTraceRendersCleanly) {
  const StaleReport rep = CausalIndex{}.staleReport();
  EXPECT_EQ(rep.staleDrops, 0u);
  EXPECT_NE(rep.render().find("attributed: 0 (100.0%)"), std::string::npos);
}

// ------------------------------------------------------- checked reading

TEST(CausalTest, CheckedReaderReportsMalformedLinesWithNumbers) {
  const std::string path = ::testing::TempDir() + "/causal_checked.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"ev\":\"pkt_originate\",\"uid\":1}\n";
    out << "this is not json\n";
    out << "{\"ev\":\"pkt_deliver\",\"uid\":1}\n";
    out << "{\"ev\":\"pkt_drop\",\"uid\":2\n";  // truncated tail
  }
  const auto result = readJsonlFileChecked(path);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->lines.size(), 2u);
  EXPECT_EQ(result->skipped, 2u);
  ASSERT_EQ(result->errors.size(), 2u);
  EXPECT_EQ(result->errors[0].rfind("line 2:", 0), 0u) << result->errors[0];
  EXPECT_EQ(result->errors[1].rfind("line 4:", 0), 0u) << result->errors[1];
  std::remove(path.c_str());
}

TEST(CausalTest, CheckedReaderMissingFileIsNullopt) {
  EXPECT_FALSE(
      readJsonlFileChecked("/nonexistent/causal_nope.jsonl").has_value());
}

TEST(CausalTest, FromLinesSkipsNonRecordLines) {
  const std::vector<std::string> lines = {
      "{\"ev\":\"pkt_originate\",\"uid\":7,\"t\":0.5}",
      "{\"not_a_record\":true}",
      "{\"ev\":\"pkt_deliver\",\"uid\":7,\"t\":0.9}",
  };
  const CausalIndex idx = CausalIndex::fromLines(lines);
  EXPECT_EQ(idx.records().size(), 2u);
  EXPECT_EQ(idx.packetRecords(7).size(), 2u);
}

}  // namespace
}  // namespace manet::telemetry
