#include "src/telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/net/packet.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/trace_reader.h"

namespace manet::telemetry {
namespace {

TraceRecord dropRecord(std::uint64_t uid, net::NodeId node) {
  TraceRecord r;
  r.at = sim::Time::millis(1500);
  r.event = TraceEvent::kPktDrop;
  r.reason = DropReason::kIfqFull;
  r.node = node;
  r.kind = net::PacketKind::kData;
  r.uid = uid;
  r.src = 1;
  r.dst = 2;
  r.flowId = 3;
  r.seqInFlow = 4;
  return r;
}

TEST(TracerTest, DisabledWithoutSinks) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(dropRecord(1, 0));  // must be a harmless no-op
  t.flush();
}

TEST(TracerTest, DispatchesToAllSinks) {
  Tracer t;
  RingBufferSink a(8), b(8);
  t.addSink(&a);
  t.addSink(&b);
  EXPECT_TRUE(t.enabled());
  t.emit(dropRecord(1, 5));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.snapshot()[0].rec.node, 5u);
}

TEST(TracerTest, BoundClockStampsNow) {
  sim::Scheduler sched;
  Tracer t;
  t.bindClock(&sched);
  sim::Time seen;
  sched.scheduleAt(sim::Time::seconds(2), [&] { seen = t.now(); });
  sched.run();
  EXPECT_EQ(seen, sim::Time::seconds(2));
}

TEST(TracerTest, LogCaptureRespectsLevelFilter) {
  Tracer t;
  RingBufferSink ring(8);
  t.addSink(&ring);
  t.setLogCaptureLevel(util::LogLevel::kInfo);
  t.emitLog(util::LogLevel::kDebug, "too verbose");
  EXPECT_EQ(ring.size(), 0u);
  t.emitLog(util::LogLevel::kInfo, "captured");
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].rec.event, TraceEvent::kLog);
  EXPECT_EQ(ring.snapshot()[0].note, "captured");
}

TEST(RingBufferSinkTest, KeepsMostRecentInOrder) {
  RingBufferSink ring(3);
  for (std::uint64_t i = 1; i <= 5; ++i) ring.record(dropRecord(i, 0));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.totalRecorded(), 5u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].rec.uid, 3u);
  EXPECT_EQ(snap[1].rec.uid, 4u);
  EXPECT_EQ(snap[2].rec.uid, 5u);
}

TEST(RingBufferSinkTest, CopiesNoteOutOfTransientView) {
  RingBufferSink ring(2);
  {
    std::string transient = "short-lived note";
    TraceRecord r;
    r.event = TraceEvent::kLog;
    r.note = transient;
    ring.record(r);
    transient.assign(transient.size(), '!');  // invalidate the old content
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].note, "short-lived note");
  EXPECT_TRUE(snap[0].rec.note.empty());  // the view was cleared, not kept
}

TEST(ToJsonTest, PacketScopedRecord) {
  const std::string j = toJson(dropRecord(42, 7));
  EXPECT_NE(j.find("\"ev\":\"pkt_drop\""), std::string::npos);
  EXPECT_NE(j.find("\"node\":7"), std::string::npos);
  EXPECT_NE(j.find("\"uid\":42"), std::string::npos);
  EXPECT_NE(j.find("\"reason\":\"ifq_full\""), std::string::npos);
  EXPECT_NE(j.find("\"flow\":3"), std::string::npos);
  // Parses back with the reader used by trace_inspector.
  EXPECT_EQ(jsonStringField(j, "ev"), "pkt_drop");
  EXPECT_EQ(jsonStringField(j, "reason"), "ifq_full");
  EXPECT_EQ(jsonNumberField(j, "uid"), 42.0);
  EXPECT_DOUBLE_EQ(*jsonNumberField(j, "t"), 1.5);
}

TEST(ToJsonTest, LinkScopedRecordOmitsPacketFields) {
  TraceRecord r;
  r.at = sim::Time::seconds(1);
  r.event = TraceEvent::kLinkBreak;
  r.node = 3;
  r.src = 3;
  r.dst = 9;
  const std::string j = toJson(r);
  EXPECT_EQ(j.find("uid"), std::string::npos);
  EXPECT_EQ(j.find("reason"), std::string::npos);
  EXPECT_NE(j.find("\"src\":3"), std::string::npos);
  EXPECT_NE(j.find("\"dst\":9"), std::string::npos);
}

TEST(ToJsonTest, NoteIsEscaped) {
  TraceRecord r;
  r.event = TraceEvent::kLog;
  r.note = "say \"hi\"\nback\\slash";
  const std::string j = toJson(r);
  EXPECT_NE(j.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
}

TEST(JsonlFileSinkTest, WritesParseableLines) {
  const std::string path =
      ::testing::TempDir() + "/trace_sink_test.jsonl";
  {
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.record(dropRecord(1, 0));
    sink.record(dropRecord(2, 1));
    sink.flush();
    EXPECT_EQ(sink.recordsWritten(), 2u);
  }
  const auto lines = readJsonlFile(path);
  ASSERT_TRUE(lines.has_value());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ(jsonNumberField((*lines)[0], "uid"), 1.0);
  EXPECT_EQ(jsonNumberField((*lines)[1], "uid"), 2.0);
  std::remove(path.c_str());
}

TEST(JsonlFileSinkTest, UnwritablePathIsGracefullyDisabled) {
  // A parent component that is a regular file defeats both the automatic
  // parent-directory creation and the open itself, on any platform and
  // under any privilege level.
  const std::string blocker = ::testing::TempDir() + "/jsonl_blocker";
  { std::ofstream(blocker) << "x"; }
  JsonlFileSink sink(blocker + "/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.record(dropRecord(1, 0));  // must not crash
  sink.flush();
  EXPECT_EQ(sink.recordsWritten(), 0u);
}

}  // namespace
}  // namespace manet::telemetry
