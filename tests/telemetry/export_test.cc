#include "src/telemetry/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/scenario/experiment.h"
#include "src/telemetry/trace_reader.h"

namespace manet::telemetry {
namespace {

using sim::Time;

scenario::ScenarioConfig tinyScenario() {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 12;
  cfg.field = {600.0, 300.0};
  cfg.numFlows = 3;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = Time::seconds(20);
  cfg.mobilitySeed = 11;
  cfg.telemetry = TelemetryConfig{};  // env-independent
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream s;
  s << f.rdbuf();
  return s.str();
}

TEST(ExportTest, MetricsJsonHasCountersAndDerived) {
  metrics::Metrics m;
  m.dataOriginated = 100;
  m.dataDelivered = 80;
  m.dropIfqFull = 20;
  const std::string j = metricsJson(m, Time::seconds(10));
  EXPECT_EQ(jsonNumberField(j, "data_originated"), 100.0);
  EXPECT_EQ(jsonNumberField(j, "data_delivered"), 80.0);
  EXPECT_EQ(jsonNumberField(j, "drop_ifq_full"), 20.0);
  EXPECT_EQ(jsonNumberField(j, "total_dropped"), 20.0);
  EXPECT_DOUBLE_EQ(*jsonNumberField(j, "packet_delivery_fraction"), 0.8);
}

TEST(ExportTest, SeriesCsvRowsMatchSamples) {
  SampleSeries s;
  s.timeSec = {1.0, 2.0};
  s.meanCacheSize = {3.0, 4.0};
  s.invalidEntryFrac = {0.25, 0.5};
  s.meanSendBufOccupancy = {0.0, 1.0};
  s.originated = {10, 11};
  s.delivered = {9, 10};
  s.dropped = {1, 0};
  s.cacheHits = {5, 6};
  s.linkBreaks = {0, 2};
  const std::string csv = seriesCsv(s);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  EXPECT_NE(csv.find("t_s,mean_cache_size"), std::string::npos);
  EXPECT_NE(csv.find("1.000,3.000,0.2500,0.000,10,9,1,5,0"),
            std::string::npos);
}

TEST(ExportTest, WriteFileCreatesParentDirs) {
  const std::string dir = ::testing::TempDir() + "/manet_export_nested";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/a/b/out.txt";
  ASSERT_TRUE(writeFile(path, "hello"));
  EXPECT_EQ(slurp(path), "hello");
  std::filesystem::remove_all(dir);
}

TEST(ExportTest, RunReplicatedExportsAggregateAndSeries) {
  const std::string dir = ::testing::TempDir() + "/manet_export_run";
  std::filesystem::remove_all(dir);
  scenario::ScenarioConfig cfg = tinyScenario();
  cfg.telemetry.exportDir = dir;
  cfg.telemetry.samplePeriod = Time::seconds(2);
  const scenario::AggregateResult agg =
      scenario::runReplicated(cfg, 2, {}, "export_test");

  const std::string aggJson = slurp(dir + "/export_test.json");
  ASSERT_FALSE(aggJson.empty());
  EXPECT_EQ(jsonStringField(aggJson, "label"), "export_test");
  EXPECT_EQ(jsonStringField(aggJson, "protocol"), "dsr");
  EXPECT_EQ(jsonNumberField(aggJson, "num_nodes"), 12.0);
  EXPECT_NE(aggJson.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(aggJson.find("\"delivery_fraction\""), std::string::npos);
  EXPECT_NE(aggJson.find("\"runs\":["), std::string::npos);

  // One series CSV per replication (both runs sampled).
  for (int i = 0; i < 2; ++i) {
    const std::string csv =
        slurp(dir + "/export_test.r" + std::to_string(i) + ".series.csv");
    EXPECT_NE(csv.find("t_s,mean_cache_size"), std::string::npos) << i;
  }
  EXPECT_EQ(agg.runs.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(ExportTest, NoExportDirMeansNoFiles) {
  scenario::ScenarioConfig cfg = tinyScenario();
  const scenario::AggregateResult agg = scenario::runReplicated(cfg, 1);
  EXPECT_EQ(exportAggregate(agg, cfg, "nothing"), 0);
}

TEST(PerRunPathTest, InsertsRunIndexBeforeExtension) {
  EXPECT_EQ(perRunPath("trace.jsonl", 2), "trace.r2.jsonl");
  EXPECT_EQ(perRunPath("/tmp/a.b/trace", 0), "/tmp/a.b/trace.r0");
  EXPECT_EQ(perRunPath("noext", 1), "noext.r1");
}

TEST(PerRunPathTest, SweepOverloadTagsPointLabelBeforeRunIndex) {
  EXPECT_EQ(perRunPath("trace.jsonl", "fig1_timeout_s=0.25", 1),
            "trace.fig1_timeout_s=0.25.r1.jsonl");
  EXPECT_EQ(perRunPath("noext", "p", 0), "noext.p.r0");
  // A dot inside a directory name is not an extension.
  EXPECT_EQ(perRunPath("/tmp/a.b/trace", "p", 2), "/tmp/a.b/trace.p.r2");
  // Distinct points always map to distinct files for the same rep.
  EXPECT_NE(perRunPath("t.jsonl", "sweep_a=1", 0),
            perRunPath("t.jsonl", "sweep_a=2", 0));
}

}  // namespace
}  // namespace manet::telemetry
