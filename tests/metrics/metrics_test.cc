#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include "src/metrics/oracle.h"

namespace manet::metrics {
namespace {

using sim::Time;

TEST(MetricsTest, DerivedMetricsFromCounters) {
  Metrics m;
  m.dataOriginated = 200;
  m.dataDelivered = 150;
  m.delaySumSec = 30.0;
  m.bytesDelivered = 150 * 512;
  m.rreqTx = 100;
  m.rrepTx = 20;
  m.rerrTx = 5;
  m.rtsTx = 400;
  m.ctsTx = 390;
  m.ackTx = 380;
  EXPECT_DOUBLE_EQ(m.packetDeliveryFraction(), 0.75);
  EXPECT_DOUBLE_EQ(m.avgDelaySec(), 0.2);
  EXPECT_EQ(m.overheadTx(), 1295u);
  EXPECT_DOUBLE_EQ(m.normalizedOverhead(), 1295.0 / 150.0);
  EXPECT_DOUBLE_EQ(m.throughputKbps(Time::seconds(100)),
                   150.0 * 512.0 * 8.0 / 1000.0 / 100.0);
}

TEST(MetricsTest, CacheQualityPercentages) {
  Metrics m;
  m.repliesReceived = 50;
  m.goodRepliesReceived = 30;
  m.cacheHits = 200;
  m.invalidCacheHits = 40;
  EXPECT_DOUBLE_EQ(m.goodReplyPct(), 60.0);
  EXPECT_DOUBLE_EQ(m.invalidCacheHitPct(), 20.0);
}

TEST(MetricsTest, ZeroDenominatorsAreSafe) {
  Metrics m;
  EXPECT_EQ(m.packetDeliveryFraction(), 0.0);
  EXPECT_EQ(m.avgDelaySec(), 0.0);
  EXPECT_EQ(m.normalizedOverhead(), 0.0);
  EXPECT_EQ(m.goodReplyPct(), 0.0);
  EXPECT_EQ(m.invalidCacheHitPct(), 0.0);
  EXPECT_EQ(m.throughputKbps(Time::zero()), 0.0);
}

TEST(MetricsTest, AddSumsCounters) {
  Metrics a, b;
  a.dataOriginated = 10;
  a.rtsTx = 5;
  b.dataOriginated = 7;
  b.rtsTx = 3;
  b.expiredLinks = 2;
  a.add(b);
  EXPECT_EQ(a.dataOriginated, 17u);
  EXPECT_EQ(a.rtsTx, 8u);
  EXPECT_EQ(a.expiredLinks, 2u);
}

TEST(MetricsTest, AddSumsEveryField) {
  // Element-wise sum across ALL fields — catches a counter added to the
  // struct but forgotten in add().
  Metrics a, b;
  // Distinct values so a transposed assignment would also be caught.
  std::uint64_t v = 1;
  auto setAll = [&v](Metrics& m) {
    m.dataOriginated = v++;
    m.dataDelivered = v++;
    m.bytesDelivered = v++;
    m.rreqTx = v++;
    m.rrepTx = v++;
    m.rerrTx = v++;
    m.rtsTx = v++;
    m.ctsTx = v++;
    m.ackTx = v++;
    m.dataFrameTx = v++;
    m.ctsTimeouts = v++;
    m.ackTimeouts = v++;
    m.rtsIgnoredBusy = v++;
    m.routeDiscoveriesStarted = v++;
    m.nonPropRequestsSent = v++;
    m.floodRequestsSent = v++;
    m.repliesReceived = v++;
    m.goodRepliesReceived = v++;
    m.targetRepliesGenerated = v++;
    m.cacheRepliesGenerated = v++;
    m.gratuitousRepliesGenerated = v++;
    m.staleRepliesIgnored = v++;
    m.cacheHits = v++;
    m.invalidCacheHits = v++;
    m.linkBreaksDetected = v++;
    m.fakeLinkBreaks = v++;
    m.salvageAttempts = v++;
    m.rerrWideRebroadcasts = v++;
    m.negCacheInsertions = v++;
    m.expiredLinks = v++;
    m.dropSendBufferTimeout = v++;
    m.dropSendBufferOverflow = v++;
    m.dropIfqFull = v++;
    m.dropLinkFailNoSalvage = v++;
    m.dropNegativeCache = v++;
    m.dropTtlExpired = v++;
    m.dropMacDuplicate = v++;
    m.dropNodeDown = v++;
    m.faultNodeCrashes = v++;
    m.faultNodeRecoveries = v++;
    m.faultLinkBlackouts = v++;
    m.faultNoiseBursts = v++;
    m.faultTrafficSurges = v++;
    m.delaySumSec = static_cast<double>(v++);
  };
  setAll(a);
  Metrics expectedDouble = a;
  b = a;
  a.add(b);
  EXPECT_EQ(a.dataOriginated, 2 * expectedDouble.dataOriginated);
  EXPECT_EQ(a.dataDelivered, 2 * expectedDouble.dataDelivered);
  EXPECT_EQ(a.bytesDelivered, 2 * expectedDouble.bytesDelivered);
  EXPECT_EQ(a.rreqTx, 2 * expectedDouble.rreqTx);
  EXPECT_EQ(a.rrepTx, 2 * expectedDouble.rrepTx);
  EXPECT_EQ(a.rerrTx, 2 * expectedDouble.rerrTx);
  EXPECT_EQ(a.rtsTx, 2 * expectedDouble.rtsTx);
  EXPECT_EQ(a.ctsTx, 2 * expectedDouble.ctsTx);
  EXPECT_EQ(a.ackTx, 2 * expectedDouble.ackTx);
  EXPECT_EQ(a.dataFrameTx, 2 * expectedDouble.dataFrameTx);
  EXPECT_EQ(a.ctsTimeouts, 2 * expectedDouble.ctsTimeouts);
  EXPECT_EQ(a.ackTimeouts, 2 * expectedDouble.ackTimeouts);
  EXPECT_EQ(a.rtsIgnoredBusy, 2 * expectedDouble.rtsIgnoredBusy);
  EXPECT_EQ(a.routeDiscoveriesStarted,
            2 * expectedDouble.routeDiscoveriesStarted);
  EXPECT_EQ(a.nonPropRequestsSent, 2 * expectedDouble.nonPropRequestsSent);
  EXPECT_EQ(a.floodRequestsSent, 2 * expectedDouble.floodRequestsSent);
  EXPECT_EQ(a.repliesReceived, 2 * expectedDouble.repliesReceived);
  EXPECT_EQ(a.goodRepliesReceived, 2 * expectedDouble.goodRepliesReceived);
  EXPECT_EQ(a.targetRepliesGenerated,
            2 * expectedDouble.targetRepliesGenerated);
  EXPECT_EQ(a.cacheRepliesGenerated, 2 * expectedDouble.cacheRepliesGenerated);
  EXPECT_EQ(a.gratuitousRepliesGenerated,
            2 * expectedDouble.gratuitousRepliesGenerated);
  EXPECT_EQ(a.staleRepliesIgnored, 2 * expectedDouble.staleRepliesIgnored);
  EXPECT_EQ(a.cacheHits, 2 * expectedDouble.cacheHits);
  EXPECT_EQ(a.invalidCacheHits, 2 * expectedDouble.invalidCacheHits);
  EXPECT_EQ(a.linkBreaksDetected, 2 * expectedDouble.linkBreaksDetected);
  EXPECT_EQ(a.fakeLinkBreaks, 2 * expectedDouble.fakeLinkBreaks);
  EXPECT_EQ(a.salvageAttempts, 2 * expectedDouble.salvageAttempts);
  EXPECT_EQ(a.rerrWideRebroadcasts, 2 * expectedDouble.rerrWideRebroadcasts);
  EXPECT_EQ(a.negCacheInsertions, 2 * expectedDouble.negCacheInsertions);
  EXPECT_EQ(a.expiredLinks, 2 * expectedDouble.expiredLinks);
  EXPECT_EQ(a.dropSendBufferTimeout, 2 * expectedDouble.dropSendBufferTimeout);
  EXPECT_EQ(a.dropSendBufferOverflow,
            2 * expectedDouble.dropSendBufferOverflow);
  EXPECT_EQ(a.dropIfqFull, 2 * expectedDouble.dropIfqFull);
  EXPECT_EQ(a.dropLinkFailNoSalvage, 2 * expectedDouble.dropLinkFailNoSalvage);
  EXPECT_EQ(a.dropNegativeCache, 2 * expectedDouble.dropNegativeCache);
  EXPECT_EQ(a.dropTtlExpired, 2 * expectedDouble.dropTtlExpired);
  EXPECT_EQ(a.dropMacDuplicate, 2 * expectedDouble.dropMacDuplicate);
  EXPECT_EQ(a.dropNodeDown, 2 * expectedDouble.dropNodeDown);
  EXPECT_EQ(a.faultNodeCrashes, 2 * expectedDouble.faultNodeCrashes);
  EXPECT_EQ(a.faultNodeRecoveries, 2 * expectedDouble.faultNodeRecoveries);
  EXPECT_EQ(a.faultLinkBlackouts, 2 * expectedDouble.faultLinkBlackouts);
  EXPECT_EQ(a.faultNoiseBursts, 2 * expectedDouble.faultNoiseBursts);
  EXPECT_EQ(a.faultTrafficSurges, 2 * expectedDouble.faultTrafficSurges);
  EXPECT_DOUBLE_EQ(a.delaySumSec, 2 * expectedDouble.delaySumSec);
}

TEST(MetricsTest, TotalDroppedSumsAllDropReasons) {
  Metrics m;
  EXPECT_EQ(m.totalDropped(), 0u);
  m.dropSendBufferTimeout = 1;
  m.dropSendBufferOverflow = 2;
  m.dropIfqFull = 4;
  m.dropLinkFailNoSalvage = 8;
  m.dropNegativeCache = 16;
  m.dropTtlExpired = 32;
  m.dropMacDuplicate = 64;
  m.dropNodeDown = 128;
  EXPECT_EQ(m.totalDropped(), 255u);
}

TEST(MetricsTest, DerivedMetricsZeroDeliveredNonzeroOriginated) {
  Metrics m;
  m.dataOriginated = 50;
  m.rreqTx = 10;
  EXPECT_DOUBLE_EQ(m.packetDeliveryFraction(), 0.0);
  EXPECT_EQ(m.avgDelaySec(), 0.0);
  // No delivered packets: normalized overhead is defined as 0, not inf.
  EXPECT_EQ(m.normalizedOverhead(), 0.0);
}

TEST(MetricsTest, DerivedMetricsZeroRepliesNonzeroHits) {
  Metrics m;
  m.cacheHits = 10;
  EXPECT_DOUBLE_EQ(m.invalidCacheHitPct(), 0.0);
  EXPECT_EQ(m.goodReplyPct(), 0.0);
}

TEST(LinkOracleTest, GeometricLinkValidity) {
  // Node 0 at origin, node 1 within range, node 2 out of range.
  auto positions = [](net::NodeId id, Time) -> Vec2 {
    switch (id) {
      case 0:
        return {0, 0};
      case 1:
        return {200, 0};
      default:
        return {500, 0};
    }
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(oracle.linkValid(0, 1, Time::zero()));
  EXPECT_FALSE(oracle.linkValid(0, 2, Time::zero()));
  EXPECT_FALSE(oracle.linkValid(1, 2, Time::zero()));  // 300 m apart
}

TEST(LinkOracleTest, RouteValidityChecksEveryHop) {
  auto positions = [](net::NodeId id, Time) -> Vec2 {
    return {static_cast<double>(id) * 200.0, 0.0};
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(
      oracle.routeValid(std::vector<net::NodeId>{0, 1, 2, 3}, Time::zero()));
  EXPECT_FALSE(
      oracle.routeValid(std::vector<net::NodeId>{0, 2, 3}, Time::zero()));
  EXPECT_TRUE(oracle.routeValid(std::vector<net::NodeId>{5}, Time::zero()));
  EXPECT_TRUE(oracle.routeValid(std::vector<net::NodeId>{}, Time::zero()));
}

TEST(LinkOracleTest, TimeDependentPositions) {
  // Node 1 moves away over time.
  auto positions = [](net::NodeId id, Time t) -> Vec2 {
    if (id == 0) return {0, 0};
    return {t.toSeconds() * 10.0, 0.0};
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(oracle.linkValid(0, 1, Time::seconds(10)));   // 100 m
  EXPECT_FALSE(oracle.linkValid(0, 1, Time::seconds(30)));  // 300 m
}

}  // namespace
}  // namespace manet::metrics
