#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include "src/metrics/oracle.h"

namespace manet::metrics {
namespace {

using sim::Time;

TEST(MetricsTest, DerivedMetricsFromCounters) {
  Metrics m;
  m.dataOriginated = 200;
  m.dataDelivered = 150;
  m.delaySumSec = 30.0;
  m.bytesDelivered = 150 * 512;
  m.rreqTx = 100;
  m.rrepTx = 20;
  m.rerrTx = 5;
  m.rtsTx = 400;
  m.ctsTx = 390;
  m.ackTx = 380;
  EXPECT_DOUBLE_EQ(m.packetDeliveryFraction(), 0.75);
  EXPECT_DOUBLE_EQ(m.avgDelaySec(), 0.2);
  EXPECT_EQ(m.overheadTx(), 1295u);
  EXPECT_DOUBLE_EQ(m.normalizedOverhead(), 1295.0 / 150.0);
  EXPECT_DOUBLE_EQ(m.throughputKbps(Time::seconds(100)),
                   150.0 * 512.0 * 8.0 / 1000.0 / 100.0);
}

TEST(MetricsTest, CacheQualityPercentages) {
  Metrics m;
  m.repliesReceived = 50;
  m.goodRepliesReceived = 30;
  m.cacheHits = 200;
  m.invalidCacheHits = 40;
  EXPECT_DOUBLE_EQ(m.goodReplyPct(), 60.0);
  EXPECT_DOUBLE_EQ(m.invalidCacheHitPct(), 20.0);
}

TEST(MetricsTest, ZeroDenominatorsAreSafe) {
  Metrics m;
  EXPECT_EQ(m.packetDeliveryFraction(), 0.0);
  EXPECT_EQ(m.avgDelaySec(), 0.0);
  EXPECT_EQ(m.normalizedOverhead(), 0.0);
  EXPECT_EQ(m.goodReplyPct(), 0.0);
  EXPECT_EQ(m.invalidCacheHitPct(), 0.0);
  EXPECT_EQ(m.throughputKbps(Time::zero()), 0.0);
}

TEST(MetricsTest, AddSumsCounters) {
  Metrics a, b;
  a.dataOriginated = 10;
  a.rtsTx = 5;
  b.dataOriginated = 7;
  b.rtsTx = 3;
  b.expiredLinks = 2;
  a.add(b);
  EXPECT_EQ(a.dataOriginated, 17u);
  EXPECT_EQ(a.rtsTx, 8u);
  EXPECT_EQ(a.expiredLinks, 2u);
}

TEST(LinkOracleTest, GeometricLinkValidity) {
  // Node 0 at origin, node 1 within range, node 2 out of range.
  auto positions = [](net::NodeId id, Time) -> Vec2 {
    switch (id) {
      case 0:
        return {0, 0};
      case 1:
        return {200, 0};
      default:
        return {500, 0};
    }
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(oracle.linkValid(0, 1, Time::zero()));
  EXPECT_FALSE(oracle.linkValid(0, 2, Time::zero()));
  EXPECT_FALSE(oracle.linkValid(1, 2, Time::zero()));  // 300 m apart
}

TEST(LinkOracleTest, RouteValidityChecksEveryHop) {
  auto positions = [](net::NodeId id, Time) -> Vec2 {
    return {static_cast<double>(id) * 200.0, 0.0};
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(
      oracle.routeValid(std::vector<net::NodeId>{0, 1, 2, 3}, Time::zero()));
  EXPECT_FALSE(
      oracle.routeValid(std::vector<net::NodeId>{0, 2, 3}, Time::zero()));
  EXPECT_TRUE(oracle.routeValid(std::vector<net::NodeId>{5}, Time::zero()));
  EXPECT_TRUE(oracle.routeValid(std::vector<net::NodeId>{}, Time::zero()));
}

TEST(LinkOracleTest, TimeDependentPositions) {
  // Node 1 moves away over time.
  auto positions = [](net::NodeId id, Time t) -> Vec2 {
    if (id == 0) return {0, 0};
    return {t.toSeconds() * 10.0, 0.0};
  };
  LinkOracle oracle(positions, 250.0);
  EXPECT_TRUE(oracle.linkValid(0, 1, Time::seconds(10)));   // 100 m
  EXPECT_FALSE(oracle.linkValid(0, 1, Time::seconds(30)));  // 300 m
}

}  // namespace
}  // namespace manet::metrics
