#include "src/core/link_cache.h"

#include <gtest/gtest.h>

#include "src/core/route_cache.h"
#include "src/sim/rng.h"

namespace manet::core {
namespace {

using net::LinkId;
using net::NodeId;
using sim::Time;

TEST(LinkCacheTest, InsertAndFindShortestPath) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2, 9}, Time::zero());
  c.insert(std::vector<NodeId>{0, 5, 9}, Time::zero());
  auto r = c.findRoute(9);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 5, 9}));
}

TEST(LinkCacheTest, ComposesLinksFromDifferentRoutes) {
  // The defining property of a link cache: links learned separately join
  // into routes never seen as one path.
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2}, Time::zero());
  c.insert(std::vector<NodeId>{0, 1, 3, 7}, Time::zero());
  // Link 2->7 arrives via a route through 1: graph now has 0-1-2 and 2->7?
  // No: teach 2->7 through a longer path starting at 0.
  c.insert(std::vector<NodeId>{0, 4, 2, 7, 8}, Time::zero());
  // Composed route 0-1-2 + 2-7 + 7-8 should be findable; BFS returns some
  // shortest composition.
  auto r = c.findRoute(8);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->front(), 0u);
  EXPECT_EQ(r->back(), 8u);
  // Shortest composition is 4 links (e.g. 0-1-3-7-8 or 0-4-2-7-8): the
  // cache mixed links from all three learned routes.
  EXPECT_EQ(r->size(), 5u);
}

TEST(LinkCacheTest, RejectsBadInserts) {
  LinkCache c(0, 64);
  EXPECT_FALSE(c.insert(std::vector<NodeId>{0}, Time::zero()));
  EXPECT_FALSE(c.insert(std::vector<NodeId>{1, 2}, Time::zero()));
  EXPECT_FALSE(c.insert(std::vector<NodeId>{0, 1, 0}, Time::zero()));
  EXPECT_EQ(c.size(), 0u);
}

TEST(LinkCacheTest, RemoveLinkBreaksPathsThroughIt) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2, 3}, Time::seconds(4));
  const auto affected = c.removeLink(LinkId{1, 2}, Time::seconds(9));
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], Time::seconds(4));
  EXPECT_FALSE(c.findRoute(2));
  EXPECT_FALSE(c.findRoute(3));
  EXPECT_TRUE(c.findRoute(1));
}

TEST(LinkCacheTest, RemoveUnknownLinkIsNoop) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2}, Time::zero());
  EXPECT_TRUE(c.removeLink(LinkId{5, 6}, Time::zero()).empty());
  EXPECT_TRUE(c.findRoute(2));
}

TEST(LinkCacheTest, FilterRoutesAroundRejectedLink) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 9}, Time::zero());
  c.insert(std::vector<NodeId>{0, 2, 3, 9}, Time::zero());
  auto r = c.findRoute(9, [](LinkId l) { return !(l == LinkId{1, 9}); });
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 2, 3, 9}));
}

TEST(LinkCacheTest, ExpiryDropsUnusedLinks) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2, 3}, Time::seconds(0));
  c.markLinksUsed(std::vector<NodeId>{0, 1}, Time::seconds(20));
  EXPECT_EQ(c.expireUnusedSince(Time::seconds(10)), 2u);
  EXPECT_TRUE(c.findRoute(1));
  EXPECT_FALSE(c.findRoute(3));
}

TEST(LinkCacheTest, CapacityEvictsOldestLink) {
  LinkCache c(0, 2);
  c.insert(std::vector<NodeId>{0, 1}, Time::seconds(1));
  c.insert(std::vector<NodeId>{0, 2}, Time::seconds(2));
  c.insert(std::vector<NodeId>{0, 3}, Time::seconds(3));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.containsLink(LinkId{0, 1}));
  EXPECT_TRUE(c.containsLink(LinkId{0, 3}));
}

TEST(LinkCacheTest, ClearEmptiesGraph) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1, 2}, Time::zero());
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.findRoute(2));
}

TEST(LinkCacheTest, NoRouteToSelf) {
  LinkCache c(0, 64);
  c.insert(std::vector<NodeId>{0, 1}, Time::zero());
  EXPECT_FALSE(c.findRoute(0));
}

// Property: for identical insert sequences, any route the path cache can
// produce, the link cache can match or beat in hop count (it subsumes the
// path cache's information), and both return loop-free routes anchored
// correctly.
class CacheEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheEquivalenceTest, LinkCacheSubsumesPathCache) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  RouteCache path(0, 1024);
  LinkCache link(0, 4096);
  for (int step = 0; step < 300; ++step) {
    const auto now = Time::millis(step);
    std::vector<NodeId> p{0};
    const int len = static_cast<int>(rng.uniformInt(1, 6));
    for (int i = 0; i < len; ++i) {
      const auto next = static_cast<NodeId>(rng.uniformInt(1, 15));
      if (std::find(p.begin(), p.end(), next) != p.end()) break;
      p.push_back(next);
    }
    if (p.size() >= 2) {
      path.insert(p, now);
      link.insert(p, now);
    }
    const auto dest = static_cast<NodeId>(rng.uniformInt(1, 15));
    const auto viaPath = path.findRoute(dest);
    const auto viaLink = link.findRoute(dest);
    if (viaPath) {
      ASSERT_TRUE(viaLink) << "link cache lost a route the path cache kept";
      ASSERT_LE(viaLink->size(), viaPath->size());
    }
    if (viaLink) {
      ASSERT_EQ(viaLink->front(), 0u);
      ASSERT_EQ(viaLink->back(), dest);
      ASSERT_FALSE(net::routeHasDuplicates(*viaLink));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalenceTest, ::testing::Range(1, 7));

// -------------------------------------------------------------- provenance

TEST(LinkCacheTest, ComposedRouteBlamesOldestConstituentLink) {
  net::RouteProvenance::resetIdCounter();
  LinkCache c(0, 64);
  // Links 0->1, 1->2 minted at t=1 (one provenance record for the insert).
  ASSERT_TRUE(c.insert(std::vector<NodeId>{0, 1, 2}, Time::seconds(1),
                       net::RouteOrigin::kTargetReply));
  const auto firstHit = c.lookup(2);
  ASSERT_TRUE(firstHit);
  // Link 2->5 minted at t=4 by a separate, fresher insertion whose own
  // prefix (0-7-8-2) is longer than the old 0-1-2, so BFS composes the old
  // prefix with the new tail.
  ASSERT_TRUE(c.insert(std::vector<NodeId>{0, 7, 8, 2, 5}, Time::seconds(4),
                       net::RouteOrigin::kSnooped));
  // A composed route is only as fresh as its stalest link: a route through
  // 1->2 carries the t=1 provenance, not the t=4 one.
  const auto composed = c.lookup(5);
  ASSERT_TRUE(composed);
  EXPECT_EQ(composed->prov.bornAt, Time::seconds(1));
  EXPECT_EQ(composed->prov.id, firstHit->prov.id);
}

TEST(LinkCacheTest, RelearnedLinksKeepFirstProvenance) {
  net::RouteProvenance::resetIdCounter();
  LinkCache c(0, 64);
  ASSERT_TRUE(c.insert(std::vector<NodeId>{0, 1, 2}, Time::seconds(1),
                       net::RouteOrigin::kForwarded));
  ASSERT_TRUE(c.insert(std::vector<NodeId>{0, 1, 2}, Time::seconds(8),
                       net::RouteOrigin::kTargetReply));
  const auto hit = c.lookup(2);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->prov.origin, net::RouteOrigin::kForwarded);
  EXPECT_EQ(hit->prov.bornAt, Time::seconds(1));
}

}  // namespace
}  // namespace manet::core
