// Freshness-tagging extension (the paper's future work): relative freshness
// of cached route information via target-issued reply sequence numbers.
#include <gtest/gtest.h>

#include "src/core/dsr_agent.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using manet::testing::DsrFixture;
using net::NodeId;
using sim::Time;

DsrConfig freshCfg() {
  DsrConfig cfg;
  cfg.freshnessTagging = true;
  return cfg;
}

TEST(FreshnessTest, TargetRepliesCarryIncreasingStamps) {
  DsrFixture fx(freshCfg());
  fx.addLine(3);
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  EXPECT_EQ(fx.metrics().staleRepliesIgnored, 0u);
}

TEST(FreshnessTest, StaleCachedReplyIsIgnoredByRequester) {
  // Two discoveries: node 4 (off to the side) learns the route with stamp
  // s1 via snooping a cached reply path. After the target issues a newer
  // stamp (second discovery by node 0), a cached reply carrying the OLD
  // stamp must be ignored by a requester that saw the newer one.
  //
  // Direct construction: drive the freshestSeen_ logic through two
  // sequential discoveries from the same origin with expiry wiping the
  // cache in between, forcing a fresh target reply each time.
  DsrConfig cfg = freshCfg();
  cfg.expiry = ExpiryMode::kStatic;
  cfg.staticTimeout = sim::Time::seconds(1);
  cfg.replyFromCache = false;  // every reply is a fresh target reply
  DsrFixture fx(cfg);
  fx.addLine(3);
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(4));  // route expires after 1 s idle
  fx.dsr(0).sendData(2, 512, 0, 1);
  fx.run(Time::seconds(8));
  // Both packets delivered via two separate target replies with stamps
  // 1 and 2; nothing was stale along the way.
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  EXPECT_GE(fx.metrics().targetRepliesGenerated, 2u);
  EXPECT_EQ(fx.metrics().staleRepliesIgnored, 0u);
}

TEST(FreshnessTest, OldInformationCannotOvertakeNew) {
  // A requester that has processed a fresher reply ignores older ones.
  // Construct via a diamond: the target's replies to different request
  // copies carry increasing stamps; the origin processes them in arrival
  // order, so a slower first-stamp reply arriving after a second-stamp
  // reply is discarded.
  DsrConfig cfg = freshCfg();
  cfg.replyFromCache = false;
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});       // 0 origin
  fx.addStatic({200, 100});   // 1
  fx.addStatic({200, -100});  // 2
  fx.addStatic({400, 0});     // 3 target
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(3));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  // The diamond produces two target replies (stamps 1 and 2); whichever
  // arrives second at node 0 — or is snooped by nodes 1/2 — may be judged
  // stale. The run must simply be consistent: stale count bounded by the
  // number of replies generated.
  EXPECT_LE(fx.metrics().staleRepliesIgnored,
            fx.metrics().targetRepliesGenerated);
}

TEST(FreshnessTest, DisabledByDefault) {
  DsrFixture fx;  // base config
  fx.addLine(3);
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().staleRepliesIgnored, 0u);
  EXPECT_FALSE(fx.dsr(0).config().freshnessTagging);
}

TEST(FreshnessTest, ComposesWithAllTechniques) {
  DsrConfig cfg = makeVariantConfig(Variant::kAll);
  cfg.freshnessTagging = true;
  DsrFixture fx(cfg);
  fx.addLine(4);
  for (int i = 0; i < 5; ++i) fx.dsr(0).sendData(3, 512, 0, i);
  fx.run(Time::seconds(5));
  EXPECT_EQ(fx.metrics().dataDelivered, 5u);
}

}  // namespace
}  // namespace manet::core
