// findRoute with a link filter: alternate cached paths must serve a
// destination when the shortest path crosses a rejected link (negative
// cache mutual exclusion without losing route diversity).
#include <gtest/gtest.h>

#include "src/core/route_cache.h"

namespace manet::core {
namespace {

using net::LinkId;
using net::NodeId;
using sim::Time;

TEST(RouteCacheFilterTest, FilterSkipsToAlternatePath) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 9}, Time::zero());     // short, bad link
  c.insert(std::vector<NodeId>{0, 2, 3, 9}, Time::zero());  // longer, clean
  auto reject19 = [](LinkId l) { return !(l == LinkId{1, 9}); };
  auto r = c.findRoute(9, reject19);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 2, 3, 9}));
}

TEST(RouteCacheFilterTest, NoFilterPrefersShortest) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 9}, Time::zero());
  c.insert(std::vector<NodeId>{0, 2, 3, 9}, Time::zero());
  auto r = c.findRoute(9);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 3u);
}

TEST(RouteCacheFilterTest, AllPathsRejectedReturnsNothing) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 9}, Time::zero());
  c.insert(std::vector<NodeId>{0, 2, 9}, Time::zero());
  auto rejectInto9 = [](LinkId l) { return l.to != 9; };
  EXPECT_FALSE(c.findRoute(9, rejectInto9));
}

TEST(RouteCacheFilterTest, FilterAppliesOnlyToUsedPrefix) {
  // The rejected link lies beyond the destination in the stored path; the
  // prefix route to the destination is unaffected.
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 2, 3}, Time::zero());
  auto reject23 = [](LinkId l) { return !(l == LinkId{2, 3}); };
  auto r = c.findRoute(2, reject23);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace manet::core
