// Negative-cache evidence rules: quarantines lift on positive evidence
// (hearing the neighbor) and on authoritative target replies — false link
// breaks caused by congestion must not starve good routes for a full Nt.
#include <gtest/gtest.h>

#include "src/core/dsr_agent.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using manet::testing::DsrFixture;
using net::LinkId;
using net::NodeId;
using sim::Time;

TEST(NegCacheEvidenceTest, HearingNeighborLiftsQuarantine) {
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  DsrFixture fx(cfg);
  fx.addLine(3);
  // Pretend node 0 observed a (false) break of 0->1.
  fx.dsr(0).negativeCache().insert(LinkId{0, 1},
                                   fx.network->scheduler().now());
  ASSERT_TRUE(fx.dsr(0).negativeCache().contains(
      LinkId{0, 1}, fx.network->scheduler().now()));
  // Node 1 transmits something node 0 hears (any traffic 1 -> 2 works:
  // node 0 overhears the RTS/DATA).
  fx.dsr(1).sendData(2, 128, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_FALSE(fx.dsr(0).negativeCache().contains(
      LinkId{0, 1}, fx.network->scheduler().now()));
}

TEST(NegCacheEvidenceTest, QuarantinePersistsWithoutEvidence) {
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  DsrFixture fx(cfg);
  fx.addLine(3);
  fx.dsr(0).negativeCache().insert(LinkId{1, 2},
                                   fx.network->scheduler().now());
  // Nothing transmits: entry survives until Nt.
  fx.run(Time::seconds(5));
  EXPECT_TRUE(fx.dsr(0).negativeCache().contains(
      LinkId{1, 2}, fx.network->scheduler().now()));
  fx.run(Time::seconds(11));
  EXPECT_FALSE(fx.dsr(0).negativeCache().contains(
      LinkId{1, 2}, fx.network->scheduler().now()));
}

TEST(NegCacheEvidenceTest, TargetReplyOverridesRemoteQuarantine) {
  // Node 0 has quarantined a remote link 1->2 (e.g. from a route error
  // about a congestion-induced false break). A fresh discovery whose reply
  // comes from the *target* proves the path works: the quarantine lifts
  // and traffic flows.
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  cfg.replyFromCache = false;  // force target replies
  DsrFixture fx(cfg);
  fx.addLine(3);
  fx.dsr(0).negativeCache().insert(LinkId{1, 2},
                                   fx.network->scheduler().now());
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(3));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  EXPECT_FALSE(fx.dsr(0).negativeCache().contains(
      LinkId{1, 2}, fx.network->scheduler().now()));
}

TEST(FakeBreakMetricTest, OracleSeparatesRealFromFakeBreaks) {
  // Real break: node 1 teleports away; node 0's transmission fails while
  // the link is genuinely gone -> counted as a real break, not fake.
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addTeleport({200, 0}, {5000, 5000}, Time::seconds(5));
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(1, 512, 0, 1);
  });
  fx.run(Time::seconds(9));
  EXPECT_GE(fx.metrics().linkBreaksDetected, 1u);
  EXPECT_EQ(fx.metrics().fakeLinkBreaks, 0u);
}

}  // namespace
}  // namespace manet::core
