#include "src/core/negative_cache.h"

#include <gtest/gtest.h>

namespace manet::core {
namespace {

using net::LinkId;
using sim::Time;

TEST(NegativeCacheTest, InsertAndContains) {
  NegativeCache nc(8, Time::seconds(10));
  nc.insert(LinkId{1, 2}, Time::zero());
  EXPECT_TRUE(nc.contains(LinkId{1, 2}, Time::seconds(5)));
  EXPECT_FALSE(nc.contains(LinkId{2, 1}, Time::seconds(5)));  // directional
  EXPECT_FALSE(nc.contains(LinkId{3, 4}, Time::seconds(5)));
}

TEST(NegativeCacheTest, EntriesExpireAfterTtl) {
  NegativeCache nc(8, Time::seconds(10));
  nc.insert(LinkId{1, 2}, Time::zero());
  EXPECT_TRUE(nc.contains(LinkId{1, 2}, Time::millis(9999)));
  EXPECT_FALSE(nc.contains(LinkId{1, 2}, Time::seconds(10)));
  EXPECT_FALSE(nc.contains(LinkId{1, 2}, Time::seconds(100)));
}

TEST(NegativeCacheTest, ReinsertRefreshesExpiry) {
  NegativeCache nc(8, Time::seconds(10));
  nc.insert(LinkId{1, 2}, Time::zero());
  nc.insert(LinkId{1, 2}, Time::seconds(8));
  EXPECT_TRUE(nc.contains(LinkId{1, 2}, Time::seconds(15)));
  EXPECT_EQ(nc.size(Time::seconds(15)), 1u);
  // Refreshed expiry is 8 + 10 = 18 s; at exactly 18 s it is gone.
  EXPECT_FALSE(nc.contains(LinkId{1, 2}, Time::seconds(18)));
}

TEST(NegativeCacheTest, FifoReplacementAtCapacity) {
  NegativeCache nc(3, Time::seconds(100));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::zero());
  nc.insert(LinkId{0, 3}, Time::zero());
  nc.insert(LinkId{0, 4}, Time::zero());  // evicts {0,1}
  EXPECT_FALSE(nc.contains(LinkId{0, 1}, Time::seconds(1)));
  EXPECT_TRUE(nc.contains(LinkId{0, 2}, Time::seconds(1)));
  EXPECT_TRUE(nc.contains(LinkId{0, 4}, Time::seconds(1)));
  EXPECT_EQ(nc.size(Time::seconds(1)), 3u);
}

TEST(NegativeCacheTest, RefreshMovesToBackOfFifo) {
  NegativeCache nc(3, Time::seconds(100));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::zero());
  nc.insert(LinkId{0, 3}, Time::zero());
  nc.insert(LinkId{0, 1}, Time::seconds(1));  // refresh: now newest
  nc.insert(LinkId{0, 4}, Time::seconds(2));  // evicts {0,2}, not {0,1}
  EXPECT_TRUE(nc.contains(LinkId{0, 1}, Time::seconds(3)));
  EXPECT_FALSE(nc.contains(LinkId{0, 2}, Time::seconds(3)));
}

TEST(NegativeCacheTest, FillToExactCapacityEvictsNothing) {
  NegativeCache nc(3, Time::seconds(100));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::zero());
  nc.insert(LinkId{0, 3}, Time::zero());  // exactly at capacity
  EXPECT_EQ(nc.size(Time::seconds(1)), 3u);
  EXPECT_TRUE(nc.contains(LinkId{0, 1}, Time::seconds(1)));
  EXPECT_TRUE(nc.contains(LinkId{0, 2}, Time::seconds(1)));
  EXPECT_TRUE(nc.contains(LinkId{0, 3}, Time::seconds(1)));
  // The boundary crossing evicts exactly one entry, the oldest.
  nc.insert(LinkId{0, 4}, Time::zero());
  EXPECT_EQ(nc.size(Time::seconds(1)), 3u);
  EXPECT_FALSE(nc.contains(LinkId{0, 1}, Time::seconds(1)));
  EXPECT_TRUE(nc.contains(LinkId{0, 2}, Time::seconds(1)));
}

TEST(NegativeCacheTest, PeekIsNonPerturbing) {
  NegativeCache nc(2, Time::seconds(10));
  nc.insert(LinkId{0, 1}, Time::zero());
  const NegativeCache& view = nc;
  EXPECT_TRUE(view.peek(LinkId{0, 1}, Time::seconds(5)));
  EXPECT_FALSE(view.peek(LinkId{0, 1}, Time::seconds(10)));  // expired
  EXPECT_FALSE(view.peek(LinkId{0, 2}, Time::seconds(5)));
  // Peeking past the TTL must not have swept the entry: a refresh before
  // expiry still sees the original FIFO slot occupied.
  EXPECT_TRUE(nc.contains(LinkId{0, 1}, Time::seconds(5)));
}

TEST(NegativeCacheTest, ClearDropsEverything) {
  NegativeCache nc(4, Time::seconds(10));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::zero());
  nc.clear();
  EXPECT_EQ(nc.size(Time::zero()), 0u);
  EXPECT_FALSE(nc.contains(LinkId{0, 1}, Time::seconds(1)));
  // Capacity is fully available again after the wipe.
  nc.insert(LinkId{1, 2}, Time::seconds(1));
  EXPECT_TRUE(nc.contains(LinkId{1, 2}, Time::seconds(2)));
}

TEST(NegativeCacheTest, SizeSweepsExpiredEntries) {
  NegativeCache nc(8, Time::seconds(10));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::seconds(5));
  EXPECT_EQ(nc.size(Time::seconds(12)), 1u);  // {0,1} expired
  EXPECT_EQ(nc.size(Time::seconds(20)), 0u);
}

TEST(NegativeCacheTest, ExpiredEntryFreesCapacity) {
  NegativeCache nc(2, Time::seconds(10));
  nc.insert(LinkId{0, 1}, Time::zero());
  nc.insert(LinkId{0, 2}, Time::zero());
  // Both expired by t=20; inserting two fresh links must not evict them
  // prematurely via FIFO confusion.
  nc.insert(LinkId{0, 3}, Time::seconds(20));
  nc.insert(LinkId{0, 4}, Time::seconds(20));
  EXPECT_TRUE(nc.contains(LinkId{0, 3}, Time::seconds(21)));
  EXPECT_TRUE(nc.contains(LinkId{0, 4}, Time::seconds(21)));
}

}  // namespace
}  // namespace manet::core
