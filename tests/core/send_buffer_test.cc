#include "src/core/send_buffer.h"

#include <gtest/gtest.h>

namespace manet::core {
namespace {

using sim::Time;

net::PacketPtr mkPkt() { return net::Packet::make(); }

TEST(SendBufferTest, PushAndTake) {
  SendBuffer b(4, Time::seconds(30));
  b.push(mkPkt(), 7, Time::zero());
  b.push(mkPkt(), 8, Time::zero());
  b.push(mkPkt(), 7, Time::zero());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.hasPacketsFor(7));
  auto got = b.takeForDest(7);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_FALSE(b.hasPacketsFor(7));
  EXPECT_TRUE(b.hasPacketsFor(8));
}

TEST(SendBufferTest, OverflowEvictsOldest) {
  SendBuffer b(2, Time::seconds(30));
  auto p1 = mkPkt();
  b.push(p1, 1, Time::zero());
  b.push(mkPkt(), 2, Time::zero());
  const auto evicted = b.push(mkPkt(), 3, Time::zero());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].packet->uid, p1->uid);
  EXPECT_EQ(b.size(), 2u);
}

TEST(SendBufferTest, ExpireDropsOnlyOldEntries) {
  SendBuffer b(8, Time::seconds(30));
  b.push(mkPkt(), 1, Time::seconds(0));
  b.push(mkPkt(), 2, Time::seconds(20));
  auto dropped = b.expire(Time::seconds(31));
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].dest, 1u);
  EXPECT_EQ(b.size(), 1u);
  // Exactly 30 s of waiting is allowed; strictly more is not.
  EXPECT_EQ(b.expire(Time::seconds(50)).size(), 0u);
  EXPECT_EQ(b.expire(Time::millis(50001)).size(), 1u);
}

TEST(SendBufferTest, DestinationsAreDistinct) {
  SendBuffer b(8, Time::seconds(30));
  b.push(mkPkt(), 5, Time::zero());
  b.push(mkPkt(), 5, Time::zero());
  b.push(mkPkt(), 6, Time::zero());
  const auto d = b.destinations();
  EXPECT_EQ(d.size(), 2u);
}

TEST(SendBufferTest, TakePreservesFifoOrder) {
  SendBuffer b(8, Time::seconds(30));
  auto p1 = mkPkt();
  auto p2 = mkPkt();
  b.push(p1, 5, Time::zero());
  b.push(p2, 5, Time::seconds(1));
  auto got = b.takeForDest(5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].packet->uid, p1->uid);
  EXPECT_EQ(got[1].packet->uid, p2->uid);
}

TEST(SendBufferTest, EmptyBufferBehaves) {
  SendBuffer b(8, Time::seconds(30));
  EXPECT_EQ(b.takeForDest(1).size(), 0u);
  EXPECT_EQ(b.expire(Time::seconds(100)).size(), 0u);
  EXPECT_TRUE(b.destinations().empty());
  EXPECT_FALSE(b.hasPacketsFor(1));
}

}  // namespace
}  // namespace manet::core
