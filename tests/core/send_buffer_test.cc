#include "src/core/send_buffer.h"

#include <gtest/gtest.h>

#include "src/telemetry/trace.h"
#include "src/traffic/cbr.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using sim::Time;

net::PacketPtr mkPkt() { return net::Packet::make(); }

TEST(SendBufferTest, PushAndTake) {
  SendBuffer b(4, Time::seconds(30));
  b.push(mkPkt(), 7, Time::zero());
  b.push(mkPkt(), 8, Time::zero());
  b.push(mkPkt(), 7, Time::zero());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.hasPacketsFor(7));
  auto got = b.takeForDest(7);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_FALSE(b.hasPacketsFor(7));
  EXPECT_TRUE(b.hasPacketsFor(8));
}

TEST(SendBufferTest, OverflowEvictsOldest) {
  SendBuffer b(2, Time::seconds(30));
  auto p1 = mkPkt();
  b.push(p1, 1, Time::zero());
  b.push(mkPkt(), 2, Time::zero());
  const auto evicted = b.push(mkPkt(), 3, Time::zero());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].packet->uid, p1->uid);
  EXPECT_EQ(b.size(), 2u);
}

TEST(SendBufferTest, ExpireDropsOnlyOldEntries) {
  SendBuffer b(8, Time::seconds(30));
  b.push(mkPkt(), 1, Time::seconds(0));
  b.push(mkPkt(), 2, Time::seconds(20));
  auto dropped = b.expire(Time::seconds(31));
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].dest, 1u);
  EXPECT_EQ(b.size(), 1u);
  // Exactly 30 s of waiting is allowed; strictly more is not.
  EXPECT_EQ(b.expire(Time::seconds(50)).size(), 0u);
  EXPECT_EQ(b.expire(Time::millis(50001)).size(), 1u);
}

TEST(SendBufferTest, DestinationsAreDistinct) {
  SendBuffer b(8, Time::seconds(30));
  b.push(mkPkt(), 5, Time::zero());
  b.push(mkPkt(), 5, Time::zero());
  b.push(mkPkt(), 6, Time::zero());
  const auto d = b.destinations();
  EXPECT_EQ(d.size(), 2u);
}

TEST(SendBufferTest, TakePreservesFifoOrder) {
  SendBuffer b(8, Time::seconds(30));
  auto p1 = mkPkt();
  auto p2 = mkPkt();
  b.push(p1, 5, Time::zero());
  b.push(p2, 5, Time::seconds(1));
  auto got = b.takeForDest(5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].packet->uid, p1->uid);
  EXPECT_EQ(got[1].packet->uid, p2->uid);
}

TEST(SendBufferTest, ExactCapacityBoundary) {
  SendBuffer b(3, Time::seconds(30));
  b.push(mkPkt(), 1, Time::zero());
  b.push(mkPkt(), 2, Time::zero());
  // Filling to exactly capacity evicts nothing...
  EXPECT_EQ(b.push(mkPkt(), 3, Time::zero()).size(), 0u);
  EXPECT_EQ(b.size(), 3u);
  // ...and each push past it evicts exactly one (the oldest).
  EXPECT_EQ(b.push(mkPkt(), 4, Time::zero()).size(), 1u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_FALSE(b.hasPacketsFor(1));
  EXPECT_TRUE(b.hasPacketsFor(4));
}

TEST(SendBufferTest, DropRecordsMatchMetricCounters) {
  // Drive the agent-level drop paths end-to-end: an unreachable destination
  // with a tiny buffer forces both overflow and timeout drops, and every
  // counted drop must have a matching trace record.
  core::DsrConfig dsrCfg;
  dsrCfg.sendBufferCapacity = 4;
  manet::testing::DsrFixture fx(dsrCfg);
  fx.addStatic({0.0, 0.0});
  fx.addStatic({5000.0, 0.0});  // far out of range: no route will be found
  telemetry::RingBufferSink ring(1 << 16);
  fx.network->tracer().addSink(&ring);

  traffic::CbrSource::Params p;
  p.dst = 1;
  p.packetsPerSecond = 2.0;
  p.start = Time::millis(1);
  p.stop = Time::seconds(20);
  traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(), p);
  fx.run(Time::seconds(60));  // past the 30 s buffer timeout

  const auto& m = fx.metrics();
  EXPECT_GT(m.dropSendBufferOverflow, 0u);
  EXPECT_GT(m.dropSendBufferTimeout, 0u);
  EXPECT_EQ(m.dataDelivered, 0u);

  std::uint64_t overflowRecs = 0, timeoutRecs = 0;
  for (const auto& s : ring.snapshot()) {
    if (s.rec.event != telemetry::TraceEvent::kPktDrop) continue;
    if (s.rec.reason == telemetry::DropReason::kSendBufferOverflow) {
      ++overflowRecs;
    } else if (s.rec.reason == telemetry::DropReason::kSendBufferTimeout) {
      ++timeoutRecs;
    }
  }
  EXPECT_EQ(overflowRecs, m.dropSendBufferOverflow);
  EXPECT_EQ(timeoutRecs, m.dropSendBufferTimeout);
}

TEST(SendBufferTest, EmptyBufferBehaves) {
  SendBuffer b(8, Time::seconds(30));
  EXPECT_EQ(b.takeForDest(1).size(), 0u);
  EXPECT_EQ(b.expire(Time::seconds(100)).size(), 0u);
  EXPECT_TRUE(b.destinations().empty());
  EXPECT_FALSE(b.hasPacketsFor(1));
}

}  // namespace
}  // namespace manet::core
