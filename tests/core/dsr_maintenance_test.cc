// Route maintenance: link-layer failure feedback, route errors, salvaging,
// gratuitous route repair, and recovery through re-discovery.
#include <gtest/gtest.h>

#include "src/core/dsr_agent.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using manet::testing::DsrFixture;
using net::LinkId;
using net::NodeId;
using sim::Time;

// Line 0-1-2-3 where node 2 teleports far away at t = 5 s, breaking 1->2
// and 2->3.
DsrFixture brokenLineFixture(const DsrConfig& cfg = {}) {
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});
  fx.addStatic({200, 0});
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));
  fx.addStatic({600, 0});
  return fx;
}

TEST(DsrMaintenanceTest, LinkBreakDetectedViaMacFeedback) {
  auto fx = brokenLineFixture();
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  // After the break, node 1 cannot reach node 2 anymore.
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(10));
  EXPECT_GE(fx.metrics().linkBreaksDetected, 1u);
  EXPECT_GE(fx.metrics().rerrTx, 1u);
}

TEST(DsrMaintenanceTest, RouteErrorCleansSourceCache) {
  auto fx = brokenLineFixture();
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_TRUE(fx.dsr(0).routeCache().containsLink(LinkId{1, 2}));

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(12));
  // The unicast route error reached the source and truncated the route.
  EXPECT_FALSE(fx.dsr(0).routeCache().containsLink(LinkId{1, 2}));
}

TEST(DsrMaintenanceTest, SalvagingUsesAlternateRouteAtIntermediate) {
  // 0-1-2-3 plus a detour 1-4-3; node 2 vanishes at t=5.
  DsrConfig cfg;
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});                                      // 0
  fx.addStatic({200, 0});                                    // 1
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));  // 2
  fx.addStatic({600, 0});                                    // 3
  fx.addStatic({400, 150});                                  // 4: 1-4 250 m, 4-3 250 m
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  // Give node 1 an alternate route via 4 (as it would have learned from
  // snooping in a busier network).
  fx.dsr(1).seedRoute(std::vector<NodeId>{1, 4, 3});

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(10));
  EXPECT_GE(fx.metrics().salvageAttempts, 1u);
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);  // salvaged via 1-4-3
}

TEST(DsrMaintenanceTest, RecoveryThroughRediscovery) {
  // After node 2 disappears, a fresh discovery finds 0-1-4-3.
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({200, 0});
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));
  fx.addStatic({600, 0});
  fx.addStatic({400, 150});
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(20));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  auto r = fx.dsr(0).routeCache().findRoute(3);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 1, 4, 3}));
}

TEST(DsrMaintenanceTest, GratuitousRepairCleansOffRouteCaches) {
  // Node 5 sits near node 0 and has (seeded) a stale route over the broken
  // link. The next flood from node 0 piggybacks the error; node 5's cache
  // must lose the link even though the unicast error never visited it.
  DsrFixture fx;
  fx.addStatic({0, 0});                                      // 0
  fx.addStatic({200, 0});                                    // 1
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));  // 2
  fx.addStatic({600, 0});                                    // 3
  fx.addStatic({0, 200});                                    // 4 (bystander)
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);
  fx.dsr(4).seedRoute(std::vector<NodeId>{4, 0, 1, 2, 3});
  ASSERT_TRUE(fx.dsr(4).routeCache().containsLink(LinkId{1, 2}));

  // First post-break send discovers the failure and delivers the route
  // error to the source; the next send forces a fresh discovery whose
  // request piggybacks the error.
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.network->scheduler().scheduleAt(Time::seconds(10), [&] {
    fx.dsr(0).sendData(3, 512, 0, 2);
  });
  fx.run(Time::seconds(20));
  EXPECT_FALSE(fx.dsr(4).routeCache().containsLink(LinkId{1, 2}));
}

TEST(DsrMaintenanceTest, NoSalvageRouteDropsPacket) {
  auto fx = brokenLineFixture();
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(8));
  // Node 1 has no alternate: the in-flight packet dies there.
  EXPECT_GE(fx.metrics().dropLinkFailNoSalvage, 1u);
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
}

TEST(DsrMaintenanceTest, RouteLifetimeSamplesFeedAdaptiveEstimator) {
  DsrConfig cfg = makeVariantConfig(Variant::kAdaptiveExpiry);
  auto fx = brokenLineFixture(cfg);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(12));
  // Node 1 observed the break directly: it must have lifetime samples.
  EXPECT_GE(fx.dsr(1).adaptiveTimeout().sampleCount(), 1u);
}

}  // namespace
}  // namespace manet::core
