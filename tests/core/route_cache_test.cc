#include "src/core/route_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.h"

namespace manet::core {
namespace {

using net::LinkId;
using net::NodeId;
using sim::Time;

const std::vector<NodeId> kPath{0, 1, 2, 3};

TEST(RouteCacheTest, InsertAndFind) {
  RouteCache c(0, 16);
  EXPECT_TRUE(c.insert(kPath, Time::zero()));
  auto r = c.findRoute(3);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, kPath);
}

TEST(RouteCacheTest, PrefixServesIntermediateDestinations) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::zero());
  auto r = c.findRoute(2);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 1, 2}));
}

TEST(RouteCacheTest, RejectsBadPaths) {
  RouteCache c(0, 16);
  EXPECT_FALSE(c.insert(std::vector<NodeId>{0}, Time::zero()));       // too short
  EXPECT_FALSE(c.insert(std::vector<NodeId>{1, 2}, Time::zero()));    // wrong owner
  EXPECT_FALSE(c.insert(std::vector<NodeId>{0, 1, 0}, Time::zero())); // loop
  EXPECT_EQ(c.size(), 0u);
}

TEST(RouteCacheTest, ShortestRouteWins) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 2, 9}, Time::zero());
  c.insert(std::vector<NodeId>{0, 5, 9}, Time::zero());
  auto r = c.findRoute(9);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 3u);
}

TEST(RouteCacheTest, NoRouteToUnknownNode) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::zero());
  EXPECT_FALSE(c.findRoute(42));
  EXPECT_FALSE(c.findRoute(0));  // never route to self
}

TEST(RouteCacheTest, DuplicateInsertKeepsOriginalEntryTime) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::seconds(1));
  c.insert(kPath, Time::seconds(5));
  EXPECT_EQ(c.size(), 1u);
  // addedAt stays at first-learn time: route-lifetime samples for the
  // adaptive timeout measure age since the route was first entered, not
  // since the last of the per-packet re-insertions by forwarders.
  EXPECT_EQ(c.paths()[0].addedAt, Time::seconds(1));
}

TEST(RouteCacheTest, FifoEvictionAtCapacity) {
  RouteCache c(0, 2);
  c.insert(std::vector<NodeId>{0, 1}, Time::zero());
  c.insert(std::vector<NodeId>{0, 2}, Time::zero());
  c.insert(std::vector<NodeId>{0, 3}, Time::zero());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.findRoute(1));  // oldest evicted
  EXPECT_TRUE(c.findRoute(2));
  EXPECT_TRUE(c.findRoute(3));
}

TEST(RouteCacheTest, RemoveLinkTruncatesAtBreak) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::seconds(2));
  const auto affected = c.removeLink(LinkId{1, 2}, Time::seconds(10));
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], Time::seconds(2));  // lifetime sample source
  EXPECT_FALSE(c.findRoute(2));
  EXPECT_FALSE(c.findRoute(3));
  EXPECT_TRUE(c.findRoute(1));  // prefix before the break survives
}

TEST(RouteCacheTest, RemoveLinkDirectional) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::zero());
  c.removeLink(LinkId{2, 1}, Time::zero());  // reverse direction: no-op
  EXPECT_TRUE(c.findRoute(3));
}

TEST(RouteCacheTest, RemoveLinkDropsUnroutablePaths) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 2}, Time::zero());
  c.removeLink(LinkId{0, 1}, Time::zero());
  EXPECT_EQ(c.size(), 0u);
}

TEST(RouteCacheTest, ContainsLink) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::zero());
  EXPECT_TRUE(c.containsLink(LinkId{2, 3}));
  EXPECT_FALSE(c.containsLink(LinkId{3, 2}));
  EXPECT_FALSE(c.containsLink(LinkId{0, 2}));
}

TEST(RouteCacheTest, ExpiryPrunesUnusedLinks) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::seconds(0));
  // Keep link 0->1 fresh; let the rest go stale.
  c.markLinksUsed(std::vector<NodeId>{0, 1}, Time::seconds(20));
  const std::size_t pruned = c.expireUnusedSince(Time::seconds(10));
  EXPECT_EQ(pruned, 2u);  // links 1->2 and 2->3
  EXPECT_TRUE(c.findRoute(1));
  EXPECT_FALSE(c.findRoute(3));
}

TEST(RouteCacheTest, ExpiryKeepsRecentlyInsertedRoutes) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::seconds(100));
  EXPECT_EQ(c.expireUnusedSince(Time::seconds(50)), 0u);
  EXPECT_TRUE(c.findRoute(3));
}

TEST(RouteCacheTest, MarkLinksUsedRefreshesSharedLinks) {
  RouteCache c(0, 16);
  c.insert(std::vector<NodeId>{0, 1, 2, 3}, Time::seconds(0));
  c.insert(std::vector<NodeId>{0, 1, 4}, Time::seconds(0));
  // Refresh only 0->1 (shared by both paths).
  c.markLinksUsed(std::vector<NodeId>{0, 1}, Time::seconds(30));
  c.expireUnusedSince(Time::seconds(10));
  // Both paths keep their fresh first link, lose the stale tails.
  EXPECT_TRUE(c.findRoute(1));
  EXPECT_FALSE(c.findRoute(3));
  EXPECT_FALSE(c.findRoute(4));
}

TEST(RouteCacheTest, ClearEmptiesEverything) {
  RouteCache c(0, 16);
  c.insert(kPath, Time::zero());
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.findRoute(3));
}

// Property test: across random operation sequences, cached routes stay
// loop-free, start at the owner, and respect capacity.
class RouteCachePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RouteCachePropertyTest, InvariantsHoldUnderRandomOps) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  RouteCache c(0, 8);
  for (int step = 0; step < 500; ++step) {
    const auto now = Time::millis(step * 100);
    const int op = static_cast<int>(rng.uniformInt(0, 3));
    if (op == 0) {
      // Random path of random length starting at owner.
      std::vector<NodeId> path{0};
      const int len = static_cast<int>(rng.uniformInt(1, 6));
      for (int i = 0; i < len; ++i) {
        path.push_back(static_cast<NodeId>(rng.uniformInt(1, 12)));
      }
      c.insert(path, now);
    } else if (op == 1) {
      c.removeLink(LinkId{static_cast<NodeId>(rng.uniformInt(0, 12)),
                          static_cast<NodeId>(rng.uniformInt(0, 12))},
                   now);
    } else if (op == 2) {
      c.expireUnusedSince(now - Time::seconds(5));
    } else {
      const auto dest = static_cast<NodeId>(rng.uniformInt(1, 12));
      if (auto r = c.findRoute(dest)) {
        ASSERT_GE(r->size(), 2u);
        ASSERT_EQ(r->front(), 0u);
        ASSERT_EQ(r->back(), dest);
        ASSERT_FALSE(net::routeHasDuplicates(*r));
      }
    }
    ASSERT_LE(c.size(), 8u);
    for (const auto& p : c.paths()) {
      ASSERT_GE(p.hops.size(), 2u);
      ASSERT_EQ(p.hops.front(), 0u);
      ASSERT_FALSE(net::routeHasDuplicates(p.hops));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteCachePropertyTest,
                         ::testing::Range(1, 9));

// -------------------------------------------------------------- provenance

TEST(RouteCacheTest, InsertMintsProvenanceAndLookupCarriesIt) {
  net::RouteProvenance::resetIdCounter();
  RouteCache c(0, 16);
  ASSERT_TRUE(
      c.insert(kPath, Time::seconds(2), net::RouteOrigin::kTargetReply));
  const auto hit = c.lookup(3);
  ASSERT_TRUE(hit);
  EXPECT_NE(hit->prov.id, 0u);
  EXPECT_EQ(hit->prov.origin, net::RouteOrigin::kTargetReply);
  EXPECT_EQ(hit->prov.insertedBy, 0u);
  EXPECT_EQ(hit->prov.bornAt, Time::seconds(2));
  EXPECT_EQ(hit->prov.hopsAtInsert, kPath.size());
}

TEST(RouteCacheTest, ReinsertKeepsOriginalProvenance) {
  net::RouteProvenance::resetIdCounter();
  RouteCache c(0, 16);
  ASSERT_TRUE(c.insert(kPath, Time::seconds(1), net::RouteOrigin::kSnooped));
  const auto first = c.lookup(3);
  ASSERT_TRUE(first);
  // Re-learning the same path later, via a different mechanism, must not
  // re-stamp the entry: lifetime attribution measures age since first
  // learned, by the original origin.
  ASSERT_TRUE(
      c.insert(kPath, Time::seconds(9), net::RouteOrigin::kTargetReply));
  const auto again = c.lookup(3);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->prov.id, first->prov.id);
  EXPECT_EQ(again->prov.origin, net::RouteOrigin::kSnooped);
  EXPECT_EQ(again->prov.bornAt, Time::seconds(1));
}

}  // namespace
}  // namespace manet::core
