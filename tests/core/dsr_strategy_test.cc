// The paper's three techniques: wider error notification, timer-based route
// expiry (static + adaptive) and negative caches.
#include <gtest/gtest.h>

#include "src/core/dsr_agent.h"
#include "src/core/dsr_config.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using manet::testing::DsrFixture;
using net::LinkId;
using net::NodeId;
using sim::Time;

TEST(VariantConfigTest, VariantsEnableTheRightTechniques) {
  const auto base = makeVariantConfig(Variant::kBase);
  EXPECT_FALSE(base.widerErrorNotification);
  EXPECT_EQ(base.expiry, ExpiryMode::kNone);
  EXPECT_FALSE(base.negativeCache);
  EXPECT_TRUE(base.replyFromCache);
  EXPECT_TRUE(base.salvaging);

  const auto wide = makeVariantConfig(Variant::kWiderError);
  EXPECT_TRUE(wide.widerErrorNotification);

  const auto stat = makeVariantConfig(Variant::kStaticExpiry,
                                      Time::seconds(25));
  EXPECT_EQ(stat.expiry, ExpiryMode::kStatic);
  EXPECT_EQ(stat.staticTimeout, Time::seconds(25));

  const auto adap = makeVariantConfig(Variant::kAdaptiveExpiry);
  EXPECT_EQ(adap.expiry, ExpiryMode::kAdaptive);

  const auto neg = makeVariantConfig(Variant::kNegCache);
  EXPECT_TRUE(neg.negativeCache);

  const auto all = makeVariantConfig(Variant::kAll);
  EXPECT_TRUE(all.widerErrorNotification);
  EXPECT_EQ(all.expiry, ExpiryMode::kAdaptive);
  EXPECT_TRUE(all.negativeCache);
}

TEST(VariantConfigTest, VariantNames) {
  EXPECT_STREQ(toString(Variant::kBase), "DSR");
  EXPECT_STREQ(toString(Variant::kAll), "ALL");
  EXPECT_STREQ(toString(Variant::kAdaptiveExpiry), "AdaptiveExpiry");
}

// ----------------------------------------------------------- wider errors

// Topology for wider-error tests: chain 0-1-2-3 with a bystander 5 near
// node 1 that snooped a route over the doomed link 2->3 and forwarded
// traffic over it earlier. Node 3 teleports away at t = 5 s.
struct WideErrorWorld {
  explicit WideErrorWorld(bool wider) : fx(makeCfg(wider)) {
    fx.addStatic({0, 0});                                      // 0
    fx.addStatic({200, 0});                                    // 1
    fx.addStatic({400, 0});                                    // 2
    fx.addTeleport({600, 0}, {5000, 5000}, Time::seconds(5));  // 3
  }
  static DsrConfig makeCfg(bool wider) {
    DsrConfig cfg;
    cfg.widerErrorNotification = wider;
    return cfg;
  }
  DsrFixture fx;
};

TEST(WiderErrorTest, BroadcastErrorCleansDetectorNeighborsCaches) {
  WideErrorWorld w(/*wider=*/true);
  auto& fx = w.fx;
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);
  // Node 1 snooped/forwarded and caches the link 2->3.
  ASSERT_TRUE(fx.dsr(1).routeCache().containsLink(LinkId{2, 3}));

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(12));
  // The broadcast error from node 2 cleans node 1's cache even though the
  // unicast error would have only followed the path back to node 0.
  EXPECT_FALSE(fx.dsr(1).routeCache().containsLink(LinkId{2, 3}));
  EXPECT_FALSE(fx.dsr(0).routeCache().containsLink(LinkId{2, 3}));
}

TEST(WiderErrorTest, ErrorRebroadcastRequiresCacheAndForwardingHistory) {
  WideErrorWorld w(/*wider=*/true);
  auto& fx = w.fx;
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(12));
  // Nodes 1 (and possibly 0) forwarded over the broken link's route, so the
  // error propagates up the tree: at least one rebroadcast.
  EXPECT_GE(fx.metrics().rerrWideRebroadcasts, 1u);
}

// The genuine differentiator between base and wider errors in a network
// with perfect snooping: nodes *two hops away from the broken link's
// reverse path*. Topology: chain 0-1-2-3 (flow A), plus a spur 5-4-2 below
// the chain (flow B: node 5 -> 3 via 4 and 2). Node 4 hears node 2; node 5
// hears only node 4. When 2->3 breaks under flow A, base DSR's unicast
// error travels 2->1->0 and node 5 can never hear it; wider errors reach
// node 4 by broadcast, and node 4 — which forwarded flow B over the broken
// link — rebroadcasts, cleaning node 5.
struct SpurWorld {
  explicit SpurWorld(bool wider) : fx(WideErrorWorld::makeCfg(wider)) {
    fx.addStatic({0, 0});                                      // 0
    fx.addStatic({200, 0});                                    // 1
    fx.addStatic({400, 0});                                    // 2
    fx.addTeleport({600, 0}, {5000, 5000}, Time::seconds(5));  // 3
    fx.addStatic({400, -240});                                 // 4: hears 2
    fx.addStatic({400, -480});                                 // 5: hears 4 only
  }

  // Phase 1: establish flow B so node 4 forwards over 2->3 and node 5
  // caches a route containing it. Phase 2: flow A trips over the break.
  void runScenario() {
    fx.dsr(5).sendData(3, 512, 1, 0);
    fx.network->scheduler().scheduleAt(Time::seconds(2), [this] {
      fx.dsr(5).sendData(3, 512, 1, 1);
    });
    fx.network->scheduler().scheduleAt(Time::seconds(6), [this] {
      fx.dsr(0).sendData(3, 512, 0, 0);
    });
    fx.run(Time::seconds(12));
  }

  DsrFixture fx;
};

TEST(WiderErrorTest, BaseDsrLeavesTwoHopCachesStale) {
  SpurWorld w(/*wider=*/false);
  w.runScenario();
  ASSERT_GE(w.fx.metrics().linkBreaksDetected, 1u);
  // Node 5's stale route survives: the unicast error never came its way.
  EXPECT_TRUE(w.fx.dsr(5).routeCache().containsLink(LinkId{2, 3}));
}

TEST(WiderErrorTest, WideErrorRebroadcastCleansTwoHopCaches) {
  SpurWorld w(/*wider=*/true);
  w.runScenario();
  ASSERT_GE(w.fx.metrics().linkBreaksDetected, 1u);
  ASSERT_GE(w.fx.metrics().rerrWideRebroadcasts, 1u);
  EXPECT_FALSE(w.fx.dsr(5).routeCache().containsLink(LinkId{2, 3}));
}

// ------------------------------------------------------------- expiry

TEST(StaticExpiryTest, UnusedRoutesExpireAfterTimeout) {
  DsrConfig cfg = makeVariantConfig(Variant::kStaticExpiry, Time::seconds(5));
  DsrFixture fx(cfg);
  fx.addLine(3);
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_TRUE(fx.dsr(0).routeCache().findRoute(2));
  // No further traffic: the route must be gone 5 s after last use.
  fx.run(Time::seconds(10));
  EXPECT_FALSE(fx.dsr(0).routeCache().findRoute(2));
  EXPECT_GE(fx.metrics().expiredLinks, 1u);
}

TEST(StaticExpiryTest, OngoingTrafficKeepsRoutesAlive) {
  DsrConfig cfg = makeVariantConfig(Variant::kStaticExpiry, Time::seconds(5));
  DsrFixture fx(cfg);
  fx.addLine(3);
  // Send every second for 20 s: intermediate node keeps refreshing usage.
  for (int i = 0; i < 20; ++i) {
    fx.network->scheduler().scheduleAt(Time::seconds(i) + Time::millis(10),
                                       [&fx, i] {
                                         fx.dsr(0).sendData(2, 512, 0,
                                                            static_cast<std::uint64_t>(i));
                                       });
  }
  fx.run(Time::seconds(21));
  EXPECT_EQ(fx.metrics().dataDelivered, 20u);
  // Forwarding node 1 still holds the route (constantly in use).
  EXPECT_TRUE(fx.dsr(1).routeCache().findRoute(2));
}

TEST(AdaptiveExpiryTest, TimeoutIsMaxAtStartThenAdapts) {
  DsrConfig cfg = makeVariantConfig(Variant::kAdaptiveExpiry);
  DsrFixture fx(cfg);
  fx.addLine(3);
  // Before any break, the timeout grows with time-since-start: effectively
  // no expiry in a stable network.
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(30));
  EXPECT_TRUE(fx.dsr(0).routeCache().findRoute(2));
  EXPECT_GE(fx.dsr(0).currentExpiryTimeout(), Time::seconds(29));
}

TEST(AdaptiveExpiryTest, NoExpiryConfigReportsInfiniteTimeout) {
  DsrFixture fx;  // base config, no expiry
  fx.addLine(2);
  EXPECT_EQ(fx.dsr(0).currentExpiryTimeout(), Time::max());
}

// ---------------------------------------------------------- negative cache

TEST(NegCacheStrategyTest, BrokenLinkIsQuarantined) {
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});
  fx.addTeleport({200, 0}, {5000, 5000}, Time::seconds(5));  // 1
  fx.addStatic({0, 200});                                    // 2 keeps 0 company
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(1, 512, 0, 1);
  });
  fx.run(Time::seconds(9));
  ASSERT_GE(fx.metrics().negCacheInsertions, 1u);
  EXPECT_TRUE(fx.dsr(0).negativeCache().contains(
      LinkId{0, 1}, fx.network->scheduler().now()));

  // Mutual exclusion: seeding a route over the quarantined link is refused.
  fx.dsr(0).seedRoute(std::vector<NodeId>{0, 1});
  EXPECT_FALSE(fx.dsr(0).routeCache().findRoute(1));
}

TEST(NegCacheStrategyTest, QuarantineExpiresAfterNt) {
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  cfg.negCacheTtl = sim::Time::seconds(10);
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});
  fx.addTeleport({200, 0}, {5000, 5000}, Time::seconds(5));
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(1, 512, 0, 1);
  });
  fx.run(Time::seconds(30));
  // Well past Nt since the (last) break: the entry must be gone so the
  // link can be re-learned if it comes back.
  EXPECT_FALSE(fx.dsr(0).negativeCache().contains(
      LinkId{0, 1}, fx.network->scheduler().now()));
}

TEST(NegCacheStrategyTest, ForwarderDropsPacketsOverQuarantinedLink) {
  // 0-1-2-3 line. Node 2 has quarantined 2->3 (a break the source hasn't
  // heard about yet — the usual in-flight race). A packet sent over the
  // stale route must be dropped *at node 2* with a route error, instead of
  // burning the MAC retry budget against the dead link again.
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  DsrFixture fx(cfg);
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  // Simulate node 2 having just observed the break.
  fx.dsr(2).negativeCache().insert(net::LinkId{2, 3},
                                   fx.network->scheduler().now());
  fx.dsr(0).sendData(3, 512, 0, 1);
  fx.run(Time::seconds(4));
  EXPECT_GE(fx.metrics().dropNegativeCache, 1u);
  // The drop raised a route error that reached the source.
  EXPECT_FALSE(fx.dsr(0).routeCache().containsLink(net::LinkId{2, 3}));
}

TEST(NegCacheStrategyTest, PollutionPreventedAfterError) {
  // The "quick pollution" scenario: after the error cleans node 0's cache,
  // snooping a stale in-flight route must NOT re-insert the dead link.
  DsrConfig cfg = makeVariantConfig(Variant::kNegCache);
  DsrFixture fx(cfg);
  fx.addStatic({0, 0});
  fx.addTeleport({200, 0}, {5000, 5000}, Time::seconds(5));
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(1, 512, 0, 1);
  });
  fx.run(Time::seconds(9));
  ASSERT_TRUE(fx.dsr(0).negativeCache().contains(
      LinkId{0, 1}, fx.network->scheduler().now()));
  // Simulated stale in-flight information arriving right after the purge:
  fx.dsr(0).seedRoute(std::vector<NodeId>{0, 1});
  EXPECT_FALSE(fx.dsr(0).routeCache().containsLink(LinkId{0, 1}));
}

TEST(NegCacheStrategyTest, WithoutNegCachePollutionHappens) {
  // Control: base DSR accepts the stale route right back.
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addTeleport({200, 0}, {5000, 5000}, Time::seconds(5));
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.dsr(0).sendData(1, 512, 0, 1);
  });
  fx.run(Time::seconds(9));
  fx.dsr(0).seedRoute(std::vector<NodeId>{0, 1});
  EXPECT_TRUE(fx.dsr(0).routeCache().containsLink(LinkId{0, 1}));
}

}  // namespace
}  // namespace manet::core
