// Route discovery: request flooding, replies (from target and caches),
// non-propagating requests, send buffering.
#include <gtest/gtest.h>

#include "src/core/dsr_agent.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::core {
namespace {

using manet::testing::DsrFixture;
using net::NodeId;
using sim::Time;

TEST(DsrDiscoveryTest, MultiHopDiscoveryAndDelivery) {
  DsrFixture fx;
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().dataOriginated, 1u);
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  // Source learned the full 4-hop route.
  auto r = fx.dsr(0).routeCache().findRoute(3);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(DsrDiscoveryTest, SingleHopUsesNonPropagatingRequestOnly) {
  DsrFixture fx;
  fx.addLine(2);
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  EXPECT_EQ(fx.metrics().nonPropRequestsSent, 1u);
  EXPECT_EQ(fx.metrics().floodRequestsSent, 0u);
}

TEST(DsrDiscoveryTest, MultiHopNeedsFloodAfterNonPropFails) {
  DsrFixture fx;
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().nonPropRequestsSent, 1u);
  EXPECT_GE(fx.metrics().floodRequestsSent, 1u);
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
}

TEST(DsrDiscoveryTest, DeliveryDelayIncludesDiscoveryLatency) {
  DsrFixture fx;
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);
  // Must include the 30 ms non-propagating timeout plus flood round trip.
  EXPECT_GT(fx.metrics().avgDelaySec(), 0.030);
  EXPECT_LT(fx.metrics().avgDelaySec(), 1.0);
}

TEST(DsrDiscoveryTest, IntermediateNodesLearnRoutesFromForwarding) {
  DsrFixture fx;
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  // Node 1 forwarded the data packet and the request/reply cycle: it must
  // know routes toward both endpoints.
  EXPECT_TRUE(fx.dsr(1).routeCache().findRoute(3));
  EXPECT_TRUE(fx.dsr(1).routeCache().findRoute(0));
  // The destination learned the reverse route.
  EXPECT_TRUE(fx.dsr(3).routeCache().findRoute(0));
}

TEST(DsrDiscoveryTest, CachedReplyQuenchesSecondDiscovery) {
  // Disable promiscuous listening so node 4 cannot simply snoop the route
  // off the air — it must ask, and node 1's cache must answer.
  DsrConfig cfg;
  cfg.promiscuousListening = false;
  DsrFixture fx(cfg);
  fx.addLine(4);
  // Node 4 hangs off node 1 only.
  fx.addStatic({200, 200});
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  const auto floodsBefore = fx.metrics().floodRequestsSent;

  // Node 4 asks for node 3; node 1 has a cached route and must reply
  // without the flood reaching node 3's neighborhood.
  fx.dsr(4).sendData(3, 512, 1, 0);
  fx.run(Time::seconds(4));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  EXPECT_GE(fx.metrics().cacheRepliesGenerated, 1u);
  // Node 1 replied to the 1-hop request, so no (or at most the already
  // counted) network-wide floods were needed.
  EXPECT_EQ(fx.metrics().floodRequestsSent, floodsBefore);
}

TEST(DsrDiscoveryTest, TargetRepliesToMultiplePathsInDiamond) {
  DsrFixture fx;
  // Diamond: 0 -> {1, 2} -> 3.
  fx.addStatic({0, 0});      // 0
  fx.addStatic({200, 100});  // 1
  fx.addStatic({200, -100}); // 2
  fx.addStatic({400, 0});    // 3
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(3));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  // The target replies to every request copy, so the source should have
  // cached at least one route and received one or more replies.
  EXPECT_GE(fx.metrics().repliesReceived, 1u);
  EXPECT_GE(fx.metrics().targetRepliesGenerated, 1u);
  EXPECT_TRUE(fx.dsr(0).routeCache().findRoute(3));
}

TEST(DsrDiscoveryTest, PacketsBufferWhileDiscovering) {
  DsrFixture fx;
  fx.addLine(4);
  for (int i = 0; i < 5; ++i) fx.dsr(0).sendData(3, 512, 0, i);
  fx.run(Time::seconds(3));
  // All five buffered packets flow once the route arrives.
  EXPECT_EQ(fx.metrics().dataOriginated, 5u);
  EXPECT_EQ(fx.metrics().dataDelivered, 5u);
}

TEST(DsrDiscoveryTest, UnreachableDestinationDropsAfterBufferTimeout) {
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({1000, 0});  // far out of range
  fx.dsr(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(40));
  EXPECT_EQ(fx.metrics().dataDelivered, 0u);
  EXPECT_EQ(fx.metrics().dropSendBufferTimeout, 1u);
  // Discovery retried with backoff but never succeeded.
  EXPECT_GE(fx.metrics().floodRequestsSent, 2u);
}

TEST(DsrDiscoveryTest, SecondSendUsesCachedRouteWithoutNewDiscovery) {
  DsrFixture fx;
  fx.addLine(4);
  fx.dsr(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  const auto discoveries = fx.metrics().routeDiscoveriesStarted;
  const auto hitsBefore = fx.metrics().cacheHits;
  fx.dsr(0).sendData(3, 512, 0, 1);
  fx.run(Time::seconds(4));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  EXPECT_EQ(fx.metrics().routeDiscoveriesStarted, discoveries);
  EXPECT_GT(fx.metrics().cacheHits, hitsBefore);
}

TEST(DsrDiscoveryTest, ReplyQualityMeasuredByOracle) {
  DsrFixture fx;
  fx.addLine(3);
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(2));
  // Static topology: every reply is good.
  EXPECT_GE(fx.metrics().repliesReceived, 1u);
  EXPECT_EQ(fx.metrics().repliesReceived, fx.metrics().goodRepliesReceived);
}

}  // namespace
}  // namespace manet::core
