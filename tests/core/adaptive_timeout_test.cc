#include "src/core/adaptive_timeout.h"

#include <gtest/gtest.h>

namespace manet::core {
namespace {

using sim::Time;

TEST(AdaptiveTimeoutTest, BeforeAnyBreakGrowsWithTime) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  // No breaks seen: T = time since start (last break defaults to t=0),
  // i.e. effectively no expiry while the network looks stable.
  EXPECT_EQ(at.timeout(Time::seconds(100)), Time::seconds(100));
}

TEST(AdaptiveTimeoutTest, MinimumClampApplies) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  at.onRouteBreak(Time::seconds(10), Time::millis(10100));  // 0.1 s lifetime
  // alpha * avg = 0.2 s, since-break = 0: clamped to 1 s.
  EXPECT_EQ(at.timeout(Time::millis(10100)), Time::seconds(1));
}

TEST(AdaptiveTimeoutTest, AverageLifetimeDrivesTimeout) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  // Two breaks with lifetimes 4 s and 8 s -> avg 6 s -> T = 12 s.
  at.onRouteBreak(Time::seconds(0), Time::seconds(4));
  at.onRouteBreak(Time::seconds(2), Time::seconds(10));
  EXPECT_DOUBLE_EQ(at.avgRouteLifetimeSec(), 6.0);
  EXPECT_EQ(at.timeout(Time::seconds(10)), Time::seconds(12));
  EXPECT_EQ(at.sampleCount(), 2u);
}

TEST(AdaptiveTimeoutTest, QuietPeriodRaisesTimeout) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  at.onRouteBreak(Time::seconds(0), Time::seconds(2));  // avg 2 -> alpha*avg=4
  // 30 s after the last break, the since-break term dominates: routes are
  // clearly stable, so don't expire them based on the old burst.
  EXPECT_EQ(at.timeout(Time::seconds(32)), Time::seconds(30));
}

TEST(AdaptiveTimeoutTest, BurstyBreaksShrinkTimeoutAgain) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  at.onRouteBreak(Time::seconds(0), Time::seconds(2));
  EXPECT_EQ(at.timeout(Time::seconds(32)), Time::seconds(30));
  at.onRouteBreak(Time::seconds(30), Time::seconds(33));  // lifetime 3 s
  // avg = 2.5 -> T = 5 s; since-break = 0.
  EXPECT_EQ(at.timeout(Time::seconds(33)), Time::seconds(5));
}

TEST(AdaptiveTimeoutTest, LinkBreakWithoutLifetimeOnlyResetsClock) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  at.onLinkBreak(Time::seconds(50));
  EXPECT_EQ(at.sampleCount(), 0u);
  EXPECT_EQ(at.timeout(Time::seconds(51)), Time::seconds(1));  // clamped
  EXPECT_EQ(at.timeout(Time::seconds(70)), Time::seconds(20));
}

TEST(AdaptiveTimeoutTest, NegativeLifetimeClampedToZero) {
  AdaptiveTimeout at(2.0, Time::seconds(1));
  at.onRouteBreak(Time::seconds(10), Time::seconds(5));  // clock skew guard
  EXPECT_DOUBLE_EQ(at.avgRouteLifetimeSec(), 0.0);
}

// Parameterized: alpha scales the lifetime term linearly.
class AdaptiveAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveAlphaTest, AlphaScalesLifetimeTerm) {
  const double alpha = GetParam();
  AdaptiveTimeout at(alpha, Time::millis(1));
  at.onRouteBreak(Time::seconds(0), Time::seconds(10));  // avg lifetime 10 s
  const Time t = at.timeout(Time::seconds(10));
  EXPECT_EQ(t, Time::fromSeconds(alpha * 10.0));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AdaptiveAlphaTest,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0));

}  // namespace
}  // namespace manet::core
