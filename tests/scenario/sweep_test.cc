#include "src/scenario/sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/scenario/experiment.h"

namespace manet::scenario {
namespace {

ScenarioConfig tinyConfig() {
  ScenarioConfig cfg;
  cfg.numNodes = 10;
  cfg.field = {500, 300};
  cfg.numFlows = 2;
  cfg.duration = sim::Time::seconds(5);
  cfg.telemetry = {};  // ignore MANET_* env for deterministic tests
  return cfg;
}

TEST(SweepTest, SanitizeLabelReplacesUnsafeCharacters) {
  EXPECT_EQ(sanitizeLabel("timeout 0.25s"), "timeout_0.25s");
  EXPECT_EQ(sanitizeLabel("a/b\\c:d"), "a_b_c_d");
  EXPECT_EQ(sanitizeLabel("Safe_1.2-x"), "Safe_1.2-x");
  EXPECT_EQ(sanitizeLabel(""), "");
}

TEST(SweepTest, PlanWithNoAxesIsASinglePoint) {
  ExperimentPlan plan("solo", tinyConfig());
  EXPECT_EQ(plan.pointCount(), 1u);
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].index, 0u);
  EXPECT_EQ(pts[0].label, "solo");
  EXPECT_TRUE(pts[0].coordinates.empty());
  EXPECT_EQ(pts[0].config.numNodes, 10);
}

TEST(SweepTest, ExpansionIsRowMajorFirstAxisSlowest) {
  ExperimentPlan plan("grid", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}, AxisValue{"a2", {}}})
      .axis("b", {AxisValue{"b1", {}}, AxisValue{"b2", {}},
                  AxisValue{"b3", {}}});
  EXPECT_EQ(plan.pointCount(), 6u);
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 6u);
  const std::vector<std::vector<std::string>> want = {
      {"a1", "b1"}, {"a1", "b2"}, {"a1", "b3"},
      {"a2", "b1"}, {"a2", "b2"}, {"a2", "b3"}};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].index, i);
    EXPECT_EQ(pts[i].coordinates, want[i]) << "point " << i;
  }
  EXPECT_EQ(pts[0].label, "grid_a=a1_b=b1");
  EXPECT_EQ(pts[5].label, "grid_a=a2_b=b3");
}

TEST(SweepTest, MutatorsApplyInAxisDeclarationOrder) {
  ExperimentPlan plan("order", tinyConfig());
  plan.axis("set", {AxisValue{"five", [](ScenarioConfig& c) {
                      c.maxSpeed = 5.0;
                    }}})
      .axis("scale", {AxisValue{"x2", [](ScenarioConfig& c) {
                        c.maxSpeed *= 2.0;
                      }}});
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 1u);
  // Second axis sees the first axis's mutation: 5 * 2, not default * 2.
  EXPECT_EQ(pts[0].config.maxSpeed, 10.0);
}

TEST(SweepTest, NumericAxisLabelsUseRequestedPrecision) {
  ExperimentPlan plan("num", tinyConfig());
  plan.axis(
      "timeout_s", {0.25, 5.0},
      [](ScenarioConfig&, double) {}, /*labelPrecision=*/2);
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].coordinates[0], "0.25");
  EXPECT_EQ(pts[1].coordinates[0], "5.00");
  EXPECT_EQ(pts[0].label, "num_timeout_s=0.25");
}

TEST(SweepTest, NumericAxisPassesValueToMutator) {
  ExperimentPlan plan("num", tinyConfig());
  plan.axis(
      "speed", {2.0, 8.0},
      [](ScenarioConfig& c, double v) { c.maxSpeed = v; },
      /*labelPrecision=*/0);
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].config.maxSpeed, 2.0);
  EXPECT_EQ(pts[1].config.maxSpeed, 8.0);
}

TEST(SweepTest, LabelsAreSanitizedPerComponent) {
  ExperimentPlan plan("my plan", tinyConfig());
  plan.axis("pause s", {AxisValue{"0 (always moving)", {}}});
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].label, "my_plan_pause_s=0__always_moving_");
}

TEST(SweepTest, CoordinateLooksUpByAxisName) {
  ExperimentPlan plan("coord", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}})
      .axis("b", {AxisValue{"b1", {}}});
  const std::vector<SweepPoint> pts = plan.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].coordinate(plan, "a"), "a1");
  EXPECT_EQ(pts[0].coordinate(plan, "b"), "b1");
  EXPECT_EQ(pts[0].coordinate(plan, "nope"), "");
}

TEST(SweepTest, FilterKeepsOnlyMatchingValue) {
  ExperimentPlan plan("filt", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}, AxisValue{"a2", {}}})
      .axis("b", {AxisValue{"b1", {}}, AxisValue{"b2", {}}});
  plan.filter("a", "a2");
  EXPECT_EQ(plan.pointCount(), 2u);
  const std::vector<SweepPoint> pts = plan.points();
  EXPECT_EQ(pts[0].coordinates[0], "a2");
  EXPECT_EQ(pts[1].coordinates[0], "a2");
}

TEST(SweepTest, FilterUnknownAxisIsAHardError) {
  ExperimentPlan plan("filt", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}});
  EXPECT_THROW(plan.filter("typo", "a1"), std::invalid_argument);
}

TEST(SweepTest, FilterUnmatchedValueIsAHardError) {
  ExperimentPlan plan("filt", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}});
  EXPECT_THROW(plan.filter("a", "a9"), std::invalid_argument);
}

TEST(SweepTest, ValidateRejectsEmptyAxis) {
  ExperimentPlan plan("bad", tinyConfig());
  plan.axis("a", std::vector<AxisValue>{});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  EXPECT_THROW(plan.points(), std::invalid_argument);
}

TEST(SweepTest, ValidateRejectsDuplicateValueLabels) {
  ExperimentPlan plan("bad", tinyConfig());
  plan.axis("a", {AxisValue{"same", {}}, AxisValue{"same", {}}});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(SweepTest, ValidateRejectsSanitizedLabelCollisions) {
  // "a b" and "a_b" are distinct raw labels but collide after
  // sanitization — exporting both would clobber one point's artifact.
  ExperimentPlan plan("bad", tinyConfig());
  plan.axis("a", {AxisValue{"a b", {}}, AxisValue{"a_b", {}}});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(SweepTest, ValidateRejectsEmptyPlanName) {
  ExperimentPlan plan("", tinyConfig());
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace manet::scenario
