#include "src/scenario/table.h"

#include <gtest/gtest.h>

namespace manet::scenario {
namespace {

TEST(TableTest, AlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "23"});
  const std::string s = t.str();
  // Header and two rows plus a separator.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Column 2 starts at the same offset in every line (cells padded to the
  // widest column-1 entry, "longer").
  const auto headerLineStart = s.find("name");
  const auto valueCol = s.find("value") - headerLineStart;
  const auto row1Start = s.find("a ");
  ASSERT_NE(row1Start, std::string::npos);
  EXPECT_EQ(s.substr(row1Start + valueCol, 1), "1");
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  t.addRow({"3", "4"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(0.5, 3), "0.500");
}

TEST(TableTest, ShortRowsPadSafely) {
  Table t({"a", "b", "c"});
  t.addRow({"only-one"});
  const std::string s = t.str();  // must not crash or misalign
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace manet::scenario
