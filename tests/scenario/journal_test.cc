#include "src/scenario/journal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/util/atomic_file.h"

namespace manet::scenario {
namespace {

namespace fs = std::filesystem;

/// A RunResult with every field populated with awkward values: doubles that
/// don't round-trip at %.9g, the full counter set including the fields the
/// human-facing export omits (dropNodeDown, fault counters), per-origin
/// array, and a sampled series.
RunResult denseResult() {
  RunResult r;
  r.duration = sim::Time::nanos(500'000'000'123);
  r.eventsExecuted = 9'007'199'254'740'991ull;  // 2^53 - 1, doubles' edge
  r.schedQueuePeak = 4242;
  r.wallSeconds = 1.234567890123456;
  metrics::Metrics& m = r.metrics;
  m.dataOriginated = 37501;
  m.dataDelivered = 36987;
  m.bytesDelivered = 18'937'344;
  m.delaySumSec = 0.1 + 0.2;  // 0.30000000000000004 — %.9g would lose it
  m.dropSendBufferTimeout = 11;
  m.dropSendBufferOverflow = 13;
  m.dropIfqFull = 17;
  m.dropLinkFailNoSalvage = 19;
  m.dropNegativeCache = 23;
  m.dropTtlExpired = 29;
  m.dropMacDuplicate = 31;
  m.dropNodeDown = 41;  // not in metricsJson — journal must carry it anyway
  m.rreqTx = 101;
  m.rrepTx = 103;
  m.rerrTx = 107;
  m.rtsTx = 109;
  m.ctsTx = 113;
  m.ackTx = 127;
  m.dataFrameTx = 131;
  m.ctsTimeouts = 137;
  m.ackTimeouts = 139;
  m.rtsIgnoredBusy = 149;
  m.cacheHits = 151;
  m.invalidCacheHits = 157;
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    m.invalidCacheHitsByOrigin[i] = 1000 + i;
  }
  m.repliesReceived = 163;
  m.goodRepliesReceived = 167;
  m.cacheRepliesGenerated = 173;
  m.targetRepliesGenerated = 179;
  m.gratuitousRepliesGenerated = 181;
  m.staleRepliesIgnored = 191;
  m.routeDiscoveriesStarted = 193;
  m.nonPropRequestsSent = 197;
  m.floodRequestsSent = 199;
  m.linkBreaksDetected = 211;
  m.fakeLinkBreaks = 223;
  m.salvageAttempts = 227;
  m.expiredLinks = 229;
  m.rerrWideRebroadcasts = 233;
  m.negCacheInsertions = 239;
  m.faultNodeCrashes = 241;
  m.faultNodeRecoveries = 251;
  m.faultLinkBlackouts = 257;
  m.faultNoiseBursts = 263;
  m.faultTrafficSurges = 269;
  r.series.period = sim::Time::millis(500);
  r.series.timeSec = {0.5, 1.0, 1.5};
  r.series.meanCacheSize = {1.0 / 3.0, 2.0 / 3.0, 1.0};
  r.series.invalidEntryFrac = {0.0, 0.1, 0.30000000000000004};
  r.series.meanSendBufOccupancy = {0.25, 0.5, 0.75};
  r.series.originated = {10, 20, 30};
  r.series.delivered = {9, 19, 29};
  r.series.dropped = {1, 1, 1};
  r.series.cacheHits = {2, 4, 6};
  r.series.linkBreaks = {0, 1, 2};
  return r;
}

TEST(JournalTest, RunResultRoundTripIsLossless) {
  const RunResult in = denseResult();
  std::string err;
  const std::optional<RunResult> out =
      runResultFromJournalJson(runResultToJournalJson(in), &err);
  ASSERT_TRUE(out.has_value()) << err;
  EXPECT_EQ(out->duration.ns(), in.duration.ns());
  EXPECT_EQ(out->eventsExecuted, in.eventsExecuted);
  EXPECT_EQ(out->schedQueuePeak, in.schedQueuePeak);
  EXPECT_EQ(out->wallSeconds, in.wallSeconds);  // exact, not approximate
  EXPECT_EQ(out->metrics.delaySumSec, in.metrics.delaySumSec);
  EXPECT_EQ(out->metrics.dataOriginated, in.metrics.dataOriginated);
  EXPECT_EQ(out->metrics.dropNodeDown, in.metrics.dropNodeDown);
  EXPECT_EQ(out->metrics.faultTrafficSurges, in.metrics.faultTrafficSurges);
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    EXPECT_EQ(out->metrics.invalidCacheHitsByOrigin[i],
              in.metrics.invalidCacheHitsByOrigin[i]);
  }
  EXPECT_EQ(out->series.period.ns(), in.series.period.ns());
  EXPECT_EQ(out->series.timeSec, in.series.timeSec);
  EXPECT_EQ(out->series.meanCacheSize, in.series.meanCacheSize);
  EXPECT_EQ(out->series.invalidEntryFrac, in.series.invalidEntryFrac);
  EXPECT_EQ(out->series.delivered, in.series.delivered);
  // The acid test: re-serialization is byte-identical, so a resumed cell
  // journals exactly the bytes an uninterrupted run would have.
  EXPECT_EQ(runResultToJournalJson(*out), runResultToJournalJson(in));
}

TEST(JournalTest, RejectsMalformedPayloads) {
  std::string err;
  EXPECT_FALSE(runResultFromJournalJson("", &err).has_value());
  EXPECT_FALSE(runResultFromJournalJson("not json", &err).has_value());
  EXPECT_FALSE(runResultFromJournalJson("{\"duration_ns\":1}", &err));
  EXPECT_FALSE(err.empty());
}

TEST(JournalTest, CellKeyTracksConfigSeedAndNothingElse) {
  ScenarioConfig a;
  a.numNodes = 20;
  ScenarioConfig b = a;
  EXPECT_EQ(cellKey(a), cellKey(b));
  b.mobilitySeed += 1;
  EXPECT_NE(cellKey(a), cellKey(b));
  b = a;
  b.dsr.negativeCache = !b.dsr.negativeCache;
  EXPECT_NE(cellKey(a), cellKey(b));
  b = a;
  b.fault.churn.fraction = 0.5;
  EXPECT_NE(cellKey(a), cellKey(b));
  // Telemetry / profiling knobs are proven non-perturbing, so a resume may
  // legitimately change them without invalidating journaled cells.
  b = a;
  b.telemetry.samplePeriod = sim::Time::seconds(1);
  b.prof.enabled = true;
  EXPECT_EQ(cellKey(a), cellKey(b));
}

TEST(JournalTest, WriterAndLoaderRoundTrip) {
  const fs::path path =
      fs::temp_directory_path() / "manet_journal_roundtrip.jsonl";
  fs::remove(path);
  JournalWriter w(path.string());
  CampaignInfo info;
  info.plan = "tiny";
  info.points = 2;
  info.replications = 3;
  info.codeVersion = codeVersion();
  info.cmd = "./bench --scale tiny";
  ASSERT_TRUE(w.campaign(info));
  JournalEntry done;
  done.label = "tiny_pause_s=0";
  done.rep = 1;
  done.key = "0123456789abcdef";
  done.status = "done";
  done.attempts = 2;
  done.resultJson = runResultToJournalJson(denseResult());
  ASSERT_TRUE(w.cell(done));
  JournalEntry bad;
  bad.label = "tiny_pause_s=2";
  bad.rep = 0;
  bad.key = "fedcba9876543210";
  bad.status = "quarantined";
  bad.attempts = 3;
  bad.error = "signal 11 (Segmentation fault) with \"quotes\"\nand newline";
  ASSERT_TRUE(w.cell(bad));

  const JournalState s = loadJournal(path.string());
  EXPECT_EQ(s.corruptLines, 0u);
  ASSERT_EQ(s.campaigns.size(), 1u);
  EXPECT_EQ(s.campaigns[0].plan, "tiny");
  EXPECT_EQ(s.campaigns[0].replications, 3);
  EXPECT_EQ(s.campaigns[0].cmd, "./bench --scale tiny");
  ASSERT_EQ(s.cells.size(), 2u);
  const JournalEntry& d = s.cells.at({"tiny_pause_s=0", 1});
  EXPECT_EQ(d.status, "done");
  EXPECT_EQ(d.attempts, 2);
  EXPECT_EQ(d.key, "0123456789abcdef");
  const std::optional<RunResult> restored =
      runResultFromJournalJson(d.resultJson);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(runResultToJournalJson(*restored),
            runResultToJournalJson(denseResult()));
  const JournalEntry& q = s.cells.at({"tiny_pause_s=2", 0});
  EXPECT_EQ(q.status, "quarantined");
  EXPECT_EQ(q.error,
            "signal 11 (Segmentation fault) with \"quotes\"\nand newline");
  EXPECT_EQ(s.countStatus("done"), 1u);
  EXPECT_EQ(s.countStatus("quarantined"), 1u);
  fs::remove(path);
}

TEST(JournalTest, TruncatedTrailingLineIsSkippedNotFatal) {
  const fs::path path = fs::temp_directory_path() / "manet_journal_torn.jsonl";
  fs::remove(path);
  JournalWriter w(path.string());
  JournalEntry e;
  e.label = "p";
  e.rep = 0;
  e.key = "k";
  e.status = "done";
  e.resultJson = runResultToJournalJson(RunResult{});
  ASSERT_TRUE(w.cell(e));
  {
    // Simulate the tail a crash can leave: an append cut mid-record.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"type\":\"cell\",\"label\":\"q\",\"rep\":1,\"sta";
  }
  const JournalState s = loadJournal(path.string());
  EXPECT_EQ(s.corruptLines, 1u);
  EXPECT_EQ(s.cells.size(), 1u);
  EXPECT_TRUE(s.cells.count({"p", 0}));
  fs::remove(path);
}

TEST(JournalTest, CorruptMiddleLinesAndUnknownTypesAreSkipped) {
  const fs::path path = fs::temp_directory_path() / "manet_journal_mid.jsonl";
  fs::remove(path);
  util::appendLineDurable(path.string(), "garbage not json");
  util::appendLineDurable(path.string(), "{\"type\":\"future-record\"}");
  JournalWriter w(path.string());
  JournalEntry e;
  e.label = "p";
  e.rep = 0;
  e.key = "k";
  e.status = "failed";
  e.error = "boom";
  ASSERT_TRUE(w.cell(e));
  util::appendLineDurable(path.string(), "{\"type\":\"cell\",\"rep\":2}");
  const JournalState s = loadJournal(path.string());
  EXPECT_EQ(s.corruptLines, 2u);  // garbage + label-less cell
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells.at({"p", 0}).error, "boom");
  fs::remove(path);
}

TEST(JournalTest, LastRecordPerCellWins) {
  const fs::path path = fs::temp_directory_path() / "manet_journal_last.jsonl";
  fs::remove(path);
  JournalWriter w(path.string());
  JournalEntry e;
  e.label = "p";
  e.rep = 0;
  e.key = "k1";
  e.status = "failed";
  e.error = "transient";
  ASSERT_TRUE(w.cell(e));
  e.key = "k2";
  e.status = "done";
  e.error.clear();
  e.attempts = 2;
  e.resultJson = runResultToJournalJson(RunResult{});
  ASSERT_TRUE(w.cell(e));
  const JournalState s = loadJournal(path.string());
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells.at({"p", 0}).status, "done");
  EXPECT_EQ(s.cells.at({"p", 0}).key, "k2");
  fs::remove(path);
}

TEST(JournalTest, MissingFileLoadsEmpty) {
  const JournalState s = loadJournal("/nonexistent/path/journal.jsonl");
  EXPECT_EQ(s.totalLines, 0u);
  EXPECT_TRUE(s.cells.empty());
  EXPECT_TRUE(s.campaigns.empty());
}

}  // namespace
}  // namespace manet::scenario
