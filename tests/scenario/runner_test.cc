#include "src/scenario/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/scenario/experiment.h"
#include "src/scenario/sweep.h"
#include "src/telemetry/export.h"

namespace manet::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioConfig tinyConfig() {
  ScenarioConfig cfg;
  cfg.numNodes = 10;
  cfg.field = {500, 300};
  cfg.numFlows = 2;
  cfg.duration = sim::Time::seconds(5);
  cfg.telemetry = {};  // ignore MANET_* env for deterministic tests
  return cfg;
}

/// A two-point pause sweep over the tiny scenario.
ExperimentPlan tinyPausePlan(ScenarioConfig base) {
  ExperimentPlan plan("tiny", std::move(base));
  plan.axis(
      "pause_s", {0.0, 2.0},
      [](ScenarioConfig& c, double p) { c.pause = sim::Time::fromSeconds(p); },
      /*labelPrecision=*/0);
  return plan;
}

/// Deterministic fabricated result, distinct per (point, rep) cell; lets
/// runner-mechanics tests skip real simulation runs.
RunResult fakeRun(std::size_t pointIdx, int rep) {
  RunResult r;
  r.metrics.dataOriginated = 100;
  r.metrics.dataDelivered = 10 * (pointIdx + 1) + static_cast<std::uint64_t>(rep);
  r.duration = sim::Time::seconds(5);
  return r;
}

TEST(RunnerTest, ParallelSweepIsByteIdenticalToSerial) {
  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.replications = 2;
  opts.keepRuns = true;  // aggregateJson embeds per-run entries

  opts.jobs = 1;
  const SweepResult serial = runPlan(plan, opts);
  opts.jobs = 4;
  const SweepResult parallel = runPlan(plan, opts);

  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  ASSERT_EQ(serial.points.size(), 2u);
  ASSERT_EQ(parallel.points.size(), 2u);
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    EXPECT_EQ(serial.points[p].point.label, parallel.points[p].point.label);
    const std::string a =
        telemetry::aggregateJson(serial.points[p].agg,
                                 serial.points[p].point.config,
                                 serial.points[p].point.label);
    const std::string b =
        telemetry::aggregateJson(parallel.points[p].agg,
                                 parallel.points[p].point.config,
                                 parallel.points[p].point.label);
    EXPECT_EQ(a, b) << "point " << serial.points[p].point.label;
  }
}

TEST(RunnerTest, KeepRunsOffDropsPerRunPayloads) {
  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.jobs = 2;
  opts.replications = 2;
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    return fakeRun(point.index, rep);
  };
  const SweepResult dropped = runPlan(plan, opts);
  for (const PointResult& p : dropped.points) {
    EXPECT_TRUE(p.agg.runs.empty());
    EXPECT_EQ(p.agg.deliveryFraction.count(), 2u);  // aggregate still full
  }

  opts.keepRuns = true;
  const SweepResult kept = runPlan(plan, opts);
  for (const PointResult& p : kept.points) {
    ASSERT_EQ(p.agg.runs.size(), 2u);
  }
}

TEST(RunnerTest, OnRunObservesPlanOrderTimesSeedOrder) {
  ExperimentPlan plan("order", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}, AxisValue{"a2", {}},
                  AxisValue{"a3", {}}});
  RunnerOptions opts;
  opts.jobs = 4;  // completion order is nondeterministic; merge order is not
  opts.replications = 2;
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    return fakeRun(point.index, rep);
  };
  std::vector<std::pair<std::size_t, int>> seen;
  opts.onRun = [&seen](const SweepPoint& point, int rep, const RunResult& r) {
    seen.emplace_back(point.index, rep);
    // The observed result is the cell's own fabricated payload.
    EXPECT_EQ(r.metrics.dataDelivered,
              10 * (point.index + 1) + static_cast<std::uint64_t>(rep));
  };
  runPlan(plan, opts);
  const std::vector<std::pair<std::size_t, int>> want = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(seen, want);
}

TEST(RunnerTest, EachReplicationGetsItsOwnMobilitySeed) {
  ScenarioConfig base = tinyConfig();
  base.mobilitySeed = 7;
  ExperimentPlan plan("seeds", base);
  RunnerOptions opts;
  opts.jobs = 1;
  opts.replications = 3;
  std::vector<std::uint64_t> seeds(3, 0);
  opts.runFn = [&seeds](const SweepPoint& point, int rep,
                        const ScenarioConfig& cfg) {
    seeds[static_cast<std::size_t>(rep)] = cfg.mobilitySeed;
    return fakeRun(point.index, rep);
  };
  runPlan(plan, opts);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(RunnerTest, TracePathIsRewrittenPerPointAndRep) {
  // Multi-point sweep: the trace path carries the point label + rep.
  ScenarioConfig base = tinyConfig();
  base.telemetry.traceJsonlPath = "trace.jsonl";
  ExperimentPlan plan("tp", base);
  plan.axis("a", {AxisValue{"a1", {}}, AxisValue{"a2", {}}});
  RunnerOptions opts;
  opts.jobs = 1;
  opts.replications = 2;
  std::vector<std::string> paths;
  opts.runFn = [&paths](const SweepPoint& point, int rep,
                        const ScenarioConfig& cfg) {
    paths.push_back(cfg.telemetry.traceJsonlPath);
    return fakeRun(point.index, rep);
  };
  runPlan(plan, opts);
  EXPECT_EQ(paths, (std::vector<std::string>{
                       "trace.tp_a=a1.r0.jsonl", "trace.tp_a=a1.r1.jsonl",
                       "trace.tp_a=a2.r0.jsonl", "trace.tp_a=a2.r1.jsonl"}));

  // Single point, several reps: the legacy .rN suffix.
  ExperimentPlan solo("solo", base);
  paths.clear();
  runPlan(solo, opts);
  EXPECT_EQ(paths, (std::vector<std::string>{"trace.r0.jsonl",
                                             "trace.r1.jsonl"}));

  // Single point, single rep: the configured path, untouched.
  opts.replications = 1;
  paths.clear();
  runPlan(solo, opts);
  EXPECT_EQ(paths, (std::vector<std::string>{"trace.jsonl"}));
}

TEST(RunnerTest, ConcurrentTraceFilesAreWellFormedJsonl) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "runner_trace_test";
  fs::create_directories(dir);
  ScenarioConfig base = tinyConfig();
  base.telemetry.traceJsonlPath = (dir / "trace.jsonl").string();

  ExperimentPlan plan = tinyPausePlan(base);
  RunnerOptions opts;
  opts.jobs = 4;  // all four (point, rep) cells stream traces concurrently
  opts.replications = 2;
  runPlan(plan, opts);

  for (const std::string& label : {std::string("tiny_pause_s=0"),
                                   std::string("tiny_pause_s=2")}) {
    for (int rep = 0; rep < 2; ++rep) {
      const fs::path file =
          dir / ("trace." + label + ".r" + std::to_string(rep) + ".jsonl");
      ASSERT_TRUE(fs::exists(file)) << file;
      std::ifstream in(file);
      std::string line;
      std::size_t lines = 0;
      while (std::getline(in, line)) {
        ++lines;
        ASSERT_FALSE(line.empty()) << file << ":" << lines;
        // Interleaved writes from another run would corrupt the framing.
        EXPECT_EQ(line.front(), '{') << file << ":" << lines;
        EXPECT_EQ(line.back(), '}') << file << ":" << lines;
      }
      EXPECT_GT(lines, 0u) << file;
    }
  }
  fs::remove_all(dir);
}

TEST(RunnerTest, FirstFailingTaskInTaskOrderIsRethrown) {
  ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.jobs = 4;
  opts.replications = 2;
  // Task order: (p0,r0) (p0,r1) (p1,r0) (p1,r1). Two cells fail; the
  // earlier one must win no matter which worker hit it first.
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    if (point.index == 0 && rep == 1) throw std::runtime_error("boom p0 r1");
    if (point.index == 1 && rep == 0) throw std::runtime_error("boom p1 r0");
    return fakeRun(point.index, rep);
  };
  try {
    runPlan(plan, opts);
    FAIL() << "expected runPlan to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom p0 r1");
  }
}

TEST(RunnerTest, RejectsNonPositiveReplications) {
  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.replications = 0;
  EXPECT_THROW(runPlan(plan, opts), std::invalid_argument);
}

TEST(RunnerTest, SweepResultAtFindsLabelOrThrows) {
  ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.jobs = 1;
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    return fakeRun(point.index, rep);
  };
  const SweepResult result = runPlan(plan, opts);
  EXPECT_DOUBLE_EQ(result.at("tiny_pause_s=0").deliveryFraction.mean(), 0.10);
  EXPECT_DOUBLE_EQ(result.at("tiny_pause_s=2").deliveryFraction.mean(), 0.20);
  EXPECT_THROW(result.at("nope"), std::out_of_range);
}

TEST(RunnerTest, PointTableAndPivotTableFollowPlanOrder) {
  ExperimentPlan plan("grid", tinyConfig());
  plan.axis("a", {AxisValue{"a1", {}}, AxisValue{"a2", {}}})
      .axis("b", {AxisValue{"b1", {}}, AxisValue{"b2", {}}})
      .metric("delivery", [](const AggregateResult& agg) {
        return agg.deliveryFraction.mean();
      });
  RunnerOptions opts;
  opts.jobs = 2;
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    return fakeRun(point.index, rep);
  };
  const SweepResult result = runPlan(plan, opts);

  EXPECT_EQ(pointTable(plan, result).csv(),
            "a,b,delivery\n"
            "a1,b1,0.100\n"
            "a1,b2,0.200\n"
            "a2,b1,0.300\n"
            "a2,b2,0.400\n");
  EXPECT_EQ(pivotTable(plan, result, "delivery", "a \\ b").csv(),
            "a \\ b,b1,b2\n"
            "a1,0.100,0.200\n"
            "a2,0.300,0.400\n");
  EXPECT_THROW(pivotTable(plan, result, "no_such_metric"),
               std::invalid_argument);

  ExperimentPlan oneAxis("one", tinyConfig());
  oneAxis.axis("a", {AxisValue{"a1", {}}})
      .metric("delivery", [](const AggregateResult& agg) {
        return agg.deliveryFraction.mean();
      });
  const SweepResult oneResult = runPlan(oneAxis, opts);
  EXPECT_THROW(pivotTable(oneAxis, oneResult, "delivery"),
               std::invalid_argument);
}

TEST(ResolveJobsTest, ExplicitRequestWins) {
  const char* old = std::getenv("MANET_JOBS");
  setenv("MANET_JOBS", "3", 1);
  EXPECT_EQ(resolveJobs(5), 5);
  EXPECT_EQ(resolveJobs(1), 1);
  if (old != nullptr) {
    setenv("MANET_JOBS", old, 1);
  } else {
    unsetenv("MANET_JOBS");
  }
}

TEST(ResolveJobsTest, EnvironmentFallback) {
  const char* old = std::getenv("MANET_JOBS");
  setenv("MANET_JOBS", "3", 1);
  EXPECT_EQ(resolveJobs(0), 3);
  EXPECT_EQ(resolveJobs(-1), 3);
  setenv("MANET_JOBS", "garbage", 1);
  EXPECT_GE(resolveJobs(0), 1);  // unparseable -> hardware concurrency
  unsetenv("MANET_JOBS");
  EXPECT_GE(resolveJobs(0), 1);
  if (old != nullptr) setenv("MANET_JOBS", old, 1);
}

TEST(RunnerTest, RunReplicatedRejectsExportWithoutLabel) {
  ScenarioConfig cfg = tinyConfig();
  cfg.telemetry.exportDir = ::testing::TempDir();
  EXPECT_THROW(runReplicated(cfg, 1), std::invalid_argument);
}

TEST(RunnerTest, RunReplicatedExportsUnderItsLabel) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "runner_export_test";
  fs::create_directories(dir);
  ScenarioConfig cfg = tinyConfig();
  cfg.telemetry.exportDir = dir.string();
  const AggregateResult agg = runReplicated(cfg, 1, {}, "smoke");
  EXPECT_EQ(agg.deliveryFraction.count(), 1u);
  EXPECT_TRUE(fs::exists(dir / "smoke.json"));
  fs::remove_all(dir);
}

TEST(RunnerTest, ResumeSkipsJournaledCellsAndMatchesUninterruptedRun) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "runner_resume_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal = (dir / "journal.jsonl").string();

  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  std::atomic<int> cellsRun{0};
  RunnerOptions opts;
  opts.replications = 2;
  opts.keepRuns = true;
  opts.journalPath = journal;
  opts.runFn = [&cellsRun](const SweepPoint& point, int rep,
                           const ScenarioConfig&) {
    ++cellsRun;
    (void)rep;
    return fakeRun(point.index, rep);
  };

  const SweepResult first = runPlan(plan, opts);
  EXPECT_EQ(cellsRun.load(), 4);  // 2 points x 2 reps
  EXPECT_EQ(first.resumedCells, 0u);

  // Second campaign with --resume: every cell is restored from the journal,
  // the runFn is never called, and the aggregates are byte-identical.
  cellsRun = 0;
  opts.resume = true;
  const SweepResult second = runPlan(plan, opts);
  EXPECT_EQ(cellsRun.load(), 0);
  EXPECT_EQ(second.resumedCells, 4u);
  ASSERT_EQ(first.points.size(), second.points.size());
  for (std::size_t p = 0; p < first.points.size(); ++p) {
    EXPECT_EQ(telemetry::aggregateJson(first.points[p].agg,
                                       first.points[p].point.config,
                                       first.points[p].point.label),
              telemetry::aggregateJson(second.points[p].agg,
                                       second.points[p].point.config,
                                       second.points[p].point.label));
  }
  fs::remove_all(dir);
}

TEST(RunnerTest, ResumeReRunsCellsWhoseSeedChanged) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "runner_resume_key_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ExperimentPlan plan = tinyPausePlan(tinyConfig());
  std::atomic<int> cellsRun{0};
  RunnerOptions opts;
  opts.replications = 1;
  opts.journalPath = (dir / "journal.jsonl").string();
  opts.runFn = [&cellsRun](const SweepPoint& point, int rep,
                           const ScenarioConfig&) {
    ++cellsRun;
    return fakeRun(point.index, rep);
  };
  (void)runPlan(plan, opts);
  EXPECT_EQ(cellsRun.load(), 2);

  // Same labels, different base seed: the journaled keys no longer match,
  // so a resume must re-run everything rather than trust stale results.
  ScenarioConfig reseeded = tinyConfig();
  reseeded.mobilitySeed += 1000;
  const ExperimentPlan plan2 = tinyPausePlan(reseeded);
  cellsRun = 0;
  opts.resume = true;
  const SweepResult res = runPlan(plan2, opts);
  EXPECT_EQ(cellsRun.load(), 2);
  EXPECT_EQ(res.resumedCells, 0u);
  fs::remove_all(dir);
}

TEST(RunnerTest, FailsFastOnUnwritableExportDirBeforeRunningCells) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "runner_failfast_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // A regular file where the export dir should go: probing must throw
  // before a single (multi-minute, in real campaigns) cell executes.
  { std::ofstream(dir / "blocker") << "x"; }

  ScenarioConfig base = tinyConfig();
  base.telemetry.exportDir = (dir / "blocker" / "exports").string();
  const ExperimentPlan plan = tinyPausePlan(base);
  std::atomic<int> cellsRun{0};
  RunnerOptions opts;
  opts.runFn = [&cellsRun](const SweepPoint& point, int rep,
                           const ScenarioConfig&) {
    ++cellsRun;
    return fakeRun(point.index, rep);
  };
  EXPECT_THROW(runPlan(plan, opts), std::invalid_argument);
  EXPECT_EQ(cellsRun.load(), 0);
  fs::remove_all(dir);
}

TEST(RunnerTest, RetryRecoversFromTransientFailure) {
  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  std::atomic<int> attempts{0};
  RunnerOptions opts;
  opts.jobs = 1;
  opts.maxAttempts = 2;
  opts.retryBackoffSec = 0.0;  // no need to sleep in a unit test
  opts.runFn = [&attempts](const SweepPoint& point, int rep,
                           const ScenarioConfig&) {
    // First attempt of the very first cell fails; the retry succeeds.
    if (attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return fakeRun(point.index, rep);
  };
  const SweepResult res = runPlan(plan, opts);
  EXPECT_TRUE(res.clean());
  EXPECT_EQ(attempts.load(), 3);  // 2 cells + 1 retry
  EXPECT_EQ(res.points.size(), 2u);
}

TEST(RunnerTest, InvalidDurabilityOptionCombinationsThrow) {
  const ExperimentPlan plan = tinyPausePlan(tinyConfig());
  RunnerOptions opts;
  opts.runFn = [](const SweepPoint& point, int rep, const ScenarioConfig&) {
    return fakeRun(point.index, rep);
  };
  opts.resume = true;  // --resume without --journal
  EXPECT_THROW(runPlan(plan, opts), std::invalid_argument);
  opts.resume = false;
  opts.isolateCells = true;  // isolation without a self command
  EXPECT_THROW(runPlan(plan, opts), std::invalid_argument);
  opts.isolateCells = false;
  opts.maxAttempts = 0;
  EXPECT_THROW(runPlan(plan, opts), std::invalid_argument);
}

TEST(RunnerTest, FailureDigestAndExitCodeReportQuarantinedCells) {
  SweepResult clean;
  EXPECT_TRUE(failureDigest(clean).empty());
  EXPECT_EQ(reportFailures(clean), 0);

  SweepResult bad;
  CellOutcome c;
  c.label = "tiny_pause_s=0";
  c.rep = 1;
  c.attempts = 3;
  c.error = "signal 9 (Killed)";
  bad.quarantined.push_back(c);
  const std::string digest = failureDigest(bad);
  EXPECT_NE(digest.find("tiny_pause_s=0"), std::string::npos);
  EXPECT_NE(digest.find("signal 9"), std::string::npos);
  EXPECT_EQ(reportFailures(bad), 1);
}

}  // namespace
}  // namespace manet::scenario
