// Fail-fast validation: every rejected knob produces an actionable message.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/fault/fault_plan.h"
#include "src/scenario/scenario.h"

namespace manet {
namespace {

using scenario::ScenarioConfig;

// A small but fully valid baseline the tests perturb one knob at a time.
ScenarioConfig validConfig() {
  ScenarioConfig cfg;
  cfg.numNodes = 10;
  cfg.numFlows = 2;
  cfg.duration = sim::Time::seconds(10);
  cfg.fault = {};  // independent of MANET_FAULT_* in the test environment
  cfg.telemetry = telemetry::TelemetryConfig{};
  return cfg;
}

// Expect validate() to throw std::invalid_argument mentioning `expected`.
void expectRejected(const ScenarioConfig& cfg, const std::string& expected) {
  try {
    cfg.validate();
    FAIL() << "config accepted; expected rejection mentioning \"" << expected
           << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ScenarioConfigValidate, AcceptsDefaultsAndBaseline) {
  EXPECT_NO_THROW(validConfig().validate());
  ScenarioConfig defaults;
  defaults.fault = {};
  EXPECT_NO_THROW(defaults.validate());
}

TEST(ScenarioConfigValidate, RejectsNonPositiveNodeCount) {
  auto cfg = validConfig();
  cfg.numNodes = 0;
  expectRejected(cfg, "numNodes must be > 0");
}

TEST(ScenarioConfigValidate, RejectsDegenerateField) {
  auto cfg = validConfig();
  cfg.field = {0.0, 600.0};
  expectRejected(cfg, "field dimensions must be > 0");
}

TEST(ScenarioConfigValidate, RejectsNegativeMinSpeed) {
  auto cfg = validConfig();
  cfg.minSpeed = -1.0;
  expectRejected(cfg, "minSpeed must be >= 0");
}

TEST(ScenarioConfigValidate, RejectsSpeedRangeInversion) {
  auto cfg = validConfig();
  cfg.minSpeed = 5.0;
  cfg.maxSpeed = 1.0;
  expectRejected(cfg, "maxSpeed must be > 0 and >= minSpeed");
}

TEST(ScenarioConfigValidate, RejectsMoreFlowsThanOrderablePairs) {
  auto cfg = validConfig();
  cfg.numNodes = 3;
  cfg.numFlows = 7;  // 3 * 2 = 6 orderable pairs
  expectRejected(cfg, "orderable src/dst pairs");
}

TEST(ScenarioConfigValidate, RejectsNonPositiveRate) {
  auto cfg = validConfig();
  cfg.packetsPerSecond = 0.0;
  expectRejected(cfg, "packetsPerSecond must be > 0");
}

TEST(ScenarioConfigValidate, RejectsNonPositiveDuration) {
  auto cfg = validConfig();
  cfg.duration = sim::Time::zero();
  expectRejected(cfg, "duration must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBadDsrCacheCapacity) {
  auto cfg = validConfig();
  cfg.dsr.routeCacheCapacity = 0;
  expectRejected(cfg, "dsr config: routeCacheCapacity must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBadDsrSendBuffer) {
  auto cfg = validConfig();
  cfg.dsr.sendBufferCapacity = 0;
  expectRejected(cfg, "dsr config: sendBufferCapacity must be > 0");
  cfg = validConfig();
  cfg.dsr.sendBufferTimeout = sim::Time::zero();
  expectRejected(cfg, "dsr config: sendBufferTimeout must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBadAdaptiveExpiryKnobs) {
  auto cfg = validConfig();
  cfg.dsr.expiry = core::ExpiryMode::kAdaptive;
  cfg.dsr.adaptiveAlpha = 0.0;
  expectRejected(cfg, "dsr config: adaptiveAlpha must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBadStaticExpiryTimeout) {
  auto cfg = validConfig();
  cfg.dsr.expiry = core::ExpiryMode::kStatic;
  cfg.dsr.staticTimeout = sim::Time::zero();
  expectRejected(cfg, "dsr config: staticTimeout must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBadNegativeCacheKnobs) {
  auto cfg = validConfig();
  cfg.dsr.negativeCache = true;
  cfg.dsr.negCacheCapacity = 0;
  expectRejected(cfg, "dsr config: negCacheCapacity must be > 0");
  cfg = validConfig();
  cfg.dsr.negativeCache = true;
  cfg.dsr.negCacheTtl = sim::Time::zero();
  expectRejected(cfg, "dsr config: negCacheTtl must be > 0");
}

TEST(ScenarioConfigValidate, RejectsBackoffInversion) {
  auto cfg = validConfig();
  cfg.dsr.requestBackoffInitial = sim::Time::seconds(20);
  cfg.dsr.requestBackoffMax = sim::Time::seconds(10);
  expectRejected(cfg, "requestBackoffMax must be >= requestBackoffInitial");
}

// ---- FaultPlan validation (via ScenarioConfig::validate) ----

TEST(FaultPlanValidate, RejectsChurnFractionOutOfRange) {
  auto cfg = validConfig();
  cfg.fault.churn.fraction = 1.5;
  expectRejected(cfg, "fault plan: churn.fraction");
}

TEST(FaultPlanValidate, RejectsNonPositiveChurnTimes) {
  auto cfg = validConfig();
  cfg.fault.churn.fraction = 0.1;
  cfg.fault.churn.meanUpTimeSec = 0.0;
  expectRejected(cfg, "fault plan: churn.meanUpTimeSec");
}

TEST(FaultPlanValidate, RejectsBlackoutsOnTooFewNodes) {
  auto cfg = validConfig();
  cfg.numNodes = 1;
  cfg.numFlows = 0;
  cfg.fault.blackout.meanGapSec = 5.0;
  expectRejected(cfg, "fault plan: link blackouts need at least 2 nodes");
}

TEST(FaultPlanValidate, RejectsBadNoiseProbability) {
  auto cfg = validConfig();
  cfg.fault.noise.meanGapSec = 5.0;
  cfg.fault.noise.corruptProb = 0.0;
  expectRejected(cfg, "fault plan: noise.corruptProb");
}

TEST(FaultPlanValidate, RejectsBadSurgeMultiplier) {
  auto cfg = validConfig();
  cfg.fault.surge.meanGapSec = 5.0;
  cfg.fault.surge.rateMultiplier = 0.0;
  expectRejected(cfg, "fault plan: surge.rateMultiplier");
}

TEST(FaultPlanValidate, RejectsScriptedEventNodeOutOfRange) {
  auto cfg = validConfig();
  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kNodeCrash;
  ev.at = sim::Time::seconds(1);
  ev.node = 99;  // numNodes is 10
  cfg.fault.scripted.push_back(ev);
  expectRejected(cfg, "fault plan:");
}

TEST(FaultPlanValidate, RejectsSelfBlackout) {
  auto cfg = validConfig();
  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kLinkBlackout;
  ev.at = sim::Time::seconds(1);
  ev.node = 3;
  ev.peer = 3;
  ev.duration = sim::Time::seconds(1);
  cfg.fault.scripted.push_back(ev);
  expectRejected(cfg, "fault plan:");
}

TEST(FaultPlanValidate, EmptyPlanIsEmpty) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.churn.fraction = 0.1;
  EXPECT_FALSE(plan.empty());
}

}  // namespace
}  // namespace manet
