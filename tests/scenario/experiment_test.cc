#include "src/scenario/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace manet::scenario {
namespace {

TEST(ExperimentTest, PaperScenarioMatchesSection41) {
  const BenchScale s = benchScale();
  const ScenarioConfig cfg = paperScenario(s);
  EXPECT_EQ(cfg.field.x, 2200.0);
  EXPECT_EQ(cfg.field.y, 600.0);
  EXPECT_EQ(cfg.maxSpeed, 20.0);
  EXPECT_EQ(cfg.payloadBytes, 512u);
  EXPECT_EQ(cfg.packetsPerSecond, 3.0);
  EXPECT_EQ(cfg.numNodes, s.numNodes);
  EXPECT_EQ(cfg.numFlows, s.numFlows);
  EXPECT_EQ(cfg.duration, s.duration);
}

TEST(ExperimentTest, BenchScaleRespectsReproFullEnv) {
  const char* old = std::getenv("REPRO_FULL");
  setenv("REPRO_FULL", "1", 1);
  const BenchScale full = benchScale();
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.numNodes, 100);
  EXPECT_EQ(full.duration, sim::Time::seconds(500));
  EXPECT_EQ(full.replications, 5);

  unsetenv("REPRO_FULL");
  const BenchScale dflt = benchScale();
  EXPECT_FALSE(dflt.full);
  EXPECT_EQ(dflt.numNodes, 100);
  EXPECT_LT(dflt.duration, full.duration);

  if (old != nullptr) setenv("REPRO_FULL", old, 1);
}

TEST(ExperimentTest, ReplicationVariesMobilitySeedOnly) {
  ScenarioConfig cfg;
  cfg.numNodes = 10;
  cfg.field = {500, 300};
  cfg.numFlows = 2;
  cfg.duration = sim::Time::seconds(10);
  const AggregateResult agg = runReplicated(cfg, 3);
  ASSERT_EQ(agg.runs.size(), 3u);
  EXPECT_EQ(agg.deliveryFraction.count(), 3u);
  EXPECT_EQ(agg.normalizedOverhead.count(), 3u);
}

}  // namespace
}  // namespace manet::scenario
