#include "src/mobility/waypoint.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace manet::mobility {
namespace {

using sim::Rng;
using sim::Time;

RandomWaypoint::Params defaultParams() {
  RandomWaypoint::Params p;
  p.field = {1000.0, 400.0};
  p.minSpeed = 0.5;
  p.maxSpeed = 20.0;
  p.pause = Time::zero();
  p.horizon = Time::seconds(200);
  return p;
}

TEST(WaypointTest, StaysInsideField) {
  auto p = defaultParams();
  RandomWaypoint wp(Rng(11), p);
  for (int t = 0; t <= 200; ++t) {
    const Vec2 pos = wp.positionAt(Time::seconds(t));
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LE(pos.x, p.field.x);
    EXPECT_GE(pos.y, 0.0);
    EXPECT_LE(pos.y, p.field.y);
  }
}

TEST(WaypointTest, SpeedWithinBounds) {
  auto p = defaultParams();
  RandomWaypoint wp(Rng(13), p);
  const Time dt = Time::millis(100);
  for (Time t = Time::zero(); t < p.horizon - dt; t += Time::seconds(1)) {
    const double d = distance(wp.positionAt(t), wp.positionAt(t + dt));
    const double speed = d / dt.toSeconds();
    // Speed may be 0 across a waypoint turn; never above max.
    EXPECT_LE(speed, p.maxSpeed * 1.0001);
  }
}

TEST(WaypointTest, DeterministicForSameSeed) {
  auto p = defaultParams();
  RandomWaypoint a(Rng(42), p);
  RandomWaypoint b(Rng(42), p);
  for (int t = 0; t < 200; t += 7) {
    EXPECT_EQ(a.positionAt(Time::seconds(t)).x,
              b.positionAt(Time::seconds(t)).x);
    EXPECT_EQ(a.positionAt(Time::seconds(t)).y,
              b.positionAt(Time::seconds(t)).y);
  }
}

TEST(WaypointTest, DifferentSeedsProduceDifferentTrajectories) {
  auto p = defaultParams();
  RandomWaypoint a(Rng(1), p);
  RandomWaypoint b(Rng(2), p);
  EXPECT_NE(distance(a.positionAt(Time::seconds(50)),
                     b.positionAt(Time::seconds(50))),
            0.0);
}

TEST(WaypointTest, PauseHoldsPosition) {
  auto p = defaultParams();
  p.pause = Time::seconds(30);
  // Fast enough that the first journey (at most ~1.1 km) completes within
  // the horizon, guaranteeing at least one pause leg exists.
  p.minSpeed = 10.0;
  RandomWaypoint wp(Rng(5), p);
  // Find a pause leg and probe within it.
  bool foundPause = false;
  for (const auto& leg : wp.legs()) {
    if (leg.from == leg.to && leg.end > leg.start) {
      foundPause = true;
      const Time mid = leg.start + (leg.end - leg.start) * 0.5;
      EXPECT_EQ(wp.positionAt(mid), leg.from);
      EXPECT_EQ(leg.end - leg.start, p.pause);
      break;
    }
  }
  EXPECT_TRUE(foundPause);
}

TEST(WaypointTest, LegsAreContiguous) {
  auto p = defaultParams();
  p.pause = Time::seconds(5);
  RandomWaypoint wp(Rng(3), p);
  const auto& legs = wp.legs();
  ASSERT_FALSE(legs.empty());
  EXPECT_EQ(legs.front().start, Time::zero());
  for (std::size_t i = 1; i < legs.size(); ++i) {
    EXPECT_EQ(legs[i].start, legs[i - 1].end);
    EXPECT_EQ(legs[i].from, legs[i - 1].to);
  }
  EXPECT_GE(legs.back().end, p.horizon);
}

TEST(WaypointTest, PositionBeyondHorizonIsFinal) {
  auto p = defaultParams();
  RandomWaypoint wp(Rng(9), p);
  const Vec2 last = wp.positionAt(wp.legs().back().end);
  EXPECT_EQ(wp.positionAt(wp.legs().back().end + Time::seconds(100)), last);
}

TEST(WaypointTest, MotionIsLinearWithinLeg) {
  auto p = defaultParams();
  RandomWaypoint wp(Rng(21), p);
  // Pick the first motion leg and check the midpoint is halfway.
  const auto& leg = wp.legs().front();
  const Time mid = leg.start + (leg.end - leg.start) * 0.5;
  const Vec2 expect = leg.from + (leg.to - leg.from) * 0.5;
  const Vec2 got = wp.positionAt(mid);
  EXPECT_NEAR(got.x, expect.x, 1e-6);
  EXPECT_NEAR(got.y, expect.y, 1e-6);
}

TEST(WaypointTest, PausesBeforeFirstJourney) {
  // CMU model semantics: nodes remain stationary for the pause time before
  // the first journey, so pause >= horizon means a fully static node.
  auto p = defaultParams();
  p.pause = Time::seconds(30);
  RandomWaypoint wp(Rng(17), p);
  const Vec2 start = wp.positionAt(Time::zero());
  EXPECT_EQ(wp.positionAt(Time::seconds(15)), start);
  EXPECT_EQ(wp.positionAt(Time::seconds(30)), start);
}

TEST(WaypointTest, PauseEqualToHorizonMeansStaticNode) {
  auto p = defaultParams();
  p.pause = p.horizon;
  RandomWaypoint wp(Rng(23), p);
  const Vec2 start = wp.positionAt(Time::zero());
  for (int t = 0; t <= 200; t += 20) {
    EXPECT_EQ(wp.positionAt(Time::seconds(t)), start);
  }
}

// Property sweep: field containment holds across seeds and pause settings.
class WaypointPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WaypointPropertyTest, ContainmentAndContiguity) {
  const auto [seed, pauseSec] = GetParam();
  auto p = defaultParams();
  p.pause = Time::seconds(pauseSec);
  RandomWaypoint wp(Rng(static_cast<std::uint64_t>(seed)), p);
  for (int t = 0; t < 200; t += 11) {
    const Vec2 pos = wp.positionAt(Time::seconds(t));
    ASSERT_GE(pos.x, 0.0);
    ASSERT_LE(pos.x, p.field.x);
    ASSERT_GE(pos.y, 0.0);
    ASSERT_LE(pos.y, p.field.y);
  }
  const auto& legs = wp.legs();
  for (std::size_t i = 1; i < legs.size(); ++i) {
    ASSERT_EQ(legs[i].start, legs[i - 1].end);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaypointPropertyTest,
    ::testing::Combine(::testing::Values(1, 7, 23, 99),
                       ::testing::Values(0, 1, 30, 500)));

}  // namespace
}  // namespace manet::mobility
