// Shared test harness for DSR protocol tests: builds a Network over static
// or scripted (teleporting) node placements so topology changes are exact
// and deterministic.
#pragma once

#include <memory>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/mobility/mobility_model.h"
#include "src/net/network.h"

namespace manet::testing {

/// Sits at `before` until `switchAt`, then jumps to `after`. Lets tests
/// break a specific link at a specific instant.
class TeleportMobility final : public mobility::MobilityModel {
 public:
  TeleportMobility(Vec2 before, Vec2 after, sim::Time switchAt)
      : before_(before), after_(after), switchAt_(switchAt) {}
  Vec2 positionAt(sim::Time t) const override {
    return t < switchAt_ ? before_ : after_;
  }

 private:
  Vec2 before_;
  Vec2 after_;
  sim::Time switchAt_;
};

struct DsrFixture {
  explicit DsrFixture(const core::DsrConfig& dsrCfg = {},
                      std::uint64_t seed = 1) {
    net::NetworkConfig cfg;
    cfg.dsr = dsrCfg;
    network = std::make_unique<net::Network>(cfg, seed);
  }

  net::Node& addStatic(Vec2 pos) {
    return network->addNode(std::make_unique<mobility::StaticMobility>(pos));
  }

  net::Node& addTeleport(Vec2 before, Vec2 after, sim::Time switchAt) {
    return network->addNode(
        std::make_unique<TeleportMobility>(before, after, switchAt));
  }

  /// A chain 0-1-2-...-(n-1) with 200 m spacing: adjacent nodes connected,
  /// two-hop neighbors (400 m) out of range.
  void addLine(int n, double spacing = 200.0) {
    for (int i = 0; i < n; ++i) addStatic({i * spacing, 0.0});
  }

  void run(sim::Time until) { network->run(until); }
  metrics::Metrics& metrics() { return network->metrics(); }
  core::DsrAgent& dsr(net::NodeId id) { return network->node(id).dsr(); }

  std::unique_ptr<net::Network> network;
};

}  // namespace manet::testing
