// Reliable (TCP-like) transport over DSR.
#include "src/transport/reliable.h"

#include <gtest/gtest.h>

#include "tests/testing/dsr_fixture.h"

namespace manet::transport {
namespace {

using manet::testing::DsrFixture;
using sim::Time;

TEST(ReliableTransportTest, TransfersAllSegmentsInOrder) {
  DsrFixture fx;
  fx.addLine(4);
  ReliableReceiver rx(fx.dsr(3), /*connId=*/1);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 3, 1,
                    /*totalSegments=*/50);
  tx.start();
  fx.run(Time::seconds(60));
  EXPECT_TRUE(tx.finished());
  EXPECT_EQ(rx.segmentsReceived(), 50u);
  EXPECT_EQ(rx.nextExpected(), 50u);
}

TEST(ReliableTransportTest, SingleHopIsFast) {
  DsrFixture fx;
  fx.addLine(2);
  ReliableReceiver rx(fx.dsr(1), 1);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 1, 1, 100);
  tx.start();
  fx.run(Time::seconds(10));
  EXPECT_TRUE(tx.finished());
  // ~100 x 512 B over one 2 Mb/s hop: comfortably above 100 kb/s goodput.
  EXPECT_GT(tx.goodputKbps(fx.network->scheduler().now()), 100.0);
}

TEST(ReliableTransportTest, WindowOpensWithSuccess) {
  DsrFixture fx;
  fx.addLine(3);
  ReliableReceiver rx(fx.dsr(2), 1);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 2, 1, 200);
  tx.start();
  fx.run(Time::seconds(30));
  EXPECT_TRUE(tx.finished());
  EXPECT_GT(tx.cwnd(), 4.0);  // grew beyond the initial window
}

TEST(ReliableTransportTest, RecoversAcrossRouteBreak) {
  // 0-1-2-3 with node 2 dying at t=5; a detour 1-4-3 exists. The transfer
  // must stall on the break, retransmit, and finish over the new route.
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({200, 0});
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));
  fx.addStatic({600, 0});
  fx.addStatic({400, 150});
  ReliableReceiver rx(fx.dsr(3), 1);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 3, 1, 300);
  tx.start();
  fx.run(Time::seconds(120));
  EXPECT_TRUE(tx.finished()) << "acked " << tx.acked() << "/300";
  EXPECT_GT(tx.retransmissions(), 0u);
  EXPECT_EQ(rx.segmentsReceived(), 300u);
}

TEST(ReliableTransportTest, TimeoutBacksOffRto) {
  // Destination unreachable: RTO must grow exponentially under repeated
  // timeouts (no ACK clock at all).
  DsrFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({5000, 0});  // out of range forever
  ReliableReceiver rx(fx.dsr(1), 1);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 1, 1, 10);
  tx.start();
  const auto rto0 = tx.currentRto();
  fx.run(Time::seconds(40));
  EXPECT_FALSE(tx.finished());
  EXPECT_GE(tx.timeouts(), 2u);
  EXPECT_GT(tx.currentRto(), rto0);
}

TEST(ReliableTransportTest, TwoConnectionsDemuxByConnId) {
  DsrFixture fx;
  fx.addLine(3);
  ReliableReceiver rxA(fx.dsr(2), 1);
  ReliableReceiver rxB(fx.dsr(2), 2);
  ReliableSender txA(fx.dsr(0), fx.network->scheduler(), 2, 1, 30);
  ReliableSender txB(fx.dsr(1), fx.network->scheduler(), 2, 2, 30);
  txA.start();
  txB.start();
  fx.run(Time::seconds(60));
  EXPECT_TRUE(txA.finished());
  EXPECT_TRUE(txB.finished());
  EXPECT_EQ(rxA.segmentsReceived(), 30u);
  EXPECT_EQ(rxB.segmentsReceived(), 30u);
}

TEST(ReliableTransportTest, GoodputAccountsOnlyAckedData) {
  DsrFixture fx;
  fx.addLine(2);
  ReliableReceiver rx(fx.dsr(1), 7);
  ReliableSender tx(fx.dsr(0), fx.network->scheduler(), 1, 7, 10);
  EXPECT_EQ(tx.goodputKbps(Time::seconds(1)), 0.0);  // not started
  tx.start();
  fx.run(Time::seconds(5));
  EXPECT_TRUE(tx.finished());
  const double kbps = tx.goodputKbps(fx.network->scheduler().now());
  EXPECT_GT(kbps, 0.0);
}

}  // namespace
}  // namespace manet::transport
