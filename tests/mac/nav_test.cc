// NAV behaviour: reservation by overheard frames and the RTS NAV-reset rule
// (a dead RTS exchange must not wedge bystanders for its full duration).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/mac/dcf_mac.h"
#include "src/mobility/mobility_model.h"
#include "src/phy/channel.h"
#include "src/phy/radio.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::mac {
namespace {

using mobility::StaticMobility;
using sim::Rng;
using sim::Scheduler;
using sim::Time;

net::PacketPtr makeDataPacket(std::uint32_t bytes = 512) {
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kData;
  p->payloadBytes = bytes;
  return p;
}

struct World {
  Scheduler sched;
  phy::PhyConfig phyCfg;
  phy::Channel channel{sched, phyCfg};
  MacConfig macCfg;
  metrics::Metrics metrics;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<DcfMac>> macs;

  DcfMac& add(net::NodeId id, Vec2 pos) {
    mobs.push_back(std::make_unique<StaticMobility>(pos));
    radios.push_back(
        std::make_unique<phy::Radio>(id, *mobs.back(), channel, sched));
    macs.push_back(std::make_unique<DcfMac>(id, *radios.back(), sched,
                                            Rng(id + 3), macCfg, &metrics));
    return *macs.back();
  }
};

TEST(NavTest, DeadRtsExchangeDoesNotWedgeBystanders) {
  World w;
  // One single RTS and give up: isolates the NAV effect from retry jams.
  w.macCfg.shortRetryLimit = 1;
  DcfMac& a = w.add(0, {0, 0});     // sends RTS into the void (node 9)
  DcfMac& b = w.add(1, {100, 0});   // bystander with real traffic for c
  DcfMac& c = w.add(2, {100, 100});
  std::optional<Time> delivered;
  c.setHandlers(DcfMac::Handlers{
      .receive = [&](net::PacketPtr, net::NodeId) {
        if (!delivered) delivered = w.sched.now();
      },
      .promiscuousTap = nullptr,
      .sendFailed = nullptr,
      .sendOk = nullptr,
  });

  a.send(makeDataPacket(), 9);  // node 9 does not exist: no CTS ever
  // b learns of a's RTS (overhears it), then wants to transmit itself.
  w.sched.scheduleAfter(Time::micros(400),
                        [&] { b.send(makeDataPacket(64), 2); });
  w.sched.runUntil(Time::seconds(1));
  ASSERT_TRUE(delivered.has_value());
  // Without the NAV reset rule, b would honor a's full ~2.9 ms exchange
  // reservation before even contending, putting delivery past ~4.5 ms.
  // With the reset, b's complete RTS/CTS/DATA/ACK exchange (itself ~1.7 ms)
  // finishes well before the stale reservation would have expired.
  EXPECT_LT(*delivered, Time::fromSeconds(0.003));
}

TEST(NavTest, CtsReservationIsHonored) {
  // A bystander that hears the receiver's CTS must stay silent for the
  // whole data exchange: the exchange completes without retries.
  World w;
  DcfMac& a = w.add(0, {0, 0});
  DcfMac& b = w.add(1, {240, 0});          // receiver
  DcfMac& bystander = w.add(2, {480, 0});  // hears b (CTS) but not a (RTS)
  w.add(3, {480, 100});                    // bystander's peer

  a.send(makeDataPacket(1024), 1);
  // The bystander queues a packet right when the exchange starts; its
  // transmission must not collide with a's DATA at b.
  w.sched.scheduleAfter(Time::micros(600),
                        [&] { bystander.send(makeDataPacket(1024), 3); });
  w.sched.runUntil(Time::seconds(1));
  EXPECT_EQ(w.metrics.dropMacDuplicate, 0u);
  EXPECT_EQ(w.metrics.ackTx, 2u);  // both exchanges acknowledged
  (void)b;
}

}  // namespace
}  // namespace manet::mac
