#include "src/mac/dcf_mac.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mobility/mobility_model.h"
#include "src/phy/channel.h"
#include "src/phy/radio.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::mac {
namespace {

using mobility::StaticMobility;
using sim::Rng;
using sim::Scheduler;
using sim::Time;

net::PacketPtr makeDataPacket(net::NodeId src, net::NodeId dst,
                              std::uint32_t bytes = 512) {
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kData;
  p->src = src;
  p->dst = dst;
  p->payloadBytes = bytes;
  return p;
}

struct MacNode {
  std::unique_ptr<StaticMobility> mob;
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<DcfMac> mac;
  std::vector<net::PacketPtr> received;
  std::vector<net::NodeId> failedNextHops;
  std::vector<net::NodeId> okNextHops;
  int tapped = 0;
};

struct Fixture {
  Scheduler sched;
  phy::PhyConfig phyCfg;
  phy::Channel channel{sched, phyCfg};
  MacConfig macCfg;
  metrics::Metrics metrics;
  std::vector<std::unique_ptr<MacNode>> nodes;

  MacNode& addNode(net::NodeId id, Vec2 pos) {
    auto n = std::make_unique<MacNode>();
    n->mob = std::make_unique<StaticMobility>(pos);
    n->radio = std::make_unique<phy::Radio>(id, *n->mob, channel, sched);
    n->mac = std::make_unique<DcfMac>(id, *n->radio, sched, Rng(id + 17),
                                      macCfg, &metrics);
    MacNode* raw = n.get();
    n->mac->setHandlers(DcfMac::Handlers{
        .receive = [raw](net::PacketPtr p,
                         net::NodeId) { raw->received.push_back(p); },
        .promiscuousTap = [raw](const Frame&) { ++raw->tapped; },
        .sendFailed =
            [raw](net::PacketPtr, net::NodeId nh) {
              raw->failedNextHops.push_back(nh);
            },
        .sendOk =
            [raw](net::PacketPtr, net::NodeId nh) {
              raw->okNextHops.push_back(nh);
            },
    });
    nodes.push_back(std::move(n));
    return *nodes.back();
  }
};

TEST(DcfMacTest, UnicastDeliversWithRtsCtsAck) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {100, 0});
  a.mac->send(makeDataPacket(0, 1), 1);
  fx.sched.runUntil(Time::seconds(1));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.okNextHops, std::vector<net::NodeId>{1});
  EXPECT_TRUE(a.failedNextHops.empty());
  // Full DCF exchange happened exactly once.
  EXPECT_EQ(fx.metrics.rtsTx, 1u);
  EXPECT_EQ(fx.metrics.ctsTx, 1u);
  EXPECT_EQ(fx.metrics.ackTx, 1u);
  EXPECT_EQ(fx.metrics.dataFrameTx, 1u);
}

TEST(DcfMacTest, BroadcastReachesAllNeighborsWithoutControlFrames) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {100, 0});
  MacNode& c = fx.addNode(2, {0, 100});
  MacNode& far = fx.addNode(3, {1000, 1000});
  a.mac->send(makeDataPacket(0, net::kBroadcast), net::kBroadcast);
  fx.sched.runUntil(Time::seconds(1));
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(far.received.size(), 0u);
  EXPECT_EQ(fx.metrics.rtsTx, 0u);
  EXPECT_EQ(fx.metrics.ackTx, 0u);
}

TEST(DcfMacTest, FailedLinkReportsAfterRetryLimit) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  // Node 1 does not exist: RTS will never be answered.
  a.mac->send(makeDataPacket(0, 1), 1);
  fx.sched.runUntil(Time::seconds(5));
  ASSERT_EQ(a.failedNextHops.size(), 1u);
  EXPECT_EQ(a.failedNextHops[0], 1u);
  // Retried RTS up to the short retry limit.
  EXPECT_EQ(fx.metrics.rtsTx,
            static_cast<std::uint64_t>(fx.macCfg.shortRetryLimit));
}

TEST(DcfMacTest, QueueOverflowDropsAndCounts) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  fx.addNode(1, {100, 0});
  for (std::size_t i = 0; i < fx.macCfg.queueCapacity + 10; ++i) {
    a.mac->send(makeDataPacket(0, 1), 1);
  }
  EXPECT_EQ(fx.metrics.dropIfqFull, 10u);
  EXPECT_EQ(a.mac->queueLength(), fx.macCfg.queueCapacity);
}

TEST(DcfMacTest, QueueDrainsInOrder) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {100, 0});
  for (int i = 0; i < 5; ++i) {
    auto p = makeDataPacket(0, 1);
    p = [&] {
      auto q = net::clone(*p);
      q->seqInFlow = static_cast<std::uint64_t>(i);
      return q;
    }();
    a.mac->send(p, 1);
  }
  fx.sched.runUntil(Time::seconds(2));
  ASSERT_EQ(b.received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)]->seqInFlow,
              static_cast<std::uint64_t>(i));
  }
}

TEST(DcfMacTest, PriorityPacketsJumpAheadOfData) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {100, 0});
  for (int i = 0; i < 3; ++i) a.mac->send(makeDataPacket(0, 1), 1);
  auto ctrl = net::Packet::make();
  ctrl->kind = net::PacketKind::kRouteReply;
  a.mac->send(ctrl, 1, /*priority=*/true);
  fx.sched.runUntil(Time::seconds(2));
  ASSERT_EQ(b.received.size(), 4u);
  // The control packet was queued last but must arrive before the 2nd and
  // 3rd data packets (the head may already be in flight).
  std::size_t ctrlPos = 99;
  for (std::size_t i = 0; i < b.received.size(); ++i) {
    if (b.received[i]->kind == net::PacketKind::kRouteReply) ctrlPos = i;
  }
  EXPECT_LE(ctrlPos, 1u);
}

TEST(DcfMacTest, PurgeNextHopRemovesOnlyMatching) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  fx.addNode(1, {100, 0});
  fx.addNode(2, {0, 100});
  for (int i = 0; i < 3; ++i) a.mac->send(makeDataPacket(0, 1), 1);
  for (int i = 0; i < 2; ++i) a.mac->send(makeDataPacket(0, 2), 2);
  const auto removed = a.mac->purgeNextHop(2);
  EXPECT_EQ(removed.size(), 2u);
  for (const auto& qp : removed) EXPECT_EQ(qp.nextHop, 2u);
  EXPECT_EQ(a.mac->queueLength(), 3u);
}

TEST(DcfMacTest, ContendingSendersBothDeliverEventually) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {100, 0});
  MacNode& c = fx.addNode(2, {50, 50});
  for (int i = 0; i < 10; ++i) {
    a.mac->send(makeDataPacket(0, 2), 2);
    b.mac->send(makeDataPacket(1, 2), 2);
  }
  fx.sched.runUntil(Time::seconds(10));
  EXPECT_EQ(c.received.size(), 20u);
}

TEST(DcfMacTest, OverheardUnicastReachesPromiscuousTap) {
  Fixture fx;
  MacNode& a = fx.addNode(0, {0, 0});
  fx.addNode(1, {100, 0});
  MacNode& snooper = fx.addNode(2, {0, 100});
  a.mac->send(makeDataPacket(0, 1), 1);
  fx.sched.runUntil(Time::seconds(1));
  EXPECT_GE(snooper.tapped, 1);
  EXPECT_TRUE(snooper.received.empty());
}

TEST(DcfMacTest, HiddenTerminalsResolvedByRtsCtsEventually) {
  Fixture fx;
  // a and c cannot hear each other; both send to b in the middle.
  MacNode& a = fx.addNode(0, {0, 0});
  MacNode& b = fx.addNode(1, {240, 0});
  MacNode& c = fx.addNode(2, {480, 0});
  for (int i = 0; i < 5; ++i) {
    a.mac->send(makeDataPacket(0, 1), 1);
    c.mac->send(makeDataPacket(2, 1), 1);
  }
  fx.sched.runUntil(Time::seconds(20));
  // RTS/CTS plus retries should get most (if not all) packets through.
  EXPECT_GE(b.received.size(), 8u);
}

}  // namespace
}  // namespace manet::mac
