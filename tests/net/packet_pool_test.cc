// PacketPool: recycling must be invisible (identical packet contents and
// uids) and must actually recycle (no slab growth at steady state).
#include "src/net/packet_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/packet.h"

namespace manet::net {
namespace {

/// Restore the process-wide pool switch after each test (other tests in
/// this binary run in the same process).
struct PoolFlagGuard {
  bool saved = PacketPool::enabled();
  ~PoolFlagGuard() { PacketPool::setEnabled(saved); }
};

TEST(PacketPoolTest, SteadyStateAllocatesNoNewSlabs) {
  PoolFlagGuard guard;
  PacketPool::setEnabled(true);
  auto churn = [] {
    std::vector<std::shared_ptr<Packet>> batch;
    batch.reserve(PacketPool::kSlabObjects);
    for (std::size_t i = 0; i < PacketPool::kSlabObjects; ++i) {
      batch.push_back(Packet::make());
    }
  };
  churn();  // warm: grows at most one slab for this size class
  const auto warm = PacketPool::local().stats();
  for (int round = 0; round < 10; ++round) churn();
  const auto after = PacketPool::local().stats();
  EXPECT_EQ(after.slabAllocs, warm.slabAllocs)
      << "steady-state churn should be served entirely from the freelist";
  EXPECT_EQ(after.acquires - warm.acquires, 10 * PacketPool::kSlabObjects);
  EXPECT_EQ(after.releases - warm.releases, 10 * PacketPool::kSlabObjects);
}

TEST(PacketPoolTest, PooledPacketsBehaveLikeHeapPackets) {
  PoolFlagGuard guard;
  for (bool pooled : {false, true}) {
    PacketPool::setEnabled(pooled);
    Packet::resetUidCounter();
    auto p = Packet::make();
    EXPECT_EQ(p->uid, 1u);
    p->kind = PacketKind::kData;
    p->src = 3;
    p->dst = 9;
    p->payloadBytes = 512;
    p->route = SourceRoute{{3, 5, 9}, 0};
    auto c = clone(*p);
    EXPECT_EQ(c->uid, 1u);  // clone preserves identity
    EXPECT_EQ(c->src, 3u);
    EXPECT_EQ(c->dst, 9u);
    ASSERT_TRUE(c->route.has_value());
    EXPECT_EQ(c->route->hops, (std::vector<net::NodeId>{3, 5, 9}));
    EXPECT_EQ(c->wireBytes(), p->wireBytes());
    auto q = Packet::make();
    EXPECT_EQ(q->uid, 2u);
  }
}

TEST(PacketPoolTest, FlagFlipMidLifetimeFreesSymmetrically) {
  PoolFlagGuard guard;
  PacketPool::setEnabled(true);
  auto pooled = Packet::make();
  PacketPool::setEnabled(false);
  auto heap = Packet::make();
  const auto before = PacketPool::local().stats();
  // The pooled packet must release into the pool even though the flag is
  // now off (the allocator travels in the shared_ptr control block)...
  pooled.reset();
  EXPECT_EQ(PacketPool::local().stats().releases, before.releases + 1);
  // ...and the heap packet must not touch the pool.
  heap.reset();
  EXPECT_EQ(PacketPool::local().stats().releases, before.releases + 1);
}

TEST(PacketPoolTest, SlotsAreRecycledLifo) {
  PoolFlagGuard guard;
  PacketPool::setEnabled(true);
  Packet::make();  // allocate + immediately free one slot
  const auto s1 = PacketPool::local().stats();
  Packet::make();
  const auto s2 = PacketPool::local().stats();
  EXPECT_EQ(s2.slabAllocs, s1.slabAllocs);
  EXPECT_EQ(s2.freeObjects, s1.freeObjects);
}

}  // namespace
}  // namespace manet::net
