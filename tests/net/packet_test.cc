#include "src/net/packet.h"

#include <gtest/gtest.h>

namespace manet::net {
namespace {

TEST(PacketTest, MakeAssignsUniqueUids) {
  auto a = Packet::make();
  auto b = Packet::make();
  EXPECT_NE(a->uid, b->uid);
}

TEST(PacketTest, ClonePreservesUidAndContent) {
  auto p = Packet::make();
  p->kind = PacketKind::kData;
  p->src = 3;
  p->dst = 9;
  p->payloadBytes = 512;
  p->route = SourceRoute{{3, 5, 9}, 1};
  auto c = clone(*p);
  EXPECT_EQ(c->uid, p->uid);
  EXPECT_EQ(c->route->hops, p->route->hops);
  EXPECT_EQ(c->route->cursor, p->route->cursor);
  // Clones are independent.
  ++c->route->cursor;
  EXPECT_NE(c->route->cursor, p->route->cursor);
}

TEST(PacketTest, SourceRouteAccessors) {
  SourceRoute r{{10, 11, 12, 13}, 0};
  EXPECT_EQ(r.source(), 10u);
  EXPECT_EQ(r.destination(), 13u);
  EXPECT_EQ(r.nextHop(), 11u);
  EXPECT_FALSE(r.atDestination());
  r.cursor = 3;
  EXPECT_TRUE(r.atDestination());
}

TEST(PacketTest, WireBytesChargesHeaders) {
  auto p = Packet::make();
  p->payloadBytes = 512;
  const auto bare = p->wireBytes();
  EXPECT_EQ(bare, 512u + 4u);

  p->route = SourceRoute{{1, 2, 3, 4}, 0};
  EXPECT_EQ(p->wireBytes(), bare + 4 + 4 * 4);  // 4 B/hop + fixed part
}

TEST(PacketTest, WireBytesRouteRequestGrowsWithPath) {
  auto p = Packet::make();
  p->kind = PacketKind::kRouteRequest;
  p->rreq = RouteRequestHdr{.origin = 1, .target = 9, .id = 1, .ttl = 64,
                            .path = {1}, .piggybackedError = std::nullopt};
  const auto small = p->wireBytes();
  p->rreq->path = {1, 2, 3, 4, 5};
  EXPECT_EQ(p->wireBytes(), small + 4 * 4);
  p->rreq->piggybackedError = LinkId{2, 3};
  EXPECT_EQ(p->wireBytes(), small + 4 * 4 + 12);
}

TEST(PacketTest, RouteContainsLinkIsDirectional) {
  const std::vector<NodeId> hops{1, 2, 3, 4};
  EXPECT_TRUE(routeContainsLink(hops, LinkId{2, 3}));
  EXPECT_FALSE(routeContainsLink(hops, LinkId{3, 2}));
  EXPECT_FALSE(routeContainsLink(hops, LinkId{1, 3}));  // not adjacent
  EXPECT_FALSE(routeContainsLink(hops, LinkId{4, 1}));
}

TEST(PacketTest, RouteHasDuplicates) {
  EXPECT_FALSE(routeHasDuplicates(std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(routeHasDuplicates(std::vector<NodeId>{1, 2, 1}));
  EXPECT_TRUE(routeHasDuplicates(std::vector<NodeId>{1, 2, 2, 3}));
  EXPECT_FALSE(routeHasDuplicates(std::vector<NodeId>{}));
}

TEST(PacketTest, LinkIdOrderingAndEquality) {
  EXPECT_EQ((LinkId{1, 2}), (LinkId{1, 2}));
  EXPECT_NE((LinkId{1, 2}), (LinkId{2, 1}));
  LinkIdHash h;
  EXPECT_NE(h(LinkId{1, 2}), h(LinkId{2, 1}));
}

TEST(PacketTest, KindNames) {
  EXPECT_STREQ(toString(PacketKind::kData), "DATA");
  EXPECT_STREQ(toString(PacketKind::kRouteRequest), "RREQ");
  EXPECT_STREQ(toString(PacketKind::kRouteReply), "RREP");
  EXPECT_STREQ(toString(PacketKind::kRouteError), "RERR");
}

}  // namespace
}  // namespace manet::net
