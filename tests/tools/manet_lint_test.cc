// Rule-by-rule coverage for the determinism linter: every rule gets a
// positive hit, an allowlisted suppression, and a clean file; plus the
// allow-syntax meta rules and the lexer's comment/string immunity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "tools/manet_lint/lint.h"

namespace manet::lint {
namespace {

bool hasRule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int lineOf(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// ------------------------------------------------------------------ raw-rng

TEST(ManetLintTest, RawRngFlagsRandCall) {
  const auto fs = lintSource("src/core/x.cc", "int f() { return rand(); }\n");
  ASSERT_TRUE(hasRule(fs, "raw-rng"));
  EXPECT_EQ(lineOf(fs, "raw-rng"), 1);
}

TEST(ManetLintTest, RawRngFlagsSrandAndRandomDevice) {
  EXPECT_TRUE(hasRule(lintSource("src/net/x.cc", "void f() { srand(7); }\n"),
                      "raw-rng"));
  EXPECT_TRUE(hasRule(
      lintSource("tests/foo_test.cc", "std::random_device rd;\n"),
      "raw-rng"));
}

TEST(ManetLintTest, RawRngAllowedInRngTranslationUnit) {
  EXPECT_TRUE(lintSource("src/sim/rng.cc", "int x = rand();\n").empty());
  EXPECT_TRUE(lintSource("src/sim/rng.h", "int x = rand();\n").empty());
}

TEST(ManetLintTest, RawRngSuppressedWithJustification) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "// manet-lint: allow(raw-rng): documented seeding example\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(ManetLintTest, OperandDoesNotTriggerRawRng) {
  EXPECT_TRUE(
      lintSource("src/core/x.cc", "int operand(int a) { return a; }\n")
          .empty());
}

// --------------------------------------------------------------- wall-clock

TEST(ManetLintTest, WallClockFlagsSteadyClockOutsideProf) {
  const auto fs = lintSource(
      "src/mac/x.cc", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(hasRule(fs, "wall-clock"));
}

TEST(ManetLintTest, WallClockExemptInProfAndBench) {
  EXPECT_TRUE(
      lintSource("src/prof/x.cc",
                 "auto t = std::chrono::steady_clock::now();\n")
          .empty());
  EXPECT_TRUE(
      lintSource("bench/x.cc",
                 "auto t = std::chrono::high_resolution_clock::now();\n")
          .empty());
}

TEST(ManetLintTest, WallClockSuppressible) {
  const auto fs = lintSource(
      "src/scenario/x.cc",
      "// manet-lint: allow(wall-clock): report-only wall timing\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------- unordered-iter

TEST(ManetLintTest, UnorderedIterFlagsRangedFor) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "std::unordered_map<int, int> m_;\n"
      "void f() { for (auto& [k, v] : m_) { (void)k; (void)v; } }\n");
  ASSERT_TRUE(hasRule(fs, "unordered-iter"));
  EXPECT_EQ(lineOf(fs, "unordered-iter"), 2);
}

TEST(ManetLintTest, UnorderedIterFlagsBeginCall) {
  const auto fs = lintSource("src/sim/x.cc",
                             "std::unordered_set<int> s_;\n"
                             "auto f() { return s_.begin(); }\n");
  EXPECT_TRUE(hasRule(fs, "unordered-iter"));
}

TEST(ManetLintTest, UnorderedIterSeesDeclarationInPairedHeader) {
  const auto fs = lintSource(
      "src/mac/x.cc", "void C::f() { for (auto& e : tbl_) { (void)e; } }\n",
      "class C { std::unordered_map<int, long> tbl_; };\n");
  EXPECT_TRUE(hasRule(fs, "unordered-iter"));
}

TEST(ManetLintTest, UnorderedIterIgnoresPointLookupsAndOrderedMaps) {
  EXPECT_TRUE(lintSource("src/core/x.cc",
                         "std::unordered_map<int, int> m_;\n"
                         "bool f(int k) { return m_.find(k) != m_.end(); }\n")
                  .empty());
  EXPECT_TRUE(lintSource("src/core/x.cc",
                         "std::map<int, int> m_;\n"
                         "void f() { for (auto& e : m_) { (void)e; } }\n")
                  .empty());
}

TEST(ManetLintTest, UnorderedIterOutOfScopeInReportingLayers) {
  const auto fs = lintSource(
      "src/telemetry/x.cc",
      "std::unordered_map<int, int> m_;\n"
      "void f() { for (auto& e : m_) { (void)e; } }\n");
  EXPECT_FALSE(hasRule(fs, "unordered-iter"));
}

TEST(ManetLintTest, UnorderedIterSuppressible) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "std::unordered_set<int> s_;\n"
      "// manet-lint: allow(unordered-iter): order-insensitive sum\n"
      "int f() { int t = 0; for (int v : s_) t += v; return t; }\n");
  EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------- sched-category

TEST(ManetLintTest, SchedCategoryFlagsUntaggedCall) {
  const auto fs = lintSource(
      "src/traffic/x.cc",
      "void f(sim::Scheduler& s) {\n"
      "  s.scheduleAt(sim::Time::seconds(1), [] {});\n"
      "}\n");
  ASSERT_TRUE(hasRule(fs, "sched-category"));
  EXPECT_EQ(lineOf(fs, "sched-category"), 2);
}

TEST(ManetLintTest, SchedCategoryAcceptsTaggedMultiLineCall) {
  const auto fs = lintSource(
      "src/fault/x.cc",
      "void f(sim::Scheduler& s) {\n"
      "  s.scheduleAfter(\n"
      "      sim::Time::seconds(1),\n"
      "      [] { /* handler */ },\n"
      "      prof::Category::kFault);\n"
      "}\n");
  EXPECT_FALSE(hasRule(fs, "sched-category"));
}

TEST(ManetLintTest, SchedCategoryIgnoresDeclarationsAndOtherIdentifiers) {
  // The declaration in scheduler.h-style code mentions std::function.
  EXPECT_FALSE(hasRule(
      lintSource("src/net/x.h",
                 "EventId scheduleAt(Time at, std::function<void()> fn,\n"
                 "                   prof::Category cat);\n"),
      "sched-category"));
  EXPECT_FALSE(hasRule(
      lintSource("src/mac/x.cc", "void g() { scheduleAttempt(); }\n"),
      "sched-category"));
}

TEST(ManetLintTest, SchedCategoryNotEnforcedOutsideLibraryCode) {
  const auto fs = lintSource(
      "tests/foo_test.cc",
      "void f(sim::Scheduler& s) {\n"
      "  s.scheduleAt(sim::Time::seconds(1), [] {});\n"
      "}\n");
  EXPECT_FALSE(hasRule(fs, "sched-category"));
}

// --------------------------------------------------------------- float-time

TEST(ManetLintTest, FloatTimeFlagsToSecondsInSimCore) {
  EXPECT_TRUE(hasRule(
      lintSource("src/mac/x.cc",
                 "double f(sim::Time t) { return t.toSeconds(); }\n"),
      "float-time"));
  EXPECT_TRUE(hasRule(
      lintSource("src/phy/x.cc",
                 "auto t = sim::Time::fromSeconds(0.5);\n"),
      "float-time"));
}

TEST(ManetLintTest, FloatTimeFreeInReportingLayers) {
  EXPECT_TRUE(
      lintSource("src/metrics/x.cc",
                 "double f(sim::Time t) { return t.toSeconds(); }\n")
          .empty());
}

TEST(ManetLintTest, FloatTimeMultiLineJustificationStillSuppresses) {
  const auto fs = lintSource(
      "src/transport/x.cc",
      "double f(sim::Time t) {\n"
      "  // manet-lint: allow(float-time): RTT estimator is defined over\n"
      "  // real seconds; fixed-op math, bit-stable per seed.\n"
      "  return t.toSeconds();\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

// --------------------------------------------------------- iostream-include

TEST(ManetLintTest, IostreamFlaggedInSrcOnly) {
  EXPECT_TRUE(hasRule(lintSource("src/util/x.cc", "#include <iostream>\n"),
                      "iostream-include"));
  EXPECT_TRUE(lintSource("examples/x.cpp", "#include <iostream>\n").empty());
  EXPECT_TRUE(lintSource("tests/x.cc", "#include <iostream>\n").empty());
}

// ----------------------------------------------------------- shared-mutable

TEST(ManetLintTest, SharedMutableFlagsStaticLocal) {
  const auto fs = lintSource(
      "src/core/x.cc", "int next() { static int counter = 0; return ++counter; }\n");
  ASSERT_TRUE(hasRule(fs, "shared-mutable"));
  EXPECT_EQ(lineOf(fs, "shared-mutable"), 1);
}

TEST(ManetLintTest, SharedMutableFlagsThreadLocalAndGlobals) {
  EXPECT_TRUE(hasRule(
      lintSource("src/net/x.cc", "thread_local int t_count = 0;\n"),
      "shared-mutable"));
  EXPECT_TRUE(hasRule(
      lintSource("src/sim/x.cc", "std::atomic<int> g_flag{0};\n"),
      "shared-mutable"));
}

TEST(ManetLintTest, SharedMutableIgnoresConstAndFunctions) {
  EXPECT_TRUE(lintSource("src/core/x.cc",
                         "static const int kLimit = 8;\n"
                         "static constexpr double kPi = 3.14;\n")
                  .empty());
  EXPECT_TRUE(lintSource("src/core/x.cc",
                         "static int helper(int a) { return a + 1; }\n")
                  .empty());
}

TEST(ManetLintTest, SharedMutableSuppressible) {
  const auto fs = lintSource(
      "src/util/x.cc",
      "#include \"src/util/mutex.h\"\n"
      "// manet-lint: allow(shared-mutable, lock-discipline): stderr\n"
      "// serialization only, an external resource with no members\n"
      "static util::Mutex g_mutex;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(ManetLintTest, SharedMutableOutOfScopeOutsideSrc) {
  EXPECT_TRUE(
      lintSource("bench/x.cc", "static int g_progress = 0;\n").empty());
  EXPECT_TRUE(
      lintSource("tests/x_test.cc", "static int g_calls = 0;\n").empty());
}

// ---------------------------------------------------------------- causal-id

TEST(ManetLintTest, CausalIdFlagsUnlinkedPacketMake) {
  const auto fs = lintSource("src/core/x.cc",
                             "void f() {\n"
                             "  auto p = net::Packet::make();\n"
                             "  p->kind = net::PacketKind::kRouteError;\n"
                             "}\n");
  ASSERT_TRUE(hasRule(fs, "causal-id"));
  EXPECT_EQ(lineOf(fs, "causal-id"), 2);
}

TEST(ManetLintTest, CausalIdAcceptsNearbyCauseAssignment) {
  const auto fs = lintSource(
      "src/aodv/x.cc",
      "void f(const net::PacketPtr& req) {\n"
      "  auto p = net::Packet::make();\n"
      "  p->kind = net::PacketKind::kRouteReply;\n"
      "  p->causeUid = req->uid;\n"
      "}\n");
  EXPECT_FALSE(hasRule(fs, "causal-id"));
}

TEST(ManetLintTest, CausalIdRootOriginationSuppressible) {
  const auto fs = lintSource(
      "src/transport/x.cc",
      "void f() {\n"
      "  // manet-lint: allow(causal-id): new application data has no cause\n"
      "  auto p = net::Packet::make();\n"
      "}\n");
  EXPECT_FALSE(hasRule(fs, "causal-id"));
}

TEST(ManetLintTest, CausalIdExemptsFactoryAndNonProtocolCode) {
  // The factory definition itself (src/net/packet.cc) is out of scope.
  EXPECT_FALSE(hasRule(
      lintSource("src/net/packet.cc",
                 "std::shared_ptr<Packet> Packet::make() { return {}; }\n"),
      "causal-id"));
  // Tests and reporting layers may build packets freely.
  EXPECT_FALSE(hasRule(
      lintSource("tests/x_test.cc", "auto p = net::Packet::make();\n"),
      "causal-id"));
  EXPECT_FALSE(hasRule(
      lintSource("src/telemetry/x.cc", "auto p = net::Packet::make();\n"),
      "causal-id"));
}

// ------------------------------------------------------------ allow syntax

TEST(ManetLintTest, BareAllowIsItselfAFindingAndDoesNotSuppress) {
  const auto fs = lintSource("src/core/x.cc",
                             "// manet-lint: allow(raw-rng)\n"
                             "int f() { return rand(); }\n");
  EXPECT_TRUE(hasRule(fs, "bare-allow"));
  EXPECT_TRUE(hasRule(fs, "raw-rng"));
}

TEST(ManetLintTest, UnknownRuleInAllowIsFlagged) {
  const auto fs = lintSource(
      "src/core/x.cc", "// manet-lint: allow(raw-rgn): typo\nint x;\n");
  EXPECT_TRUE(hasRule(fs, "unknown-rule"));
}

TEST(ManetLintTest, AllowListsMultipleRules) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "// manet-lint: allow(raw-rng, float-time): doc example of both\n"
      "double f(sim::Time t) { return rand() * t.toSeconds(); }\n");
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------------------------- lexer

TEST(ManetLintTest, CommentsAndStringsAreNotMatched) {
  EXPECT_TRUE(lintSource("src/core/x.cc",
                         "// rand() and steady_clock are banned here\n"
                         "/* for (auto& e : someUnorderedMap) */\n"
                         "const char* s = \"rand() steady_clock\";\n")
                  .empty());
}

// ----------------------------------------------------------- lock-discipline

TEST(ManetLintTest, LockDisciplineFlagsUnguardedMutex) {
  const auto fs = lintSource("src/core/x.cc",
                             "#include \"src/util/mutex.h\"\n"
                             "class Tally {\n"
                             "  util::Mutex mu_;\n"
                             "  int hits_ = 0;\n"
                             "};\n");
  ASSERT_TRUE(hasRule(fs, "lock-discipline"));
  EXPECT_EQ(lineOf(fs, "lock-discipline"), 3);
}

TEST(ManetLintTest, LockDisciplineFlagsRawStdMutexToo) {
  EXPECT_TRUE(hasRule(lintSource("src/net/x.cc",
                                 "#include <mutex>\n"
                                 "std::mutex g_mu;\n"
                                 "// manet-lint: allow(shared-mutable): x\n"),
                      "lock-discipline"));
}

TEST(ManetLintTest, LockDisciplineAcceptsGuardedMembers) {
  const auto fs = lintSource("src/core/x.cc",
                             "#include \"src/util/mutex.h\"\n"
                             "class Tally {\n"
                             "  util::Mutex mu_;\n"
                             "  int hits_ GUARDED_BY(mu_) = 0;\n"
                             "};\n");
  EXPECT_FALSE(hasRule(fs, "lock-discipline"));
}

TEST(ManetLintTest, LockDisciplineSeesGuardInPairedHeader) {
  const auto fs = lintSource(
      "src/scenario/x.cc",
      "#include \"src/util/mutex.h\"\n"
      "util::Mutex Registry::mu_;\n",
      "class Registry {\n"
      "  static util::Mutex mu_;\n"
      "  static int count_ GUARDED_BY(mu_);\n"
      "};\n");
  EXPECT_FALSE(hasRule(fs, "lock-discipline"));
}

TEST(ManetLintTest, LockDisciplineExternalResourceSuppressible) {
  const auto fs = lintSource(
      "src/util/x.cc",
      "#include \"src/util/mutex.h\"\n"
      "util::Mutex& dirMutex() {\n"
      "  // manet-lint: allow(shared-mutable, lock-discipline): serializes\n"
      "  // filesystem mkdir, an external resource with no members\n"
      "  static util::Mutex m;\n"
      "  return m;\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(ManetLintTest, LockDisciplineExemptInMutexHeaderAndOutsideSrc) {
  EXPECT_TRUE(lintSource("src/util/mutex.h",
                         "#include <mutex>\n"
                         "class Mutex {\n  std::mutex mu_;\n};\n")
                  .empty());
  EXPECT_TRUE(lintSource("tests/x_test.cc",
                         "#include <mutex>\nstd::mutex g_mu;\n")
                  .empty());
}

// ------------------------------------------------------- annotation-coverage

TEST(ManetLintTest, AnnotationCoverageFlagsFileWithoutHeader) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "// manet-lint: allow(shared-mutable): audited observational counter\n"
      "static int g_count = 0;\n");
  ASSERT_TRUE(hasRule(fs, "annotation-coverage"));
  EXPECT_EQ(lineOf(fs, "annotation-coverage"), 1);
}

TEST(ManetLintTest, AnnotationCoverageAcceptsDirectInclude) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "#include \"src/util/thread_annotations.h\"\n"
      "// manet-lint: allow(shared-mutable): audited observational counter\n"
      "static int g_count = 0;\n");
  EXPECT_FALSE(hasRule(fs, "annotation-coverage"));
}

TEST(ManetLintTest, AnnotationCoverageAcceptsIncludeViaPairedHeader) {
  // logging.cc picks the annotation header up through logging.h.
  const auto fs = lintSource(
      "src/util/x.cc",
      "// manet-lint: allow(shared-mutable): audited observational counter\n"
      "static int g_count = 0;\n",
      "#include \"src/util/mutex.h\"\nclass X {};\n");
  EXPECT_FALSE(hasRule(fs, "annotation-coverage"));
}

TEST(ManetLintTest, AnnotationCoverageSuppressible) {
  const auto fs = lintSource(
      "src/core/x.cc",
      "// manet-lint: allow(shared-mutable, annotation-coverage): plain int\n"
      "// consumed by report binaries only\n"
      "static int g_flag = 0;\n");
  EXPECT_FALSE(hasRule(fs, "annotation-coverage"));
}

// ---------------------------------------------------------------- bare-lock

TEST(ManetLintTest, BareLockFlagsManualLockUnlock) {
  const auto fs = lintSource("src/net/x.cc",
                             "#include \"src/util/mutex.h\"\n"
                             "void f(util::Mutex& mu) {\n"
                             "  mu.lock();\n"
                             "  mu.unlock();\n"
                             "}\n");
  ASSERT_TRUE(hasRule(fs, "bare-lock"));
  EXPECT_EQ(lineOf(fs, "bare-lock"), 3);
}

TEST(ManetLintTest, BareLockFlagsPointerCallsToo) {
  EXPECT_TRUE(hasRule(
      lintSource("src/scenario/x.cc", "void f(M* m) { m->unlock(); }\n"),
      "bare-lock"));
}

TEST(ManetLintTest, BareLockAcceptsRaiiScopes) {
  const auto fs = lintSource("src/net/x.cc",
                             "#include \"src/util/mutex.h\"\n"
                             "void f(util::Mutex& mu) {\n"
                             "  const util::MutexLock lock(mu);\n"
                             "}\n");
  EXPECT_FALSE(hasRule(fs, "bare-lock"));
}

TEST(ManetLintTest, BareLockSuppressibleAndScoped) {
  const auto fs = lintSource(
      "src/scenario/x.cc",
      "void f(util::Mutex& mu) {\n"
      "  // manet-lint: allow(bare-lock): audited handoff to the callee\n"
      "  mu.lock();\n"
      "}\n");
  EXPECT_FALSE(hasRule(fs, "bare-lock"));
  EXPECT_TRUE(lintSource("src/util/mutex.h",
                         "void lock() { mu_.lock(); }\n")
                  .empty());
  EXPECT_TRUE(
      lintSource("bench/x.cc", "void f(std::mutex& m) { m.lock(); }\n")
          .empty());
}

// ------------------------------------------------------------------- SARIF

TEST(ManetLintTest, SarifReportHasGithubConsumableShape) {
  const std::vector<Finding> findings = {
      {"src/core/x.cc", 12, "raw-rng", "process-global RNG"},
      {"src/util/y.cc", 3, "bare-lock", "direct .lock()"},
  };
  std::string err;
  const auto doc = util::parseJson(sarifReport(findings), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->stringAt("version"), "2.1.0");
  ASSERT_NE(doc->find("runs"), nullptr);
  const auto& run = doc->find("runs")->asArray().at(0);
  const auto* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->stringAt("name"), "manet_lint");

  // Full rule catalog with stable ids in catalog order.
  const auto& ruleArr = driver->find("rules")->asArray();
  ASSERT_EQ(ruleArr.size(), rules().size());
  for (std::size_t i = 0; i < ruleArr.size(); ++i) {
    EXPECT_EQ(ruleArr[i].stringAt("id"), rules()[i].id);
    EXPECT_FALSE(
        ruleArr[i].find("shortDescription")->stringAt("text").empty());
    EXPECT_EQ(ruleArr[i].find("defaultConfiguration")->stringAt("level"),
              "error");
  }

  // One result per finding, ruleIndex pointing back into the catalog.
  const auto& results = run.find("results")->asArray();
  ASSERT_EQ(results.size(), findings.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stringAt("ruleId"), findings[i].rule);
    const auto idx =
        static_cast<std::size_t>(results[i].numberAt("ruleIndex", -1));
    ASSERT_LT(idx, rules().size());
    EXPECT_EQ(rules()[idx].id, findings[i].rule);
    const auto& loc = results[i].find("locations")->asArray().at(0);
    const auto* phys = loc.find("physicalLocation");
    ASSERT_NE(phys, nullptr);
    EXPECT_EQ(phys->find("artifactLocation")->stringAt("uri"),
              findings[i].file);
    EXPECT_EQ(phys->find("artifactLocation")->stringAt("uriBaseId"),
              "%SRCROOT%");
    EXPECT_EQ(phys->find("region")->numberAt("startLine"), findings[i].line);
  }
}

TEST(ManetLintTest, SarifEscapesMessageContent) {
  const std::vector<Finding> findings = {
      {"src/core/x.cc", 1, "raw-rng", "a \"quoted\"\nmessage\twith\\stuff"}};
  std::string err;
  const auto doc = util::parseJson(sarifReport(findings), &err);
  ASSERT_TRUE(doc.has_value()) << err;
}

TEST(ManetLintTest, SarifEmptyFindingsStillValidates) {
  std::string err;
  const auto doc = util::parseJson(sarifReport({}), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto& run = doc->find("runs")->asArray().at(0);
  EXPECT_TRUE(run.find("results")->asArray().empty());
}

// ----------------------------------------------------------- allow budgets

TEST(ManetLintTest, BudgetRoundTripsThroughFormatAndParse) {
  std::map<std::string, std::size_t> counts;
  counts["raw-rng"] = 2;
  counts["bare-lock"] = 1;
  std::vector<std::string> errors;
  const auto parsed = parseBudget(formatBudget(counts), &errors);
  EXPECT_TRUE(errors.empty());
  // formatBudget writes the full catalog; absent rules round-trip as zero.
  ASSERT_EQ(parsed.size(), rules().size());
  EXPECT_EQ(parsed.at("raw-rng"), 2u);
  EXPECT_EQ(parsed.at("bare-lock"), 1u);
  EXPECT_EQ(parsed.at("wall-clock"), 0u);
}

TEST(ManetLintTest, BudgetParserRejectsGarbage) {
  std::vector<std::string> errors;
  parseBudget("raw-rng two\nnot-a-rule 3\nraw-rng 1 extra\n", &errors);
  EXPECT_EQ(errors.size(), 3u);
}

TEST(ManetLintTest, CheckBudgetPassesAtBaselineFailsOnGrowth) {
  std::map<std::string, std::size_t> counts;
  counts["raw-rng"] = 3;
  std::map<std::string, std::size_t> budget;
  budget["raw-rng"] = 3;

  // Exactly at baseline: pass.
  std::string report;
  EXPECT_EQ(checkBudget(counts, budget, &report), 0);
  EXPECT_NE(report.find("allow budget OK"), std::string::npos);

  // One new allow: fail, naming the rule.
  counts["raw-rng"] = 4;
  report.clear();
  EXPECT_EQ(checkBudget(counts, budget, &report), 1);
  EXPECT_NE(report.find("over budget: raw-rng"), std::string::npos);

  // Baseline bump restores the pass.
  budget["raw-rng"] = 4;
  report.clear();
  EXPECT_EQ(checkBudget(counts, budget, &report), 0);

  // Slack is reported but does not fail.
  counts["raw-rng"] = 2;
  report.clear();
  EXPECT_EQ(checkBudget(counts, budget, &report), 0);
  EXPECT_NE(report.find("slack: raw-rng"), std::string::npos);
}

TEST(ManetLintTest, CheckBudgetTreatsMissingEntriesAsZero) {
  std::map<std::string, std::size_t> counts;
  counts["bare-lock"] = 1;
  EXPECT_EQ(checkBudget(counts, {}, nullptr), 1);
  EXPECT_EQ(checkBudget({}, {}, nullptr), 0);
}

// ------------------------------------------------------- path normalization

TEST(ManetLintTest, LintTreeReportsRepoRelativePathsFromAnyRootSpelling) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "manet_lint_path_norm_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  {
    std::ofstream out(root / "src" / "core" / "bad.cc");
    out << "int f() { return rand(); }\n";
  }
  // A dot-segmented spelling of the same root must yield identical,
  // repo-relative findings (this is what CI's SARIF upload consumes).
  const std::string dotted = (root / "." / "src" / "..").string();
  const auto direct = lintTree(root.string());
  const auto viaDots = lintTree(dotted);
  fs::remove_all(root);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0].file, "src/core/bad.cc");
  ASSERT_EQ(viaDots.size(), 1u);
  EXPECT_EQ(viaDots[0].file, "src/core/bad.cc");
}

// ------------------------------------------------------------------- misc

TEST(ManetLintTest, FormatFindingIsGrepable) {
  const Finding f{"src/core/x.cc", 12, "raw-rng", "msg"};
  EXPECT_EQ(formatFinding(f), "src/core/x.cc:12: [raw-rng] msg");
}

TEST(ManetLintTest, EveryRuleHasARationale) {
  for (const RuleInfo& r : rules()) {
    EXPECT_FALSE(ruleRationale(r.id).empty()) << r.id;
  }
}

TEST(ManetLintTest, EveryRuleHasAnActionableFixHint) {
  for (const RuleInfo& r : rules()) {
    EXPECT_FALSE(ruleHint(r.id).empty()) << r.id;
  }
  EXPECT_TRUE(ruleHint("no-such-rule").empty());
}

TEST(ManetLintTest, SelfTestPasses) { EXPECT_EQ(runSelfTest(), 0); }

}  // namespace
}  // namespace manet::lint
