// End-to-end durability contract: a sweep SIGKILLed mid-campaign and
// resumed from its journal must produce byte-identical aggregate artifacts
// to an uninterrupted run, at any --jobs; and a cell that crashes or hangs
// under --isolate-cells is quarantined while the rest of the campaign
// completes and reports the failure through the journal and the exit code.
//
// Everything runs through the replay_runner helper binary (separate OS
// processes), because the interesting failure modes — an uncatchable
// SIGKILL, an abort() inside a cell, a supervisor reaping a hung child —
// only exist across process boundaries.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int runCmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -2;
}

std::string runner() { return std::string(REPLAY_RUNNER_PATH); }

const char* kPointA = "replay_sweep_pause_s=0";
const char* kPointB = "replay_sweep_pause_s=5";

/// Uninterrupted reference artifacts, produced once per test binary run.
struct Reference {
  std::string base;
  std::string pointA;
  std::string pointB;
};

const Reference& reference() {
  static const Reference ref = [] {
    Reference r;
    r.base = ::testing::TempDir() + "resume_ref";
    EXPECT_EQ(runCmd(runner() + " --sweep " + r.base + " 1"), 0);
    r.pointA = slurp(r.base + "." + kPointA + ".json");
    r.pointB = slurp(r.base + "." + kPointB + ".json");
    EXPECT_FALSE(r.pointA.empty());
    EXPECT_FALSE(r.pointB.empty());
    return r;
  }();
  return ref;
}

}  // namespace

TEST(ResumeDeterminismTest, KilledSweepResumesByteIdentically) {
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "resume_kill";
  const std::string journal = dir + "resume_kill.journal.jsonl";
  std::remove(journal.c_str());

  // Phase 1: SIGKILL after 2 of the 4 cells completed. The process dies by
  // signal — there is no chance to flush, export, or clean up; the fsynced
  // journal prefix is all that survives.
  const int killed = runCmd(runner() + " --sweep " + base +
                            " 1 --journal " + journal + " --kill-after 2");
  EXPECT_EQ(killed, 128 + SIGKILL);
  EXPECT_FALSE(slurp(journal).empty()) << "journal must survive the kill";

  // Phase 2: resume. Only the missing cells run; the artifacts must be
  // byte-identical to an uninterrupted campaign's.
  ASSERT_EQ(runCmd(runner() + " --sweep " + base + " 1 --journal " +
                   journal + " --resume"),
            0);
  EXPECT_EQ(slurp(base + "." + kPointA + ".json"), reference().pointA);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
}

TEST(ResumeDeterminismTest, ResumeWithParallelJobsIsByteIdentical) {
  // Resuming with a different worker count than the killed campaign used
  // must not change a byte: restored cells and freshly-run cells merge in
  // plan order, not completion order.
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "resume_par";
  const std::string journal = dir + "resume_par.journal.jsonl";
  std::remove(journal.c_str());

  const int killed = runCmd(runner() + " --sweep " + base +
                            " 1 --journal " + journal + " --kill-after 1");
  EXPECT_EQ(killed, 128 + SIGKILL);
  ASSERT_EQ(runCmd(runner() + " --sweep " + base + " 4 --journal " +
                   journal + " --resume"),
            0);
  EXPECT_EQ(slurp(base + "." + kPointA + ".json"), reference().pointA);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
}

TEST(ResumeDeterminismTest, FullJournalResumeRunsNothingAndMatches) {
  // Journal a complete campaign, then resume it: nothing re-runs (the
  // journal still only holds one generation of cell records) and the
  // exports are reproduced byte-identically purely from journaled results.
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "resume_full";
  const std::string journal = dir + "resume_full.journal.jsonl";
  std::remove(journal.c_str());

  ASSERT_EQ(runCmd(runner() + " --sweep " + base + " 1 --journal " + journal),
            0);
  const std::string journalAfterFirst = slurp(journal);
  ASSERT_EQ(runCmd(runner() + " --sweep " + base + " 1 --journal " +
                   journal + " --resume"),
            0);
  EXPECT_EQ(slurp(base + "." + kPointA + ".json"), reference().pointA);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
  // Resume appended a fresh campaign header but no new cell records.
  const std::string journalAfterResume = slurp(journal);
  EXPECT_EQ(journalAfterResume.rfind("\"type\":\"cell\""),
            journalAfterFirst.rfind("\"type\":\"cell\""));
}

TEST(ResumeDeterminismTest, CrashedCellIsQuarantinedRestOfSweepCompletes) {
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "quarantine_crash";
  const std::string journal = dir + "quarantine_crash.journal.jsonl";
  std::remove(journal.c_str());

  // Every cell of point A abort()s inside its supervised child process.
  // The campaign must finish anyway, export the healthy point
  // byte-identically, journal the quarantined cells, and exit nonzero.
  const int rc = runCmd(runner() + " --sweep " + base + " 2 --journal " +
                        journal + " --isolate --crash-cell " + kPointA);
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
  const std::string j = slurp(journal);
  EXPECT_NE(j.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(j.find(kPointA), std::string::npos);
}

TEST(ResumeDeterminismTest, IsolatedCellsReproduceInProcessResultsExactly) {
  // Supervised child execution must not perturb results: a fully isolated
  // sweep's artifacts byte-match the in-process reference.
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "isolate_clean";
  ASSERT_EQ(runCmd(runner() + " --sweep " + base + " 2 --isolate"), 0);
  EXPECT_EQ(slurp(base + "." + kPointA + ".json"), reference().pointA);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
}

TEST(ResumeDeterminismTest, HungCellIsKilledByWatchdogAndQuarantined) {
  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "quarantine_hang";
  const std::string journal = dir + "quarantine_hang.journal.jsonl";
  std::remove(journal.c_str());

  // Cells of point A sleep forever in their child; a 2s watchdog reaps
  // them. The healthy point still completes and exports byte-identically.
  const int rc = runCmd(runner() + " --sweep " + base + " 2 --journal " +
                        journal + " --isolate --hang-cell " +
                        std::string(kPointA) + " --cell-timeout 2");
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(slurp(base + "." + kPointB + ".json"), reference().pointB);
  const std::string j = slurp(journal);
  EXPECT_NE(j.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(j.find("timeout after"), std::string::npos);
}
