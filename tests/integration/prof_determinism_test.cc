// The profiler's core guarantee: profiling observes, never perturbs.
// A profiled run must be bit-identical to an unprofiled run — same metrics,
// same event count, same trace-record stream — because the profiler only
// reads the wall clock and fixed-size gauges (never sim time, never any
// simulation RNG stream, never a mutating accessor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "src/scenario/scenario.h"
#include "src/telemetry/export.h"

namespace manet::scenario {
namespace {

using sim::Time;

ScenarioConfig cfg() {
  ScenarioConfig c;
  c.numNodes = 15;
  c.field = {700.0, 350.0};
  c.numFlows = 4;
  c.packetsPerSecond = 2.0;
  c.duration = Time::seconds(30);
  c.mobilitySeed = 11;
  c.telemetry = telemetry::TelemetryConfig{};
  c.telemetry.ringCapacity = 200000;
  c.fault = {};
  c.prof = prof::ProfConfig{};
  return c;
}

// Packet uids come from a process-global counter; canonicalize to
// first-appearance order so runs can be compared record-for-record.
telemetry::TraceRecord canonical(
    telemetry::TraceRecord r, std::map<std::uint64_t, std::uint64_t>& ids) {
  if (r.uid != 0) {
    r.uid = ids.emplace(r.uid, ids.size() + 1).first->second;
  }
  return r;
}

TEST(ProfDeterminismTest, ProfiledRunBitIdenticalToUnprofiled) {
  ScenarioConfig plain = cfg();
  ScenarioConfig profiled = cfg();
  profiled.prof.enabled = true;
  profiled.prof.histograms = true;

  Scenario sa(plain);
  const RunResult a = sa.run();
  Scenario sb(profiled);
  const RunResult b = sb.run();

  // The full exported metrics object, field for field.
  EXPECT_EQ(telemetry::metricsJson(a.metrics, a.duration),
            telemetry::metricsJson(b.metrics, b.duration));
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.schedQueuePeak, b.schedQueuePeak);

  // The profiled run actually profiled something.
  EXPECT_FALSE(a.profile.enabled);
  ASSERT_TRUE(b.profile.enabled);
  EXPECT_EQ(b.profile.totalDispatches, b.eventsExecuted);
  EXPECT_GT(b.profile.totalSelfNs, 0u);
  const auto& mac =
      b.profile.categories[static_cast<std::size_t>(prof::Category::kMac)];
  EXPECT_GT(mac.dispatches, 0u);
  EXPECT_GT(mac.selfNs, 0u);

  // The trace streams are identical record for record.
  ASSERT_NE(sa.ring(), nullptr);
  ASSERT_NE(sb.ring(), nullptr);
  const auto ra = sa.ring()->snapshot();
  const auto rb = sb.ring()->snapshot();
  ASSERT_EQ(ra.size(), rb.size());
  ASSERT_LT(ra.size(), sa.ring()->capacity()) << "ring wrapped; grow it";
  std::map<std::uint64_t, std::uint64_t> idsA, idsB;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(telemetry::toJson(canonical(ra[i].rec, idsA), ra[i].note),
              telemetry::toJson(canonical(rb[i].rec, idsB), rb[i].note))
        << "first divergence at record " << i;
  }
}

TEST(ProfDeterminismTest, ProfiledRunBitIdenticalUnderFaults) {
  // Fault injection uses its own RNG stream; the profiler's fault-category
  // scopes and gauge reads must not disturb it either.
  ScenarioConfig plain = cfg();
  plain.fault.churn.fraction = 0.2;
  plain.fault.churn.meanUpTimeSec = 8.0;
  plain.fault.churn.meanDownTimeSec = 2.0;
  plain.fault.noise.meanGapSec = 7.0;
  plain.fault.noise.meanDurationSec = 0.5;
  plain.fault.seed = 17;
  ScenarioConfig profiled = plain;
  profiled.prof.enabled = true;

  const RunResult a = runScenario(plain);
  const RunResult b = runScenario(profiled);
  EXPECT_EQ(telemetry::metricsJson(a.metrics, a.duration),
            telemetry::metricsJson(b.metrics, b.duration));
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_GT(a.metrics.faultNodeCrashes, 0u);
  const auto& fault =
      b.profile.categories[static_cast<std::size_t>(prof::Category::kFault)];
  EXPECT_GT(fault.dispatches, 0u);
}

TEST(ProfDeterminismTest, RunExportCarriesSchedulerCounters) {
  // Satellite guarantee: queue peak / dispatch totals are in the run JSON
  // even with profiling off (they are tracked unconditionally).
  const RunResult r = runScenario(cfg());
  EXPECT_GT(r.schedQueuePeak, 0u);
  const std::string json = telemetry::runResultJson(r);
  EXPECT_NE(json.find("\"sched_queue_peak\":"), std::string::npos);
  EXPECT_NE(json.find("\"sched_total_dispatched\":"), std::string::npos);
  EXPECT_EQ(json.find("\"profile\":"), std::string::npos);

  ScenarioConfig pc = cfg();
  pc.prof.enabled = true;
  const RunResult rp = runScenario(pc);
  const std::string pjson = telemetry::runResultJson(rp);
  EXPECT_NE(pjson.find("\"profile\":"), std::string::npos);
  EXPECT_NE(pjson.find("\"categories\":"), std::string::npos);
}

TEST(ProfDeterminismTest, GaugePeaksArePopulated) {
  ScenarioConfig c = cfg();
  c.prof.enabled = true;
  const RunResult r = runScenario(c);
  // Route caches certainly held entries in a 30 s DSR run.
  EXPECT_GT(r.profile.gaugePeaks[static_cast<std::size_t>(
                prof::Gauge::kRouteCacheEntries)],
            0u);
}

// The hotspot layer's own determinism contract: every non-wall-time field
// is a pure function of the simulation, so two same-seed profiled runs
// must agree exactly — the property `manet_prof --diff` builds on.
TEST(ProfDeterminismTest, HotspotFieldsIdenticalAcrossSameSeedRuns) {
  ScenarioConfig c = cfg();
  c.prof.enabled = true;
  const RunResult a = runScenario(c);
  const RunResult b = runScenario(c);
  ASSERT_TRUE(a.profile.enabled);
  const prof::HotspotReport& ha = a.profile.hotspot;
  const prof::HotspotReport& hb = b.profile.hotspot;

  ASSERT_EQ(ha.entities.size(), hb.entities.size());
  for (std::size_t i = 0; i < ha.entities.size(); ++i) {
    EXPECT_EQ(ha.entities[i].node, hb.entities[i].node);
    EXPECT_EQ(ha.entities[i].activations, hb.entities[i].activations);
    EXPECT_EQ(ha.entities[i].framesHeard, hb.entities[i].framesHeard);
  }
  EXPECT_EQ(ha.fanout.transmissions, hb.fanout.transmissions);
  EXPECT_EQ(ha.fanout.radiosExamined, hb.fanout.radiosExamined);
  EXPECT_EQ(ha.fanout.radiosInRange, hb.fanout.radiosInRange);
  EXPECT_EQ(ha.fanout.maxInRange, hb.fanout.maxInRange);
  EXPECT_EQ(ha.queue.scheduled, hb.queue.scheduled);
  EXPECT_EQ(ha.queue.zeroHorizon, hb.queue.zeroHorizon);
  EXPECT_EQ(ha.queue.maxHorizonNs, hb.queue.maxHorizonNs);
  EXPECT_EQ(ha.queue.depthPeak, hb.queue.depthPeak);
  ASSERT_EQ(ha.queue.depthSamples.size(), hb.queue.depthSamples.size());
  for (std::size_t i = 0; i < ha.queue.depthSamples.size(); ++i) {
    EXPECT_EQ(ha.queue.depthSamples[i].simNs,
              hb.queue.depthSamples[i].simNs);
    EXPECT_EQ(ha.queue.depthSamples[i].depth,
              hb.queue.depthSamples[i].depth);
  }
  for (std::size_t i = 0; i < prof::kNumAllocSites; ++i) {
    EXPECT_EQ(ha.alloc[i].count, hb.alloc[i].count) << "site " << i;
    EXPECT_EQ(ha.alloc[i].bytes, hb.alloc[i].bytes) << "site " << i;
    EXPECT_EQ(ha.alloc[i].live, hb.alloc[i].live) << "site " << i;
    EXPECT_EQ(ha.alloc[i].highWater, hb.alloc[i].highWater) << "site " << i;
  }
  // Positions come from the deterministic mobility model.
  ASSERT_EQ(a.nodePositions.size(), b.nodePositions.size());
  for (std::size_t i = 0; i < a.nodePositions.size(); ++i) {
    EXPECT_EQ(a.nodePositions[i].x, b.nodePositions[i].x);
    EXPECT_EQ(a.nodePositions[i].y, b.nodePositions[i].y);
  }

  // And the hotspot layer saw real traffic in this scenario.
  EXPECT_GT(ha.fanout.transmissions, 0u);
  EXPECT_GT(ha.queue.scheduled, 0u);
  EXPECT_GT(ha.alloc[static_cast<std::size_t>(prof::AllocSite::kPacket)]
                .count,
            0u);
  EXPECT_GT(ha.alloc[static_cast<std::size_t>(prof::AllocSite::kEvent)]
                .count,
            0u);
  EXPECT_FALSE(ha.entities.empty());

  // Spatial heatmap export: one header plus one row per active entity,
  // prefixed with the scenario name.
  const std::string csv = telemetry::heatmapCsv(a, "det_check");
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv.rfind("scenario,node,x,y,activations", 0), 0u);
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, ha.entities.size() + 1);
  EXPECT_NE(csv.find("\ndet_check,"), std::string::npos);
  // Profiling off => no heatmap.
  EXPECT_TRUE(telemetry::heatmapCsv(runScenario(cfg()), "x").empty());
}

}  // namespace
}  // namespace manet::scenario
