// Engine-core equivalence: the three swappable hot-path machines — the
// neighbor index, the event queue, and the packet pool — are pure
// performance knobs. Whichever combination is selected, a run must stay
// byte-identical: same metrics, same event count, same trace contents.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/scenario/scenario.h"

namespace manet::scenario {
namespace {

using sim::Time;

ScenarioConfig baseCfg() {
  ScenarioConfig c;
  c.numNodes = 20;
  c.field = {900.0, 450.0};
  c.numFlows = 5;
  c.packetsPerSecond = 2.0;
  c.duration = Time::seconds(25);
  c.mobilitySeed = 7;
  c.telemetry = telemetry::TelemetryConfig{};
  c.telemetry.ringCapacity = 300000;
  c.fault = {};
  c.prof = {};
  return c;
}

struct Capture {
  RunResult result;
  std::vector<std::string> trace;  // canonicalized ring records
};

Capture run(const std::function<void(ScenarioConfig&)>& mutate) {
  ScenarioConfig c = baseCfg();
  mutate(c);
  Scenario s(c);
  Capture cap{s.run(), {}};
  // Canonicalize uids to first-appearance order, as the determinism tests
  // do (uid counters are thread-local, not scenario-local, under sweeps).
  std::map<std::uint64_t, std::uint64_t> ids;
  const auto ring = s.ring()->snapshot();
  EXPECT_LT(ring.size(), s.ring()->capacity()) << "ring wrapped; grow it";
  for (const auto& entry : ring) {
    telemetry::TraceRecord r = entry.rec;
    if (r.uid != 0) {
      r.uid = ids.emplace(r.uid, ids.size() + 1).first->second;
    }
    cap.trace.push_back(telemetry::toJson(r, entry.note));
  }
  return cap;
}

void expectIdentical(const Capture& a, const Capture& b) {
  EXPECT_EQ(a.result.eventsExecuted, b.result.eventsExecuted);
  EXPECT_EQ(a.result.metrics.dataOriginated, b.result.metrics.dataOriginated);
  EXPECT_EQ(a.result.metrics.dataDelivered, b.result.metrics.dataDelivered);
  EXPECT_EQ(a.result.metrics.delaySumSec, b.result.metrics.delaySumSec);
  EXPECT_EQ(a.result.metrics.totalDropped(), b.result.metrics.totalDropped());
  EXPECT_EQ(a.result.metrics.rreqTx, b.result.metrics.rreqTx);
  EXPECT_EQ(a.result.metrics.rrepTx, b.result.metrics.rrepTx);
  EXPECT_EQ(a.result.metrics.rerrTx, b.result.metrics.rerrTx);
  EXPECT_EQ(a.result.metrics.cacheHits, b.result.metrics.cacheHits);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "first divergence at record " << i;
  }
}

TEST(EngineEquivalenceTest, ScanAndGridDeliverByteIdenticalRuns) {
  const Capture scan =
      run([](ScenarioConfig& c) { c.phy.neighborIndex = phy::NeighborIndexKind::kScan; });
  const Capture grid =
      run([](ScenarioConfig& c) { c.phy.neighborIndex = phy::NeighborIndexKind::kGrid; });
  EXPECT_GT(scan.result.metrics.dataDelivered, 0u);
  expectIdentical(scan, grid);
}

TEST(EngineEquivalenceTest, HeapAndCalendarQueuesRunByteIdentical) {
  const Capture heap =
      run([](ScenarioConfig& c) { c.eventQueue = sim::EventQueueKind::kHeap; });
  const Capture cal = run(
      [](ScenarioConfig& c) { c.eventQueue = sim::EventQueueKind::kCalendar; });
  EXPECT_GT(heap.result.metrics.dataDelivered, 0u);
  expectIdentical(heap, cal);
}

TEST(EngineEquivalenceTest, PacketPoolOnOffRunsByteIdentical) {
  const bool saved = net::PacketPool::enabled();
  net::PacketPool::setEnabled(false);
  const Capture off = run([](ScenarioConfig&) {});
  net::PacketPool::setEnabled(true);
  const Capture on = run([](ScenarioConfig&) {});
  net::PacketPool::setEnabled(saved);
  EXPECT_GT(off.result.metrics.dataDelivered, 0u);
  expectIdentical(off, on);
}

TEST(EngineEquivalenceTest, GridFanoutExaminesFarFewerRadiosThanScan) {
  // The fan-out histogram (PR 8) measured the scan's waste: every
  // transmission examined all N-1 radios. With the grid active, examined
  // must collapse toward the true in-range count while in-range itself —
  // part of the simulated outcome — stays exactly equal.
  auto profiled = [](phy::NeighborIndexKind kind) {
    return run([kind](ScenarioConfig& c) {
      // Sparse field: the 3x3 candidate block covers a small fraction of
      // the area, so the examined/in-range gap is unambiguous.
      c.numNodes = 60;
      c.field = {3000.0, 3000.0};
      c.duration = Time::seconds(15);
      c.phy.neighborIndex = kind;
      c.prof.enabled = true;
    });
  };
  const Capture scan = profiled(phy::NeighborIndexKind::kScan);
  const Capture grid = profiled(phy::NeighborIndexKind::kGrid);
  const prof::FanoutReport& fs = scan.result.profile.hotspot.fanout;
  const prof::FanoutReport& fg = grid.result.profile.hotspot.fanout;
  ASSERT_GT(fs.transmissions, 0u);
  EXPECT_EQ(fs.transmissions, fg.transmissions);
  EXPECT_EQ(fs.radiosInRange, fg.radiosInRange);
  // Scan examines everyone; that is its definition.
  EXPECT_EQ(fs.radiosExamined, fs.transmissions * 59);
  // The grid examines only the candidate block: a superset of in-range,
  // but far below the full scan.
  EXPECT_GE(fg.radiosExamined, fg.radiosInRange);
  EXPECT_LT(fg.radiosExamined * 2, fs.radiosExamined);
}

}  // namespace
}  // namespace manet::scenario
