// Helper binary for the cross-process replay regression test: runs the
// scaled paper-baseline scenario (random-waypoint field, CBR flows, node
// churn) once and writes the deterministic structured run export — the
// volatile-free run JSON plus the sampled time series CSV. The companion
// gtest launches this binary twice, in two separate processes, and requires
// both artifacts to match byte-for-byte: the strongest end-to-end statement
// of "bit-identical replay" the repo can make.
//
//   replay_runner <out-base> [mobilitySeed]
//
// Writes <out-base>.json and <out-base>.series.csv.
//
// Sweep mode for the parallel-determinism regression test: run a small
// two-point, two-seed ExperimentPlan through the parallel runner and write
// one volatile-free aggregate JSON per point. The companion test diffs the
// artifacts of a --jobs 1 process against a --jobs 4 process.
//
//   replay_runner --sweep <out-base> <jobs>
//
// Writes <out-base>.<point-label>.json for every sweep point.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sweep.h"
#include "src/telemetry/export.h"

namespace {

int runSweep(const std::string& outBase, int jobs) {
  using namespace manet;
  scenario::ScenarioConfig base;
  base.numNodes = 20;
  base.field = {800.0, 300.0};
  base.numFlows = 5;
  base.duration = sim::Time::seconds(20);
  base.mobilitySeed = 4242;
  base.telemetry = {};  // exports are written explicitly below

  scenario::ExperimentPlan plan("replay_sweep", base);
  plan.axis(
      "pause_s", {0.0, 5.0},
      [](scenario::ScenarioConfig& c, double p) {
        c.pause = sim::Time::fromSeconds(p);
      },
      /*labelPrecision=*/0);

  scenario::RunnerOptions opts;
  opts.jobs = jobs;
  opts.replications = 2;
  opts.keepRuns = true;  // aggregateJson embeds the per-run entries
  const scenario::SweepResult result = scenario::runPlan(plan, opts);

  for (const scenario::PointResult& p : result.points) {
    const std::string json =
        telemetry::aggregateJson(p.agg, p.point.config, p.point.label) + "\n";
    if (!telemetry::writeFile(outBase + "." + p.point.label + ".json",
                              json)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--sweep") {
    if (argc < 4) {
      std::fprintf(stderr, "usage: replay_runner --sweep <out-base> <jobs>\n");
      return 2;
    }
    return runSweep(argv[2], static_cast<int>(std::strtol(argv[3], nullptr, 10)));
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: replay_runner <out-base> [mobilitySeed]\n");
    return 2;
  }
  const std::string outBase = argv[1];

  using namespace manet;
  scenario::ScenarioConfig c;
  // Scaled paper baseline: same field shape and traffic style as Marina &
  // Das's 50-node/1500x300m setup, shrunk to keep the test under a couple
  // of seconds while still exercising discovery, caching, salvaging,
  // sampling and fault handling.
  c.numNodes = 25;
  c.field = {1000.0, 300.0};
  c.numFlows = 8;
  c.packetsPerSecond = 3.0;
  c.duration = sim::Time::seconds(60);
  c.mobilitySeed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4242;
  c.telemetry.samplePeriod = sim::Time::seconds(2);
  c.fault.churn.fraction = 0.15;
  c.fault.churn.meanUpTimeSec = 20.0;
  c.fault.churn.meanDownTimeSec = 4.0;
  c.fault.seed = 99;

  const scenario::RunResult r = scenario::runScenario(c);
  const std::string json =
      telemetry::runResultJson(r, /*includeVolatile=*/false) + "\n";
  if (!telemetry::writeFile(outBase + ".json", json)) return 1;
  if (!telemetry::writeFile(outBase + ".series.csv",
                            telemetry::seriesCsv(r.series))) {
    return 1;
  }
  return 0;
}
