// Helper binary for the cross-process replay regression test: runs the
// scaled paper-baseline scenario (random-waypoint field, CBR flows, node
// churn) once and writes the deterministic structured run export — the
// volatile-free run JSON plus the sampled time series CSV. The companion
// gtest launches this binary twice, in two separate processes, and requires
// both artifacts to match byte-for-byte: the strongest end-to-end statement
// of "bit-identical replay" the repo can make.
//
//   replay_runner <out-base> [mobilitySeed]
//
// Writes <out-base>.json and <out-base>.series.csv.
//
// Sweep mode for the parallel-determinism regression test: run a small
// two-point, two-seed ExperimentPlan through the parallel runner and write
// one volatile-free aggregate JSON per point. The companion test diffs the
// artifacts of a --jobs 1 process against a --jobs 4 process.
//
//   replay_runner --sweep <out-base> <jobs> [durability flags]
//
// Writes <out-base>.<point-label>.json for every sweep point.
//
// Durability-test flags (resume_determinism_test):
//   --journal FILE      journal every cell through runPlan's JSONL journal
//   --resume            restore journaled cells before running
//   --kill-after N      raise SIGKILL when the (N+1)th cell would start
//                       (use with <jobs> = 1 for a deterministic cut)
//   --isolate           run cells in supervised child processes (re-execs
//                       this binary with --run-cell)
//   --crash-cell LABEL  cells of this point call abort() (crash injection)
//   --hang-cell LABEL   cells of this point sleep forever (hang injection)
//   --cell-timeout SEC  watchdog deadline for isolated cells
//   --retries N         extra attempts per failed cell
//   --run-cell L R OUT  (internal) child protocol
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sweep.h"
#include "src/telemetry/export.h"

namespace {

struct SweepFlags {
  std::string outBase;
  int jobs = 1;
  std::string journal;
  bool resume = false;
  long killAfter = -1;
  bool isolate = false;
  std::string crashCell;
  std::string hangCell;
  double cellTimeout = 0.0;
  int retries = 0;
  std::string runCellLabel;
  int runCellRep = 0;
  std::string runCellOut;
};

int runSweep(const char* self, const SweepFlags& f) {
  using namespace manet;
  scenario::ScenarioConfig base;
  base.numNodes = 20;
  base.field = {800.0, 300.0};
  base.numFlows = 5;
  base.duration = sim::Time::seconds(20);
  base.mobilitySeed = 4242;
  base.telemetry = {};  // exports are written explicitly below

  scenario::ExperimentPlan plan("replay_sweep", base);
  plan.axis(
      "pause_s", {0.0, 5.0},
      [](scenario::ScenarioConfig& c, double p) {
        c.pause = sim::Time::fromSeconds(p);
      },
      /*labelPrecision=*/0);

  scenario::RunnerOptions opts;
  opts.jobs = f.jobs;
  opts.replications = 2;
  opts.keepRuns = true;  // aggregateJson embeds the per-run entries
  opts.journalPath = f.journal;
  opts.resume = f.resume;
  opts.isolateCells = f.isolate;
  opts.cellTimeoutSec = f.cellTimeout;
  opts.maxAttempts = f.retries + 1;
  opts.runCellLabel = f.runCellLabel;
  opts.runCellRep = f.runCellRep;
  opts.runCellOut = f.runCellOut;
  if (f.isolate) {
    // Children rebuild the same plan and inherit the failure injection, so
    // a crash/hang scripted for a cell happens inside the child process.
    opts.selfCommand = {self, "--sweep", f.outBase, "1"};
    if (!f.crashCell.empty()) {
      opts.selfCommand.push_back("--crash-cell");
      opts.selfCommand.push_back(f.crashCell);
    }
    if (!f.hangCell.empty()) {
      opts.selfCommand.push_back("--hang-cell");
      opts.selfCommand.push_back(f.hangCell);
    }
  }

  // Cell counter for --kill-after: SIGKILL (uncatchable, like a real OOM
  // kill or power cut) as the (N+1)th cell begins, so exactly N cells made
  // it into the journal.
  static std::atomic<long> cellsStarted{0};
  const long killAfter = f.killAfter;
  const std::string crashCell = f.crashCell;
  const std::string hangCell = f.hangCell;
  opts.runFn = [killAfter, crashCell, hangCell](
                   const scenario::SweepPoint& point, int rep,
                   const scenario::ScenarioConfig& cfg) {
    (void)rep;
    if (killAfter >= 0 &&
        cellsStarted.fetch_add(1, std::memory_order_relaxed) >= killAfter) {
      std::raise(SIGKILL);
    }
    if (point.label == crashCell) std::abort();
    if (point.label == hangCell) {
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return scenario::runScenario(cfg);
  };

  const scenario::SweepResult result = scenario::runPlan(plan, opts);

  for (const scenario::PointResult& p : result.points) {
    const std::string json =
        telemetry::aggregateJson(p.agg, p.point.config, p.point.label) + "\n";
    if (!telemetry::writeFile(f.outBase + "." + p.point.label + ".json",
                              json)) {
      return 1;
    }
  }
  return scenario::reportFailures(result);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--sweep") {
    if (argc < 4) {
      std::fprintf(stderr,
                   "usage: replay_runner --sweep <out-base> <jobs> [flags]\n");
      return 2;
    }
    SweepFlags f;
    f.outBase = argv[2];
    f.jobs = static_cast<int>(std::strtol(argv[3], nullptr, 10));
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--journal") {
        f.journal = value();
      } else if (arg == "--resume") {
        f.resume = true;
      } else if (arg == "--kill-after") {
        f.killAfter = std::strtol(value(), nullptr, 10);
      } else if (arg == "--isolate") {
        f.isolate = true;
      } else if (arg == "--crash-cell") {
        f.crashCell = value();
      } else if (arg == "--hang-cell") {
        f.hangCell = value();
      } else if (arg == "--cell-timeout") {
        f.cellTimeout = std::strtod(value(), nullptr);
      } else if (arg == "--retries") {
        f.retries = static_cast<int>(std::strtol(value(), nullptr, 10));
      } else if (arg == "--run-cell") {
        if (i + 3 >= argc) {
          std::fprintf(stderr, "--run-cell expects LABEL REP OUT\n");
          return 2;
        }
        f.runCellLabel = argv[++i];
        f.runCellRep = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
        f.runCellOut = argv[++i];
      } else {
        std::fprintf(stderr, "unknown sweep flag '%s'\n", arg.c_str());
        return 2;
      }
    }
    return runSweep(argv[0], f);
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: replay_runner <out-base> [mobilitySeed]\n");
    return 2;
  }
  const std::string outBase = argv[1];

  using namespace manet;
  scenario::ScenarioConfig c;
  // Scaled paper baseline: same field shape and traffic style as Marina &
  // Das's 50-node/1500x300m setup, shrunk to keep the test under a couple
  // of seconds while still exercising discovery, caching, salvaging,
  // sampling and fault handling.
  c.numNodes = 25;
  c.field = {1000.0, 300.0};
  c.numFlows = 8;
  c.packetsPerSecond = 3.0;
  c.duration = sim::Time::seconds(60);
  c.mobilitySeed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4242;
  c.telemetry.samplePeriod = sim::Time::seconds(2);
  c.fault.churn.fraction = 0.15;
  c.fault.churn.meanUpTimeSec = 20.0;
  c.fault.churn.meanDownTimeSec = 4.0;
  c.fault.seed = 99;

  const scenario::RunResult r = scenario::runScenario(c);
  const std::string json =
      telemetry::runResultJson(r, /*includeVolatile=*/false) + "\n";
  if (!telemetry::writeFile(outBase + ".json", json)) return 1;
  if (!telemetry::writeFile(outBase + ".series.csv",
                            telemetry::seriesCsv(r.series))) {
    return 1;
  }
  return 0;
}
