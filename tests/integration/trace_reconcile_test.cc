// The telemetry acceptance test: a JSONL trace of a full run must reconcile
// EXACTLY with the aggregate Metrics counters — every counted drop has a
// trace record with the matching reason, every origination and delivery has
// its lifecycle event. This pins the trace hooks to the counter-increment
// sites; if either side moves, this test fails.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "src/scenario/scenario.h"
#include "src/telemetry/trace_reader.h"

namespace manet {
namespace {

using sim::Time;

/// Small but deliberately congested: few nodes relative to the flow count
/// and rate, moderate mobility, so send-buffer, IFQ, negative-cache, and
/// link-failure drops all occur.
scenario::ScenarioConfig congestedScenario() {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {900.0, 450.0};
  cfg.numFlows = 10;
  cfg.packetsPerSecond = 6.0;
  cfg.maxSpeed = 20.0;
  cfg.duration = Time::seconds(60);
  cfg.mobilitySeed = 3;
  cfg.telemetry = telemetry::TelemetryConfig{};  // env-independent
  cfg.fault = {};
  return cfg;
}

struct TraceCounts {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::map<std::string, std::uint64_t> dropsByReason;
  std::uint64_t lines = 0;
};

TEST(TraceReconcileTest, JsonlDropCountsMatchMetricsExactly) {
  const std::string path =
      ::testing::TempDir() + "/reconcile_trace.jsonl";
  std::remove(path.c_str());

  scenario::ScenarioConfig cfg = congestedScenario();
  cfg.telemetry.traceJsonlPath = path;
  const scenario::RunResult r = scenario::runScenario(cfg);
  const metrics::Metrics& m = r.metrics;

  const auto lines = telemetry::readJsonlFile(path);
  ASSERT_TRUE(lines.has_value());
  ASSERT_GT(lines->size(), 0u);

  TraceCounts c;
  for (const std::string& line : *lines) {
    ++c.lines;
    const auto ev = telemetry::jsonStringField(line, "ev");
    ASSERT_TRUE(ev.has_value()) << line;
    if (*ev == "pkt_originate") {
      ++c.originated;
    } else if (*ev == "pkt_deliver") {
      ++c.delivered;
    } else if (*ev == "pkt_forward") {
      ++c.forwarded;
    } else if (*ev == "pkt_drop") {
      const auto reason = telemetry::jsonStringField(line, "reason");
      ASSERT_TRUE(reason.has_value()) << line;
      ++c.dropsByReason[*reason];
    }
  }

  // Lifecycle events reconcile one-to-one with the data-plane counters.
  EXPECT_EQ(c.originated, m.dataOriginated);
  EXPECT_EQ(c.delivered, m.dataDelivered);

  // Every drop reason reconciles exactly with its Metrics counter.
  EXPECT_EQ(c.dropsByReason["send_buffer_timeout"], m.dropSendBufferTimeout);
  EXPECT_EQ(c.dropsByReason["send_buffer_overflow"], m.dropSendBufferOverflow);
  EXPECT_EQ(c.dropsByReason["ifq_full"], m.dropIfqFull);
  EXPECT_EQ(c.dropsByReason["link_fail_no_salvage"], m.dropLinkFailNoSalvage);
  EXPECT_EQ(c.dropsByReason["negative_cache"], m.dropNegativeCache);
  EXPECT_EQ(c.dropsByReason["ttl_expired"], m.dropTtlExpired);
  EXPECT_EQ(c.dropsByReason["mac_duplicate"], m.dropMacDuplicate);

  // No unknown reason slipped in.
  std::uint64_t tracedDrops = 0;
  for (const auto& [reason, n] : c.dropsByReason) tracedDrops += n;
  EXPECT_EQ(tracedDrops, m.totalDropped());

  // The scenario is congested enough to exercise the interesting reasons;
  // a quiet network would make the equalities above vacuous.
  EXPECT_GT(m.totalDropped(), 0u);
  EXPECT_GT(m.dataDelivered, 0u);
  EXPECT_GT(c.forwarded, 0u);

  std::remove(path.c_str());
}

TEST(TraceReconcileTest, FaultedRunReconcilesIncludingNodeDownDrops) {
  const std::string path =
      ::testing::TempDir() + "/reconcile_fault_trace.jsonl";
  std::remove(path.c_str());

  scenario::ScenarioConfig cfg = congestedScenario();
  cfg.telemetry.traceJsonlPath = path;
  cfg.fault.churn.fraction = 0.2;
  cfg.fault.churn.meanUpTimeSec = 10.0;
  cfg.fault.churn.meanDownTimeSec = 3.0;
  cfg.fault.noise.meanGapSec = 15.0;
  cfg.fault.noise.meanDurationSec = 0.5;
  const scenario::RunResult r = scenario::runScenario(cfg);
  const metrics::Metrics& m = r.metrics;

  const auto lines = telemetry::readJsonlFile(path);
  ASSERT_TRUE(lines.has_value());

  std::map<std::string, std::uint64_t> dropsByReason;
  std::uint64_t crashes = 0, recoveries = 0, bursts = 0;
  for (const std::string& line : *lines) {
    const auto ev = telemetry::jsonStringField(line, "ev");
    ASSERT_TRUE(ev.has_value());
    if (*ev == "pkt_drop") {
      const auto reason = telemetry::jsonStringField(line, "reason");
      ASSERT_TRUE(reason.has_value()) << line;
      ++dropsByReason[*reason];
    } else if (*ev == "node_crash") {
      ++crashes;
    } else if (*ev == "node_recover") {
      ++recoveries;
    } else if (*ev == "noise_burst") {
      ++bursts;
    }
  }

  // The new drop reason and fault events reconcile exactly with metrics.
  EXPECT_EQ(dropsByReason["node_down"], m.dropNodeDown);
  EXPECT_EQ(crashes, m.faultNodeCrashes);
  EXPECT_EQ(recoveries, m.faultNodeRecoveries);
  EXPECT_EQ(bursts, m.faultNoiseBursts);
  std::uint64_t tracedDrops = 0;
  for (const auto& [reason, n] : dropsByReason) tracedDrops += n;
  EXPECT_EQ(tracedDrops, m.totalDropped());

  // The churn profile must actually exercise the fault machinery.
  EXPECT_GT(m.faultNodeCrashes, 0u);
  EXPECT_GT(m.dataDelivered, 0u);

  std::remove(path.c_str());
}

TEST(TraceReconcileTest, CacheEventsArePresentAndConsistent) {
  const std::string path =
      ::testing::TempDir() + "/reconcile_cache_trace.jsonl";
  std::remove(path.c_str());

  scenario::ScenarioConfig cfg = congestedScenario();
  cfg.telemetry.traceJsonlPath = path;
  const scenario::RunResult r = scenario::runScenario(cfg);

  const auto lines = telemetry::readJsonlFile(path);
  ASSERT_TRUE(lines.has_value());

  std::uint64_t hits = 0, linkBreaks = 0, negInserts = 0, rerrs = 0;
  for (const std::string& line : *lines) {
    const auto ev = telemetry::jsonStringField(line, "ev");
    ASSERT_TRUE(ev.has_value());
    if (*ev == "cache_hit") ++hits;
    if (*ev == "link_break") ++linkBreaks;
    if (*ev == "neg_cache_insert") ++negInserts;
    if (*ev == "rerr_originate") ++rerrs;
  }
  EXPECT_EQ(hits, r.metrics.cacheHits);
  EXPECT_EQ(linkBreaks, r.metrics.linkBreaksDetected);
  EXPECT_EQ(negInserts, r.metrics.negCacheInsertions);
  EXPECT_GT(rerrs, 0u);

  std::remove(path.c_str());
}

TEST(TraceReconcileTest, RingSinkSeesTheSameStreamAsJsonl) {
  const std::string path =
      ::testing::TempDir() + "/reconcile_ring_trace.jsonl";
  std::remove(path.c_str());

  scenario::ScenarioConfig cfg = congestedScenario();
  cfg.duration = Time::seconds(20);
  cfg.telemetry.traceJsonlPath = path;
  cfg.telemetry.ringCapacity = 4096;  // totalRecorded() counts past capacity
  scenario::Scenario scn(cfg);
  scn.run();

  ASSERT_NE(scn.ring(), nullptr);
  const auto lines = telemetry::readJsonlFile(path);
  ASSERT_TRUE(lines.has_value());
  EXPECT_EQ(scn.ring()->totalRecorded(), lines->size());

  std::remove(path.c_str());
}

}  // namespace
}  // namespace manet
