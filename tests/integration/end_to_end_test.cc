// Whole-system integration: mobile scenarios through the Scenario harness.
#include <gtest/gtest.h>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"

namespace manet::scenario {
namespace {

using sim::Time;

ScenarioConfig smallScenario() {
  ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {800.0, 400.0};
  cfg.numFlows = 5;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = Time::seconds(60);
  cfg.pause = Time::zero();
  cfg.mobilitySeed = 3;
  return cfg;
}

TEST(EndToEndTest, MobileNetworkDeliversMostPackets) {
  const RunResult r = runScenario(smallScenario());
  const auto& m = r.metrics;
  // ~5 flows x 2 pkt/s x ~60 s.
  EXPECT_GT(m.dataOriginated, 500u);
  EXPECT_GT(m.packetDeliveryFraction(), 0.6);
  EXPECT_GT(m.overheadTx(), 0u);
  EXPECT_GT(m.avgDelaySec(), 0.0);
}

TEST(EndToEndTest, CountersAreInternallyConsistent) {
  const RunResult r = runScenario(smallScenario());
  const auto& m = r.metrics;
  EXPECT_LE(m.dataDelivered, m.dataOriginated);
  EXPECT_LE(m.invalidCacheHits, m.cacheHits);
  EXPECT_LE(m.goodRepliesReceived, m.repliesReceived);
  EXPECT_EQ(m.bytesDelivered, m.dataDelivered * 512u);
  // Every delivered packet implies at least one data-frame transmission.
  EXPECT_GE(m.dataFrameTx, m.dataDelivered);
  // CTS/ACK counts cannot exceed what RTS/DATA attempts could have evoked.
  EXPECT_LE(m.ctsTx, m.rtsTx);
}

TEST(EndToEndTest, StaticNetworkDeliversNearlyEverything) {
  ScenarioConfig cfg = smallScenario();
  // Nodes pause before their first journey (CMU model), so pause >= run
  // length means no mobility at all.
  cfg.pause = cfg.duration;
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.metrics.packetDeliveryFraction(), 0.99);
  // Without mobility the only possible "link breaks" are congestion-induced
  // fakes (retry exhaustion under contention) — rare at this load.
  EXPECT_LT(r.metrics.linkBreaksDetected, 20u);
}

TEST(EndToEndTest, ReplicationAggregatesAcrossSeeds) {
  ScenarioConfig cfg = smallScenario();
  cfg.duration = Time::seconds(30);
  int observed = 0;
  const AggregateResult agg =
      runReplicated(cfg, 2, [&](int, const RunResult&) { ++observed; });
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(agg.runs.size(), 2u);
  EXPECT_EQ(agg.deliveryFraction.count(), 2u);
  EXPECT_GT(agg.deliveryFraction.mean(), 0.0);
}

TEST(EndToEndTest, TrafficEndpointsFixedAcrossReplications) {
  ScenarioConfig cfg = smallScenario();
  Scenario a(cfg);
  cfg.mobilitySeed += 1;
  Scenario b(cfg);
  EXPECT_EQ(a.flows(), b.flows());
}

TEST(EndToEndTest, LinkCacheStructureDeliversTraffic) {
  ScenarioConfig cfg = smallScenario();
  cfg.duration = Time::seconds(40);
  cfg.dsr.cacheStructure = core::CacheStructure::kLink;
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.metrics.packetDeliveryFraction(), 0.5);
  EXPECT_GT(r.metrics.cacheHits, 0u);
}

TEST(EndToEndTest, LinkCacheComposesWithAllTechniques) {
  ScenarioConfig cfg = smallScenario();
  cfg.duration = Time::seconds(40);
  cfg.dsr = core::makeVariantConfig(core::Variant::kAll);
  cfg.dsr.cacheStructure = core::CacheStructure::kLink;
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.metrics.packetDeliveryFraction(), 0.5);
}

// Every protocol variant must run and deliver traffic in a mobile network.
class VariantSmokeTest : public ::testing::TestWithParam<core::Variant> {};

TEST_P(VariantSmokeTest, DeliversTraffic) {
  ScenarioConfig cfg = smallScenario();
  cfg.duration = Time::seconds(40);
  cfg.dsr = core::makeVariantConfig(GetParam());
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.metrics.packetDeliveryFraction(), 0.5)
      << "variant " << core::toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantSmokeTest,
    ::testing::Values(core::Variant::kBase, core::Variant::kWiderError,
                      core::Variant::kStaticExpiry,
                      core::Variant::kAdaptiveExpiry,
                      core::Variant::kNegCache, core::Variant::kAll),
    [](const ::testing::TestParamInfo<core::Variant>& paramInfo) {
      return core::toString(paramInfo.param);
    });

}  // namespace
}  // namespace manet::scenario
