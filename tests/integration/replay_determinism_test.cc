// Cross-process bit-identical replay: the same seeds must produce the same
// structured run export from two independent OS processes. In-process
// double-run tests (determinism_test.cc) cannot catch state leaking through
// process-global variables, hash randomization, or allocator layout; this
// one can. The export diffed here is the deterministic (volatile-free) run
// JSON plus the sampled time-series CSV, byte for byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string runOnce(const std::string& outBase, const std::string& seed) {
  const std::string cmd =
      std::string(REPLAY_RUNNER_PATH) + " " + outBase + " " + seed;
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  return outBase;
}

}  // namespace

TEST(ReplayDeterminismTest, SeparateProcessesProduceByteIdenticalExport) {
  const std::string dir = ::testing::TempDir();
  runOnce(dir + "replay_a", "4242");
  runOnce(dir + "replay_b", "4242");

  const std::string jsonA = slurp(dir + "replay_a.json");
  const std::string jsonB = slurp(dir + "replay_b.json");
  ASSERT_FALSE(jsonA.empty());
  // Sanity: the export really carries the simulation's results.
  EXPECT_NE(jsonA.find("\"metrics\""), std::string::npos);
  EXPECT_NE(jsonA.find("\"events_executed\""), std::string::npos);
  // And really excludes host-dependent fields.
  EXPECT_EQ(jsonA.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(jsonA, jsonB) << "deterministic run JSON diverged across "
                             "processes";

  const std::string seriesA = slurp(dir + "replay_a.series.csv");
  const std::string seriesB = slurp(dir + "replay_b.series.csv");
  ASSERT_FALSE(seriesA.empty());
  EXPECT_EQ(seriesA, seriesB) << "sampled time series diverged across "
                                 "processes";
}

TEST(ReplayDeterminismTest, ParallelSweepMatchesSerialAcrossProcesses) {
  // The parallel runner's determinism contract, cross-process: a --jobs 4
  // sweep in one process must write byte-identical aggregate artifacts to a
  // --jobs 1 sweep in another.
  const std::string dir = ::testing::TempDir();
  const std::string serialCmd = std::string(REPLAY_RUNNER_PATH) +
                                " --sweep " + dir + "sweep_serial 1";
  const std::string parallelCmd = std::string(REPLAY_RUNNER_PATH) +
                                  " --sweep " + dir + "sweep_parallel 4";
  ASSERT_EQ(std::system(serialCmd.c_str()), 0) << serialCmd;
  ASSERT_EQ(std::system(parallelCmd.c_str()), 0) << parallelCmd;

  for (const char* label :
       {"replay_sweep_pause_s=0", "replay_sweep_pause_s=5"}) {
    const std::string a = slurp(dir + "sweep_serial." + label + ".json");
    const std::string b = slurp(dir + "sweep_parallel." + label + ".json");
    ASSERT_FALSE(a.empty()) << label;
    // Per-run entries are embedded and volatile-free.
    EXPECT_NE(a.find("\"runs\""), std::string::npos) << label;
    EXPECT_EQ(a.find("wall_seconds"), std::string::npos) << label;
    EXPECT_EQ(a, b) << "sweep point " << label
                    << " diverged between --jobs 1 and --jobs 4";
  }
}

TEST(ReplayDeterminismTest, DifferentSeedDiverges) {
  const std::string dir = ::testing::TempDir();
  runOnce(dir + "replay_c", "4242");
  runOnce(dir + "replay_d", "4243");
  const std::string a = slurp(dir + "replay_c.json");
  const std::string b = slurp(dir + "replay_d.json");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // A different world must not accidentally byte-match — otherwise the
  // equality assertion above would be vacuous.
  EXPECT_NE(a, b);
}
