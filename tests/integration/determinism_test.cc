// Bit-reproducibility: the paper's method runs identical scenarios across
// protocol variants, which requires same-seed runs to be exactly equal.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "src/scenario/scenario.h"

namespace manet::scenario {
namespace {

using sim::Time;

ScenarioConfig cfg() {
  ScenarioConfig c;
  c.numNodes = 15;
  c.field = {700.0, 350.0};
  c.numFlows = 4;
  c.packetsPerSecond = 2.0;
  c.duration = Time::seconds(30);
  c.mobilitySeed = 11;
  return c;
}

void expectIdentical(const metrics::Metrics& a, const metrics::Metrics& b) {
  EXPECT_EQ(a.totalDropped(), b.totalDropped());
  EXPECT_EQ(a.dropNodeDown, b.dropNodeDown);
  EXPECT_EQ(a.faultNodeCrashes, b.faultNodeCrashes);
  EXPECT_EQ(a.faultNodeRecoveries, b.faultNodeRecoveries);
  EXPECT_EQ(a.faultLinkBlackouts, b.faultLinkBlackouts);
  EXPECT_EQ(a.faultNoiseBursts, b.faultNoiseBursts);
  EXPECT_EQ(a.faultTrafficSurges, b.faultTrafficSurges);
  EXPECT_EQ(a.dataOriginated, b.dataOriginated);
  EXPECT_EQ(a.dataDelivered, b.dataDelivered);
  EXPECT_EQ(a.delaySumSec, b.delaySumSec);
  EXPECT_EQ(a.rreqTx, b.rreqTx);
  EXPECT_EQ(a.rrepTx, b.rrepTx);
  EXPECT_EQ(a.rerrTx, b.rerrTx);
  EXPECT_EQ(a.rtsTx, b.rtsTx);
  EXPECT_EQ(a.ctsTx, b.ctsTx);
  EXPECT_EQ(a.ackTx, b.ackTx);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.invalidCacheHits, b.invalidCacheHits);
  EXPECT_EQ(a.linkBreaksDetected, b.linkBreaksDetected);
  EXPECT_EQ(a.repliesReceived, b.repliesReceived);
}

TEST(DeterminismTest, SameSeedBitIdenticalMetrics) {
  const RunResult a = runScenario(cfg());
  const RunResult b = runScenario(cfg());
  expectIdentical(a.metrics, b.metrics);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

TEST(DeterminismTest, DifferentMobilitySeedChangesOutcome) {
  ScenarioConfig c1 = cfg();
  ScenarioConfig c2 = cfg();
  c2.mobilitySeed += 1;
  const RunResult a = runScenario(c1);
  const RunResult b = runScenario(c2);
  // Practically impossible to match exactly if mobility actually changed.
  EXPECT_NE(a.eventsExecuted, b.eventsExecuted);
}

TEST(DeterminismTest, StochasticFaultPlanIsSeedDeterministic) {
  // A fully loaded stochastic plan (churn + blackouts + noise + surges)
  // must not break reproducibility: metrics, event counts, AND the
  // ring-trace contents are bit-identical across same-seed runs.
  ScenarioConfig c = cfg();
  c.telemetry = telemetry::TelemetryConfig{};
  c.telemetry.ringCapacity = 200000;
  c.fault = {};
  c.fault.churn.fraction = 0.2;
  c.fault.churn.meanUpTimeSec = 8.0;
  c.fault.churn.meanDownTimeSec = 2.0;
  c.fault.blackout.meanGapSec = 5.0;
  c.fault.noise.meanGapSec = 7.0;
  c.fault.noise.meanDurationSec = 0.5;
  c.fault.surge.meanGapSec = 9.0;
  c.fault.seed = 17;

  Scenario sa(c);
  const RunResult a = sa.run();
  Scenario sb(c);
  const RunResult b = sb.run();

  expectIdentical(a.metrics, b.metrics);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_GT(a.metrics.faultNodeCrashes, 0u);

  ASSERT_NE(sa.ring(), nullptr);
  ASSERT_NE(sb.ring(), nullptr);
  const auto ra = sa.ring()->snapshot();
  const auto rb = sb.ring()->snapshot();
  ASSERT_EQ(ra.size(), rb.size());
  ASSERT_LT(ra.size(), sa.ring()->capacity()) << "ring wrapped; grow it";
  // Packet uids come from a process-global counter, so the second run's
  // are offset; canonicalize to first-appearance order before comparing.
  const auto canonical = [](telemetry::TraceRecord r,
                            std::map<std::uint64_t, std::uint64_t>& ids) {
    if (r.uid != 0) {
      r.uid = ids.emplace(r.uid, ids.size() + 1).first->second;
    }
    return r;
  };
  std::map<std::uint64_t, std::uint64_t> idsA, idsB;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(telemetry::toJson(canonical(ra[i].rec, idsA), ra[i].note),
              telemetry::toJson(canonical(rb[i].rec, idsB), rb[i].note))
        << "first divergence at record " << i;
  }
}

TEST(DeterminismTest, FaultSeedChangesFaultPattern) {
  ScenarioConfig c = cfg();
  c.telemetry = telemetry::TelemetryConfig{};
  c.fault = {};
  c.fault.churn.fraction = 0.3;
  c.fault.churn.meanUpTimeSec = 5.0;
  c.fault.churn.meanDownTimeSec = 2.0;
  const RunResult a = runScenario(c);
  c.fault.seed += 1;
  const RunResult b = runScenario(c);
  // Different fault stream, same mobility/traffic: the runs must diverge.
  EXPECT_NE(a.eventsExecuted, b.eventsExecuted);
}

TEST(DeterminismTest, VariantChangeDoesNotPerturbWorkload) {
  // Same seeds, different protocol: the offered load (originated count)
  // must be identical — only protocol behaviour differs.
  ScenarioConfig c1 = cfg();
  ScenarioConfig c2 = cfg();
  c2.dsr = core::makeVariantConfig(core::Variant::kAll);
  const RunResult a = runScenario(c1);
  const RunResult b = runScenario(c2);
  EXPECT_EQ(a.metrics.dataOriginated, b.metrics.dataOriginated);
}

}  // namespace
}  // namespace manet::scenario
