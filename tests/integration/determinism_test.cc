// Bit-reproducibility: the paper's method runs identical scenarios across
// protocol variants, which requires same-seed runs to be exactly equal.
#include <gtest/gtest.h>

#include "src/scenario/scenario.h"

namespace manet::scenario {
namespace {

using sim::Time;

ScenarioConfig cfg() {
  ScenarioConfig c;
  c.numNodes = 15;
  c.field = {700.0, 350.0};
  c.numFlows = 4;
  c.packetsPerSecond = 2.0;
  c.duration = Time::seconds(30);
  c.mobilitySeed = 11;
  return c;
}

void expectIdentical(const metrics::Metrics& a, const metrics::Metrics& b) {
  EXPECT_EQ(a.dataOriginated, b.dataOriginated);
  EXPECT_EQ(a.dataDelivered, b.dataDelivered);
  EXPECT_EQ(a.delaySumSec, b.delaySumSec);
  EXPECT_EQ(a.rreqTx, b.rreqTx);
  EXPECT_EQ(a.rrepTx, b.rrepTx);
  EXPECT_EQ(a.rerrTx, b.rerrTx);
  EXPECT_EQ(a.rtsTx, b.rtsTx);
  EXPECT_EQ(a.ctsTx, b.ctsTx);
  EXPECT_EQ(a.ackTx, b.ackTx);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.invalidCacheHits, b.invalidCacheHits);
  EXPECT_EQ(a.linkBreaksDetected, b.linkBreaksDetected);
  EXPECT_EQ(a.repliesReceived, b.repliesReceived);
}

TEST(DeterminismTest, SameSeedBitIdenticalMetrics) {
  const RunResult a = runScenario(cfg());
  const RunResult b = runScenario(cfg());
  expectIdentical(a.metrics, b.metrics);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

TEST(DeterminismTest, DifferentMobilitySeedChangesOutcome) {
  ScenarioConfig c1 = cfg();
  ScenarioConfig c2 = cfg();
  c2.mobilitySeed += 1;
  const RunResult a = runScenario(c1);
  const RunResult b = runScenario(c2);
  // Practically impossible to match exactly if mobility actually changed.
  EXPECT_NE(a.eventsExecuted, b.eventsExecuted);
}

TEST(DeterminismTest, VariantChangeDoesNotPerturbWorkload) {
  // Same seeds, different protocol: the offered load (originated count)
  // must be identical — only protocol behaviour differs.
  ScenarioConfig c1 = cfg();
  ScenarioConfig c2 = cfg();
  c2.dsr = core::makeVariantConfig(core::Variant::kAll);
  const RunResult a = runScenario(c1);
  const RunResult b = runScenario(c2);
  EXPECT_EQ(a.metrics.dataOriginated, b.metrics.dataOriginated);
}

}  // namespace
}  // namespace manet::scenario
