// Causal-layer acceptance tests over full simulation runs:
//  * every stale-route drop in a churn-heavy run must be attributable to
//    the cache insertion that supplied the failed route (the tentpole's
//    100%-attribution criterion),
//  * attaching trace sinks (JSONL + Perfetto + dispatch spans) must leave
//    the simulation bit-identical to an untraced run,
//  * causal chains reconstructed from per-run traces must be byte-identical
//    whether the sweep ran with 1 worker or 4.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sweep.h"
#include "src/telemetry/causal.h"
#include "src/telemetry/export.h"
#include "src/telemetry/trace_reader.h"
#include "src/util/json.h"

namespace manet {
namespace {

using sim::Time;

/// Congested + churning: stale cache hits, link failures, and negative
/// cache activity all occur, so the attribution report has real rows.
scenario::ScenarioConfig churnScenario() {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {900.0, 450.0};
  cfg.numFlows = 10;
  cfg.packetsPerSecond = 6.0;
  cfg.maxSpeed = 20.0;
  cfg.duration = Time::seconds(60);
  cfg.mobilitySeed = 3;
  cfg.telemetry = telemetry::TelemetryConfig{};  // env-independent
  cfg.fault = {};
  cfg.fault.churn.fraction = 0.2;
  cfg.fault.churn.meanUpTimeSec = 10.0;
  cfg.fault.churn.meanDownTimeSec = 3.0;
  return cfg;
}

TEST(CausalAttributionTest, ChurnRunAttributesEveryStaleDrop) {
  const std::string path = ::testing::TempDir() + "/causal_churn.jsonl";
  std::remove(path.c_str());

  scenario::ScenarioConfig cfg = churnScenario();
  cfg.telemetry.traceJsonlPath = path;
  const scenario::RunResult r = scenario::runScenario(cfg);

  const auto checked = telemetry::readJsonlFileChecked(path);
  ASSERT_TRUE(checked.has_value());
  EXPECT_EQ(checked->skipped, 0u)
      << (checked->errors.empty() ? std::string() : checked->errors.front());

  const telemetry::CausalIndex idx =
      telemetry::CausalIndex::fromLines(checked->lines);
  const telemetry::StaleReport rep = idx.staleReport();

  // The scenario must actually produce stale-route drops...
  EXPECT_GT(rep.staleDrops, 0u);
  // ...and every single one must carry the provenance of the cache entry
  // that routed it onto the dead link (the tentpole acceptance criterion).
  EXPECT_EQ(rep.attributed, rep.staleDrops);
  EXPECT_GT(rep.distinctEntries, 0u);
  EXPECT_FALSE(rep.rows.empty());

  // The per-origin invalid-hit metrics see the same world: some origin
  // accumulated invalid hits during this run.
  std::uint64_t originTotal = 0;
  for (std::uint64_t n : r.metrics.invalidCacheHitsByOrigin) originTotal += n;
  EXPECT_EQ(originTotal, r.metrics.invalidCacheHits);

  std::remove(path.c_str());
}

TEST(CausalAttributionTest, TracedRunIsBitIdenticalToUntraced) {
  const std::string jsonl = ::testing::TempDir() + "/causal_bitid.jsonl";
  const std::string perfetto = ::testing::TempDir() + "/causal_bitid.json";
  std::remove(jsonl.c_str());
  std::remove(perfetto.c_str());

  scenario::ScenarioConfig cfg = churnScenario();
  cfg.duration = Time::seconds(30);
  const scenario::RunResult bare = scenario::runScenario(cfg);

  scenario::ScenarioConfig traced = cfg;
  traced.telemetry.traceJsonlPath = jsonl;
  traced.telemetry.perfettoPath = perfetto;
  traced.telemetry.dispatchSpanCapacity = 4096;
  const scenario::RunResult full = scenario::runScenario(traced);

  // Tracing is purely observational: same metrics, same event count.
  EXPECT_EQ(telemetry::metricsJson(bare.metrics, bare.duration),
            telemetry::metricsJson(full.metrics, full.duration));
  EXPECT_EQ(bare.eventsExecuted, full.eventsExecuted);

  // And the Perfetto artifact it produced is valid JSON.
  std::string err;
  std::ifstream in(perfetto, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = util::parseJson(ss.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_TRUE(doc->isArray());
  EXPECT_GT(doc->asArray().size(), 0u);

  std::remove(jsonl.c_str());
  std::remove(perfetto.c_str());
}

TEST(CausalAttributionTest, CausalChainsAreIdenticalAcrossSweepJobCounts) {
  namespace fs = std::filesystem;
  const std::string dirA = ::testing::TempDir() + "/causal_jobs1";
  const std::string dirB = ::testing::TempDir() + "/causal_jobs4";
  fs::create_directories(dirA);
  fs::create_directories(dirB);

  scenario::ScenarioConfig base = churnScenario();
  base.duration = Time::seconds(20);

  const auto runWithJobs = [&](const std::string& dir, int jobs) {
    scenario::ScenarioConfig cfg = base;
    cfg.telemetry.traceJsonlPath = dir + "/trace.jsonl";
    scenario::ExperimentPlan plan("jobs_test", cfg);
    plan.axis(
        "pause_s", {0.0},
        [](scenario::ScenarioConfig& c, double p) {
          c.pause = Time::fromSeconds(p);
        },
        /*labelPrecision=*/0);
    scenario::RunnerOptions opts;
    opts.replications = 2;
    opts.jobs = jobs;
    scenario::runPlan(plan, opts);
  };
  runWithJobs(dirA, 1);
  runWithJobs(dirB, 4);

  for (int rep = 0; rep < 2; ++rep) {
    const std::string suffix = "/trace.r" + std::to_string(rep) + ".jsonl";
    const auto a = telemetry::readJsonlFile(dirA + suffix);
    const auto b = telemetry::readJsonlFile(dirB + suffix);
    ASSERT_TRUE(a.has_value()) << dirA + suffix;
    ASSERT_TRUE(b.has_value()) << dirB + suffix;
    ASSERT_GT(a->size(), 0u);
    // The raw per-run traces are byte-identical across worker counts...
    EXPECT_EQ(*a, *b) << "rep " << rep;

    // ...and so is every rendered causal chain and the attribution report.
    const telemetry::CausalIndex ia = telemetry::CausalIndex::fromLines(*a);
    const telemetry::CausalIndex ib = telemetry::CausalIndex::fromLines(*b);
    EXPECT_EQ(ia.staleReport().render(), ib.staleReport().render());
    int compared = 0;
    for (const telemetry::CausalRecord& r : ia.records()) {
      if (r.cause == 0 || compared >= 25) continue;
      ++compared;
      EXPECT_EQ(ia.renderChain(r.uid), ib.renderChain(r.uid));
    }
    EXPECT_GT(compared, 0) << "trace has no derived packets to compare";
  }

  fs::remove_all(dirA);
  fs::remove_all(dirB);
}

}  // namespace
}  // namespace manet
