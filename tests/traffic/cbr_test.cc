#include "src/traffic/cbr.h"

#include <gtest/gtest.h>

#include "tests/testing/dsr_fixture.h"

namespace manet::traffic {
namespace {

using manet::testing::DsrFixture;
using sim::Time;

TEST(CbrTest, SendsAtConfiguredRate) {
  DsrFixture fx;
  fx.addLine(2);
  CbrSource::Params p;
  p.dst = 1;
  p.packetsPerSecond = 4.0;
  p.start = Time::seconds(1);
  p.stop = Time::seconds(11);
  CbrSource src(fx.dsr(0), fx.network->scheduler(), p);
  fx.run(Time::seconds(20));
  // Ticks at 1.0, 1.25, ..., 11.0 -> 41 packets.
  EXPECT_EQ(src.packetsSent(), 41u);
  EXPECT_EQ(fx.metrics().dataOriginated, 41u);
  EXPECT_EQ(fx.metrics().dataDelivered, 41u);
}

TEST(CbrTest, StopsAtStopTime) {
  DsrFixture fx;
  fx.addLine(2);
  CbrSource::Params p;
  p.dst = 1;
  p.packetsPerSecond = 2.0;
  p.start = Time::zero() + Time::millis(1);
  p.stop = Time::seconds(5);
  CbrSource src(fx.dsr(0), fx.network->scheduler(), p);
  fx.run(Time::seconds(30));
  const auto sentByStop = src.packetsSent();
  EXPECT_LE(sentByStop, 11u);
  EXPECT_GE(sentByStop, 10u);
}

TEST(CbrTest, PayloadAndFlowIdPropagate) {
  DsrFixture fx;
  fx.addLine(2);
  CbrSource::Params p;
  p.dst = 1;
  p.packetsPerSecond = 1.0;
  p.payloadBytes = 256;
  p.start = Time::millis(1);
  p.stop = Time::seconds(3);
  p.flowId = 9;
  CbrSource src(fx.dsr(0), fx.network->scheduler(), p);
  fx.run(Time::seconds(5));
  EXPECT_EQ(fx.metrics().bytesDelivered,
            fx.metrics().dataDelivered * 256u);
}

}  // namespace
}  // namespace manet::traffic
