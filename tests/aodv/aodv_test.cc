// AODV protocol tests: discovery, hop-by-hop forwarding, sequence-number
// freshness, intermediate replies and error handling.
#include "src/aodv/aodv_agent.h"

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::aodv {
namespace {

using sim::Time;

// An AODV-flavored fixture mirroring testing::DsrFixture.
struct AodvFixture {
  explicit AodvFixture(const AodvConfig& cfg = {}, std::uint64_t seed = 1) {
    net::NetworkConfig nc;
    nc.protocol = net::Protocol::kAodv;
    nc.aodv = cfg;
    network = std::make_unique<net::Network>(nc, seed);
  }
  net::Node& addStatic(Vec2 pos) {
    return network->addNode(std::make_unique<mobility::StaticMobility>(pos));
  }
  net::Node& addTeleport(Vec2 a, Vec2 b, sim::Time at) {
    return network->addNode(
        std::make_unique<manet::testing::TeleportMobility>(a, b, at));
  }
  void addLine(int n, double spacing = 200.0) {
    for (int i = 0; i < n; ++i) addStatic({i * spacing, 0.0});
  }
  void run(sim::Time until) { network->run(until); }
  metrics::Metrics& metrics() { return network->metrics(); }
  AodvAgent& aodv(net::NodeId id) { return network->node(id).aodv(); }

  std::unique_ptr<net::Network> network;
};

TEST(AodvTest, MultiHopDiscoveryAndDelivery) {
  AodvFixture fx;
  fx.addLine(4);
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  EXPECT_EQ(fx.metrics().dataDelivered, 1u);
  const auto* r = fx.aodv(0).route(3);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->valid);
  EXPECT_EQ(r->nextHop, 1u);
  EXPECT_EQ(r->hopCount, 3u);
}

TEST(AodvTest, ReversePathBuiltDuringDiscovery) {
  AodvFixture fx;
  fx.addLine(4);
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  // Every node on the path knows the way back to the originator.
  const auto* back = fx.aodv(3).route(0);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->nextHop, 2u);
  const auto* mid = fx.aodv(2).route(0);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->nextHop, 1u);
}

TEST(AodvTest, IntermediateNodeAnswersFromRouteTable) {
  AodvFixture fx;
  fx.addLine(4);
  fx.addStatic({200, 200});  // node 4, neighbor of node 1 only
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);
  const auto before = fx.metrics().cacheRepliesGenerated;
  fx.aodv(4).sendData(3, 512, 1, 0);
  fx.run(Time::seconds(4));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  // Node 1 had a valid fresh route and answered in the target's stead.
  EXPECT_GT(fx.metrics().cacheRepliesGenerated, before);
}

TEST(AodvTest, IntermediateRepliesCanBeDisabled) {
  AodvConfig cfg;
  cfg.intermediateReplies = false;
  AodvFixture fx(cfg);
  fx.addLine(4);
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  fx.aodv(0).sendData(3, 512, 0, 1);
  fx.run(Time::seconds(4));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  EXPECT_EQ(fx.metrics().cacheRepliesGenerated, 0u);
}

TEST(AodvTest, LinkBreakInvalidatesAndRecovers) {
  AodvFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({200, 0});
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));
  fx.addStatic({600, 0});
  fx.addStatic({400, 150});  // detour via node 4
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_EQ(fx.metrics().dataDelivered, 1u);

  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.aodv(0).sendData(3, 512, 0, 1);
  });
  // Check before the 10 s active-route lifetime can expire the new route.
  fx.run(Time::seconds(9));
  EXPECT_EQ(fx.metrics().dataDelivered, 2u);
  const auto* r = fx.aodv(0).route(3);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->valid);
}

TEST(AodvTest, RouteErrorPropagatesToPrecursors) {
  AodvFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({200, 0});
  fx.addTeleport({400, 0}, {5000, 5000}, Time::seconds(5));
  fx.addStatic({600, 0});
  fx.aodv(0).sendData(3, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_TRUE(fx.aodv(0).route(3)->valid);

  // Steady traffic so node 1 detects the break while holding node 0 as a
  // precursor; the RERR must invalidate node 0's route too.
  fx.network->scheduler().scheduleAt(Time::seconds(6), [&] {
    fx.aodv(0).sendData(3, 512, 0, 1);
  });
  fx.run(Time::seconds(10));
  const auto* r = fx.aodv(0).route(3);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->valid);
  EXPECT_GE(fx.metrics().rerrTx, 1u);
}

TEST(AodvTest, UnusedRoutesExpire) {
  AodvConfig cfg;
  cfg.activeRouteTimeout = Time::seconds(3);
  AodvFixture fx(cfg);
  fx.addLine(3);
  fx.aodv(0).sendData(2, 512, 0, 0);
  fx.run(Time::seconds(2));
  ASSERT_TRUE(fx.aodv(0).route(2)->valid);
  fx.run(Time::seconds(8));  // idle past the lifetime
  EXPECT_FALSE(fx.aodv(0).route(2)->valid);
}

TEST(AodvTest, OngoingTrafficKeepsRouteAlive) {
  AodvConfig cfg;
  cfg.activeRouteTimeout = Time::seconds(3);
  AodvFixture fx(cfg);
  fx.addLine(3);
  for (int i = 0; i < 10; ++i) {
    fx.network->scheduler().scheduleAt(Time::seconds(i) + Time::millis(7),
                                       [&fx, i] {
                                         fx.aodv(0).sendData(
                                             2, 512, 0,
                                             static_cast<std::uint64_t>(i));
                                       });
  }
  fx.run(Time::seconds(10) + Time::millis(500));
  EXPECT_EQ(fx.metrics().dataDelivered, 10u);
  EXPECT_TRUE(fx.aodv(0).route(2)->valid);
}

TEST(AodvTest, PacketsBufferDuringDiscovery) {
  AodvFixture fx;
  fx.addLine(4);
  for (int i = 0; i < 5; ++i) fx.aodv(0).sendData(3, 512, 0, i);
  fx.run(Time::seconds(3));
  EXPECT_EQ(fx.metrics().dataOriginated, 5u);
  EXPECT_EQ(fx.metrics().dataDelivered, 5u);
}

TEST(AodvTest, UnreachableDestinationDropsAfterTimeout) {
  AodvFixture fx;
  fx.addStatic({0, 0});
  fx.addStatic({5000, 0});
  fx.aodv(0).sendData(1, 512, 0, 0);
  fx.run(Time::seconds(40));
  EXPECT_EQ(fx.metrics().dataDelivered, 0u);
  EXPECT_EQ(fx.metrics().dropSendBufferTimeout, 1u);
  EXPECT_GE(fx.metrics().floodRequestsSent, 2u);  // retried with backoff
}

TEST(AodvTest, MobileScenarioDeliversTraffic) {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {800.0, 400.0};
  cfg.numFlows = 5;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = Time::seconds(60);
  cfg.pause = Time::zero();
  cfg.mobilitySeed = 3;
  cfg.protocol = net::Protocol::kAodv;
  const auto r = scenario::runScenario(cfg);
  EXPECT_GT(r.metrics.packetDeliveryFraction(), 0.7);
}

TEST(AodvTest, DeterministicAcrossRuns) {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 15;
  cfg.field = {700.0, 350.0};
  cfg.numFlows = 4;
  cfg.duration = Time::seconds(30);
  cfg.protocol = net::Protocol::kAodv;
  const auto a = scenario::runScenario(cfg);
  const auto b = scenario::runScenario(cfg);
  EXPECT_EQ(a.metrics.dataDelivered, b.metrics.dataDelivered);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

}  // namespace
}  // namespace manet::aodv
