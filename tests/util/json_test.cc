// util::parseJson: the minimal parser that reads back the repo's own
// nested JSON output (BENCH_*.json, structured run exports).
#include <gtest/gtest.h>

#include "src/util/json.h"

namespace manet::util {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_TRUE(parseJson("true")->asBool());
  EXPECT_FALSE(parseJson("false")->asBool(true));
  EXPECT_DOUBLE_EQ(parseJson("42")->asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-3.5e2")->asNumber(), -350.0);
  EXPECT_EQ(parseJson("\"hi\"")->asString(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  const char* doc =
      "{\"a\": [1, 2, {\"b\": \"x\"}], \"c\": {\"d\": true}, \"e\": null}";
  const auto v = parseJson(doc);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->isObject());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  ASSERT_EQ(a->asArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->asArray()[1].asNumber(), 2.0);
  EXPECT_EQ(a->asArray()[2].stringAt("b"), "x");
  EXPECT_TRUE(v->find("c")->find("d")->asBool());
  EXPECT_TRUE(v->find("e")->isNull());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  const auto v = parseJson("\"a\\\"b\\\\c\\nd\\te\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->asString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ConvenienceAccessors) {
  const auto v = parseJson("{\"n\": 7, \"s\": \"str\"}");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->numberAt("n"), 7.0);
  EXPECT_DOUBLE_EQ(v->numberAt("missing", -1.0), -1.0);
  EXPECT_EQ(v->stringAt("s"), "str");
  EXPECT_EQ(v->stringAt("n", "fallback"), "fallback");  // wrong type
}

TEST(JsonTest, RejectsMalformedWithOffset) {
  std::string err;
  EXPECT_FALSE(parseJson("{\"a\": }", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
  err.clear();
  EXPECT_FALSE(parseJson("[1, 2", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parseJson("", &err).has_value());
  EXPECT_FALSE(parseJson("{} trailing", &err).has_value());
  EXPECT_FALSE(parseJson("{\"a\":1,}x", &err).has_value());
  EXPECT_FALSE(parseJson("\"unterminated", &err).has_value());
  EXPECT_FALSE(parseJson("nul", &err).has_value());
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(parseJson("[]")->asArray().empty());
  EXPECT_TRUE(parseJson("{}")->asObject().empty());
  EXPECT_TRUE(parseJson("  { }  ")->isObject());
}

TEST(JsonTest, WrongTypeAccessorsFallBack) {
  const auto v = parseJson("[1]");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->asObject().empty());
  EXPECT_EQ(v->asString(), "");
  EXPECT_DOUBLE_EQ(v->asNumber(9.0), 9.0);
  EXPECT_EQ(v->find("k"), nullptr);
}

}  // namespace
}  // namespace manet::util
