#include "src/util/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace manet::util {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path tmpDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

TEST(AtomicFileTest, WritesContentAndCreatesParents) {
  const fs::path dir = tmpDir("manet_atomic_parents");
  const fs::path target = dir / "a" / "b" / "out.json";
  ASSERT_TRUE(atomicWriteFile(target.string(), "{\"x\":1}"));
  EXPECT_EQ(slurp(target), "{\"x\":1}");
  fs::remove_all(dir);
}

TEST(AtomicFileTest, OverwriteReplacesWholeFile) {
  const fs::path dir = tmpDir("manet_atomic_overwrite");
  const fs::path target = dir / "out.txt";
  ASSERT_TRUE(atomicWriteFile(target.string(), "long old content here"));
  ASSERT_TRUE(atomicWriteFile(target.string(), "short"));
  EXPECT_EQ(slurp(target), "short");
  fs::remove_all(dir);
}

TEST(AtomicFileTest, LeavesNoTemporaryBehind) {
  const fs::path dir = tmpDir("manet_atomic_tmpfiles");
  ASSERT_TRUE(atomicWriteFile((dir / "out.txt").string(), "x"));
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // only the final file, no .tmp.<pid> residue
  fs::remove_all(dir);
}

TEST(AtomicFileTest, FailsOnUnwritableTarget) {
  const fs::path dir = tmpDir("manet_atomic_unwritable");
  // A regular file where a parent directory is needed: creation must fail
  // cleanly, not crash or leave partial state.
  ASSERT_TRUE(atomicWriteFile((dir / "blocker").string(), "x"));
  EXPECT_FALSE(
      atomicWriteFile((dir / "blocker" / "child.txt").string(), "data"));
  fs::remove_all(dir);
}

TEST(AtomicFileTest, AppendAddsNewlineTerminatedLines) {
  const fs::path dir = tmpDir("manet_atomic_append");
  const std::string path = (dir / "journal.jsonl").string();
  ASSERT_TRUE(appendLineDurable(path, "{\"a\":1}"));
  ASSERT_TRUE(appendLineDurable(path, "{\"b\":2}\n"));  // newline not doubled
  EXPECT_EQ(slurp(path), "{\"a\":1}\n{\"b\":2}\n");
  fs::remove_all(dir);
}

TEST(AtomicFileTest, AppendCreatesFileOnFirstUse) {
  const fs::path dir = tmpDir("manet_atomic_append_create");
  const std::string path = (dir / "sub" / "j.jsonl").string();
  ASSERT_TRUE(appendLineDurable(path, "first"));
  EXPECT_EQ(slurp(path), "first\n");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace manet::util
