#include "src/util/vec2.h"

#include <gtest/gtest.h>

namespace manet {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2}, b{3, 4};
  EXPECT_EQ(a + b, (Vec2{4, 6}));
  EXPECT_EQ(b - a, (Vec2{2, 2}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
}

TEST(Vec2Test, Norm) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 0}).norm(), 0.0);
}

TEST(Vec2Test, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {0, 250}), 250.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {4, 5}), 5.0);
  EXPECT_DOUBLE_EQ(distance({7, -2}, {7, -2}), 0.0);
}

TEST(Vec2Test, DistanceSymmetric) {
  const Vec2 a{12.5, -3.1}, b{-8.0, 44.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

}  // namespace
}  // namespace manet
