#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace manet::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setLogLevel(LogLevel::kTrace);
    setLogSink([this](LogLevel level, std::string_view msg) {
      captured_.emplace_back(level, std::string(msg));
    });
  }
  void TearDown() override {
    setLogSink({});
    setLogLevel(LogLevel::kNone);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, SinkReceivesFormattedLine) {
  log(LogLevel::kInfo, "node %d dropped %s", 7, "pkt");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "node 7 dropped pkt");
}

TEST_F(LoggingTest, UnformattedLinePassesThrough) {
  log(LogLevel::kDebug, "plain message");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "plain message");
}

// Regression: logLine used to truncate at a fixed 512-byte stack buffer.
TEST_F(LoggingTest, LongLinesAreFormattedExactly) {
  const std::string payload(2000, 'x');
  log(LogLevel::kInfo, "route=[%s] done", payload.c_str());
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second.size(), payload.size() + 13);
  EXPECT_EQ(captured_[0].second, "route=[" + payload + "] done");
}

TEST_F(LoggingTest, BoundaryLengthLineIsExact) {
  // Exactly at and one past the internal stack-buffer size.
  for (std::size_t len : {511u, 512u, 513u}) {
    captured_.clear();
    const std::string payload(len, 'y');
    log(LogLevel::kInfo, "%s", payload.c_str());
    ASSERT_EQ(captured_.size(), 1u) << len;
    EXPECT_EQ(captured_[0].second, payload) << len;
  }
}

TEST_F(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  setLogLevel(LogLevel::kError);
  log(LogLevel::kInfo, "invisible %d", 1);
  log(LogLevel::kTrace, "also invisible");
  EXPECT_TRUE(captured_.empty());
  log(LogLevel::kError, "visible");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "visible");
}

TEST_F(LoggingTest, EmptySinkRestoresDefaultWithoutCrash) {
  setLogSink({});
  setLogLevel(LogLevel::kNone);
  log(LogLevel::kInfo, "goes nowhere %d", 3);
  EXPECT_TRUE(captured_.empty());
}

}  // namespace
}  // namespace manet::util
