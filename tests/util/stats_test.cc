#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace manet::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    a.add(v);
    all.add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = i * 0.37;
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.totalCount(), 4u);
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(9), 2u);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100);
  const double q25 = h.quantile(0.25);
  const double q50 = h.quantile(0.5);
  const double q75 = h.quantile(0.75);
  EXPECT_LE(q25, q50);
  EXPECT_LE(q50, q75);
  EXPECT_NEAR(q50, 50.0, 3.0);
}

TEST(HistogramTest, RejectsBadSpec) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(QuantileTest, ExactValues) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace manet::util
