// Hotspot-layer unit tests: histogram percentile edge cases, the
// allocation tracker (exact live / high-water bookkeeping via AllocToken),
// per-entity attribution with an injected wall clock, channel fan-out and
// event-queue analytics — and the zero-overhead-when-off contract: a
// disabled profiler records nothing through any hotspot path.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/prof/profiler.h"

namespace manet::prof {
namespace {

// ------------------------------------------- histogram percentile edges

TEST(HotspotHistogramTest, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.percentileNs(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentileNs(90), 0.0);
  EXPECT_DOUBLE_EQ(h.percentileNs(99), 0.0);
}

TEST(HotspotHistogramTest, SingleSampleEveryPercentile) {
  LatencyHistogram h;
  h.record(7);
  // With one sample, every percentile must land in its bucket (values 4..7
  // share the [7, 8) sub-bucket boundary behaviour: low <= p < high).
  const int b = LatencyHistogram::bucketIndex(7);
  for (double p : {0.1, 50.0, 90.0, 99.0, 100.0}) {
    const double v = h.percentileNs(p);
    EXPECT_GE(v, static_cast<double>(LatencyHistogram::bucketLowNs(b)))
        << "p" << p;
    EXPECT_LE(v, static_cast<double>(LatencyHistogram::bucketHighNs(b)))
        << "p" << p;
  }
}

TEST(HotspotHistogramTest, AllSamplesInTopBucket) {
  // The top bucket's exclusive bound is unrepresentable and saturates at
  // uint64 max; percentiles over a distribution living entirely there must
  // stay inside the bucket and not overflow.
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(~0ull);
  const int top = LatencyHistogram::bucketIndex(~0ull);
  EXPECT_EQ(h.bucketCount(top), 10u);
  EXPECT_EQ(h.maxNs(), ~0ull);
  for (double p : {50.0, 90.0, 99.0}) {
    const double v = h.percentileNs(p);
    EXPECT_GE(v, static_cast<double>(LatencyHistogram::bucketLowNs(top)));
    EXPECT_LE(v, static_cast<double>(LatencyHistogram::bucketHighNs(top)));
  }
}

TEST(HotspotHistogramTest, PercentilesMonotonicInP) {
  // p50 <= p90 <= p99 must hold for any recorded distribution; sweep a
  // few shapes (uniform, bimodal, heavy-tail).
  const auto check = [](const LatencyHistogram& h, const char* what) {
    double last = 0.0;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      const double v = h.percentileNs(p);
      EXPECT_GE(v, last) << what << " at p" << p;
      last = v;
    }
  };
  LatencyHistogram uniform;
  for (std::uint64_t v = 0; v < 1000; ++v) uniform.record(v);
  check(uniform, "uniform");
  LatencyHistogram bimodal;
  for (int i = 0; i < 500; ++i) bimodal.record(10);
  for (int i = 0; i < 500; ++i) bimodal.record(1000000);
  check(bimodal, "bimodal");
  LatencyHistogram tail;
  for (int i = 0; i < 990; ++i) tail.record(50);
  for (int i = 0; i < 10; ++i) tail.record(1ull << 40);
  check(tail, "heavy-tail");
}

// -------------------------------------------------------- alloc tracker

TEST(AllocTrackerTest, CountsBytesLiveHighWater) {
  AllocTracker t;
  t.setUnitBytes(AllocSite::kPacket, 100);
  t.recordAlloc(AllocSite::kPacket);
  t.recordAlloc(AllocSite::kPacket, 28);  // variable-size tail
  const AllocSiteStats& s = t.site(AllocSite::kPacket);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.bytes, 228u);
  EXPECT_EQ(s.live, 2u);
  EXPECT_EQ(s.highWater, 2u);
  t.releaseAlloc(AllocSite::kPacket);
  EXPECT_EQ(t.site(AllocSite::kPacket).live, 1u);
  EXPECT_EQ(t.site(AllocSite::kPacket).highWater, 2u);  // peak sticks
  t.recordAlloc(AllocSite::kPacket);
  t.recordAlloc(AllocSite::kPacket);
  EXPECT_EQ(t.site(AllocSite::kPacket).live, 3u);
  EXPECT_EQ(t.site(AllocSite::kPacket).highWater, 3u);
}

TEST(AllocTrackerTest, ReleaseSaturatesAtZero) {
  // Objects constructed before the tracker was installed release through
  // it on destruction; live must not wrap to 2^64-1.
  AllocTracker t;
  t.releaseAlloc(AllocSite::kEvent);
  EXPECT_EQ(t.site(AllocSite::kEvent).live, 0u);
}

TEST(AllocTrackerTest, InstallUninstallIf) {
  AllocTracker a, b;
  AllocTracker::install(&a);
  EXPECT_EQ(AllocTracker::current(), &a);
  // Uninstalling a tracker that is not current is a no-op (a nested
  // profiler must not clear its outer sibling's slot).
  AllocTracker::uninstallIf(&b);
  EXPECT_EQ(AllocTracker::current(), &a);
  AllocTracker::uninstallIf(&a);
  EXPECT_EQ(AllocTracker::current(), nullptr);
}

TEST(AllocTrackerTest, TokenTracksLifetimeIncludingCopies) {
  AllocTracker t;
  t.setUnitBytes(AllocSite::kPacket, 64);
  AllocTracker::install(&t);
  {
    AllocToken tok(AllocSite::kPacket);
    EXPECT_EQ(t.site(AllocSite::kPacket).live, 1u);
    {
      AllocToken copy(tok);  // clone records its own allocation
      EXPECT_EQ(t.site(AllocSite::kPacket).live, 2u);
      EXPECT_EQ(t.site(AllocSite::kPacket).highWater, 2u);
    }
    EXPECT_EQ(t.site(AllocSite::kPacket).live, 1u);
  }
  AllocTracker::uninstallIf(&t);
  EXPECT_EQ(t.site(AllocSite::kPacket).count, 2u);
  EXPECT_EQ(t.site(AllocSite::kPacket).bytes, 128u);
  EXPECT_EQ(t.site(AllocSite::kPacket).live, 0u);
  EXPECT_EQ(t.site(AllocSite::kPacket).highWater, 2u);
}

TEST(AllocTrackerTest, TokenNoopWithoutTracker) {
  AllocTracker::uninstallIf(AllocTracker::current());  // ensure empty slot
  AllocToken tok(AllocSite::kPacket);  // must not crash
  AllocToken copy(tok);
  (void)copy;
}

// --------------------------------------------------- profiler hotspot

std::uint64_t g_fakeNow = 0;
std::uint64_t fakeClock() { return g_fakeNow; }

ProfConfig enabledCfg() {
  ProfConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(HotspotProfilerTest, EntityAttributionExact) {
  Profiler p(enabledCfg(), &fakeClock);
  p.ensureEntities(4);
  g_fakeNow = 100;
  {
    Scope s(&p, Category::kMac, /*entity=*/2);
    g_fakeNow = 150;
  }
  {
    Scope s(&p, Category::kRouting, /*entity=*/2);
    g_fakeNow = 180;
  }
  {
    Scope s(&p, Category::kMac, /*entity=*/0);
    g_fakeNow = 190;
  }
  p.countFrameHeard(2);
  p.countFrameHeard(2);
  p.countFrameHeard(7);  // out of range: dropped, not UB

  const Report r = p.report();
  ASSERT_EQ(r.hotspot.entities.size(), 2u);  // nodes 1 and 3 were idle
  const EntityReport& n0 = r.hotspot.entities[0];
  const EntityReport& n2 = r.hotspot.entities[1];
  EXPECT_EQ(n0.node, 0u);
  EXPECT_EQ(n0.activations, 1u);
  EXPECT_EQ(n0.selfNs, 10u);
  EXPECT_EQ(n2.node, 2u);
  EXPECT_EQ(n2.activations, 2u);
  EXPECT_EQ(n2.selfNs, 80u);
  EXPECT_EQ(n2.framesHeard, 2u);
  EXPECT_EQ(n2.categorySelfNs[static_cast<std::size_t>(Category::kMac)],
            50u);
  EXPECT_EQ(n2.categorySelfNs[static_cast<std::size_t>(Category::kRouting)],
            30u);
  EXPECT_EQ(n2.categoryScopes[static_cast<std::size_t>(Category::kMac)], 1u);
}

TEST(HotspotProfilerTest, FanoutReport) {
  Profiler p(enabledCfg(), &fakeClock);
  p.recordFanout(10, 4);
  p.recordFanout(10, 6);
  p.recordFanout(10, 6);
  const Report r = p.report();
  const FanoutReport& f = r.hotspot.fanout;
  EXPECT_EQ(f.transmissions, 3u);
  EXPECT_EQ(f.radiosExamined, 30u);
  EXPECT_EQ(f.radiosInRange, 16u);
  EXPECT_EQ(f.maxInRange, 6u);
  EXPECT_GT(f.p50, 0.0);
  EXPECT_LE(f.p50, f.p99);
  std::uint64_t bucketTotal = 0;
  for (const HistBucket& b : f.buckets) bucketTotal += b.count;
  EXPECT_EQ(bucketTotal, 3u);
}

TEST(HotspotProfilerTest, HorizonAndZeroHorizon) {
  Profiler p(enabledCfg(), &fakeClock);
  p.recordHorizon(0);
  p.recordHorizon(1000);
  p.recordHorizon(2000000);
  const QueueReport& q = p.report().hotspot.queue;
  EXPECT_EQ(q.scheduled, 3u);
  EXPECT_EQ(q.zeroHorizon, 1u);
  EXPECT_EQ(q.maxHorizonNs, 2000000u);
  EXPECT_LE(q.horizonP50Ns, q.horizonP99Ns);
}

TEST(HotspotProfilerTest, QueueDepthSamplingDecimates) {
  Profiler p(enabledCfg(), &fakeClock);
  // Drive past 1024 samples at the initial stride of 64 dispatches; the
  // series must decimate in place (stride doubles) instead of growing, and
  // every retained sample must sit on the doubled stride.
  const std::int64_t ticks = 64 * 1300;
  for (std::int64_t i = 1; i <= ticks; ++i) {
    p.noteQueueDepth(/*simNowNs=*/i, /*depth=*/static_cast<std::size_t>(7));
  }
  const QueueReport& q = p.report().hotspot.queue;
  EXPECT_EQ(q.depthPeak, 7u);
  EXPECT_DOUBLE_EQ(q.depthMean, 7.0);
  ASSERT_FALSE(q.depthSamples.empty());
  EXPECT_LE(q.depthSamples.size(), 1024u);
  for (const QueueSample& s : q.depthSamples) {
    EXPECT_EQ(s.simNs % 128, 0) << "sample off the doubled stride";
    EXPECT_EQ(s.depth, 7u);
  }
}

TEST(HotspotProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler p(ProfConfig{}, &fakeClock);  // enabled = false
  p.ensureEntities(8);
  p.countFrameHeard(1);
  p.recordFanout(10, 5);
  p.recordHorizon(100);
  p.noteQueueDepth(1, 5);
  p.allocRecord(AllocSite::kPacket);
  EXPECT_EQ(p.entityCapacity(), 0u);  // ensureEntities did not allocate
  const Report r = p.report();
  EXPECT_FALSE(r.enabled);
  EXPECT_TRUE(r.hotspot.entities.empty());
  EXPECT_EQ(r.hotspot.fanout.transmissions, 0u);
  EXPECT_EQ(r.hotspot.queue.scheduled, 0u);
  EXPECT_EQ(r.hotspot.alloc[0].count, 0u);
}

TEST(HotspotProfilerTest, ProfilerInstallsTrackerWhileAlive) {
  {
    Profiler p(enabledCfg(), &fakeClock);
    EXPECT_EQ(AllocTracker::current(), &p.allocTracker());
    p.allocTracker().setUnitBytes(AllocSite::kEvent, 48);
    p.allocRecord(AllocSite::kEvent);
    EXPECT_EQ(p.report().hotspot.alloc[static_cast<std::size_t>(
                  AllocSite::kEvent)].bytes,
              48u);
  }
  EXPECT_EQ(AllocTracker::current(), nullptr);  // dtor uninstalled
}

TEST(HotspotProfilerTest, HotspotJsonContainsSections) {
  Profiler p(enabledCfg(), &fakeClock);
  p.ensureEntities(2);
  g_fakeNow = 0;
  {
    Scope s(&p, Category::kPhy, 1);
    g_fakeNow = 5;
  }
  p.recordFanout(4, 2);
  p.recordHorizon(100);
  const std::string json = hotspotJson(p.report().hotspot);
  for (const char* key :
       {"\"entities\":", "\"fanout\":", "\"queue\":", "\"alloc\":",
        "\"packet\":", "\"event\":", "\"trace_record\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace manet::prof
