// Profiler unit tests: histogram percentile correctness, nested-scope
// attribution (exact, via an injected fake wall clock), and the
// zero-allocation guarantee of the record path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/prof/profiler.h"

// Replaceable global operator new/delete with an allocation counter, so
// tests can assert the profiler's record path never touches the heap.
// Counting is process-wide; tests snapshot the counter around the region
// under test and avoid gtest macros inside it.
namespace {
std::uint64_t g_allocCount = 0;
}

void* operator new(std::size_t size) {
  ++g_allocCount;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace manet::prof {
namespace {

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogramTest, ExactBelowFourNs) {
  LatencyHistogram h;
  // Values 0..3 land in dedicated buckets: percentiles are exact.
  for (int i = 0; i < 100; ++i) h.record(1);
  for (int i = 0; i < 100; ++i) h.record(3);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_EQ(h.totalNs(), 100u * 1 + 100u * 3);
  EXPECT_EQ(h.maxNs(), 3u);
  EXPECT_DOUBLE_EQ(h.percentileNs(25), 1.0);
  EXPECT_DOUBLE_EQ(h.percentileNs(99), 3.0);
}

TEST(LatencyHistogramTest, BucketBoundsContainValue) {
  // Every recorded value must satisfy low <= v < high of its bucket.
  for (std::uint64_t v :
       {0ull, 1ull, 3ull, 4ull, 5ull, 7ull, 8ull, 100ull, 1023ull, 1024ull,
        999999ull, 1ull << 40, ~0ull}) {
    const int b = LatencyHistogram::bucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::bucketLowNs(b), v) << "value " << v;
    const std::uint64_t high = LatencyHistogram::bucketHighNs(b);
    // The top buckets saturate their (unrepresentable) exclusive bound.
    EXPECT_TRUE(high > v || high == ~0ull) << "value " << v;
  }
}

TEST(LatencyHistogramTest, BucketIndexMonotonic) {
  int last = -1;
  for (std::uint64_t v = 0; v < (1ull << 20); v = v < 16 ? v + 1 : v * 5 / 4) {
    const int b = LatencyHistogram::bucketIndex(v);
    EXPECT_GE(b, last) << "value " << v;
    last = b;
  }
}

TEST(LatencyHistogramTest, PercentileWithinBucketError) {
  // 4 linear sub-buckets per octave bound the relative quantile error at
  // ~12.5%. Record a bimodal distribution and check both modes.
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(10000);
  const double p50 = h.percentileNs(50);
  EXPECT_GE(p50, 100.0 * 0.875);
  EXPECT_LE(p50, 100.0 * 1.25);
  const double p99 = h.percentileNs(99);
  EXPECT_GE(p99, 10000.0 * 0.875);
  EXPECT_LE(p99, 10000.0 * 1.25);
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentileNs(50), 0.0);
}

// ------------------------------------------------------------- attribution

// Injected wall clock the tests advance explicitly.
std::uint64_t g_fakeNow = 0;
std::uint64_t fakeClock() { return g_fakeNow; }

ProfConfig enabledCfg() {
  ProfConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(ProfilerTest, ScopeSelfTimeExact) {
  Profiler p(enabledCfg(), &fakeClock);
  g_fakeNow = 100;
  {
    Scope s(&p, Category::kMac);
    g_fakeNow = 160;
  }
  const Report r = p.report();
  const auto& mac = r.categories[static_cast<std::size_t>(Category::kMac)];
  EXPECT_EQ(mac.scopes, 1u);
  EXPECT_EQ(mac.selfNs, 60u);
  EXPECT_EQ(mac.maxNs, 60u);
}

TEST(ProfilerTest, NestedScopeChargesInnerCategoryOnly) {
  Profiler p(enabledCfg(), &fakeClock);
  g_fakeNow = 1000;
  {
    Scope outer(&p, Category::kMac);
    g_fakeNow = 1050;  // 50 ns of MAC work before the nested call
    {
      Scope inner(&p, Category::kRouting);
      g_fakeNow = 1090;  // 40 ns of routing work
    }
    g_fakeNow = 1100;  // 10 ns of MAC work after
  }
  const Report r = p.report();
  const auto& mac = r.categories[static_cast<std::size_t>(Category::kMac)];
  const auto& routing =
      r.categories[static_cast<std::size_t>(Category::kRouting)];
  EXPECT_EQ(routing.selfNs, 40u);
  // Outer elapsed 100 ns minus the child's 40 ns = 60 ns of self time.
  EXPECT_EQ(mac.selfNs, 60u);
  EXPECT_EQ(r.totalSelfNs, 100u);
}

TEST(ProfilerTest, DoublyNestedAttribution) {
  Profiler p(enabledCfg(), &fakeClock);
  g_fakeNow = 0;
  {
    Scope a(&p, Category::kPhy);
    g_fakeNow = 10;
    {
      Scope b(&p, Category::kMac);
      g_fakeNow = 30;
      {
        Scope c(&p, Category::kRouting);
        g_fakeNow = 100;
      }
      g_fakeNow = 110;
    }
    g_fakeNow = 115;
  }
  const Report r = p.report();
  EXPECT_EQ(r.categories[static_cast<std::size_t>(Category::kRouting)].selfNs,
            70u);
  EXPECT_EQ(r.categories[static_cast<std::size_t>(Category::kMac)].selfNs,
            30u);  // 100 elapsed - 70 child
  EXPECT_EQ(r.categories[static_cast<std::size_t>(Category::kPhy)].selfNs,
            15u);  // 115 elapsed - 100 child
  EXPECT_EQ(r.totalSelfNs, 115u);
}

TEST(ProfilerTest, SameCategoryNestingDoesNotDoubleCount) {
  Profiler p(enabledCfg(), &fakeClock);
  g_fakeNow = 0;
  {
    Scope a(&p, Category::kRouting);
    g_fakeNow = 10;
    {
      Scope b(&p, Category::kRouting);
      g_fakeNow = 50;
    }
    g_fakeNow = 60;
  }
  const Report r = p.report();
  const auto& routing =
      r.categories[static_cast<std::size_t>(Category::kRouting)];
  // 40 inner self + 20 outer self = 60 total, the true elapsed time.
  EXPECT_EQ(routing.selfNs, 60u);
  EXPECT_EQ(routing.scopes, 2u);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler p(ProfConfig{}, &fakeClock);  // enabled = false
  g_fakeNow = 100;
  {
    Scope s(&p, Category::kMac);
    g_fakeNow = 200;
  }
  p.countDispatch(Category::kMac);
  p.notePeak(Gauge::kRouteCacheEntries, 99);
  const Report r = p.report();
  EXPECT_FALSE(r.enabled);
  EXPECT_EQ(r.categories[static_cast<std::size_t>(Category::kMac)].scopes,
            0u);
  EXPECT_EQ(r.totalDispatches, 0u);
  EXPECT_EQ(
      r.gaugePeaks[static_cast<std::size_t>(Gauge::kRouteCacheEntries)], 0u);
}

TEST(ProfilerTest, NullProfilerScopeIsInert) {
  g_fakeNow = 0;
  Scope s(nullptr, Category::kMac);  // must not crash or read the clock
  SUCCEED();
}

TEST(ProfilerTest, DispatchCountsAndGaugePeaks) {
  Profiler p(enabledCfg(), &fakeClock);
  p.countDispatch(Category::kPhy);
  p.countDispatch(Category::kPhy);
  p.countDispatch(Category::kFault);
  p.notePeak(Gauge::kSendBufOccupancy, 3);
  p.notePeak(Gauge::kSendBufOccupancy, 7);
  p.notePeak(Gauge::kSendBufOccupancy, 5);  // lower: must not lower the peak
  const Report r = p.report();
  EXPECT_EQ(r.categories[static_cast<std::size_t>(Category::kPhy)].dispatches,
            2u);
  EXPECT_EQ(
      r.categories[static_cast<std::size_t>(Category::kFault)].dispatches,
      1u);
  EXPECT_EQ(r.totalDispatches, 3u);
  EXPECT_EQ(r.gaugePeaks[static_cast<std::size_t>(Gauge::kSendBufOccupancy)],
            7u);
}

TEST(ProfilerTest, PercentilesInReport) {
  Profiler p(enabledCfg(), &fakeClock);
  for (int i = 0; i < 100; ++i) {
    g_fakeNow = 1000 * static_cast<std::uint64_t>(i);
    Scope s(&p, Category::kTraffic);
    g_fakeNow += 100;  // every scope takes exactly 100 ns
  }
  const Report r = p.report();
  const auto& t = r.categories[static_cast<std::size_t>(Category::kTraffic)];
  EXPECT_EQ(t.scopes, 100u);
  EXPECT_EQ(t.selfNs, 100u * 100u);
  // All samples identical: every percentile lands in the same bucket.
  EXPECT_GE(t.p50Ns, 100.0 * 0.875);
  EXPECT_LE(t.p50Ns, 100.0 * 1.25);
  EXPECT_GE(t.p99Ns, 100.0 * 0.875);
  EXPECT_LE(t.p99Ns, 100.0 * 1.25);
}

TEST(ProfilerTest, ReportJsonHasExpectedKeys) {
  Profiler p(enabledCfg(), &fakeClock);
  g_fakeNow = 0;
  {
    Scope s(&p, Category::kRouting);
    g_fakeNow = 500;
  }
  p.countDispatch(Category::kRouting);
  p.notePeak(Gauge::kNegCacheEntries, 4);
  const std::string json = toJson(p.report());
  EXPECT_NE(json.find("\"routing\""), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\":500"), std::string::npos);
  EXPECT_NE(json.find("\"neg_cache_entries_peak\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total_dispatches\":1"), std::string::npos);
  // Categories with no activity are omitted.
  EXPECT_EQ(json.find("\"transport\""), std::string::npos);
}

// ------------------------------------------------------------- allocations

TEST(ProfilerTest, RecordPathMakesNoAllocations) {
  Profiler p(enabledCfg(), &fakeClock);
  // Warm-up outside the measured region (none of this should allocate
  // either, but the assertion is about the steady-state record path).
  g_fakeNow = 0;
  const std::uint64_t before = g_allocCount;
  for (int i = 0; i < 1000; ++i) {
    Scope outer(&p, Category::kMac);
    g_fakeNow += 50;
    {
      Scope inner(&p, Category::kRouting);
      g_fakeNow += 30;
    }
    p.countDispatch(Category::kMac);
    p.notePeak(Gauge::kRouteCacheEntries,
               static_cast<std::uint64_t>(i % 64));
  }
  const std::uint64_t after = g_allocCount;
  EXPECT_EQ(after, before)
      << "profiler record path allocated on the heap";
}

TEST(ProfilerTest, DisabledPathMakesNoAllocationsAndNoClockReads) {
  Profiler p(ProfConfig{}, &fakeClock);
  g_fakeNow = 777;
  const std::uint64_t before = g_allocCount;
  for (int i = 0; i < 1000; ++i) {
    Scope s(&p, Category::kPhy);
    p.countDispatch(Category::kPhy);
  }
  EXPECT_EQ(g_allocCount, before);
  // A disabled scope never reads the clock, so report() sees nothing.
  EXPECT_EQ(p.report().totalSelfNs, 0u);
}

// ------------------------------------------------------------------ config

TEST(ProfConfigTest, FromEnvOverrides) {
  ::setenv("MANET_PROF", "1", 1);
  ::setenv("MANET_PROF_HIST", "0", 1);
  ::setenv("MANET_PROF_HEARTBEAT", "2.5", 1);
  const ProfConfig cfg = ProfConfig::fromEnv();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_FALSE(cfg.histograms);
  EXPECT_DOUBLE_EQ(cfg.heartbeatSec, 2.5);
  EXPECT_TRUE(cfg.installed());
  ::unsetenv("MANET_PROF");
  ::unsetenv("MANET_PROF_HIST");
  ::unsetenv("MANET_PROF_HEARTBEAT");
  const ProfConfig off = ProfConfig::fromEnv();
  EXPECT_FALSE(off.enabled);
  EXPECT_FALSE(off.installed());
}

TEST(ProfilerTest, PeakRssIsReadable) {
  // /proc/self/status should be available on the platforms we build on;
  // at minimum the accessor must not crash and should report something
  // plausible for a running test binary (> 1 MB).
  const std::uint64_t rss = readPeakRssBytes();
  EXPECT_GT(rss, 1u << 20);
}

}  // namespace
}  // namespace manet::prof
