// BENCH_*.json schema tests: serialize/parse round-trip and the regression
// detector's contract (the ISSUE's injected-slowdown self-test: a 25%
// slowdown must be flagged at a 20% threshold; a 10% one must pass).
#include <gtest/gtest.h>

#include "src/prof/bench_report.h"

namespace manet::prof {
namespace {

BenchReport sampleReport() {
  BenchReport r;
  r.label = "seed";
  BenchScenario s;
  s.name = "paper_baseline";
  s.repetitions = 3;
  s.events = 123456;
  s.wallSecondsMedian = 1.5;
  s.eventsPerSecMedian = 82304.0;
  s.wallSecondsAll = {1.6, 1.5, 1.7};
  s.peakRssBytes = 40000000;
  s.schedQueuePeak = 512;
  s.categorySelfSeconds.emplace_back("mac", 0.6);
  s.categorySelfSeconds.emplace_back("phy", 0.3);
  r.scenarios.push_back(s);
  s.name = "high_mobility";
  s.wallSecondsMedian = 2.0;
  r.scenarios.push_back(s);
  return r;
}

TEST(BenchReportTest, RoundTrip) {
  const BenchReport orig = sampleReport();
  std::string err;
  const auto parsed = parseBenchReport(toJson(orig), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->schemaVersion, kBenchSchemaVersion);
  EXPECT_EQ(parsed->label, "seed");
  ASSERT_EQ(parsed->scenarios.size(), 2u);
  const BenchScenario& s = parsed->scenarios[0];
  EXPECT_EQ(s.name, "paper_baseline");
  EXPECT_EQ(s.repetitions, 3);
  EXPECT_EQ(s.events, 123456u);
  EXPECT_DOUBLE_EQ(s.wallSecondsMedian, 1.5);
  EXPECT_DOUBLE_EQ(s.eventsPerSecMedian, 82304.0);
  ASSERT_EQ(s.wallSecondsAll.size(), 3u);
  EXPECT_DOUBLE_EQ(s.wallSecondsAll[2], 1.7);
  EXPECT_EQ(s.peakRssBytes, 40000000u);
  EXPECT_EQ(s.schedQueuePeak, 512u);
  ASSERT_EQ(s.categorySelfSeconds.size(), 2u);
  // JsonObject is ordered by key: mac before phy either way here.
  EXPECT_EQ(s.categorySelfSeconds[0].first, "mac");
  EXPECT_DOUBLE_EQ(s.categorySelfSeconds[0].second, 0.6);
}

TEST(BenchReportTest, RejectsWrongSchemaVersion) {
  std::string err;
  const auto parsed =
      parseBenchReport("{\"schema_version\":99,\"scenarios\":[]}", &err);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(BenchReportTest, RejectsMalformedJson) {
  std::string err;
  EXPECT_FALSE(parseBenchReport("{\"schema_version\":1,", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(BenchReportTest, FindByName) {
  const BenchReport r = sampleReport();
  ASSERT_NE(r.find("high_mobility"), nullptr);
  EXPECT_EQ(r.find("high_mobility")->wallSecondsMedian, 2.0);
  EXPECT_EQ(r.find("nope"), nullptr);
}

TEST(BenchCompareTest, FlagsInjectedSlowdownPastThreshold) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios[0].wallSecondsMedian *= 1.25;  // 25% slower
  cand.scenarios[1].wallSecondsMedian *= 1.10;  // 10% slower

  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  ASSERT_EQ(cmp.rows.size(), 2u);
  EXPECT_TRUE(cmp.rows[0].regressed);
  EXPECT_NEAR(cmp.rows[0].wallRatio, 1.25, 1e-9);
  EXPECT_FALSE(cmp.rows[1].regressed);
  EXPECT_TRUE(cmp.regressed);
}

TEST(BenchCompareTest, PassesWithinThreshold) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  for (BenchScenario& s : cand.scenarios) s.wallSecondsMedian *= 1.1;
  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, SpeedupNeverRegresses) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  for (BenchScenario& s : cand.scenarios) s.wallSecondsMedian *= 0.5;
  const BenchComparison cmp = compareBenchReports(base, cand, 0.0);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, ReportsMissingScenarios) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios.pop_back();
  BenchScenario extra;
  extra.name = "brand_new";
  extra.wallSecondsMedian = 1.0;
  cand.scenarios.push_back(extra);

  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  ASSERT_EQ(cmp.onlyInBaseline.size(), 1u);
  EXPECT_EQ(cmp.onlyInBaseline[0], "high_mobility");
  ASSERT_EQ(cmp.onlyInCandidate.size(), 1u);
  EXPECT_EQ(cmp.onlyInCandidate[0], "brand_new");
  // A vanished scenario is surfaced but is not itself a regression.
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, FormatMentionsVerdicts) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios[0].wallSecondsMedian *= 2.0;
  const std::string text =
      formatComparison(compareBenchReports(base, cand, 0.2));
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION DETECTED"), std::string::npos);
  const std::string ok =
      formatComparison(compareBenchReports(base, base, 0.2));
  EXPECT_NE(ok.find("within threshold"), std::string::npos);
  EXPECT_EQ(ok.find("REGRESSED"), std::string::npos);
}

}  // namespace
}  // namespace manet::prof
