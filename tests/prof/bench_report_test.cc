// BENCH_*.json schema tests: serialize/parse round-trip and the regression
// detector's contract (the ISSUE's injected-slowdown self-test: a 25%
// slowdown must be flagged at a 20% threshold; a 10% one must pass).
#include <gtest/gtest.h>

#include "src/prof/bench_report.h"

namespace manet::prof {
namespace {

BenchReport sampleReport() {
  BenchReport r;
  r.label = "seed";
  BenchScenario s;
  s.name = "paper_baseline";
  s.repetitions = 3;
  s.events = 123456;
  s.wallSecondsMedian = 1.5;
  s.eventsPerSecMedian = 82304.0;
  s.wallSecondsAll = {1.6, 1.5, 1.7};
  s.peakRssBytes = 40000000;
  s.schedQueuePeak = 512;
  s.categorySelfSeconds.emplace_back("mac", 0.6);
  s.categorySelfSeconds.emplace_back("phy", 0.3);
  r.scenarios.push_back(s);
  s.name = "high_mobility";
  s.wallSecondsMedian = 2.0;
  r.scenarios.push_back(s);
  return r;
}

TEST(BenchReportTest, RoundTrip) {
  const BenchReport orig = sampleReport();
  std::string err;
  const auto parsed = parseBenchReport(toJson(orig), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->schemaVersion, kBenchSchemaVersion);
  EXPECT_EQ(parsed->label, "seed");
  ASSERT_EQ(parsed->scenarios.size(), 2u);
  const BenchScenario& s = parsed->scenarios[0];
  EXPECT_EQ(s.name, "paper_baseline");
  EXPECT_EQ(s.repetitions, 3);
  EXPECT_EQ(s.events, 123456u);
  EXPECT_DOUBLE_EQ(s.wallSecondsMedian, 1.5);
  EXPECT_DOUBLE_EQ(s.eventsPerSecMedian, 82304.0);
  ASSERT_EQ(s.wallSecondsAll.size(), 3u);
  EXPECT_DOUBLE_EQ(s.wallSecondsAll[2], 1.7);
  EXPECT_EQ(s.peakRssBytes, 40000000u);
  EXPECT_EQ(s.schedQueuePeak, 512u);
  ASSERT_EQ(s.categorySelfSeconds.size(), 2u);
  // JsonObject is ordered by key: mac before phy either way here.
  EXPECT_EQ(s.categorySelfSeconds[0].first, "mac");
  EXPECT_DOUBLE_EQ(s.categorySelfSeconds[0].second, 0.6);
}

TEST(BenchReportTest, RejectsWrongSchemaVersion) {
  std::string err;
  const auto parsed =
      parseBenchReport("{\"schema_version\":99,\"scenarios\":[]}", &err);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(BenchReportTest, RejectsMalformedJson) {
  std::string err;
  EXPECT_FALSE(parseBenchReport("{\"schema_version\":1,", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(BenchReportTest, FindByName) {
  const BenchReport r = sampleReport();
  ASSERT_NE(r.find("high_mobility"), nullptr);
  EXPECT_EQ(r.find("high_mobility")->wallSecondsMedian, 2.0);
  EXPECT_EQ(r.find("nope"), nullptr);
}

TEST(BenchCompareTest, FlagsInjectedSlowdownPastThreshold) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios[0].wallSecondsMedian *= 1.25;  // 25% slower
  cand.scenarios[1].wallSecondsMedian *= 1.10;  // 10% slower

  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  ASSERT_EQ(cmp.rows.size(), 2u);
  EXPECT_TRUE(cmp.rows[0].regressed);
  EXPECT_NEAR(cmp.rows[0].wallRatio, 1.25, 1e-9);
  EXPECT_FALSE(cmp.rows[1].regressed);
  EXPECT_TRUE(cmp.regressed);
}

TEST(BenchCompareTest, PassesWithinThreshold) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  for (BenchScenario& s : cand.scenarios) s.wallSecondsMedian *= 1.1;
  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, SpeedupNeverRegresses) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  for (BenchScenario& s : cand.scenarios) s.wallSecondsMedian *= 0.5;
  const BenchComparison cmp = compareBenchReports(base, cand, 0.0);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, ReportsMissingScenarios) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios.pop_back();
  BenchScenario extra;
  extra.name = "brand_new";
  extra.wallSecondsMedian = 1.0;
  cand.scenarios.push_back(extra);

  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  ASSERT_EQ(cmp.onlyInBaseline.size(), 1u);
  EXPECT_EQ(cmp.onlyInBaseline[0], "high_mobility");
  ASSERT_EQ(cmp.onlyInCandidate.size(), 1u);
  EXPECT_EQ(cmp.onlyInCandidate[0], "brand_new");
  // A vanished scenario is surfaced but is not itself a regression.
  EXPECT_FALSE(cmp.regressed);
}

// ------------------------------------------------- schema v2: hotspot

BenchScenario hotspotScenario() {
  BenchScenario s;
  s.name = "with_hotspot";
  s.repetitions = 3;
  s.events = 5000;
  s.wallSecondsMedian = 0.5;
  s.schedQueuePeak = 64;
  s.hasHotspot = true;
  s.topNodes.push_back({4, 120.5, 80.25, 900, 210, 0.01});
  s.topNodes.push_back({1, 30.0, 45.0, 700, 180, 0.008});
  s.fanout.transmissions = 200;
  s.fanout.radiosExamined = 4000;
  s.fanout.radiosInRange = 1200;
  s.fanout.maxInRange = 9;
  s.fanout.p50 = 6.0;
  s.fanout.p90 = 8.0;
  s.fanout.p99 = 8.9;
  s.fanout.buckets.push_back({4, 8, 150});
  s.fanout.buckets.push_back({8, 16, 50});
  s.queue.scheduled = 5100;
  s.queue.zeroHorizon = 3;
  s.queue.maxHorizonNs = 900000;
  s.queue.horizonP50Ns = 1000.0;
  s.queue.horizonP90Ns = 50000.0;
  s.queue.horizonP99Ns = 800000.0;
  s.queue.horizonBuckets.push_back({0, 1024, 5000});
  s.queue.horizonBuckets.push_back({1024, 2048, 100});
  s.queue.depthPeak = 64;
  s.queue.depthMean = 31.5;
  s.queue.depthSamples.push_back({64000, 20});
  s.queue.depthSamples.push_back({128000, 40});
  s.alloc[0] = {500, 128000, 0, 30};
  s.alloc[1] = {5100, 326400, 0, 64};
  s.alloc[2] = {1000, 96000, 1000, 1000};
  return s;
}

TEST(BenchReportV2Test, HotspotRoundTrip) {
  BenchReport orig;
  orig.label = "v2";
  orig.scenarios.push_back(hotspotScenario());
  std::string err;
  const auto parsed = parseBenchReport(toJson(orig), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_EQ(parsed->scenarios.size(), 1u);
  const BenchScenario& s = parsed->scenarios[0];
  ASSERT_TRUE(s.hasHotspot);
  ASSERT_EQ(s.topNodes.size(), 2u);
  EXPECT_EQ(s.topNodes[0].node, 4u);
  EXPECT_DOUBLE_EQ(s.topNodes[0].x, 120.5);
  EXPECT_DOUBLE_EQ(s.topNodes[0].y, 80.25);
  EXPECT_EQ(s.topNodes[0].activations, 900u);
  EXPECT_EQ(s.topNodes[0].framesHeard, 210u);
  EXPECT_DOUBLE_EQ(s.topNodes[0].selfSeconds, 0.01);
  EXPECT_EQ(s.fanout.transmissions, 200u);
  ASSERT_EQ(s.fanout.buckets.size(), 2u);
  EXPECT_EQ(s.fanout.buckets[1].low, 8u);
  EXPECT_EQ(s.fanout.buckets[1].count, 50u);
  EXPECT_EQ(s.queue.scheduled, 5100u);
  EXPECT_EQ(s.queue.zeroHorizon, 3u);
  ASSERT_EQ(s.queue.depthSamples.size(), 2u);
  EXPECT_EQ(s.queue.depthSamples[1].simNs, 128000);
  EXPECT_EQ(s.queue.depthSamples[1].depth, 40u);
  EXPECT_EQ(s.alloc[2].count, 1000u);
  EXPECT_EQ(s.alloc[2].highWater, 1000u);
  // A full round-trip preserves every deterministic field exactly.
  EXPECT_TRUE(diffBenchReports(orig, *parsed).empty());
}

TEST(BenchReportV2Test, AcceptsV1Document) {
  // A v1 report (the committed BENCH_seed.json shape) has no hotspot key
  // and schema_version 1; it must parse with hasHotspot == false.
  const char* v1 =
      "{\"schema_version\":1,\"label\":\"seed\",\"scenarios\":["
      "{\"name\":\"paper_baseline\",\"repetitions\":3,\"events\":100,"
      "\"wall_seconds_median\":0.5,\"events_per_sec_median\":200.0,"
      "\"wall_seconds_all\":[0.5,0.5,0.6],\"peak_rss_bytes\":1000,"
      "\"sched_queue_peak\":10,\"category_self_seconds\":{\"mac\":0.1}}]}";
  std::string err;
  const auto parsed = parseBenchReport(v1, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->schemaVersion, 1);
  ASSERT_EQ(parsed->scenarios.size(), 1u);
  EXPECT_FALSE(parsed->scenarios[0].hasHotspot);
  EXPECT_TRUE(parsed->scenarios[0].topNodes.empty());
  // And compare must still work against it (the backward-compat contract).
  const BenchComparison cmp = compareBenchReports(*parsed, *parsed, 0.2);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchReportV2Test, CompareNamesWorstCategory) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios[0].wallSecondsMedian *= 2.0;
  cand.scenarios[0].categorySelfSeconds[1].second = 0.9;  // phy: 0.3 -> 0.9
  const BenchComparison cmp = compareBenchReports(base, cand, 0.2);
  ASSERT_TRUE(cmp.rows[0].regressed);
  EXPECT_EQ(cmp.rows[0].worstCategory, "phy");
  EXPECT_DOUBLE_EQ(cmp.rows[0].worstCategoryBaseSec, 0.3);
  EXPECT_DOUBLE_EQ(cmp.rows[0].worstCategoryCandSec, 0.9);
  const std::string text = formatComparison(cmp);
  EXPECT_NE(text.find("worst category: phy"), std::string::npos);
  EXPECT_NE(text.find("0.300000"), std::string::npos);
  EXPECT_NE(text.find("0.900000"), std::string::npos);
}

TEST(BenchDiffTest, IgnoresVolatileFlagsDeterministic) {
  BenchReport a;
  a.label = "a";
  a.scenarios.push_back(hotspotScenario());
  BenchReport b = a;
  // Volatile-only changes: invisible to the deterministic diff.
  b.label = "b";
  b.scenarios[0].wallSecondsMedian *= 3.0;
  b.scenarios[0].eventsPerSecMedian *= 3.0;
  b.scenarios[0].peakRssBytes += 12345;
  b.scenarios[0].topNodes[0].selfSeconds *= 5.0;
  EXPECT_TRUE(diffBenchReports(a, b).empty());

  // Each deterministic perturbation surfaces at least one delta.
  BenchReport c = a;
  c.scenarios[0].events += 1;
  EXPECT_FALSE(diffBenchReports(a, c).empty());
  c = a;
  c.scenarios[0].topNodes[0].activations += 1;
  EXPECT_FALSE(diffBenchReports(a, c).empty());
  c = a;
  c.scenarios[0].fanout.radiosInRange += 1;
  EXPECT_FALSE(diffBenchReports(a, c).empty());
  c = a;
  c.scenarios[0].queue.depthSamples[0].depth += 1;
  EXPECT_FALSE(diffBenchReports(a, c).empty());
  c = a;
  c.scenarios[0].alloc[1].highWater += 1;
  EXPECT_FALSE(diffBenchReports(a, c).empty());
}

TEST(BenchDiffTest, ReportsScenarioSetMismatch) {
  BenchReport a;
  a.scenarios.push_back(hotspotScenario());
  BenchReport b;  // empty
  const std::vector<std::string> deltas = diffBenchReports(a, b);
  ASSERT_FALSE(deltas.empty());
  EXPECT_NE(deltas[0].find("with_hotspot"), std::string::npos);
}

TEST(BenchCompareTest, FormatMentionsVerdicts) {
  const BenchReport base = sampleReport();
  BenchReport cand = sampleReport();
  cand.scenarios[0].wallSecondsMedian *= 2.0;
  const std::string text =
      formatComparison(compareBenchReports(base, cand, 0.2));
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION DETECTED"), std::string::npos);
  const std::string ok =
      formatComparison(compareBenchReports(base, base, 0.2));
  EXPECT_NE(ok.find("within threshold"), std::string::npos);
  EXPECT_EQ(ok.find("REGRESSED"), std::string::npos);
}

}  // namespace
}  // namespace manet::prof
