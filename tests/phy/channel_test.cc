#include "src/phy/channel.h"

#include <gtest/gtest.h>

#include <optional>

#include "src/mobility/mobility_model.h"
#include "src/phy/radio.h"
#include "src/sim/scheduler.h"

namespace manet::phy {
namespace {

using mobility::StaticMobility;
using sim::Scheduler;
using sim::Time;

mac::Frame makeFrame(net::NodeId src, net::NodeId dst) {
  mac::Frame f;
  f.type = mac::FrameType::kData;
  f.src = src;
  f.dst = dst;
  f.packet = net::Packet::make();
  return f;
}

struct Fixture {
  Scheduler sched;
  PhyConfig cfg;
  Channel channel{sched, cfg};
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;

  Radio& addRadio(net::NodeId id, Vec2 pos) {
    mobs.push_back(std::make_unique<StaticMobility>(pos));
    radios.push_back(
        std::make_unique<Radio>(id, *mobs.back(), channel, sched));
    return *radios.back();
  }
};

TEST(ChannelTest, DeliversWithinRange) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {200, 0});
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, 1));
  fx.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b.framesDelivered(), 1u);
}

TEST(ChannelTest, NoDeliveryBeyondRange) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {251, 0});
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, 1));
  fx.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(ChannelTest, DeliveryExactlyAtRangeBoundary) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {250, 0});
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, 1));
  fx.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(ChannelTest, OverlappingTransmissionsCollideAtReceiver) {
  Fixture fx;
  // Hidden terminal: a and c are out of range of each other, both in range
  // of b.
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {240, 0});
  Radio& c = fx.addRadio(2, {480, 0});
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, 1));
  fx.sched.scheduleAfter(Time::micros(50),
                         [&] { c.startTx(makeFrame(2, 1)); });
  fx.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b.framesCorrupted(), 2u);
}

TEST(ChannelTest, SequentialTransmissionsBothDeliver) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {240, 0});
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, 1));
  fx.sched.scheduleAfter(Time::millis(50),
                         [&] { a.startTx(makeFrame(0, 1)); });
  fx.sched.run();
  EXPECT_EQ(got, 2);
}

TEST(ChannelTest, HalfDuplexReceiverTransmittingLosesFrame) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {100, 0});
  Radio& far = fx.addRadio(2, {100, 240});  // b's frame goes somewhere
  (void)far;
  int got = 0;
  b.setReceiveHandler([&](const mac::Frame&) { ++got; });
  // b starts transmitting first, a's frame arrives while b is busy.
  b.startTx(makeFrame(1, 2));
  fx.sched.scheduleAfter(Time::micros(10),
                         [&] { a.startTx(makeFrame(0, 1)); });
  fx.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(ChannelTest, CarrierSenseSeesNeighborTransmission) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {200, 0});
  EXPECT_FALSE(b.carrierBusy());
  a.startTx(makeFrame(0, 1));
  std::optional<bool> busyDuring;
  fx.sched.scheduleAfter(Time::micros(100),
                         [&] { busyDuring = b.carrierBusy(); });
  fx.sched.run();
  ASSERT_TRUE(busyDuring.has_value());
  EXPECT_TRUE(*busyDuring);
  EXPECT_FALSE(b.carrierBusy());  // after the run, medium idle
}

TEST(ChannelTest, CarrierSenseIgnoresFarTransmitters) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {600, 0});
  a.startTx(makeFrame(0, 99));
  std::optional<bool> busyDuring;
  fx.sched.scheduleAfter(Time::micros(100),
                         [&] { busyDuring = b.carrierBusy(); });
  fx.sched.run();
  ASSERT_TRUE(busyDuring.has_value());
  EXPECT_FALSE(*busyDuring);
}

TEST(ChannelTest, BusyUntilMatchesTransmissionEnd) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  Radio& b = fx.addRadio(1, {100, 0});
  const mac::Frame f = makeFrame(0, 1);
  const Time end = a.startTx(f);
  EXPECT_EQ(b.busyUntil(), end);
  EXPECT_EQ(a.busyUntil(), end);  // own transmission counts
}

TEST(ChannelTest, TxDurationMath) {
  Fixture fx;
  // 1000 bytes at 2 Mb/s = 4 ms, plus 192 us PHY overhead.
  EXPECT_EQ(fx.channel.txDuration(1000),
            Time::millis(4) + Time::micros(192));
}

TEST(ChannelTest, TransmitterDoesNotHearItself) {
  Fixture fx;
  Radio& a = fx.addRadio(0, {0, 0});
  int got = 0;
  a.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(0, net::kBroadcast));
  fx.sched.run();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace manet::phy
