// NeighborIndex contract: the grid must be an exact, order-preserving
// drop-in for the full scan — same radios visited, same distances, same
// (attach) order — with static and moving nodes, under lazy refreshes.
#include "src/phy/neighbor_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/mobility/mobility_model.h"
#include "src/phy/channel.h"
#include "src/phy/radio.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::phy {
namespace {

using mobility::StaticMobility;
using sim::Scheduler;
using sim::Time;

/// Constant-velocity trajectory for staleness tests.
class LinearMobility final : public mobility::MobilityModel {
 public:
  LinearMobility(Vec2 start, Vec2 velocity) : start_(start), v_(velocity) {}
  Vec2 positionAt(Time t) const override {
    const double s = t.toSeconds();
    return {start_.x + v_.x * s, start_.y + v_.y * s};
  }

 private:
  Vec2 start_;
  Vec2 v_;
};

struct Fixture {
  Scheduler sched;
  PhyConfig cfg;  // radios need a channel; its own index is not under test
  Channel channel{sched, cfg};
  std::vector<std::unique_ptr<mobility::MobilityModel>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;

  Radio& addRadio(net::NodeId id, std::unique_ptr<mobility::MobilityModel> m) {
    mobs.push_back(std::move(m));
    radios.push_back(
        std::make_unique<Radio>(id, *mobs.back(), channel, sched));
    return *radios.back();
  }

  /// Attach every radio to `index` in id order (as Network does).
  void attachAll(NeighborIndex& index) {
    for (auto& r : radios) index.attach(r.get());
  }
};

/// (id, distance) visit log of one forEachInRange call.
std::vector<std::pair<net::NodeId, double>> query(const NeighborIndex& index,
                                                  const Vec2& pos,
                                                  double range, Time now,
                                                  const Radio* exclude) {
  std::vector<std::pair<net::NodeId, double>> out;
  index.forEachInRange(pos, range, now, exclude,
                       [&](Radio& r, double d) { out.emplace_back(r.id(), d); });
  return out;
}

TEST(NeighborIndexTest, GridMatchesScanOnRandomStaticTopologies) {
  sim::Rng rng(1234);
  for (int topo = 0; topo < 5; ++topo) {
    Fixture fx;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
      fx.addRadio(static_cast<net::NodeId>(i),
                  std::make_unique<StaticMobility>(Vec2{
                      rng.uniform(0.0, 2200.0), rng.uniform(0.0, 600.0)}));
    }
    ScanNeighborIndex scan(fx.sched);
    GridNeighborIndex grid(fx.sched, 250.0, 20.0, Time::seconds(1));
    fx.attachAll(scan);
    fx.attachAll(grid);
    for (int q = 0; q < 50; ++q) {
      const Vec2 pos{rng.uniform(-100.0, 2300.0), rng.uniform(-100.0, 700.0)};
      const Radio* exclude =
          q % 3 == 0 ? fx.radios[static_cast<std::size_t>(q) % n].get()
                     : nullptr;
      const auto a = query(scan, pos, 250.0, Time::zero(), exclude);
      const auto b = query(grid, pos, 250.0, Time::zero(), exclude);
      ASSERT_EQ(a, b) << "topology " << topo << " query " << q;
      // The grid may examine fewer candidates, never more.
      EXPECT_LE(grid.lastExamined(), scan.lastExamined());
    }
  }
}

TEST(NeighborIndexTest, GridStaysExactWhileNodesMove) {
  Fixture fx;
  // Nodes sweeping in both directions at the speed bound, crossing cell
  // boundaries and each other's range repeatedly.
  const double kSpeed = 20.0;
  for (int i = 0; i < 20; ++i) {
    fx.addRadio(static_cast<net::NodeId>(i),
                std::make_unique<LinearMobility>(
                    Vec2{50.0 * i, 10.0 * i},
                    Vec2{i % 2 == 0 ? kSpeed : -kSpeed, 0.0}));
  }
  ScanNeighborIndex scan(fx.sched);
  GridNeighborIndex grid(fx.sched, 250.0, kSpeed, Time::seconds(1));
  fx.attachAll(scan);
  fx.attachAll(grid);
  for (int step = 1; step <= 40; ++step) {
    fx.sched.runUntil(Time::millis(250 * step));  // advances sim time
    const Time now = fx.sched.now();
    for (const auto& r : fx.radios) {
      const Vec2 pos = r->mobility().positionAt(now);
      ASSERT_EQ(query(scan, pos, 250.0, now, r.get()),
                query(grid, pos, 250.0, now, r.get()))
          << "step " << step << " around node " << r->id();
    }
  }
  // 10 s of queries against a 1 s refresh period: the lazy refresh must
  // have actually run (more than the initial bucketing, roughly once per
  // period).
  EXPECT_GE(grid.refreshCount(), 9u);
  EXPECT_LE(grid.refreshCount(), 42u);
}

TEST(NeighborIndexTest, ExactQueriesAgreeAcrossKinds) {
  sim::Rng rng(99);
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.addRadio(static_cast<net::NodeId>(i),
                std::make_unique<StaticMobility>(
                    Vec2{rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)}));
  }
  ScanNeighborIndex scan(fx.sched);
  GridNeighborIndex grid(fx.sched, 250.0, 20.0, Time::seconds(1));
  fx.attachAll(scan);
  fx.attachAll(grid);
  for (net::NodeId a = 0; a < 10; ++a) {
    const Vec2 pa = scan.positionAt(a, Time::zero());
    const Vec2 pb = grid.positionAt(a, Time::zero());
    EXPECT_EQ(pa.x, pb.x);
    EXPECT_EQ(pa.y, pb.y);
    for (net::NodeId b = 0; b < 10; ++b) {
      EXPECT_EQ(scan.inRangeAt(a, b, Time::zero(), 250.0),
                grid.inRangeAt(a, b, Time::zero(), 250.0));
    }
  }
}

TEST(NeighborIndexTest, ForEachRadioVisitsAllInAttachOrder) {
  Fixture fx;
  for (int i = 0; i < 7; ++i) {
    fx.addRadio(static_cast<net::NodeId>(i),
                std::make_unique<StaticMobility>(Vec2{100.0 * i, 0.0}));
  }
  for (NeighborIndexKind kind :
       {NeighborIndexKind::kScan, NeighborIndexKind::kGrid}) {
    auto index =
        makeNeighborIndex(kind, fx.sched, 250.0, 20.0, Time::seconds(1));
    fx.attachAll(*index);
    EXPECT_EQ(index->size(), 7u);
    std::vector<net::NodeId> seen;
    index->forEachRadio([&](Radio& r) { seen.push_back(r.id()); });
    EXPECT_EQ(seen, (std::vector<net::NodeId>{0, 1, 2, 3, 4, 5, 6}));
  }
}

TEST(NeighborIndexTest, KindParsingAndFactory) {
  EXPECT_STREQ(toString(NeighborIndexKind::kScan), "scan");
  EXPECT_STREQ(toString(NeighborIndexKind::kGrid), "grid");
  EXPECT_EQ(neighborIndexKindFromString("grid", NeighborIndexKind::kScan),
            NeighborIndexKind::kGrid);
  EXPECT_EQ(neighborIndexKindFromString("bogus", NeighborIndexKind::kScan),
            NeighborIndexKind::kScan);
  Scheduler sched;
  EXPECT_STREQ(makeNeighborIndex(NeighborIndexKind::kScan, sched, 250.0, 20.0,
                                 Time::seconds(1))
                   ->name(),
               "scan");
  EXPECT_STREQ(makeNeighborIndex(NeighborIndexKind::kGrid, sched, 250.0, 20.0,
                                 Time::seconds(1))
                   ->name(),
               "grid");
}

}  // namespace
}  // namespace manet::phy
