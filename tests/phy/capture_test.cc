// Capture effect: an ongoing reception survives sufficiently weaker
// overlapping interference (ns-2 style, power ~ distance^-4, 10x threshold).
#include <gtest/gtest.h>

#include <memory>

#include "src/mobility/mobility_model.h"
#include "src/phy/channel.h"
#include "src/phy/radio.h"
#include "src/sim/scheduler.h"

namespace manet::phy {
namespace {

using mobility::StaticMobility;
using sim::Scheduler;
using sim::Time;

mac::Frame makeFrame(net::NodeId src) {
  mac::Frame f;
  f.type = mac::FrameType::kData;
  f.src = src;
  f.dst = net::kBroadcast;
  f.packet = net::Packet::make();
  return f;
}

struct World {
  Scheduler sched;
  PhyConfig cfg;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;

  explicit World(bool capture = true) {
    cfg.captureEffect = capture;
    channel = std::make_unique<Channel>(sched, cfg);
  }
  Radio& add(net::NodeId id, Vec2 pos) {
    mobs.push_back(std::make_unique<StaticMobility>(pos));
    radios.push_back(
        std::make_unique<Radio>(id, *mobs.back(), *channel, sched));
    return *radios.back();
  }
};

TEST(CaptureTest, StrongOngoingReceptionSurvivesWeakInterference) {
  World w;
  Radio& rx = w.add(0, {0, 0});
  Radio& near = w.add(1, {50, 0});    // wanted sender, 50 m
  Radio& far = w.add(2, {200, 0});    // interferer, 200 m: (200/50)^4 = 256x
  int got = 0;
  rx.setReceiveHandler([&](const mac::Frame& f) {
    if (f.src == 1) ++got;
  });
  near.startTx(makeFrame(1));
  w.sched.scheduleAfter(Time::micros(100), [&] { far.startTx(makeFrame(2)); });
  w.sched.run();
  EXPECT_EQ(got, 1);  // near frame captured over the far interferer
}

TEST(CaptureTest, WeakFrameIsLostToOngoingStrongReception) {
  World w;
  Radio& rx = w.add(0, {0, 0});
  Radio& near = w.add(1, {50, 0});
  Radio& far = w.add(2, {200, 0});
  int farGot = 0;
  rx.setReceiveHandler([&](const mac::Frame& f) {
    if (f.src == 2) ++farGot;
  });
  near.startTx(makeFrame(1));
  w.sched.scheduleAfter(Time::micros(100), [&] { far.startTx(makeFrame(2)); });
  w.sched.run();
  EXPECT_EQ(farGot, 0);  // the weak overlapping frame is noise
}

TEST(CaptureTest, ComparablePowersCollideBothWays) {
  World w;
  Radio& rx = w.add(0, {0, 0});
  Radio& a = w.add(1, {100, 0});
  Radio& b = w.add(2, {0, 120});  // (120/100)^4 ~ 2.1 < 10: no capture
  int got = 0;
  rx.setReceiveHandler([&](const mac::Frame&) { ++got; });
  a.startTx(makeFrame(1));
  w.sched.scheduleAfter(Time::micros(100), [&] { b.startTx(makeFrame(2)); });
  w.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rx.framesCorrupted(), 2u);
}

TEST(CaptureTest, DisabledCaptureCorruptsEverything) {
  World w(/*capture=*/false);
  Radio& rx = w.add(0, {0, 0});
  Radio& near = w.add(1, {50, 0});
  Radio& far = w.add(2, {200, 0});
  int got = 0;
  rx.setReceiveHandler([&](const mac::Frame&) { ++got; });
  near.startTx(makeFrame(1));
  w.sched.scheduleAfter(Time::micros(100), [&] { far.startTx(makeFrame(2)); });
  w.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(CaptureTest, LateStrongFrameDoesNotCapture) {
  // Receiver already locked onto the weak frame: a stronger late arrival
  // destroys both (no receiver re-synchronization), as in ns-2.
  World w;
  Radio& rx = w.add(0, {0, 0});
  Radio& far = w.add(1, {200, 0});
  Radio& near = w.add(2, {50, 0});
  int got = 0;
  rx.setReceiveHandler([&](const mac::Frame&) { ++got; });
  far.startTx(makeFrame(1));
  w.sched.scheduleAfter(Time::micros(100),
                        [&] { near.startTx(makeFrame(2)); });
  w.sched.run();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace manet::phy
