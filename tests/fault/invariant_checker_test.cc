// InvariantChecker: synthetic records trigger each violation class, and
// real faulted scenarios pass with zero violations (the acceptance bar).
#include "src/fault/invariant_checker.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/dsr_config.h"
#include "src/scenario/scenario.h"

namespace manet::fault {
namespace {

using sim::Time;
using telemetry::DropReason;
using telemetry::TraceEvent;
using telemetry::TraceRecord;

TraceRecord rec(TraceEvent event, Time at, net::NodeId node = 0,
                std::uint64_t uid = 0) {
  TraceRecord r;
  r.at = at;
  r.event = event;
  r.node = node;
  r.uid = uid;
  r.kind = net::PacketKind::kData;
  return r;
}

bool anyViolationMentions(const InvariantChecker& c, const std::string& s) {
  for (const auto& v : c.violations()) {
    if (v.find(s) != std::string::npos) return true;
  }
  return false;
}

TEST(InvariantCheckerTest, CleanLifecyclePasses) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 42));
  c.record(rec(TraceEvent::kPktForward, Time::seconds(2), 1, 42));
  c.record(rec(TraceEvent::kPktDeliver, Time::seconds(3), 2, 42));
  EXPECT_TRUE(c.violations().empty());
  EXPECT_EQ(c.recordsChecked(), 3u);
}

TEST(InvariantCheckerTest, FlagsTimeGoingBackwards) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(5), 0, 1));
  c.record(rec(TraceEvent::kPktForward, Time::seconds(4), 1, 1));
  EXPECT_TRUE(anyViolationMentions(c, "time went backwards"));
}

TEST(InvariantCheckerTest, FlagsDropWithoutReason) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 1));
  c.record(rec(TraceEvent::kPktDrop, Time::seconds(2), 0, 1));
  EXPECT_TRUE(anyViolationMentions(c, "drop record without a reason"));
}

TEST(InvariantCheckerTest, FlagsReasonOnNonDropRecord) {
  InvariantChecker c(4);
  TraceRecord r = rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 1);
  r.reason = DropReason::kIfqFull;
  c.record(r);
  EXPECT_TRUE(anyViolationMentions(c, "carries drop reason"));
}

TEST(InvariantCheckerTest, FlagsDuplicateOrigination) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 7));
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(2), 0, 7));
  EXPECT_TRUE(anyViolationMentions(c, "originated twice"));
}

TEST(InvariantCheckerTest, FlagsForwardBeforeOrigination) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktForward, Time::seconds(1), 1, 9));
  EXPECT_TRUE(anyViolationMentions(c, "before its origination"));
}

TEST(InvariantCheckerTest, FlagsCrashRecoverAlternationBreaks) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kNodeCrash, Time::seconds(1), 2));
  c.record(rec(TraceEvent::kNodeCrash, Time::seconds(2), 2));
  EXPECT_TRUE(anyViolationMentions(c, "crashed while already down"));

  InvariantChecker c2(4);
  c2.record(rec(TraceEvent::kNodeRecover, Time::seconds(1), 2));
  EXPECT_TRUE(anyViolationMentions(c2, "recovered while already up"));
}

TEST(InvariantCheckerTest, FlagsDownNodeActivity) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 5));
  c.record(rec(TraceEvent::kNodeCrash, Time::seconds(2), 1));
  c.record(rec(TraceEvent::kPktForward, Time::seconds(3), 1, 5));
  EXPECT_TRUE(anyViolationMentions(c, "down node 1"));
}

TEST(InvariantCheckerTest, FinalCheckCatchesCounterDrift) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 1));
  metrics::Metrics m;
  m.dataOriginated = 2;  // one more than traced
  c.finalCheck(m);
  EXPECT_TRUE(anyViolationMentions(c, "originations"));
}

TEST(InvariantCheckerTest, FinalCheckPassesWhenReconciled) {
  InvariantChecker c(4);
  c.record(rec(TraceEvent::kPktOriginate, Time::seconds(1), 0, 1));
  c.record(rec(TraceEvent::kPktDeliver, Time::seconds(2), 1, 1));
  c.record(rec(TraceEvent::kNodeCrash, Time::seconds(3), 2));
  metrics::Metrics m;
  m.dataOriginated = 1;
  m.dataDelivered = 1;
  m.faultNodeCrashes = 1;
  c.finalCheck(m);
  EXPECT_TRUE(c.violations().empty()) << c.violations().front();
}

// ---- acceptance: faulted scenarios run checked with zero violations ----

scenario::ScenarioConfig churnScenario(const core::DsrConfig& dsr) {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {800.0, 400.0};
  cfg.numFlows = 5;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = Time::seconds(60);
  cfg.mobilitySeed = 3;
  cfg.dsr = dsr;
  cfg.telemetry = telemetry::TelemetryConfig{};
  cfg.fault = {};
  cfg.fault.churn.fraction = 0.1;  // the issue's 10% / 30 s churn profile
  cfg.fault.churn.meanUpTimeSec = 30.0;
  cfg.fault.churn.meanDownTimeSec = 5.0;
  cfg.invariantChecks = true;
  return cfg;
}

class CheckedChurnTest : public ::testing::TestWithParam<core::Variant> {};

TEST_P(CheckedChurnTest, RunsWithZeroViolations) {
  scenario::Scenario s(churnScenario(core::makeVariantConfig(GetParam())));
  scenario::RunResult r;
  ASSERT_NO_THROW(r = s.run()) << "variant " << core::toString(GetParam());
  ASSERT_NE(s.checker(), nullptr);
  EXPECT_TRUE(s.checker()->violations().empty());
  EXPECT_GT(s.checker()->recordsChecked(), 0u);
  EXPECT_GT(r.metrics.faultNodeCrashes, 0u);
  EXPECT_GT(r.metrics.dataDelivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CacheStrategies, CheckedChurnTest,
    ::testing::Values(core::Variant::kWiderError, core::Variant::kAdaptiveExpiry,
                      core::Variant::kNegCache),
    [](const ::testing::TestParamInfo<core::Variant>& paramInfo) {
      return core::toString(paramInfo.param);
    });

TEST(InvariantCheckerTest, AllFaultClassesTogetherStayConsistent) {
  auto cfg = churnScenario(core::makeVariantConfig(core::Variant::kAll));
  cfg.duration = Time::seconds(40);
  cfg.fault.blackout.meanGapSec = 8.0;
  cfg.fault.noise.meanGapSec = 10.0;
  cfg.fault.noise.meanDurationSec = 0.5;
  cfg.fault.noise.corruptProb = 0.3;
  cfg.fault.surge.meanGapSec = 10.0;
  cfg.fault.surge.meanDurationSec = 3.0;
  scenario::Scenario s(cfg);
  ASSERT_NO_THROW(s.run());
  EXPECT_TRUE(s.checker()->violations().empty());
}

TEST(InvariantCheckerTest, EnvKnobParsesZeroAndOne) {
  ::setenv("MANET_CHECK", "1", 1);
  EXPECT_TRUE(InvariantChecker::enabledFromEnv());
  ::setenv("MANET_CHECK", "0", 1);
  EXPECT_FALSE(InvariantChecker::enabledFromEnv());
  ::unsetenv("MANET_CHECK");
  EXPECT_FALSE(InvariantChecker::enabledFromEnv());
}

}  // namespace
}  // namespace manet::fault
