// FaultInjector semantics: crash/recover, blackouts, noise, surges, and the
// strict no-op guarantee of an empty plan.
#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "src/fault/fault_plan.h"
#include "src/traffic/cbr.h"
#include "tests/testing/dsr_fixture.h"

namespace manet::fault {
namespace {

using manet::testing::DsrFixture;
using sim::Time;

FaultEvent crashAt(Time at, net::NodeId node) {
  FaultEvent ev;
  ev.kind = FaultKind::kNodeCrash;
  ev.at = at;
  ev.node = node;
  return ev;
}

FaultEvent recoverAt(Time at, net::NodeId node) {
  FaultEvent ev;
  ev.kind = FaultKind::kNodeRecover;
  ev.at = at;
  ev.node = node;
  return ev;
}

traffic::CbrSource::Params cbrParams(net::NodeId dst, double pps, Time start,
                                     Time stop) {
  traffic::CbrSource::Params p;
  p.dst = dst;
  p.packetsPerSecond = pps;
  p.start = start;
  p.stop = stop;
  return p;
}

TEST(FaultInjectorTest, EmptyPlanInstallsNothing) {
  DsrFixture fx;
  fx.addLine(2);
  fx.network->installFaults(FaultPlan{}, Time::seconds(10));
  EXPECT_EQ(fx.network->faults(), nullptr);
}

TEST(FaultInjectorTest, EmptyPlanIsBitIdenticalNoOp) {
  const auto runOnce = [](bool install) {
    DsrFixture fx(core::makeVariantConfig(core::Variant::kAll), 7);
    fx.addLine(4);
    if (install) fx.network->installFaults(FaultPlan{}, Time::seconds(20));
    traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                           cbrParams(3, 4.0, Time::millis(1),
                                     Time::seconds(18)));
    fx.run(Time::seconds(20));
    return std::pair{fx.metrics(), fx.network->scheduler().executedCount()};
  };
  const auto [mA, eventsA] = runOnce(false);
  const auto [mB, eventsB] = runOnce(true);
  EXPECT_EQ(mA.dataOriginated, mB.dataOriginated);
  EXPECT_EQ(mA.dataDelivered, mB.dataDelivered);
  EXPECT_EQ(mA.totalDropped(), mB.totalDropped());
  EXPECT_EQ(mA.dataFrameTx, mB.dataFrameTx);
  EXPECT_EQ(mA.rtsTx, mB.rtsTx);
  EXPECT_EQ(eventsA, eventsB);
}

TEST(FaultInjectorTest, CrashedNodeNeitherReceivesNorRecoversAlone) {
  DsrFixture fx;
  fx.addLine(2);
  FaultPlan plan;
  plan.scripted = {crashAt(Time::seconds(5), 1),
                   recoverAt(Time::seconds(15), 1)};
  fx.network->installFaults(plan, Time::seconds(22));
  ASSERT_NE(fx.network->faults(), nullptr);
  traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                         cbrParams(1, 10.0, Time::millis(1),
                                   Time::seconds(20)));
  // The injector reports the node down mid-window, up again after.
  fx.network->scheduler().scheduleAt(Time::seconds(10), [&] {
    EXPECT_FALSE(fx.network->faults()->nodeUp(1));
    EXPECT_FALSE(fx.network->node(1).radio().up());
  });
  fx.run(Time::seconds(22));
  EXPECT_TRUE(fx.network->faults()->nodeUp(1));
  EXPECT_EQ(fx.metrics().faultNodeCrashes, 1u);
  EXPECT_EQ(fx.metrics().faultNodeRecoveries, 1u);
  // ~200 packets offered; the ~10 s outage window must cost roughly half
  // and delivery must resume after recovery (well above the ~50 sent
  // before the crash).
  EXPECT_LT(fx.metrics().dataDelivered, 160u);
  EXPECT_GT(fx.metrics().dataDelivered, 80u);
  EXPECT_LT(fx.metrics().dataDelivered, fx.metrics().dataOriginated);
}

TEST(FaultInjectorTest, CrashFlushesMacQueueAsNodeDownDrops) {
  DsrFixture fx;
  fx.addLine(2);
  FaultPlan plan;
  // Crash the *sender* while its CBR keeps queueing: the MAC queue flush
  // and subsequent sends while down show up as counted drops.
  plan.scripted = {crashAt(Time::seconds(2), 0)};
  fx.network->installFaults(plan, Time::seconds(10));
  traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                         cbrParams(1, 50.0, Time::millis(1),
                                   Time::seconds(9)));
  fx.run(Time::seconds(10));
  EXPECT_EQ(fx.metrics().faultNodeCrashes, 1u);
  // No recovery scheduled: deliveries stop at the crash.
  EXPECT_LT(fx.metrics().dataDelivered, fx.metrics().dataOriginated);
}

TEST(FaultInjectorTest, RecoveryWipesDsrSoftState) {
  DsrFixture fx;
  fx.addLine(3);
  FaultPlan plan;
  plan.churn.wipeCachesOnRecovery = true;
  plan.scripted = {crashAt(Time::seconds(5), 0),
                   recoverAt(Time::seconds(6), 0)};
  fx.network->installFaults(plan, Time::seconds(10));
  // Discover a route first so node 0 has cache state to lose.
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.network->scheduler().scheduleAt(Time::seconds(4), [&] {
    EXPECT_GT(fx.dsr(0).routeCache().size(), 0u);
  });
  fx.network->scheduler().scheduleAt(Time::seconds(7), [&] {
    EXPECT_EQ(fx.dsr(0).routeCache().size(), 0u);
  });
  fx.run(Time::seconds(10));
  EXPECT_EQ(fx.metrics().faultNodeRecoveries, 1u);
}

TEST(FaultInjectorTest, RecoveryKeepsCachesWhenWipeDisabled) {
  DsrFixture fx;
  fx.addLine(3);
  FaultPlan plan;
  plan.churn.wipeCachesOnRecovery = false;
  plan.scripted = {crashAt(Time::seconds(5), 0),
                   recoverAt(Time::seconds(6), 0)};
  fx.network->installFaults(plan, Time::seconds(10));
  fx.dsr(0).sendData(2, 512, 0, 0);
  fx.network->scheduler().scheduleAt(Time::seconds(7), [&] {
    EXPECT_GT(fx.dsr(0).routeCache().size(), 0u);
  });
  fx.run(Time::seconds(10));
}

TEST(FaultInjectorTest, BlackoutWindowStopsDelivery) {
  DsrFixture fx;
  fx.addLine(2);
  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkBlackout;
  ev.at = Time::seconds(5);
  ev.node = 0;
  ev.peer = 1;
  ev.duration = Time::seconds(10);
  plan.scripted = {ev};
  fx.network->installFaults(plan, Time::seconds(22));
  traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                         cbrParams(1, 10.0, Time::millis(1),
                                   Time::seconds(20)));
  fx.run(Time::seconds(22));
  EXPECT_EQ(fx.metrics().faultLinkBlackouts, 1u);
  // Same shape as the crash test: the 10 s window must cost deliveries,
  // and traffic must flow again once it closes.
  EXPECT_LT(fx.metrics().dataDelivered, 160u);
  EXPECT_GT(fx.metrics().dataDelivered, 80u);
}

TEST(FaultInjectorTest, NoiseBurstCorruptsFrames) {
  DsrFixture fx;
  fx.addLine(2);
  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kNoiseBurst;
  ev.at = Time::seconds(2);
  ev.duration = Time::seconds(6);
  ev.value = 1.0;  // certain corruption: nothing gets through
  plan.scripted = {ev};
  fx.network->installFaults(plan, Time::seconds(15));
  traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                         cbrParams(1, 10.0, Time::millis(1),
                                   Time::seconds(14)));
  fx.run(Time::seconds(15));
  EXPECT_EQ(fx.metrics().faultNoiseBursts, 1u);
  EXPECT_GT(fx.network->node(1).radio().framesNoiseCorrupted(), 0u);
  EXPECT_LT(fx.metrics().dataDelivered, fx.metrics().dataOriginated);
}

TEST(FaultInjectorTest, TrafficSurgeMultipliesCbrRate) {
  const auto packetsWithSurge = [](double multiplier) {
    DsrFixture fx;
    fx.addLine(2);
    FaultPlan plan;
    if (multiplier > 1.0) {
      FaultEvent ev;
      ev.kind = FaultKind::kTrafficSurge;
      ev.at = Time::seconds(1);
      ev.duration = Time::seconds(10);
      ev.value = multiplier;
      plan.scripted = {ev};
    }
    fx.network->installFaults(plan, Time::seconds(14));
    auto src = std::make_unique<traffic::CbrSource>(
        fx.dsr(0), fx.network->scheduler(),
        cbrParams(1, 2.0, Time::millis(1), Time::seconds(12)));
    if (auto* fi = fx.network->faults()) fi->attachTrafficSource(src.get());
    fx.run(Time::seconds(14));
    return src->packetsSent();
  };
  const auto baseline = packetsWithSurge(1.0);
  const auto surged = packetsWithSurge(3.0);
  // 10 of 12 sending seconds run at 3x the rate.
  EXPECT_GT(surged, baseline + baseline / 2);
}

TEST(FaultInjectorTest, ChurnGeneratorCyclesNodes) {
  DsrFixture fx;
  fx.addLine(6);
  FaultPlan plan;
  plan.churn.fraction = 0.5;
  plan.churn.meanUpTimeSec = 2.0;
  plan.churn.meanDownTimeSec = 1.0;
  fx.network->installFaults(plan, Time::seconds(30));
  fx.run(Time::seconds(30));
  const auto& m = fx.metrics();
  EXPECT_GT(m.faultNodeCrashes, 0u);
  // Alternation: recoveries can lag crashes by at most the 3 churn nodes
  // left down at the end.
  EXPECT_LE(m.faultNodeRecoveries, m.faultNodeCrashes);
  EXPECT_GE(m.faultNodeRecoveries + 3, m.faultNodeCrashes);
}

TEST(FaultInjectorTest, StochasticGeneratorsAreSeedDeterministic) {
  const auto runOnce = [] {
    DsrFixture fx(core::DsrConfig{}, 5);
    fx.addLine(5);
    FaultPlan plan;
    plan.churn.fraction = 0.4;
    plan.churn.meanUpTimeSec = 3.0;
    plan.churn.meanDownTimeSec = 1.0;
    plan.blackout.meanGapSec = 4.0;
    plan.noise.meanGapSec = 6.0;
    plan.noise.corruptProb = 0.5;
    plan.seed = 99;
    fx.network->installFaults(plan, Time::seconds(40));
    traffic::CbrSource src(fx.dsr(0), fx.network->scheduler(),
                           cbrParams(4, 3.0, Time::millis(1),
                                     Time::seconds(38)));
    fx.run(Time::seconds(40));
    return std::tuple{fx.metrics().faultNodeCrashes,
                      fx.metrics().faultLinkBlackouts,
                      fx.metrics().faultNoiseBursts,
                      fx.metrics().dataDelivered,
                      fx.network->scheduler().executedCount()};
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace manet::fault
