// manet_prof: offline inspection of BENCH_*.json performance reports.
//
// bench/perf_baseline writes schema-versioned BENCH files; this tool asks
// them the hotspot questions the raw JSON makes tedious:
//
//   manet_prof <BENCH.json>              per-scenario hotspot digest: top-K
//                                        hot nodes (with positions), channel
//                                        fan-out histogram, event-horizon
//                                        histogram, queue depth, allocation
//                                        sites
//   manet_prof --top N <BENCH.json>      limit the hot-node table to N rows
//   manet_prof --diff A.json B.json      compare ONLY deterministic fields
//                                        (activations, fan-out counts,
//                                        horizon buckets, alloc tallies...).
//                                        Two same-seed runs must report zero
//                                        deltas; wall-time deltas are shown
//                                        separately as informational. Exits
//                                        1 when deterministic fields differ.
//   manet_prof --self-test               exercise print + diff on synthetic
//                                        reports (no files needed)
//
// v1 reports (BENCH_seed.json predates the hotspot section) print their
// wall/category data and note that hotspot analytics need a v2 report.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/prof/bench_report.h"

using namespace manet;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--top N] <BENCH.json>\n"
               "       %s --diff A.json B.json\n"
               "       %s --self-test\n",
               argv0, argv0, argv0);
  return 2;
}

bool readWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::optional<prof::BenchReport> loadReport(const std::string& path) {
  std::string text, err;
  if (!readWholeFile(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  auto r = prof::parseBenchReport(text, &err);
  if (!r) std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
  return r;
}

void printBuckets(const char* indent,
                  const std::vector<prof::HistBucket>& buckets,
                  std::uint64_t total, const char* unit) {
  // Simple text histogram: one row per populated bucket with a bar scaled
  // to the most populated one.
  std::uint64_t maxCount = 0;
  for (const prof::HistBucket& b : buckets) {
    maxCount = std::max(maxCount, b.count);
  }
  if (maxCount == 0) return;
  for (const prof::HistBucket& b : buckets) {
    if (b.count == 0) continue;
    const int bar = static_cast<int>(
        (b.count * 40 + maxCount - 1) / maxCount);
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(b.count) /
                        static_cast<double>(total)
                  : 0.0;
    std::printf("%s[%8" PRIu64 ", %8" PRIu64 ") %-6s %10" PRIu64
                " %5.1f%% %.*s\n",
                indent, b.low, b.high, unit, b.count, pct, bar,
                "########################################");
  }
}

void printScenario(const prof::BenchScenario& s, std::size_t topK) {
  std::printf("%s\n", s.name.c_str());
  std::printf("  median wall %.3f s over %d reps, %" PRIu64
              " events (%.0f ev/s), queue peak %" PRIu64 "\n",
              s.wallSecondsMedian, s.repetitions, s.events,
              s.eventsPerSecMedian, s.schedQueuePeak);
  if (!s.categorySelfSeconds.empty()) {
    std::printf("  category self time:");
    for (const auto& [name, sec] : s.categorySelfSeconds) {
      std::printf(" %s=%.3fs", name.c_str(), sec);
    }
    std::printf("\n");
  }
  if (!s.hasHotspot) {
    std::printf(
        "  (schema v1 record: no hotspot section; regenerate with a "
        "current perf_baseline for fan-out / queue / alloc analytics)\n\n");
    return;
  }

  std::printf("  hot nodes (by activations; self time informational):\n");
  std::printf("    %4s %9s %9s %12s %12s %10s\n", "node", "x", "y",
              "activations", "frames_heard", "self_s");
  const std::size_t n = std::min(topK, s.topNodes.size());
  for (std::size_t i = 0; i < n; ++i) {
    const prof::BenchTopNode& t = s.topNodes[i];
    std::printf("    %4u %9.1f %9.1f %12" PRIu64 " %12" PRIu64 " %10.4f\n",
                t.node, t.x, t.y, t.activations, t.framesHeard,
                t.selfSeconds);
  }

  const prof::FanoutReport& f = s.fanout;
  std::printf("  channel fan-out: %" PRIu64 " transmissions, %" PRIu64
              " radios examined, %" PRIu64 " in range (%.1f%%)\n",
              f.transmissions, f.radiosExamined, f.radiosInRange,
              f.radiosExamined > 0
                  ? 100.0 * static_cast<double>(f.radiosInRange) /
                        static_cast<double>(f.radiosExamined)
                  : 0.0);
  std::printf("    in-range per tx: p50 %.1f p90 %.1f p99 %.1f max %" PRIu64
              "\n",
              f.p50, f.p90, f.p99, f.maxInRange);
  printBuckets("    ", f.buckets, f.transmissions, "rx");

  const prof::QueueReport& q = s.queue;
  std::printf("  event queue: %" PRIu64 " scheduled, %" PRIu64
              " zero-horizon, depth peak %" PRIu64 " mean %.1f\n",
              q.scheduled, q.zeroHorizon, q.depthPeak, q.depthMean);
  std::printf("    horizon ns: p50 %.0f p90 %.0f p99 %.0f max %" PRIu64
              "\n",
              q.horizonP50Ns, q.horizonP90Ns, q.horizonP99Ns,
              q.maxHorizonNs);
  printBuckets("    ", q.horizonBuckets, q.scheduled, "ns");

  std::printf("  allocation sites:\n");
  for (std::size_t i = 0; i < prof::kNumAllocSites; ++i) {
    const prof::AllocSiteStats& a = s.alloc[i];
    std::printf("    %-12s count %10" PRIu64 "  bytes %12" PRIu64
                "  live %8" PRIu64 "  high water %8" PRIu64 "\n",
                prof::toString(static_cast<prof::AllocSite>(i)), a.count,
                a.bytes, a.live, a.highWater);
  }
  std::printf("\n");
}

int runPrint(const std::string& path, std::size_t topK) {
  const auto r = loadReport(path);
  if (!r) return 2;
  std::printf("%s: label \"%s\", schema v%d, %zu scenarios\n\n",
              path.c_str(), r->label.c_str(), r->schemaVersion,
              r->scenarios.size());
  for (const prof::BenchScenario& s : r->scenarios) printScenario(s, topK);
  return 0;
}

int runDiff(const std::string& pathA, const std::string& pathB) {
  const auto a = loadReport(pathA);
  const auto b = loadReport(pathB);
  if (!a || !b) return 2;

  const std::vector<std::string> deltas = prof::diffBenchReports(*a, *b);
  if (deltas.empty()) {
    std::printf("deterministic fields identical (%zu scenarios)\n",
                a->scenarios.size());
  } else {
    std::printf("%zu deterministic delta(s):\n", deltas.size());
    for (const std::string& d : deltas) std::printf("  %s\n", d.c_str());
  }

  // Wall-time movement is expected machine noise — always informational,
  // never part of the exit status (that is --compare's job).
  for (const prof::BenchScenario& sa : a->scenarios) {
    const prof::BenchScenario* sb = b->find(sa.name);
    if (sb == nullptr || sa.wallSecondsMedian <= 0.0) continue;
    const double ratio = sb->wallSecondsMedian / sa.wallSecondsMedian;
    std::printf("wall (informational): %-20s %.3fs -> %.3fs (x%.3f)\n",
                sa.name.c_str(), sa.wallSecondsMedian, sb->wallSecondsMedian,
                ratio);
  }
  return deltas.empty() ? 0 : 1;
}

prof::BenchScenario syntheticScenario() {
  prof::BenchScenario s;
  s.name = "synthetic";
  s.repetitions = 3;
  s.events = 123456;
  s.wallSecondsMedian = 1.5;
  s.eventsPerSecMedian = 82304.0;
  s.wallSecondsAll = {1.6, 1.5, 1.7};
  s.schedQueuePeak = 77;
  s.categorySelfSeconds.emplace_back("mac", 0.4);
  s.hasHotspot = true;
  s.topNodes.push_back({7, 120.0, 80.0, 5000, 900, 0.2});
  s.topNodes.push_back({3, 40.0, 10.0, 4000, 800, 0.1});
  s.fanout.transmissions = 1000;
  s.fanout.radiosExamined = 20000;
  s.fanout.radiosInRange = 6000;
  s.fanout.maxInRange = 12;
  s.fanout.p50 = 6.0;
  s.fanout.p90 = 9.0;
  s.fanout.p99 = 11.0;
  s.fanout.buckets.push_back({4, 8, 700});
  s.fanout.buckets.push_back({8, 16, 300});
  s.queue.scheduled = 123456;
  s.queue.zeroHorizon = 10;
  s.queue.maxHorizonNs = 2000000000;
  s.queue.horizonP50Ns = 5000.0;
  s.queue.horizonP90Ns = 900000.0;
  s.queue.horizonP99Ns = 60000000.0;
  s.queue.horizonBuckets.push_back({0, 4096, 50000});
  s.queue.horizonBuckets.push_back({4096, 8192, 73456});
  s.queue.depthPeak = 77;
  s.queue.depthMean = 41.5;
  s.queue.depthSamples.push_back({1000000, 30});
  s.queue.depthSamples.push_back({2000000, 55});
  s.alloc[0] = {9000, 9000 * 256, 0, 120};
  s.alloc[1] = {123456, 123456 * 64, 0, 77};
  s.alloc[2] = {40000, 40000 * 96, 40000, 40000};
  return s;
}

// Self-test: a v2 report must round-trip through serialize -> parse with
// every deterministic field intact (diff == empty), a perturbed activation
// count must surface as exactly one delta, and a wall-time-only change must
// NOT (that is the whole point of the deterministic diff).
int runSelfTest() {
  prof::BenchReport a;
  a.label = "selftest";
  a.scenarios.push_back(syntheticScenario());

  std::string err;
  const auto re = prof::parseBenchReport(prof::toJson(a), &err);
  if (!re) {
    std::fprintf(stderr, "self-test: round-trip parse failed: %s\n",
                 err.c_str());
    return 1;
  }
  if (!prof::diffBenchReports(a, *re).empty()) {
    std::fprintf(stderr,
                 "self-test FAILED: round-trip changed deterministic "
                 "fields\n");
    for (const std::string& d : prof::diffBenchReports(a, *re)) {
      std::fprintf(stderr, "  %s\n", d.c_str());
    }
    return 1;
  }

  prof::BenchReport b = a;
  b.scenarios[0].wallSecondsMedian *= 2.0;  // volatile: must not diff
  b.scenarios[0].topNodes[0].selfSeconds *= 2.0;
  if (!prof::diffBenchReports(a, b).empty()) {
    std::fprintf(stderr,
                 "self-test FAILED: wall-time change reported as a "
                 "deterministic delta\n");
    return 1;
  }
  b.scenarios[0].topNodes[0].activations += 1;  // deterministic: must diff
  const std::vector<std::string> deltas = prof::diffBenchReports(a, b);
  if (deltas.size() != 1) {
    std::fprintf(stderr,
                 "self-test FAILED: expected exactly 1 delta for a "
                 "perturbed activation count, got %zu\n",
                 deltas.size());
    return 1;
  }

  // Exercise the printer on the synthetic report (output format smoke).
  printScenario(a.scenarios[0], 10);
  std::puts("self-test passed: round-trip clean, diff separates "
            "deterministic from volatile");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t topK = 10;
  std::string diffPaths[2];
  bool diff = false;
  bool selfTest = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n <= 0) return usage(argv[0]);
      topK = static_cast<std::size_t>(n);
    } else if (arg == "--diff" && i + 2 < argc) {
      diffPaths[0] = argv[++i];
      diffPaths[1] = argv[++i];
      diff = true;
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }

  if (selfTest) return runSelfTest();
  if (diff) return runDiff(diffPaths[0], diffPaths[1]);
  if (path.empty()) return usage(argv[0]);
  return runPrint(path, topK);
}
