// manet_trace: offline causal analysis of JSONL traces.
//
// Run any scenario or bench with MANET_TRACE_JSONL=<path>, then ask the
// trace the questions the end-of-run counters cannot answer:
//
//   manet_trace <trace.jsonl>                   summary (record/event totals)
//   manet_trace <trace.jsonl> --chain <uid>     full causal chain of one
//                                               packet: ancestry back to the
//                                               application packet that
//                                               started it, every record of
//                                               every packet on the chain,
//                                               and the packets it caused
//   manet_trace <trace.jsonl> --stale-report    attribute every stale-route
//                                               drop to the cache insertion
//                                               that supplied the route
//                                               (origin x entry-age table)
//   manet_trace <trace.jsonl> --perfetto <out>  convert the trace to a
//                                               Perfetto / chrome://tracing
//                                               timeline (trace_event JSON)
//
// Malformed lines (e.g. the truncated tail of a killed run) are reported to
// stderr with line numbers and skipped; analysis runs on the valid rest.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/telemetry/causal.h"
#include "src/telemetry/perfetto.h"
#include "src/telemetry/trace_reader.h"

using namespace manet;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--summary] [--chain <uid>]"
               " [--stale-report] [--perfetto <out.json>]\n",
               argv0);
  return 2;
}

void printSummary(const telemetry::CausalIndex& idx) {
  std::map<std::string, std::uint64_t> events;
  std::map<std::string, std::uint64_t> drops;
  std::uint64_t packetScoped = 0;
  std::uint64_t withCause = 0;
  std::uint64_t withProv = 0;
  double firstT = 0.0, lastT = 0.0;
  bool any = false;
  for (const telemetry::CausalRecord& r : idx.records()) {
    ++events[r.event];
    if (!any) firstT = r.t;
    lastT = r.t;
    any = true;
    if (r.uid != 0) ++packetScoped;
    if (r.cause != 0) ++withCause;
    if (r.prov != 0) ++withProv;
    if (r.event == "pkt_drop") ++drops[r.reason];
  }
  std::printf("%zu records, t = [%.3f s, %.3f s]\n", idx.records().size(),
              firstT, lastT);
  std::printf("packet-scoped %" PRIu64 ", with cause link %" PRIu64
              ", with provenance %" PRIu64 "\n\n",
              packetScoped, withCause, withProv);
  std::printf("event totals:\n");
  for (const auto& [ev, n] : events) {
    std::printf("  %-18s %10" PRIu64 "\n", ev.c_str(), n);
  }
  if (!drops.empty()) {
    std::printf("\ndrop reasons:\n");
    for (const auto& [why, n] : drops) {
      std::printf("  %-22s %10" PRIu64 "\n", why.c_str(), n);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") return usage(argv[0]);

  bool summary = false;
  bool staleReport = false;
  std::vector<std::uint64_t> chains;
  std::string perfettoOut;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary") {
      summary = true;
    } else if (arg == "--stale-report") {
      staleReport = true;
    } else if (arg == "--chain" && i + 1 < argc) {
      char* end = nullptr;
      const std::uint64_t uid = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || uid == 0) {
        std::fprintf(stderr, "--chain: '%s' is not a packet uid\n", argv[i]);
        return 2;
      }
      chains.push_back(uid);
    } else if (arg == "--perfetto" && i + 1 < argc) {
      perfettoOut = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!summary && !staleReport && chains.empty() && perfettoOut.empty()) {
    summary = true;  // bare invocation: summarise
  }

  const auto read = telemetry::readJsonlFileChecked(path);
  if (!read) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  if (read->skipped > 0) {
    std::fprintf(stderr, "%s: skipped %zu malformed line(s):\n", path.c_str(),
                 read->skipped);
    for (const std::string& e : read->errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
  }

  const telemetry::CausalIndex idx =
      telemetry::CausalIndex::fromLines(read->lines);

  if (summary) printSummary(idx);

  for (std::uint64_t uid : chains) {
    if (idx.packetRecords(uid).empty()) {
      std::fprintf(stderr, "no records for packet uid %" PRIu64 "\n", uid);
      return 1;
    }
    std::fputs(idx.renderChain(uid).c_str(), stdout);
  }

  if (staleReport) {
    std::fputs(idx.staleReport().render().c_str(), stdout);
  }

  if (!perfettoOut.empty()) {
    const long n = telemetry::convertJsonlToPerfetto(read->lines, perfettoOut);
    if (n < 0) {
      std::fprintf(stderr, "cannot write %s\n", perfettoOut.c_str());
      return 1;
    }
    std::printf("wrote %ld timeline events to %s\n", n, perfettoOut.c_str());
  }
  return 0;
}
