// manet_lint CLI: determinism + concurrency-safety lint over the repo tree.
//
//   manet_lint [--root DIR]         lint src/ bench/ examples/ tests/
//   manet_lint --sarif FILE         also write findings as SARIF 2.1.0
//   manet_lint --check-budget       fail if inline allows exceed the baseline
//   manet_lint --write-budget       regenerate the allow-budget baseline
//   manet_lint --budget FILE        baseline path (default
//                                   <root>/tools/manet_lint/allow_budget.txt)
//   manet_lint --self-test          run the embedded fixture suite
//   manet_lint --list-rules         print rule ids and summaries
//   manet_lint --fix-hints          append each rule's fix hint + rationale
//
// Exit codes: 0 clean, 1 findings (or self-test/budget failure), 2 usage
// error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/manet_lint/lint.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: manet_lint [--root DIR] [--fix-hints] [--quiet]\n"
      "                  [--sarif FILE] [--budget FILE]\n"
      "       manet_lint [--root DIR] --check-budget | --write-budget\n"
      "       manet_lint --self-test | --list-rules\n");
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::string readFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarifPath;
  std::string budgetPath;
  bool fixHints = false;
  bool quiet = false;
  bool selfTest = false;
  bool listRules = false;
  bool checkBudget = false;
  bool writeBudget = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      sarifPath = argv[++i];
    } else if (arg == "--budget") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      budgetPath = argv[++i];
    } else if (arg == "--check-budget") {
      checkBudget = true;
    } else if (arg == "--write-budget") {
      writeBudget = true;
    } else if (arg == "--fix-hints") {
      fixHints = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (arg == "--list-rules") {
      listRules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "manet_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }

  if (listRules) {
    for (const auto& r : manet::lint::rules()) {
      std::printf("%-19s %s\n", r.id, r.summary);
      if (fixHints) {
        std::printf("%19s fix: %s\n", "", r.hint);
        std::printf("%19s why: %s\n", "", r.rationale);
      }
    }
    return 0;
  }
  if (selfTest) return manet::lint::runSelfTest();

  if (!std::filesystem::exists(std::filesystem::path(root) / "src")) {
    std::fprintf(stderr,
                 "manet_lint: '%s' does not look like the repo root (no "
                 "src/); pass --root\n",
                 root.c_str());
    return 2;
  }
  if (budgetPath.empty()) {
    budgetPath = (std::filesystem::path(root) / "tools" / "manet_lint" /
                  "allow_budget.txt")
                     .generic_string();
  }

  if (writeBudget) {
    const auto counts = manet::lint::countAllows(root);
    if (!writeFile(budgetPath, manet::lint::formatBudget(counts))) {
      std::fprintf(stderr, "manet_lint: cannot write budget file '%s'\n",
                   budgetPath.c_str());
      return 2;
    }
    if (!quiet) {
      std::fprintf(stderr, "manet_lint: wrote allow budget to %s\n",
                   budgetPath.c_str());
    }
    return 0;
  }

  if (checkBudget) {
    bool ok = false;
    const std::string baseline = readFile(budgetPath, &ok);
    if (!ok) {
      std::fprintf(stderr,
                   "manet_lint: cannot read budget file '%s'; generate it "
                   "with --write-budget\n",
                   budgetPath.c_str());
      return 2;
    }
    std::vector<std::string> errors;
    const auto budget = manet::lint::parseBudget(baseline, &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "manet_lint: %s\n", e.c_str());
    }
    if (!errors.empty()) return 2;
    const auto counts = manet::lint::countAllows(root);
    std::string report;
    const int rc = manet::lint::checkBudget(counts, budget, &report);
    std::fputs(report.c_str(), stderr);
    return rc;
  }

  std::vector<std::string> scanned;
  const std::vector<manet::lint::Finding> findings =
      manet::lint::lintTree(root, &scanned);
  for (const auto& f : findings) {
    std::printf("%s\n", manet::lint::formatFinding(f).c_str());
    if (fixHints) {
      std::printf("    fix: %s\n", manet::lint::ruleHint(f.rule).c_str());
      std::printf("    why: %s\n",
                  manet::lint::ruleRationale(f.rule).c_str());
    }
  }
  if (!sarifPath.empty()) {
    if (!writeFile(sarifPath, manet::lint::sarifReport(findings))) {
      std::fprintf(stderr, "manet_lint: cannot write SARIF file '%s'\n",
                   sarifPath.c_str());
      return 2;
    }
    if (!quiet) {
      std::fprintf(stderr, "manet_lint: SARIF log written to %s\n",
                   sarifPath.c_str());
    }
  }
  if (!quiet) {
    std::fprintf(stderr, "manet_lint: %zu file(s) scanned, %zu finding(s)\n",
                 scanned.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
