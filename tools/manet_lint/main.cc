// manet_lint CLI: determinism lint over the repo tree.
//
//   manet_lint [--root DIR]         lint src/ bench/ examples/ tests/
//   manet_lint --self-test          run the embedded fixture suite
//   manet_lint --list-rules         print rule ids and summaries
//   manet_lint --fix-hints          append each rule's rationale to findings
//
// Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/manet_lint/lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: manet_lint [--root DIR] [--fix-hints] [--quiet]\n"
               "       manet_lint --self-test | --list-rules\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool fixHints = false;
  bool quiet = false;
  bool selfTest = false;
  bool listRules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--fix-hints") {
      fixHints = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (arg == "--list-rules") {
      listRules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "manet_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }

  if (listRules) {
    for (const auto& r : manet::lint::rules()) {
      std::printf("%-18s %s\n", r.id, r.summary);
      if (fixHints) std::printf("%18s %s\n", "", r.rationale);
    }
    return 0;
  }
  if (selfTest) return manet::lint::runSelfTest();

  if (!std::filesystem::exists(std::filesystem::path(root) / "src")) {
    std::fprintf(stderr,
                 "manet_lint: '%s' does not look like the repo root (no "
                 "src/); pass --root\n",
                 root.c_str());
    return 2;
  }

  std::vector<std::string> scanned;
  const std::vector<manet::lint::Finding> findings =
      manet::lint::lintTree(root, &scanned);
  for (const auto& f : findings) {
    std::printf("%s\n", manet::lint::formatFinding(f).c_str());
    if (fixHints) {
      std::printf("    rationale: %s\n",
                  manet::lint::ruleRationale(f.rule).c_str());
    }
  }
  if (!quiet) {
    std::fprintf(stderr, "manet_lint: %zu file(s) scanned, %zu finding(s)\n",
                 scanned.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
