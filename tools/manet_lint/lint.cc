#include "tools/manet_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace manet::lint {
namespace {

// ------------------------------------------------------------------ rules

const std::vector<RuleInfo> kRules = {
    {"raw-rng",
     "rand()/srand()/std::random_device outside src/sim/rng.*",
     "Every random draw must come from a named sim::Rng stream so runs are "
     "replayable from the scenario seeds alone. rand() is process-global "
     "state and std::random_device is nondeterministic by design; either one "
     "makes same-seed replay impossible.",
     "Draw from a named sim::Rng stream (Scenario owns them, seeded from the "
     "scenario config); delete the rand()/srand()/random_device call."},
    {"wall-clock",
     "wall/steady clock reads outside src/prof/ and bench/",
     "Simulated time comes only from Scheduler::now(). A wall-clock read in "
     "simulation code couples results to host speed and scheduling; profiling "
     "(src/prof/) and benchmarks (bench/) are the only layers that may time "
     "the host, and they must never feed the value back into the sim.",
     "Replace the clock read with Scheduler::now(), or move the timing into "
     "src/prof//bench/; a report-only read needs an allow stating the value "
     "never feeds back into the simulation."},
    {"unordered-iter",
     "iteration over std::unordered_{map,set} in simulation-visible code",
     "Hash-table iteration order is unspecified and differs across standard "
     "libraries; if it reaches scheduling, RNG draws, or packet emission "
     "order, replay is only accidentally reproducible. Point lookups are "
     "fine; loops must use std::map / sorted vectors, or be allowlisted with "
     "a proof that order cannot escape.",
     "Change the container to std::map / a sorted vector, or collect keys "
     "and sort before iterating; an allow needs a proof that iteration "
     "order cannot reach scheduling, RNG draws, or packet emission."},
    {"sched-category",
     "Scheduler::scheduleAt/scheduleAfter call without a prof::Category tag",
     "The profiler attributes wall time per event category; an untagged call "
     "site lands in kOther and hides its cost. Library code must state the "
     "category explicitly at every schedule call.",
     "Append the event's prof::Category (kPhy/kMac/kRouting/...) as the "
     "last argument of the scheduleAt/scheduleAfter call."},
    {"float-time",
     "sim::Time <-> floating point round-trips in simulation-core code",
     "sim::Time is integer nanoseconds precisely so event ordering has no "
     "floating-point drift. toSeconds()/fromSeconds() in core simulation "
     "logic reintroduce rounding; keep float math in reporting layers, or "
     "allowlist fixed-operation uses that are bit-stable per IEEE-754.",
     "Do the arithmetic in integer nanoseconds (sim::Time ops), or move the "
     "conversion into a reporting layer; a fixed-op use that is bit-stable "
     "per IEEE-754 may carry an allow saying so."},
    {"iostream-include",
     "#include <iostream> in library code (src/)",
     "iostream drags in global constructors and encourages ad-hoc stdout "
     "writes from library code; use util::log (captured by telemetry) or "
     "return data to the caller. Binaries under bench/, examples/, tests/ "
     "may print freely.",
     "Drop the include; emit through util::log (MANET_INFO/...) or return "
     "the data to the caller and let a binary print it."},
    {"shared-mutable",
     "non-const global/static-local state in src/ outside allowlisted sinks",
     "A mutable global or function-local static is shared by every Scenario "
     "in the process — and, under the parallel sweep runner, by every worker "
     "thread — so it either data-races or couples runs together and breaks "
     "bit-identical replay. Keep state per-Scenario; a true process-wide "
     "sink (log level, stderr mutex) or a thread_local with a per-run reset "
     "must carry an allow comment stating why it cannot perturb results.",
     "Move the state onto the Scenario (or the object that owns the run); a "
     "deliberate process-wide sink keeps the global but adds an allow with "
     "its safety argument and includes src/util/thread_annotations.h so the "
     "sharing is under the annotation regime."},
    {"causal-id",
     "Packet::make() without a causeUid link in protocol code",
     "The causal trace layer reconstructs why every packet exists from "
     "causeUid links (reply <- request, error <- failed packet, ack <- "
     "segment). A protocol-layer Packet::make() that never assigns causeUid "
     "silently breaks those chains. Set `p->causeUid = <trigger>->uid` in "
     "the construction block, or allowlist a true root origination (new "
     "application data) with the reason.",
     "Assign `p->causeUid = <triggering packet>->uid` inside the "
     "construction block; a true root origination (new application data) "
     "carries an allow naming it as such."},
    {"subprocess",
     "process spawning (fork/exec/posix_spawn/system/popen) in src/ outside "
     "the supervisor",
     "Library code creating processes is invisible to the determinism "
     "contract: a child inherits no scheduler, can deadlock a fork()ed "
     "multithreaded parent, and its exit status rarely reaches the campaign "
     "report. Supervised cell isolation (src/scenario/supervisor.cc) is the "
     "single sanctioned spawn point and carries per-line allows; tools/, "
     "tests/ and bench/ drive binaries freely.",
     "Route the spawn through runChildProcess in src/scenario/supervisor.cc "
     "(the sanctioned, watchdogged spawn point), or move the code into "
     "tools//tests//bench/ where spawning is free."},
    {"hotspot-guard",
     "hotspot counter record call outside src/prof/ without the enabled-flag "
     "null check",
     "The hotspot layer's zero-overhead-when-off contract rests on every "
     "instrumentation site being guarded by the single null/enabled check: "
     "'if (prof::Profiler* p = sched_.profiler())', 'if (prof_ != nullptr)' "
     "or 'if (auto* a = prof::AllocTracker::current())'. An unguarded "
     "recordFanout/countFrameHeard/recordHorizon/noteQueueDepth/allocRecord "
     "call either dereferences null when profiling is off or silently pays "
     "the record cost on every run.",
     "Wrap the record call in the canonical guard: 'if (prof::Profiler* p = "
     "sched_.profiler())', 'if (prof_ != nullptr)' or 'if (auto* a = "
     "prof::AllocTracker::current())'."},
    {"lock-discipline",
     "mutex declared in src/ without a GUARDED_BY-annotated data set",
     "A mutex that guards nothing the compiler can see is a data race "
     "waiting to happen: Clang Thread Safety Analysis can only prove "
     "lock discipline for members annotated GUARDED_BY(mu). Every mutex in "
     "src/ must either guard annotated members or carry an allow naming the "
     "external resource (file descriptor, stderr stream) it serializes.",
     "Annotate the data the mutex protects — 'int x_ GUARDED_BY(mu_);' "
     "(macros from src/util/thread_annotations.h) — or, if it serializes an "
     "external resource with no in-process members, add an allow naming "
     "that resource. Prefer util::Mutex over std::mutex so the analysis "
     "sees acquisitions."},
    {"annotation-coverage",
     "allow(shared-mutable) in a file that lacks the thread-annotation "
     "header",
     "Every audited shared-mutable global is by definition thread-shared "
     "state, which is exactly what the thread-safety annotation layer "
     "exists to police. A file on the shared-mutable allowlist that does "
     "not include src/util/thread_annotations.h (directly or via "
     "src/util/mutex.h) has opted out of the compile-time race checks its "
     "own suppression says it needs.",
     "Add '#include \"src/util/thread_annotations.h\"' (or include "
     "src/util/mutex.h, which pulls it in) and annotate the shared state's "
     "locking contract where one exists."},
    {"bare-lock",
     "direct .lock()/.unlock() call outside the RAII wrappers in src/",
     "A bare lock()/unlock() pair leaks the mutex on every early return and "
     "exception path between them, and Clang Thread Safety Analysis cannot "
     "match manually split acquire/release sites across branches. Critical "
     "sections in src/ are MutexLock scopes; only src/util/mutex.h itself "
     "touches the underlying std::mutex.",
     "Replace the lock()/unlock() pair with a scoped 'const util::MutexLock "
     "lock(mu);' block (narrow the block to the critical section); a "
     "deliberate cross-scope handoff needs an allow with its audit."},
    {"bare-allow",
     "manet-lint allow() comment without a justification",
     "Every suppression must record why the flagged construct cannot perturb "
     "the simulation: '// manet-lint: allow(<rule>): <reason>'.",
     "Append the justification: '// manet-lint: allow(<rule>): <why this "
     "cannot perturb the simulation>'."},
    {"unknown-rule",
     "manet-lint allow() naming a rule the linter does not know",
     "A typo in the rule id would silently suppress nothing; name one of the "
     "ids listed by --list-rules.",
     "Fix the rule id to one listed by --list-rules (or delete the stale "
     "allow if the rule no longer exists)."},
};

// Directories (repo-relative prefixes) where hash-order iteration or
// float/time round-trips are simulation-visible: anything that schedules
// events, emits packets, or mutates protocol state. Reporting-only layers
// (telemetry, metrics, prof, util, scenario export) are exempt.
const char* kSimCoreDirs[] = {"src/core/", "src/mac/",       "src/net/",
                              "src/sim/",  "src/aodv/",      "src/transport/",
                              "src/phy/",  "src/traffic/",   "src/mobility/",
                              "src/fault/"};

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool inSimCore(const std::string& path) {
  return std::any_of(std::begin(kSimCoreDirs), std::end(kSimCoreDirs),
                     [&](const char* d) { return startsWith(path, d); });
}

// ------------------------------------------------------------------ lexer

struct Lexed {
  /// Input with comment bodies and string/char-literal contents replaced by
  /// spaces; same length and newlines, so line/column arithmetic matches.
  std::string code;
  /// Per-character class: 'n' code, 'c' comment, 's' string/char literal.
  std::string mask;
};

Lexed stripCommentsAndLiterals(const std::string& in) {
  Lexed lx{in, std::string(in.size(), 'n')};
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\n') lx.mask[i] = '\n';  // keep line structure in the mask
  }
  const auto blank = [&](std::size_t i, char kind) {
    if (in[i] == '\n') return;  // never overwrite line breaks
    lx.code[i] = ' ';
    lx.mask[i] = kind;
  };
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string rawDelim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          blank(i, 'c');
          blank(i + 1, 'c');
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          blank(i, 'c');
          blank(i + 1, 'c');
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          st = St::kRaw;
          rawDelim.clear();
          std::size_t j = i + 2;
          while (j < in.size() && in[j] != '(') rawDelim += in[j++];
          rawDelim = ")" + rawDelim + "\"";
          for (std::size_t k = i; k <= j && k < in.size(); ++k) blank(k, 's');
          i = j;
        } else if (c == '"') {
          st = St::kStr;
          lx.mask[i] = 's';  // keep the quote visible in code
        } else if (c == '\'') {
          st = St::kChar;
          lx.mask[i] = 's';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          blank(i, 'c');
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          blank(i, 'c');
          blank(i + 1, 'c');
          ++i;
        } else {
          blank(i, 'c');
        }
        break;
      case St::kStr:
        if (c == '\\') {
          blank(i, 's');
          if (next != '\n' && i + 1 < in.size()) {
            blank(i + 1, 's');
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
          lx.mask[i] = 's';
        } else {
          blank(i, 's');
        }
        break;
      case St::kChar:
        if (c == '\\') {
          blank(i, 's');
          if (i + 1 < in.size() && next != '\n') {
            blank(i + 1, 's');
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
          lx.mask[i] = 's';
        } else {
          blank(i, 's');
        }
        break;
      case St::kRaw:
        if (in.compare(i, rawDelim.size(), rawDelim) == 0) {
          for (std::size_t k = 0; k < rawDelim.size(); ++k) {
            blank(i + k, 's');
          }
          i += rawDelim.size() - 1;
          st = St::kCode;
        } else {
          blank(i, 's');
        }
        break;
    }
  }
  return lx;
}

std::vector<std::string> splitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

// ------------------------------------------------------------- allowlist

struct Allow {
  std::set<std::string> ruleIds;
  bool hasJustification = false;
};

/// Parse "// manet-lint: allow(a, b): reason" comments from the raw lines.
/// Keyed by 1-based line number. Only markers whose text sits inside an
/// actual comment count — the same byte sequence inside a string literal
/// (e.g. in the linter's own tests) is data, not a directive; the lexer's
/// per-char mask tells the two apart.
std::map<int, Allow> parseAllows(const std::vector<std::string>& rawLines,
                                 const std::vector<std::string>& maskLines,
                                 const std::string& relPath,
                                 std::vector<Finding>* meta) {
  static const std::regex kAllowRe(
      R"(manet-lint:\s*allow\(([A-Za-z0-9_,\s-]*)\)\s*:?\s*(.*))");
  std::map<int, Allow> allows;
  for (std::size_t i = 0; i < rawLines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(rawLines[i], m, kAllowRe)) continue;
    const auto pos = static_cast<std::size_t>(m.position(0));
    if (i >= maskLines.size() || pos >= maskLines[i].size() ||
        maskLines[i][pos] != 'c') {
      continue;
    }
    Allow a;
    std::stringstream ids(m[1].str());
    std::string id;
    while (std::getline(ids, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               id.end());
      if (id.empty()) continue;
      if (!knownRule(id)) {
        meta->push_back({relPath, static_cast<int>(i + 1), "unknown-rule",
                         "allow() names unknown rule '" + id + "'"});
        continue;
      }
      a.ruleIds.insert(id);
    }
    std::string why = m[2].str();
    a.hasJustification =
        why.find_first_not_of(" \t:") != std::string::npos;
    if (!a.hasJustification) {
      meta->push_back({relPath, static_cast<int>(i + 1), "bare-allow",
                       "allow() comment needs a justification: "
                       "'// manet-lint: allow(<rule>): <reason>'"});
    }
    allows[static_cast<int>(i + 1)] = std::move(a);
  }
  return allows;
}

/// An allow comment on a pure-comment line covers the next line too, so a
/// multi-line justification block still reaches the code under it: walk the
/// lines and let a justified allow ride down while the line carrying it has
/// no code of its own.
void propagateAllows(const std::vector<std::string>& codeLines,
                     std::map<int, Allow>* allows) {
  for (std::size_t i = 0; i < codeLines.size(); ++i) {
    const int line = static_cast<int>(i + 1);
    auto it = allows->find(line);
    if (it == allows->end() || !it->second.hasJustification) continue;
    const bool pureComment =
        codeLines[i].find_first_not_of(" \t") == std::string::npos;
    if (!pureComment) continue;
    Allow& next = (*allows)[line + 1];
    if (next.ruleIds.empty()) next.hasJustification = true;
    next.ruleIds.insert(it->second.ruleIds.begin(),
                        it->second.ruleIds.end());
  }
}

bool isAllowed(const std::map<int, Allow>& allows, int line,
               const std::string& rule) {
  for (int l : {line, line - 1}) {
    auto it = allows.find(l);
    if (it != allows.end() && it->second.hasJustification &&
        it->second.ruleIds.count(rule)) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------ per-rule matching

struct LineRule {
  const char* id;
  std::regex re;
  const char* message;
};

void applyLineRules(const std::vector<LineRule>& lineRules,
                    const std::vector<std::string>& codeLines,
                    const std::map<int, Allow>& allows,
                    const std::string& relPath, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < codeLines.size(); ++i) {
    const int line = static_cast<int>(i + 1);
    for (const LineRule& r : lineRules) {
      if (!std::regex_search(codeLines[i], r.re)) continue;
      if (isAllowed(allows, line, r.id)) continue;
      out->push_back({relPath, line, r.id, r.message});
    }
  }
}

/// Collect names declared as std::unordered_{map,set,multimap,multiset}
/// anywhere in the (comment-stripped) text: skip the balanced <...> template
/// argument list, then take the next identifier.
std::set<std::string> unorderedNames(const std::string& code) {
  std::set<std::string> names;
  static const char* kContainers[] = {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"};
  for (const char* cont : kContainers) {
    const std::string tok = cont;
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      std::size_t j = pos + tok.size();
      pos = j;
      // Must be followed (after whitespace) by the template argument list.
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      if (j >= code.size() || code[j] != '<') continue;
      int depth = 0;
      while (j < code.size()) {
        if (code[j] == '<') ++depth;
        if (code[j] == '>') {
          --depth;
          if (depth == 0) {
            ++j;
            break;
          }
        }
        ++j;
      }
      // Skip whitespace and reference/pointer decoration before the name.
      while (j < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[j])) ||
              code[j] == '&' || code[j] == '*')) {
        ++j;
      }
      std::string name;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) ||
              code[j] == '_')) {
        name += code[j++];
      }
      if (!name.empty() && name != "const") names.insert(name);
    }
  }
  return names;
}

void checkUnorderedIteration(const std::string& code,
                             const std::string& headerCode,
                             const std::vector<std::string>& codeLines,
                             const std::map<int, Allow>& allows,
                             const std::string& relPath,
                             std::vector<Finding>* out) {
  std::set<std::string> names = unorderedNames(code);
  const std::set<std::string> headerNames = unorderedNames(headerCode);
  names.insert(headerNames.begin(), headerNames.end());
  if (names.empty()) return;

  static const std::regex kRangedFor(R"(for\s*\([^;()]*:\s*\*?(\w+)\s*\))");
  static const std::regex kBeginCall(R"((\w+)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < codeLines.size(); ++i) {
    const int line = static_cast<int>(i + 1);
    for (const auto* re : {&kRangedFor, &kBeginCall}) {
      auto begin =
          std::sregex_iterator(codeLines[i].begin(), codeLines[i].end(), *re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (!names.count(name)) continue;
        if (isAllowed(allows, line, "unordered-iter")) continue;
        out->push_back(
            {relPath, line, "unordered-iter",
             "iteration over unordered container '" + name +
                 "' in simulation-visible code; use std::map / a sorted "
                 "vector, or allowlist with a proof order cannot escape"});
      }
    }
  }
}

void checkSchedulerCategories(const std::string& code,
                              const std::map<int, Allow>& allows,
                              const std::string& relPath,
                              std::vector<Finding>* out) {
  for (const char* tok : {"scheduleAt", "scheduleAfter"}) {
    const std::string t = tok;
    std::size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += t.size();
      // Token boundaries: reject scheduleAttempt, rescheduleAt, etc.
      if (start > 0) {
        const char prev = code[start - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          continue;
        }
      }
      std::size_t j = pos;
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      if (j >= code.size() || code[j] != '(') continue;
      // Capture the balanced call extent.
      int depth = 0;
      const std::size_t open = j;
      while (j < code.size()) {
        if (code[j] == '(') ++depth;
        if (code[j] == ')') {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      const std::string extent = code.substr(open, j - open + 1);
      // A declaration/definition extent mentions std::function parameters;
      // call sites pass lambdas or callables. Distinguish cheaply: a
      // declaration's extent contains "std::function<".
      if (extent.find("std::function<") != std::string::npos) continue;
      if (extent.find("prof::Category::") != std::string::npos) continue;
      const int line =
          1 + static_cast<int>(std::count(code.begin(),
                                          code.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  start),
                                          '\n'));
      if (isAllowed(allows, line, "sched-category")) continue;
      out->push_back({relPath, line, "sched-category",
                      std::string(tok) +
                          "() without an explicit prof::Category tag; name "
                          "the event's category so profiling attributes it"});
    }
  }
}

/// shared-mutable: `static` / `thread_local` declarations of mutable
/// objects, plus namespace-scope `g_*` definitions (the repo's convention
/// for process globals, which need no `static` inside an anonymous
/// namespace). Function declarations are skipped by shape: their extent
/// hits '(' before any initializer or terminator.
void checkSharedMutable(const std::string& code,
                        const std::map<int, Allow>& allows,
                        const std::string& relPath,
                        std::vector<Finding>* out) {
  const auto lineOf = [&code](std::size_t pos) {
    return 1 + static_cast<int>(std::count(
                   code.begin(),
                   code.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
  };
  const auto emit = [&](std::size_t pos, const std::string& what) {
    const int line = lineOf(pos);
    if (isAllowed(allows, line, "shared-mutable")) return;
    out->push_back({relPath, line, "shared-mutable",
                    what + "; per-run state belongs on the Scenario — a "
                           "deliberate process-wide sink needs an allow "
                           "comment with its safety argument"});
  };

  static const std::regex kKeyword(R"(\b(static|thread_local)\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kKeyword);
       it != std::sregex_iterator(); ++it) {
    const auto start = static_cast<std::size_t>(it->position(0));
    // Walk the declaration head: stop at the initializer ('=' or '{'), a
    // parameter list '(' (=> function, skip), or the terminator ';'
    // (uninitialized variable). Angle brackets nest template arguments.
    std::size_t j = start + it->length(0);
    int angle = 0;
    char stop = '\0';
    while (j < code.size()) {
      const char c = code[j];
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (angle == 0 && (c == '=' || c == '{' || c == '(' || c == ';')) {
        stop = c;
        break;
      }
      ++j;
    }
    if (stop == '\0' || stop == '(') continue;  // function decl/definition
    const std::string head = code.substr(start, j - start);
    static const std::regex kConst(R"(\b(const|constexpr|constinit)\b)");
    if (std::regex_search(head, kConst)) continue;
    emit(start, "mutable '" + it->str(1) + "' object");
  }

  // Namespace-scope globals by naming convention: `Type g_name = ...;` has
  // no `static` keyword inside an anonymous namespace.
  static const std::regex kGlobal(R"(\bg_\w+\s*(\{|=[^=]|;))");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kGlobal);
       it != std::sregex_iterator(); ++it) {
    const auto start = static_cast<std::size_t>(it->position(0));
    // Skip if this g_ token sits inside a `static`/`thread_local` head the
    // pass above already judged (flagged or const-cleared).
    const std::size_t lineStart = code.rfind('\n', start) + 1;
    const std::string prefix = code.substr(lineStart, start - lineStart);
    static const std::regex kHandled(
        R"(\b(static|thread_local|const|constexpr|constinit)\b)");
    if (std::regex_search(prefix, kHandled)) continue;
    // Declarations start the statement with a type name; assignments to an
    // already-flagged global start with the g_ token itself. Require the
    // prefix to look like `Type ` — template/identifier characters only,
    // with at least one identifier character present.
    const bool typeShaped =
        prefix.find_first_not_of(
            " \t:<>,&*ABCDEFGHIJKLMNOPQRSTUVWXYZ"
            "abcdefghijklmnopqrstuvwxyz0123456789_") == std::string::npos &&
        std::any_of(prefix.begin(), prefix.end(), [](unsigned char c) {
          return std::isalnum(c) != 0;
        });
    if (!typeShaped) continue;
    emit(start, "namespace-scope mutable global '" +
                    it->str(0).substr(0, it->str(0).find_first_of(
                                             " \t{=;")) +
                    "'");
  }
}

/// causal-id: every Packet::make() in protocol code must wire the new
/// packet into a causal chain by assigning `causeUid` somewhere in its
/// construction block. The check is textual on purpose: a `causeUid`
/// mention within the next few lines of the (comment-stripped) code is
/// taken as the link. Root originations — packets with no cause, like new
/// application data — carry an allow comment instead. Clones are exempt by
/// construction (net::clone preserves uid and causeUid).
void checkCausalIds(const std::string& code,
                    const std::vector<std::string>& codeLines,
                    const std::map<int, Allow>& allows,
                    const std::string& relPath, std::vector<Finding>* out) {
  /// Lines after Packet::make() searched for the causeUid assignment — the
  /// repo's construction blocks (kind/src/dst/headers) all fit well inside.
  constexpr std::size_t kWindow = 15;
  static const std::regex kMake(R"(\bPacket::make\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kMake);
       it != std::sregex_iterator(); ++it) {
    const auto start = static_cast<std::size_t>(it->position(0));
    const int line = 1 + static_cast<int>(std::count(
                             code.begin(),
                             code.begin() + static_cast<std::ptrdiff_t>(start),
                             '\n'));
    // The factory's own definition ends in '{', not a call expression.
    const std::size_t lineStart = code.rfind('\n', start) + 1;
    const std::string before = code.substr(lineStart, start - lineStart);
    if (before.find("shared_ptr") != std::string::npos) continue;
    bool linked = false;
    for (std::size_t l = static_cast<std::size_t>(line);
         l <= static_cast<std::size_t>(line) + kWindow &&
         l <= codeLines.size();
         ++l) {
      if (codeLines[l - 1].find("causeUid") != std::string::npos) {
        linked = true;
        break;
      }
    }
    if (linked) continue;
    if (isAllowed(allows, line, "causal-id")) continue;
    out->push_back(
        {relPath, line, "causal-id",
         "Packet::make() with no causeUid assignment nearby; link the "
         "packet to its trigger (p->causeUid = trigger->uid) or allowlist "
         "a root origination"});
  }
}

/// hotspot-guard: the hotspot layer's record methods are only legal behind
/// the canonical null/enabled check. Textual on purpose, like causal-id: an
/// `if (` that names nullptr, profiler() or AllocTracker::current() on the
/// call's own line or within the preceding few (a guard block may span the
/// dispatch body, see Scheduler::run) counts as the guard.
void checkHotspotGuards(const std::string& code,
                        const std::vector<std::string>& codeLines,
                        const std::map<int, Allow>& allows,
                        const std::string& relPath,
                        std::vector<Finding>* out) {
  /// Lines above the call searched for the guard; Scheduler::run's guarded
  /// dispatch block (release -> scope -> handler -> depth sample) is the
  /// longest sanctioned span.
  constexpr int kWindow = 8;
  static const char* kRecordCalls[] = {
      "countFrameHeard", "recordFanout", "recordHorizon", "noteQueueDepth",
      "allocRecord",     "allocRelease", "recordAlloc",   "releaseAlloc"};
  static const std::regex kGuard(
      R"re(if\s*\(.*(nullptr|profiler\s*\(\s*\)|current\s*\(\s*\)))re");
  for (const char* call : kRecordCalls) {
    const std::string tok = call;
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += tok.size();
      if (start > 0) {
        const char prev = code[start - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          continue;
        }
      }
      std::size_t j = pos;
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      if (j >= code.size() || code[j] != '(') continue;
      const int line = 1 + static_cast<int>(std::count(
                               code.begin(),
                               code.begin() +
                                   static_cast<std::ptrdiff_t>(start),
                               '\n'));
      bool guarded = false;
      for (int l = std::max(1, line - kWindow); l <= line; ++l) {
        if (std::regex_search(codeLines[static_cast<std::size_t>(l - 1)],
                              kGuard)) {
          guarded = true;
          break;
        }
      }
      if (guarded) continue;
      if (isAllowed(allows, line, "hotspot-guard")) continue;
      out->push_back(
          {relPath, line, "hotspot-guard",
           std::string(call) +
               "() without the enabled-flag null check nearby; wrap the "
               "site in 'if (prof::Profiler* p = ...profiler())' / 'if "
               "(prof_ != nullptr)' / 'if (auto* a = "
               "prof::AllocTracker::current())'"});
    }
  }
}

/// lock-discipline: a mutex declared in src/ must guard something the
/// compiler can see — at least one member annotated GUARDED_BY(<name>) /
/// PT_GUARDED_BY(<name>) in the same file or the paired header — or carry
/// an allow naming the external resource (stderr stream, filesystem,
/// journal fd) it serializes. Matches both the annotated util::Mutex
/// wrapper and raw std:: mutex types, so an unannotated std::mutex that
/// sneaks past the conversion is flagged too.
void checkLockDiscipline(const std::string& code,
                         const std::string& headerCode,
                         const std::map<int, Allow>& allows,
                         const std::string& relPath,
                         std::vector<Finding>* out) {
  static const std::regex kMutexDecl(
      R"(\b(?:std::(?:recursive_|shared_|timed_)?mutex|(?:util::)?Mutex)\b)"
      R"(\s+(\w+)\s*[;{=])");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kMutexDecl);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const std::regex guarded("\\b(?:PT_)?GUARDED_BY\\(\\s*" + name +
                             "\\s*\\)");
    if (std::regex_search(code, guarded) ||
        (!headerCode.empty() && std::regex_search(headerCode, guarded))) {
      continue;
    }
    const auto start = static_cast<std::size_t>(it->position(0));
    const int line = 1 + static_cast<int>(std::count(
                             code.begin(),
                             code.begin() +
                                 static_cast<std::ptrdiff_t>(start),
                             '\n'));
    if (isAllowed(allows, line, "lock-discipline")) continue;
    out->push_back(
        {relPath, line, "lock-discipline",
         "mutex '" + name +
             "' guards no GUARDED_BY-annotated data; annotate the members "
             "it protects (src/util/thread_annotations.h) or allowlist the "
             "external resource it serializes"});
  }
}

/// annotation-coverage: a file carrying an allow(shared-mutable) marker has
/// audited thread-shared state, so it must opt in to the compile-time
/// annotation regime by including src/util/thread_annotations.h (directly
/// or via src/util/mutex.h, which pulls it in). The include may live in the
/// paired header — logging.cc gets it through logging.h. One finding per
/// file, anchored at the first marker.
void checkAnnotationCoverage(const std::string& content,
                             const std::string& headerContent,
                             const std::vector<std::string>& rawLines,
                             const std::vector<std::string>& maskLines,
                             const std::map<int, Allow>& allows,
                             const std::string& relPath,
                             std::vector<Finding>* out) {
  const auto hasHeader = [](const std::string& text) {
    return text.find("src/util/thread_annotations.h") != std::string::npos ||
           text.find("src/util/mutex.h") != std::string::npos;
  };
  if (hasHeader(content) || hasHeader(headerContent)) return;
  static const std::regex kSharedAllow(
      R"(manet-lint:\s*allow\([^)]*\bshared-mutable\b)");
  for (std::size_t i = 0; i < rawLines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(rawLines[i], m, kSharedAllow)) continue;
    const auto pos = static_cast<std::size_t>(m.position(0));
    if (i >= maskLines.size() || pos >= maskLines[i].size() ||
        maskLines[i][pos] != 'c') {
      continue;
    }
    const int line = static_cast<int>(i + 1);
    if (isAllowed(allows, line, "annotation-coverage")) continue;
    out->push_back(
        {relPath, line, "annotation-coverage",
         "allow(shared-mutable) in a file without the thread-annotation "
         "header; include \"src/util/thread_annotations.h\" (or "
         "src/util/mutex.h) so the shared state is under the annotation "
         "regime"});
    return;  // one finding per file is enough to drive the fix
  }
}

/// bare-lock: direct .lock()/.unlock() calls in src/ leak on early returns
/// and defeat Clang Thread Safety Analysis; critical sections are MutexLock
/// scopes. Only src/util/mutex.h (the wrapper itself) touches the raw
/// std::mutex.
void checkBareLock(const std::vector<std::string>& codeLines,
                   const std::map<int, Allow>& allows,
                   const std::string& relPath, std::vector<Finding>* out) {
  static const std::regex kBare(R"((\.|->)\s*(lock|unlock)\s*\(\s*\))");
  for (std::size_t i = 0; i < codeLines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(codeLines[i], m, kBare)) continue;
    const int line = static_cast<int>(i + 1);
    if (isAllowed(allows, line, "bare-lock")) continue;
    out->push_back(
        {relPath, line, "bare-lock",
         "direct ." + m[2].str() +
             "() outside the RAII wrappers; hold the mutex through a "
             "scoped util::MutexLock (src/util/mutex.h) so every exit "
             "path releases it"});
  }
}

// ------------------------------------------------------------- self-test

struct Fixture {
  const char* name;
  const char* path;     // decides rule scoping
  const char* content;
  const char* expectRule;  // nullptr => must be clean
};

const Fixture kFixtures[] = {
    {"raw-rng hit", "src/core/bad_rng.cc",
     "int draw() { return rand() % 6; }\n", "raw-rng"},
    {"raw-rng random_device hit", "src/mac/bad_dev.cc",
     "#include <random>\nstd::random_device rd;\n", "raw-rng"},
    {"raw-rng allowlisted", "src/core/ok_rng.cc",
     "// manet-lint: allow(raw-rng): seeding doc example, never compiled in\n"
     "int draw() { return rand() % 6; }\n",
     nullptr},
    {"raw-rng clean in rng.cc", "src/sim/rng.cc",
     "std::uint64_t mix() { return 1; } // rand() lives here by design\n",
     nullptr},
    {"wall-clock hit", "src/net/bad_clock.cc",
     "auto t0 = std::chrono::steady_clock::now();\n", "wall-clock"},
    {"wall-clock allowed in prof", "src/prof/ok_clock.cc",
     "auto t0 = std::chrono::steady_clock::now();\n", nullptr},
    {"wall-clock allowed in bench", "bench/ok_clock.cc",
     "auto t0 = std::chrono::high_resolution_clock::now();\n", nullptr},
    {"unordered-iter hit", "src/core/bad_iter.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> table_;\n"
     "void f() { for (auto& [k, v] : table_) { (void)k; (void)v; } }\n",
     "unordered-iter"},
    {"unordered-iter begin hit", "src/sim/bad_begin.cc",
     "#include <unordered_set>\n"
     "std::unordered_set<int> seen_;\n"
     "auto f() { return seen_.begin(); }\n",
     "unordered-iter"},
    {"unordered-iter lookup clean", "src/core/ok_lookup.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> table_;\n"
     "bool f(int k) { return table_.find(k) != table_.end(); }\n",
     nullptr},
    {"unordered-iter out of scope", "src/telemetry/ok_iter.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> table_;\n"
     "void f() { for (auto& [k, v] : table_) { (void)k; (void)v; } }\n",
     nullptr},
    {"sched-category hit", "src/traffic/bad_sched.cc",
     "void f(manet::sim::Scheduler& s) {\n"
     "  s.scheduleAt(manet::sim::Time::seconds(1), [] {});\n"
     "}\n",
     "sched-category"},
    {"sched-category tagged clean", "src/traffic/ok_sched.cc",
     "void f(manet::sim::Scheduler& s) {\n"
     "  s.scheduleAfter(manet::sim::Time::seconds(1), [] {},\n"
     "                  prof::Category::kTraffic);\n"
     "}\n",
     nullptr},
    {"float-time hit", "src/mac/bad_time.cc",
     "double f(manet::sim::Time t) { return t.toSeconds() * 2.0; }\n",
     "float-time"},
    {"float-time allowlisted", "src/mac/ok_time.cc",
     "double f(manet::sim::Time t) {\n"
     "  // manet-lint: allow(float-time): report-only value, never fed back\n"
     "  return t.toSeconds() * 2.0;\n"
     "}\n",
     nullptr},
    {"iostream hit", "src/util/bad_io.cc", "#include <iostream>\n",
     "iostream-include"},
    {"iostream fine in examples", "examples/ok_io.cpp",
     "#include <iostream>\nint main() { std::cout << 1; }\n", nullptr},
    {"bare allow flagged", "src/core/bad_allow.cc",
     "// manet-lint: allow(raw-rng)\nint draw() { return rand() % 6; }\n",
     "bare-allow"},
    {"unknown rule flagged", "src/core/bad_rule.cc",
     "// manet-lint: allow(raw-rgn): typo\nint x;\n", "unknown-rule"},
    {"shared-mutable static hit", "src/core/bad_static.cc",
     "int nextId() {\n  static int counter = 0;\n  return ++counter;\n}\n",
     "shared-mutable"},
    {"shared-mutable thread_local hit", "src/net/bad_tls.cc",
     "thread_local unsigned t_scratch = 0;\n", "shared-mutable"},
    {"shared-mutable g_ global hit", "src/util/bad_global.cc",
     "#include <atomic>\nnamespace {\nstd::atomic<bool> g_flag{false};\n}\n",
     "shared-mutable"},
    {"shared-mutable const clean", "src/core/ok_static.cc",
     "static const int kTableSize = 64;\n"
     "static constexpr double kAlpha = 2.0;\n",
     nullptr},
    {"shared-mutable function decl clean", "src/core/ok_static_fn.cc",
     "struct Packet {\n  static void resetUidCounter();\n};\n"
     "static int helper(int x) { return x + 1; }\n",
     nullptr},
    {"shared-mutable allowlisted", "src/util/ok_sink.cc",
     "#include \"src/util/mutex.h\"\nutil::Mutex& sinkMutex() {\n"
     "  // manet-lint: allow(shared-mutable, lock-discipline): stderr\n"
     "  // serialization only, never read by simulation code\n"
     "  static util::Mutex m;\n  return m;\n}\n",
     nullptr},
    {"shared-mutable fine outside src", "bench/ok_static.cc",
     "static int callCount = 0;\n", nullptr},
    {"causal-id hit", "src/core/bad_causal.cc",
     "void f() {\n"
     "  auto p = net::Packet::make();\n"
     "  p->kind = net::PacketKind::kRouteReply;\n"
     "}\n",
     "causal-id"},
    {"causal-id linked clean", "src/aodv/ok_causal.cc",
     "void f(const net::PacketPtr& req) {\n"
     "  auto p = net::Packet::make();\n"
     "  p->kind = net::PacketKind::kRouteReply;\n"
     "  p->causeUid = req->uid;\n"
     "}\n",
     nullptr},
    {"causal-id root origination allowlisted", "src/transport/ok_root.cc",
     "void f() {\n"
     "  // manet-lint: allow(causal-id): new application data has no cause\n"
     "  auto p = net::Packet::make();\n"
     "  p->kind = net::PacketKind::kData;\n"
     "}\n",
     nullptr},
    {"causal-id factory definition clean", "src/net/packet.cc",
     "std::shared_ptr<Packet> Packet::make() {\n"
     "  auto p = std::make_shared<Packet>();\n"
     "  return p;\n"
     "}\n",
     nullptr},
    {"causal-id out of scope in tests", "tests/core/ok_test.cc",
     "void f() { auto p = net::Packet::make(); (void)p; }\n", nullptr},
    {"subprocess system hit", "src/core/bad_spawn.cc",
     "#include <cstdlib>\nint f() { return std::system(\"ls\"); }\n",
     "subprocess"},
    {"subprocess spawn hit", "src/net/bad_exec.cc",
     "#include <spawn.h>\n"
     "int f(char** a) { pid_t p; "
     "return posix_spawnp(&p, a[0], nullptr, nullptr, a, nullptr); }\n",
     "subprocess"},
    {"subprocess allowlisted in supervisor", "src/scenario/ok_spawn.cc",
     "#include <spawn.h>\n"
     "int f(char** a) {\n"
     "  pid_t p;\n"
     "  // manet-lint: allow(subprocess): supervised cell isolation\n"
     "  return posix_spawnp(&p, a[0], nullptr, nullptr, a, nullptr);\n"
     "}\n",
     nullptr},
    {"subprocess fine in tests", "tests/integration/ok_sys.cc",
     "#include <cstdlib>\nint f() { return std::system(\"./bin\"); }\n",
     nullptr},
    {"subprocess fine in tools", "tools/manet_ctl/ok_sys.cc",
     "#include <cstdlib>\nint f() { return std::system(\"./bin\"); }\n",
     nullptr},
    {"hotspot-guard hit", "src/net/bad_hotspot.cc",
     "void f(manet::prof::Profiler* p) {\n"
     "  p->recordFanout(20, 6);\n"
     "}\n",
     "hotspot-guard"},
    {"hotspot-guard same-line guard clean", "src/phy/ok_hotspot.cc",
     "void f() {\n"
     "  if (prof::Profiler* p = sched_.profiler()) p->countFrameHeard(3);\n"
     "}\n",
     nullptr},
    {"hotspot-guard block guard clean", "src/sim/ok_hotspot_block.cc",
     "void f() {\n"
     "  if (prof_ != nullptr) {\n"
     "    prof_->recordHorizon(100);\n"
     "    prof_->allocRecord(prof::AllocSite::kEvent);\n"
     "  }\n"
     "}\n",
     nullptr},
    {"hotspot-guard tracker guard clean", "src/telemetry/ok_hotspot.cc",
     "void f(std::size_t n) {\n"
     "  if (prof::AllocTracker* a = prof::AllocTracker::current()) {\n"
     "    a->recordAlloc(prof::AllocSite::kTraceRecord, n);\n"
     "  }\n"
     "}\n",
     nullptr},
    {"hotspot-guard allowlisted", "src/net/ok_hotspot_allow.cc",
     "void f(manet::prof::Profiler& p) {\n"
     "  // manet-lint: allow(hotspot-guard): reference held by value, "
     "enabled-checked inside\n"
     "  p.recordFanout(20, 6);\n"
     "}\n",
     nullptr},
    {"hotspot-guard fine in prof", "src/prof/ok_internal.cc",
     "void f(manet::prof::AllocTracker& t) {\n"
     "  t.recordAlloc(manet::prof::AllocSite::kPacket);\n"
     "}\n",
     nullptr},
    {"lock-discipline hit", "src/core/bad_mutex.cc",
     "#include \"src/util/mutex.h\"\n"
     "class Tally {\n"
     "  util::Mutex mu_;\n"
     "  int hits_ = 0;\n"
     "};\n",
     "lock-discipline"},
    {"lock-discipline std::mutex hit", "src/net/bad_std_mutex.cc",
     "#include <mutex>\n"
     "class Queue {\n"
     "  std::mutex mu_;\n"
     "  int depth_ = 0;\n"
     "};\n",
     "lock-discipline"},
    {"lock-discipline guarded clean", "src/core/ok_mutex.cc",
     "#include \"src/util/mutex.h\"\n"
     "class Tally {\n"
     "  util::Mutex mu_;\n"
     "  int hits_ GUARDED_BY(mu_) = 0;\n"
     "};\n",
     nullptr},
    {"lock-discipline external resource allowlisted",
     "src/util/ok_mutex_allow.cc",
     "#include \"src/util/mutex.h\"\n"
     "util::Mutex& dirMutex() {\n"
     "  // manet-lint: allow(shared-mutable, lock-discipline): serializes\n"
     "  // mkdir against the filesystem, an external resource; no members\n"
     "  static util::Mutex m;\n"
     "  return m;\n"
     "}\n",
     nullptr},
    {"lock-discipline and bare-lock exempt in mutex.h", "src/util/mutex.h",
     "#include <mutex>\n"
     "class Mutex {\n"
     "  void lock() { mu_.lock(); }\n"
     "  std::mutex mu_;\n"
     "};\n",
     nullptr},
    {"annotation-coverage hit", "src/core/bad_cover.cc",
     "// manet-lint: allow(shared-mutable): audited counter, observational\n"
     "static int g_count = 0;\n",
     "annotation-coverage"},
    {"annotation-coverage clean with header", "src/core/ok_cover.cc",
     "#include \"src/util/thread_annotations.h\"\n"
     "// manet-lint: allow(shared-mutable): audited counter, observational\n"
     "static int g_count = 0;\n",
     nullptr},
    {"annotation-coverage allowlisted", "src/core/ok_cover_allow.cc",
     "// manet-lint: allow(shared-mutable, annotation-coverage): plain int\n"
     "// read only by report binaries; annotations add no checking here\n"
     "static int g_flag = 0;\n",
     nullptr},
    {"bare-lock hit", "src/net/bad_lock.cc",
     "#include \"src/util/mutex.h\"\n"
     "void f(util::Mutex& mu) {\n"
     "  mu.lock();\n"
     "  mu.unlock();\n"
     "}\n",
     "bare-lock"},
    {"bare-lock RAII clean", "src/net/ok_lock.cc",
     "#include \"src/util/mutex.h\"\n"
     "void f(util::Mutex& mu) {\n"
     "  const util::MutexLock lock(mu);\n"
     "}\n",
     nullptr},
    {"bare-lock allowlisted", "src/scenario/ok_lock_allow.cc",
     "#include \"src/util/mutex.h\"\n"
     "void f(util::Mutex& mu) {\n"
     "  // manet-lint: allow(bare-lock): audited handoff, released by callee\n"
     "  mu.lock();\n"
     "}\n",
     nullptr},
    {"bare-lock fine outside src", "tests/core/ok_lock_test.cc",
     "#include <mutex>\n"
     "void f(std::mutex& mu) {\n  mu.lock();\n  mu.unlock();\n}\n",
     nullptr},
    {"comment mention clean", "src/core/ok_comment.cc",
     "// rand() and steady_clock are banned here; see DESIGN.md\nint x;\n",
     nullptr},
    {"string mention clean", "src/core/ok_string.cc",
     "const char* kMsg = \"do not call rand() or iterate unordered_map\";\n",
     nullptr},
};

// ------------------------------------------------------------- tree walk

/// Default scan roots and extensions, shared by lintTree and countAllows so
/// the budget counts exactly what the linter scans.
std::vector<std::filesystem::path> collectSources(
    const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  static const char* kRoots[] = {"src", "bench", "examples", "tests"};
  static const char* kExts[] = {".cc", ".h", ".cpp", ".hpp"};
  std::vector<fs::path> files;
  for (const char* r : kRoots) {
    const fs::path dir = root / r;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(std::begin(kExts), std::end(kExts), ext) ==
          std::end(kExts)) {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Resolve the scan root so findings are repo-relative however the tool was
/// invoked ("--root .", "--root ../..", an absolute path): symlinks and
/// dot-segments are folded away before fs::relative computes paths.
std::filesystem::path canonicalRoot(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path canon = fs::weakly_canonical(fs::path(root), ec);
  if (ec || canon.empty()) canon = fs::absolute(fs::path(root), ec);
  if (ec || canon.empty()) canon = fs::path(root);
  return canon;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------------- public

const std::vector<RuleInfo>& rules() { return kRules; }

bool knownRule(const std::string& id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

std::string ruleRationale(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return r.rationale;
  }
  return {};
}

std::vector<Finding> lintSource(const std::string& relPath,
                                const std::string& content,
                                const std::string& headerContent) {
  std::vector<Finding> out;
  const Lexed lexed = stripCommentsAndLiterals(content);
  const std::string headerCode =
      headerContent.empty() ? std::string()
                            : stripCommentsAndLiterals(headerContent).code;
  const std::vector<std::string> rawLines = splitLines(content);
  const std::vector<std::string> maskLines = splitLines(lexed.mask);
  const std::vector<std::string> codeLines = splitLines(lexed.code);
  std::map<int, Allow> allows = parseAllows(rawLines, maskLines, relPath, &out);
  propagateAllows(codeLines, &allows);

  const bool inSrc = startsWith(relPath, "src/");
  const bool simCore = inSimCore(relPath);

  std::vector<LineRule> lineRules;
  if (!startsWith(relPath, "src/sim/rng.")) {
    lineRules.push_back(
        {"raw-rng",
         std::regex(R"(\b(rand|srand)\s*\(|std::random_device|)"
                    R"(\brandom_device\b)"),
         "process-global/nondeterministic RNG; draw from a named sim::Rng "
         "stream instead"});
  }
  if (!startsWith(relPath, "src/prof/") && !startsWith(relPath, "bench/")) {
    lineRules.push_back(
        {"wall-clock",
         std::regex(R"(steady_clock|system_clock|high_resolution_clock|)"
                    R"(\bgettimeofday\b|\bclock_gettime\b|)"
                    R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
         "wall-clock read outside src/prof//bench/; simulated time comes "
         "from Scheduler::now()"});
  }
  if (simCore && !startsWith(relPath, "src/sim/time.h")) {
    lineRules.push_back(
        {"float-time",
         std::regex(R"(\.\s*toSeconds\s*\(|\bfromSeconds\s*\()"),
         "sim::Time <-> double round-trip in simulation-core code; keep "
         "float math in reporting layers or allowlist a fixed-op use"});
  }
  if (inSrc) {
    lineRules.push_back({"iostream-include",
                         std::regex(R"(#\s*include\s*<iostream>)"),
                         "<iostream> in library code; use util::log or "
                         "return data to the caller"});
    lineRules.push_back(
        {"subprocess",
         std::regex(R"(\b(fork|vfork|execve?|execvp?e?|execlp?e?|)"
                    R"(posix_spawnp?|popen)\s*\(|\bsystem\s*\()"),
         "process creation in library code; route it through the supervised "
         "cell-isolation layer (src/scenario/supervisor.cc) or move it to "
         "tools//tests//bench/"});
  }
  applyLineRules(lineRules, codeLines, allows, relPath, &out);

  if (simCore) {
    checkUnorderedIteration(lexed.code, headerCode, codeLines, allows,
                            relPath, &out);
  }
  if (inSrc && !startsWith(relPath, "src/sim/scheduler.")) {
    checkSchedulerCategories(lexed.code, allows, relPath, &out);
  }
  if (inSrc) {
    checkSharedMutable(lexed.code, allows, relPath, &out);
  }
  if (simCore && !startsWith(relPath, "src/net/packet.")) {
    checkCausalIds(lexed.code, codeLines, allows, relPath, &out);
  }
  if (inSrc && !startsWith(relPath, "src/prof/")) {
    checkHotspotGuards(lexed.code, codeLines, allows, relPath, &out);
  }
  if (inSrc && !startsWith(relPath, "src/util/mutex.")) {
    checkLockDiscipline(lexed.code, headerCode, allows, relPath, &out);
    checkBareLock(codeLines, allows, relPath, &out);
  }
  if (inSrc && !startsWith(relPath, "src/util/mutex.") &&
      !startsWith(relPath, "src/util/thread_annotations.")) {
    checkAnnotationCoverage(content, headerContent, rawLines, maskLines,
                            allows, relPath, &out);
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Finding> lintTree(const std::string& root,
                              std::vector<std::string>* scannedFiles) {
  namespace fs = std::filesystem;
  const fs::path canon = canonicalRoot(root);
  const std::vector<fs::path> files = collectSources(canon);

  std::vector<Finding> out;
  for (const fs::path& p : files) {
    const std::string rel = fs::relative(p, canon).generic_string();
    if (scannedFiles) scannedFiles->push_back(rel);
    std::string header;
    const std::string ext = p.extension().string();
    if (ext == ".cc" || ext == ".cpp") {
      for (const char* hx : {".h", ".hpp"}) {
        fs::path hp = p;
        hp.replace_extension(hx);
        if (fs::exists(hp)) {
          header = slurp(hp);
          break;
        }
      }
    }
    std::vector<Finding> fs_ = lintSource(rel, slurp(p), header);
    out.insert(out.end(), fs_.begin(), fs_.end());
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) <
           std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::string formatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

std::string ruleHint(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return r.hint;
  }
  return {};
}

std::string sarifReport(const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < kRules.size(); ++i) index[kRules[i].id] = i;

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"manet_lint\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    const RuleInfo& r = kRules[i];
    os << "            {\n"
       << "              \"id\": \"" << jsonEscape(r.id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << jsonEscape(r.summary) << "\" },\n"
       << "              \"fullDescription\": { \"text\": \""
       << jsonEscape(r.rationale) << "\" },\n"
       << "              \"help\": { \"text\": \"" << jsonEscape(r.hint)
       << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < kRules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << jsonEscape(f.rule) << "\",\n";
    const auto it = index.find(f.rule);
    if (it != index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << jsonEscape(f.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\n"
       << "                  \"uri\": \"" << jsonEscape(f.file) << "\",\n"
       << "                  \"uriBaseId\": \"%SRCROOT%\"\n"
       << "                },\n"
       << "                \"region\": { \"startLine\": " << f.line
       << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

std::map<std::string, std::size_t> countAllows(const std::string& root) {
  std::map<std::string, std::size_t> counts;
  for (const RuleInfo& r : kRules) counts.emplace(r.id, 0);
  for (const auto& p : collectSources(canonicalRoot(root))) {
    const std::string content = slurp(p);
    const Lexed lexed = stripCommentsAndLiterals(content);
    const std::vector<std::string> rawLines = splitLines(content);
    const std::vector<std::string> maskLines = splitLines(lexed.mask);
    std::vector<Finding> meta;  // unknown-rule/bare-allow noise: lint's job
    const std::map<int, Allow> allows =
        parseAllows(rawLines, maskLines, p.generic_string(), &meta);
    for (const auto& [line, a] : allows) {
      if (!a.hasJustification) continue;  // bare allows suppress nothing
      for (const std::string& id : a.ruleIds) ++counts[id];
    }
  }
  return counts;
}

std::map<std::string, std::size_t> parseBudget(
    const std::string& content, std::vector<std::string>* errors) {
  std::map<std::string, std::size_t> budget;
  std::istringstream in(content);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    std::istringstream fields(line);
    std::string rule;
    long long n = -1;
    std::string extra;
    if (!(fields >> rule >> n) || n < 0 || (fields >> extra)) {
      if (errors) {
        errors->push_back("budget line " + std::to_string(lineNo) +
                          ": malformed entry '" + line +
                          "' (expected '<rule> <count>')");
      }
      continue;
    }
    if (!knownRule(rule)) {
      if (errors) {
        errors->push_back("budget line " + std::to_string(lineNo) +
                          ": unknown rule '" + rule + "'");
      }
      continue;
    }
    budget[rule] = static_cast<std::size_t>(n);
  }
  return budget;
}

std::string formatBudget(const std::map<std::string, std::size_t>& counts) {
  std::ostringstream os;
  os << "# manet_lint suppression budget: how many justified inline\n"
        "# `manet-lint: allow(<rule>)` markers each rule may carry across\n"
        "# the scan roots (src, bench, examples, tests).\n"
        "#\n"
        "# `manet_lint --check-budget` fails when a count grows past its\n"
        "# line here, so a new suppression needs either a fix or a\n"
        "# reviewed baseline bump (`manet_lint --write-budget`\n"
        "# regenerates this file from the tree).\n";
  for (const RuleInfo& r : kRules) {
    const auto it = counts.find(r.id);
    os << r.id << ' ' << (it == counts.end() ? 0 : it->second) << '\n';
  }
  return os.str();
}

int checkBudget(const std::map<std::string, std::size_t>& counts,
                const std::map<std::string, std::size_t>& budget,
                std::string* report) {
  const auto get = [](const std::map<std::string, std::size_t>& m,
                      const std::string& k) {
    const auto it = m.find(k);
    return it == m.end() ? std::size_t{0} : it->second;
  };
  int overages = 0;
  for (const RuleInfo& r : kRules) {
    const std::size_t actual = get(counts, r.id);
    const std::size_t cap = get(budget, r.id);
    if (actual > cap) {
      ++overages;
      if (report) {
        *report += "over budget: " + std::string(r.id) + " carries " +
                   std::to_string(actual) + " allow(s), budget " +
                   std::to_string(cap) +
                   " — fix the new suppression or bump the baseline with "
                   "--write-budget\n";
      }
    } else if (actual < cap && report) {
      *report += "slack: " + std::string(r.id) + " carries " +
                 std::to_string(actual) + " allow(s), budget " +
                 std::to_string(cap) +
                 " — consider ratcheting the baseline down\n";
    }
  }
  if (report) {
    *report += overages == 0 ? "allow budget OK\n"
                             : "allow budget exceeded\n";
  }
  return overages == 0 ? 0 : 1;
}

int runSelfTest() {
  int failures = 0;
  // Every rule must be documented end to end: what it flags, why it
  // exists, and how to fix a finding (--fix-hints must never be blank).
  for (const RuleInfo& r : kRules) {
    if (r.summary == nullptr || *r.summary == '\0' ||
        r.rationale == nullptr || *r.rationale == '\0' ||
        r.hint == nullptr || *r.hint == '\0') {
      ++failures;
      std::fprintf(stderr,
                   "self-test FAIL: rule '%s' is missing its summary, "
                   "rationale or fix hint\n",
                   r.id);
    }
  }
  for (const Fixture& fx : kFixtures) {
    const std::vector<Finding> found = lintSource(fx.path, fx.content);
    if (fx.expectRule == nullptr) {
      if (!found.empty()) {
        ++failures;
        std::fprintf(stderr, "self-test FAIL: '%s' expected clean, got:\n",
                     fx.name);
        for (const Finding& f : found) {
          std::fprintf(stderr, "  %s\n", formatFinding(f).c_str());
        }
      }
      continue;
    }
    const bool hit =
        std::any_of(found.begin(), found.end(),
                    [&](const Finding& f) { return f.rule == fx.expectRule; });
    if (!hit) {
      ++failures;
      std::fprintf(stderr,
                   "self-test FAIL: '%s' expected a [%s] finding, got %zu "
                   "finding(s)\n",
                   fx.name, fx.expectRule, found.size());
      for (const Finding& f : found) {
        std::fprintf(stderr, "  %s\n", formatFinding(f).c_str());
      }
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "manet_lint self-test: %zu fixtures ok\n",
                 std::size(kFixtures));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace manet::lint
