// manet_lint: repo-specific determinism linter.
//
// The simulator's headline property — same seed, bit-identical run — is a
// whole-repo invariant: one rand() call, one wall-clock read, or one
// hash-ordered loop feeding packet emission breaks it silently. This linter
// turns those invariants into build errors. It works on tokens plus
// lightweight lexing (comments, string and char literals are stripped before
// matching), not a full C++ parse; rules are scoped to the directories where
// a violation is actually simulation-visible.
//
// Suppression syntax (checked: a justification is mandatory):
//   // manet-lint: allow(<rule>): <why this use cannot perturb the sim>
// The comment suppresses findings of <rule> on its own line and the next
// line, so it can sit above (or trail) the offending statement; a
// justification continued over several pure-comment lines still reaches the
// code below the block.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace manet::lint {

struct Finding {
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct RuleInfo {
  const char* id;
  const char* summary;    // one-line description of what is flagged
  const char* rationale;  // why the rule exists
  const char* hint;       // actionable fix, printed by --fix-hints
};

/// All rules the engine knows, in stable order.
const std::vector<RuleInfo>& rules();

/// True if `id` names a known rule.
bool knownRule(const std::string& id);

/// Lint a single file. `relPath` selects which rules apply (scoping is by
/// directory); `headerContent` is the paired header of a .cc file, used only
/// to pick up member declarations (e.g. an unordered_map declared in the .h
/// and iterated in the .cc).
std::vector<Finding> lintSource(const std::string& relPath,
                                const std::string& content,
                                const std::string& headerContent = "");

/// Walk the default scan roots (src, bench, examples, tests) under `root`
/// and lint every C++ file, pairing each .cc/.cpp with its sibling header.
/// Results are sorted by path then line, so output is deterministic.
/// Returns findings; files actually read are appended to `scannedFiles`
/// when non-null.
std::vector<Finding> lintTree(const std::string& root,
                              std::vector<std::string>* scannedFiles = nullptr);

/// One finding rendered as "path:line: [rule] message".
std::string formatFinding(const Finding& f);

/// Rationale text for a rule id (empty if unknown).
std::string ruleRationale(const std::string& id);

/// Actionable fix text for a rule id (empty if unknown).
std::string ruleHint(const std::string& id);

/// Findings rendered as a SARIF 2.1.0 log (the shape GitHub code scanning
/// consumes): one run, the full rule catalog in tool.driver.rules (stable
/// ids and indices), one result per finding with a repo-relative
/// artifactLocation uri under %SRCROOT% and a 1-based startLine region.
std::string sarifReport(const std::vector<Finding>& findings);

// -------------------------------------------------------- allow budgets
//
// Inline allow() comments are audited suppressions; the committed baseline
// (tools/manet_lint/allow_budget.txt) caps how many each rule may carry.
// --check-budget fails when suppressions grow past the baseline, so a new
// allow needs either a fix or an explicit, reviewable baseline bump.

/// Count justified `manet-lint: allow(<rule>)` markers per rule across the
/// scan roots. A marker naming several rules counts once per rule named.
std::map<std::string, std::size_t> countAllows(const std::string& root);

/// Parse a budget file ("<rule> <count>" lines, '#' comments). Unknown rule
/// ids and malformed lines are reported through `errors` when non-null.
std::map<std::string, std::size_t> parseBudget(
    const std::string& content, std::vector<std::string>* errors = nullptr);

/// Budget file content for the given counts (stable rule-catalog order,
/// zero-count rules included so additions always diff against a line).
std::string formatBudget(const std::map<std::string, std::size_t>& counts);

/// Compare actual counts against the baseline. Returns 0 when no rule
/// exceeds its budget; appends human-readable verdict lines to `report`.
/// Slack (actual < budget) is reported but does not fail.
int checkBudget(const std::map<std::string, std::size_t>& counts,
                const std::map<std::string, std::size_t>& budget,
                std::string* report);

/// Run the embedded fixture suite: every rule must flag its seeded
/// violation, honour its allowlisted variant, and pass its clean variant.
/// Returns 0 on success; prints failures to stderr.
int runSelfTest();

}  // namespace manet::lint
