// manet_lint: repo-specific determinism linter.
//
// The simulator's headline property — same seed, bit-identical run — is a
// whole-repo invariant: one rand() call, one wall-clock read, or one
// hash-ordered loop feeding packet emission breaks it silently. This linter
// turns those invariants into build errors. It works on tokens plus
// lightweight lexing (comments, string and char literals are stripped before
// matching), not a full C++ parse; rules are scoped to the directories where
// a violation is actually simulation-visible.
//
// Suppression syntax (checked: a justification is mandatory):
//   // manet-lint: allow(<rule>): <why this use cannot perturb the sim>
// The comment suppresses findings of <rule> on its own line and the next
// line, so it can sit above (or trail) the offending statement; a
// justification continued over several pure-comment lines still reaches the
// code below the block.
#pragma once

#include <string>
#include <vector>

namespace manet::lint {

struct Finding {
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct RuleInfo {
  const char* id;
  const char* summary;    // one-line description of what is flagged
  const char* rationale;  // why the rule exists (printed by --fix-hints)
};

/// All rules the engine knows, in stable order.
const std::vector<RuleInfo>& rules();

/// True if `id` names a known rule.
bool knownRule(const std::string& id);

/// Lint a single file. `relPath` selects which rules apply (scoping is by
/// directory); `headerContent` is the paired header of a .cc file, used only
/// to pick up member declarations (e.g. an unordered_map declared in the .h
/// and iterated in the .cc).
std::vector<Finding> lintSource(const std::string& relPath,
                                const std::string& content,
                                const std::string& headerContent = "");

/// Walk the default scan roots (src, bench, examples, tests) under `root`
/// and lint every C++ file, pairing each .cc/.cpp with its sibling header.
/// Results are sorted by path then line, so output is deterministic.
/// Returns findings; files actually read are appended to `scannedFiles`
/// when non-null.
std::vector<Finding> lintTree(const std::string& root,
                              std::vector<std::string>* scannedFiles = nullptr);

/// One finding rendered as "path:line: [rule] message".
std::string formatFinding(const Finding& f);

/// Rationale text for a rule id (empty if unknown).
std::string ruleRationale(const std::string& id);

/// Run the embedded fixture suite: every rule must flag its seeded
/// violation, honour its allowlisted variant, and pass its clean variant.
/// Returns 0 on success; prints failures to stderr.
int runSelfTest();

}  // namespace manet::lint
