// manet_ctl: inspect and aggregate experiment journals.
//
//   manet_ctl status    JOURNAL...   campaign headers + cell counts
//   manet_ctl failures  JOURNAL...   quarantined / failed cells with errors
//   manet_ctl resume-cmd JOURNAL     command line to resume the campaign
//   manet_ctl aggregate JOURNAL...   merge journaled results across
//                                    campaigns (content-hash keyed, latest
//                                    record per cell wins) into a metric
//                                    table
//
// Everything here reads the append-only JSONL journals written by runPlan
// (see src/scenario/journal.h); corrupt lines are skipped and reported,
// never fatal.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/scenario/journal.h"
#include "src/scenario/table.h"
#include "src/util/stats.h"

namespace {

using manet::scenario::JournalEntry;
using manet::scenario::JournalState;
using manet::scenario::loadJournal;
using manet::scenario::runResultFromJournalJson;

int usage(int code) {
  std::fprintf(stderr,
               "usage: manet_ctl <command> JOURNAL...\n"
               "  status      campaign headers and cell status counts\n"
               "  failures    quarantined/failed cells with their errors\n"
               "  resume-cmd  print the command to resume the last campaign\n"
               "  aggregate   merge journaled results into a metric table\n");
  return code;
}

std::vector<JournalState> loadAll(int argc, char** argv, int first) {
  std::vector<JournalState> states;
  for (int i = first; i < argc; ++i) {
    JournalState s = loadJournal(argv[i]);
    if (s.totalLines == 0) {
      std::fprintf(stderr, "manet_ctl: %s: empty or missing journal\n",
                   argv[i]);
    }
    states.push_back(std::move(s));
  }
  return states;
}

int cmdStatus(int argc, char** argv) {
  if (argc < 3) return usage(2);
  for (int i = 2; i < argc; ++i) {
    const JournalState s = loadJournal(argv[i]);
    std::printf("%s:\n", argv[i]);
    if (s.totalLines == 0) {
      std::printf("  (empty or missing)\n");
      continue;
    }
    for (const auto& c : s.campaigns) {
      std::printf("  campaign '%s': %zu point(s) x %d rep(s), code %s\n",
                  c.plan.c_str(), c.points, c.replications,
                  c.codeVersion.c_str());
      if (!c.cmd.empty()) std::printf("    cmd: %s\n", c.cmd.c_str());
    }
    std::printf("  cells: %zu done, %zu quarantined, %zu failed",
                s.countStatus("done"), s.countStatus("quarantined"),
                s.countStatus("failed"));
    if (s.corruptLines > 0) {
      std::printf(" (%zu corrupt line(s) skipped)", s.corruptLines);
    }
    std::printf("\n");
  }
  return 0;
}

int cmdFailures(int argc, char** argv) {
  if (argc < 3) return usage(2);
  std::size_t bad = 0;
  for (int i = 2; i < argc; ++i) {
    const JournalState s = loadJournal(argv[i]);
    for (const auto& [key, e] : s.cells) {
      if (e.status == "done") continue;
      ++bad;
      std::printf("%s: %s r%d [%s] after %d attempt(s): %s\n", argv[i],
                  e.label.c_str(), e.rep, e.status.c_str(), e.attempts,
                  e.error.c_str());
    }
  }
  if (bad == 0) std::printf("no quarantined or failed cells\n");
  return bad == 0 ? 0 : 1;
}

int cmdResumeCmd(int argc, char** argv) {
  if (argc != 3) return usage(2);
  const JournalState s = loadJournal(argv[2]);
  if (s.campaigns.empty()) {
    std::fprintf(stderr, "manet_ctl: %s has no campaign header\n", argv[2]);
    return 1;
  }
  const std::string& cmd = s.campaigns.back().cmd;
  if (cmd.empty()) {
    std::fprintf(stderr,
                 "manet_ctl: campaign recorded no command line; re-run the "
                 "original invocation with --resume added\n");
    return 1;
  }
  std::string out = cmd;
  if (out.find("--resume") == std::string::npos) out += " --resume";
  std::printf("%s\n", out.c_str());
  return 0;
}

int cmdAggregate(int argc, char** argv) {
  if (argc < 3) return usage(2);
  const std::vector<JournalState> states = loadAll(argc, argv, 2);
  // Dedupe across campaigns by content key: the same (config, seed, code)
  // cell journaled twice — e.g. once in an interrupted run and once in its
  // resume — contributes a single result; later journals win.
  std::map<std::string, JournalEntry> byKey;
  for (const JournalState& s : states) {
    for (const auto& [cellId, e] : s.cells) {
      if (e.status != "done") continue;
      byKey[e.key] = e;
    }
  }
  struct LabelStats {
    manet::util::RunningStats delivery, delay, overhead;
    std::size_t n = 0;
  };
  std::map<std::string, LabelStats> byLabel;
  std::size_t unreadable = 0;
  for (const auto& [key, e] : byKey) {
    const std::optional<manet::scenario::RunResult> r =
        runResultFromJournalJson(e.resultJson);
    if (!r) {
      ++unreadable;
      continue;
    }
    LabelStats& ls = byLabel[e.label];
    ls.delivery.add(r->metrics.packetDeliveryFraction());
    ls.delay.add(r->metrics.avgDelaySec());
    ls.overhead.add(r->metrics.normalizedOverhead());
    ++ls.n;
  }
  if (unreadable > 0) {
    std::fprintf(stderr, "manet_ctl: %zu journaled result(s) unreadable\n",
                 unreadable);
  }
  manet::scenario::Table table(
      {"label", "cells", "delivery", "delay_s", "overhead"});
  for (const auto& [label, ls] : byLabel) {
    table.addRow({label, std::to_string(ls.n),
                  manet::scenario::Table::num(ls.delivery.mean(), 3),
                  manet::scenario::Table::num(ls.delay.mean(), 4),
                  manet::scenario::Table::num(ls.overhead.mean(), 3)});
  }
  table.print("journaled results (" + std::to_string(byKey.size()) +
              " unique cells)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  if (cmd == "status") return cmdStatus(argc, argv);
  if (cmd == "failures") return cmdFailures(argc, argv);
  if (cmd == "resume-cmd") return cmdResumeCmd(argc, argv);
  if (cmd == "aggregate") return cmdAggregate(argc, argv);
  if (cmd == "--help" || cmd == "-h") return usage(0);
  std::fprintf(stderr, "manet_ctl: unknown command '%s'\n", cmd.c_str());
  return usage(2);
}
