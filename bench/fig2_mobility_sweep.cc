// Fig. 2 — Performance metrics with varying pause times (mobility).
//
// Reproduces the paper's mobility sweep: pause time 0 s (constant motion)
// to the run length (no motion), 3 packets/s, comparing base DSR against
// each caching technique and their combination ("ALL").
//
// Expected shape: ALL beats base DSR on delivery, delay and overhead at
// low pause times (paper: ~16 % delivery, ~40 % delay, ~22 % overhead at
// pause 0); the gap closes as mobility vanishes.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Fig. 2: mobility sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              scale.replications, scale.full ? " (full scale)" : "");

  const core::Variant variants[] = {
      core::Variant::kBase,           core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
      core::Variant::kAll,
  };
  // Pause times from constant motion to fully static, scaled to the run
  // length (the paper used 0..500 s over 500 s runs).
  const double runLen = base.duration.toSeconds();
  const double pauseFracs[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  Table delivery({"pause_s", "DSR", "WiderError", "AdaptiveExpiry",
                  "NegCache", "ALL"});
  Table delay = delivery;
  Table overhead = delivery;

  for (double frac : pauseFracs) {
    const double pauseSec = frac * runLen;
    std::vector<std::string> dRow{Table::num(pauseSec, 0)};
    std::vector<std::string> lRow = dRow;
    std::vector<std::string> oRow = dRow;
    for (core::Variant v : variants) {
      scenario::ScenarioConfig cfg = base;
      cfg.pause = sim::Time::fromSeconds(pauseSec);
      cfg.dsr = core::makeVariantConfig(v);
      std::printf("  pause %.0fs, %s...\n", pauseSec, core::toString(v));
      const auto agg = scenario::runReplicated(
          cfg, scale.replications, {},
          "fig2_p" + Table::num(pauseSec, 0) + "_" + core::toString(v));
      dRow.push_back(Table::num(agg.deliveryFraction.mean(), 3));
      lRow.push_back(Table::num(agg.avgDelaySec.mean(), 3));
      oRow.push_back(Table::num(agg.normalizedOverhead.mean(), 2));
    }
    delivery.addRow(dRow);
    delay.addRow(lRow);
    overhead.addRow(oRow);
  }

  delivery.print("Fig. 2(a) — packet delivery fraction vs pause time",
                 "fig2a_delivery.csv");
  delay.print("Fig. 2(b) — average delay (s) vs pause time",
              "fig2b_delay.csv");
  overhead.print("Fig. 2(c) — normalized overhead vs pause time",
                 "fig2c_overhead.csv");
  return 0;
}
