// Fig. 2 — Performance metrics with varying pause times (mobility).
//
// Reproduces the paper's mobility sweep: pause time 0 s (constant motion)
// to the run length (no motion), 3 packets/s, comparing base DSR against
// each caching technique and their combination ("ALL").
//
// Expected shape: ALL beats base DSR on delivery, delay and overhead at
// low pause times (paper: ~16 % delivery, ~40 % delay, ~22 % overhead at
// pause 0); the gap closes as mobility vanishes.
//
// Two plan axes (pause x protocol) expand to the paper's 25-cell grid;
// each figure panel is a pivot of one metric over that grid.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

namespace {

/// Axis over the paper's five protocol variants (base DSR, each technique,
/// ALL), shared by several benches.
std::vector<manet::scenario::AxisValue> variantAxis() {
  using namespace manet;
  std::vector<scenario::AxisValue> values;
  for (core::Variant v :
       {core::Variant::kBase, core::Variant::kWiderError,
        core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
        core::Variant::kAll}) {
    values.push_back({core::toString(v), [v](scenario::ScenarioConfig& cfg) {
                        cfg.dsr = core::makeVariantConfig(v);
                      }});
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "fig2_mobility_sweep");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Fig. 2: mobility sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      cli.replications(), scale.full ? " (full scale)" : "");

  // Pause times from constant motion to fully static, scaled to the run
  // length (the paper used 0..500 s over 500 s runs).
  const double runLen = base.duration.toSeconds();
  std::vector<scenario::AxisValue> pauses;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double pauseSec = frac * runLen;
    pauses.push_back(
        {Table::num(pauseSec, 0), [pauseSec](scenario::ScenarioConfig& cfg) {
           cfg.pause = sim::Time::fromSeconds(pauseSec);
         }});
  }

  scenario::ExperimentPlan plan("fig2", base);
  plan.axis("pause_s", std::move(pauses))
      .axis("protocol", variantAxis())
      .metric("delivery",
              [](const scenario::AggregateResult& a) {
                return a.deliveryFraction.mean();
              })
      .metric("delay_s",
              [](const scenario::AggregateResult& a) {
                return a.avgDelaySec.mean();
              })
      .metric("overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2);
  cli.applyFilters(plan);

  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());

  scenario::pivotTable(plan, result, "delivery")
      .print("Fig. 2(a) — packet delivery fraction vs pause time",
             "fig2a_delivery.csv");
  scenario::pivotTable(plan, result, "delay_s")
      .print("Fig. 2(b) — average delay (s) vs pause time",
             "fig2b_delay.csv");
  scenario::pivotTable(plan, result, "overhead")
      .print("Fig. 2(c) — normalized overhead vs pause time",
             "fig2c_overhead.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
