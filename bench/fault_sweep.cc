// Fault sweep — robustness of the caching strategies under node churn.
//
// The paper's techniques fight route staleness caused by mobility; node
// churn is a harsher staleness source (a crashed node invalidates every
// cached route through it at once, and a recovered node may have lost all
// its soft state). This sweep crosses churn intensity (fraction of nodes
// cycling up/down, 30 s mean up-time, 5 s mean down-time) with the cache
// strategies and reports packet delivery fraction, delay, and overhead —
// showing which technique degrades most gracefully.
//
// The MANET_FAULT_* environment knobs are deliberately NOT read here: the
// sweep sets its plans explicitly so rows are comparable.
#include <cstdio>
#include <string>

#include "src/core/dsr_config.h"
#include "src/fault/fault_plan.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Fault sweep: churn x strategy — %d nodes, %d flows, %.0f s, "
      "%d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      scale.replications, scale.full ? " (full scale)" : "");

  const double churnFractions[] = {0.0, 0.05, 0.1, 0.2};
  const core::Variant variants[] = {
      core::Variant::kBase,
      core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry,
      core::Variant::kNegCache,
  };

  Table table({"churn_fraction", "protocol", "delivery_pct", "delay_ms",
               "norm_overhead", "crashes"});
  for (const double fraction : churnFractions) {
    for (const core::Variant v : variants) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(v);
      cfg.fault = {};  // explicit plan; ignore MANET_FAULT_* for this sweep
      cfg.fault.churn.fraction = fraction;
      cfg.fault.churn.meanUpTimeSec = 30.0;
      cfg.fault.churn.meanDownTimeSec = 5.0;
      std::printf("  running churn=%.2f %s...\n", fraction,
                  core::toString(v));
      double crashes = 0.0;
      const auto agg = scenario::runReplicated(
          cfg, scale.replications,
          [&crashes](int, const scenario::RunResult& r) {
            crashes += static_cast<double>(r.metrics.faultNodeCrashes);
          },
          "fault_sweep_" + std::to_string(fraction) + "_" +
              core::toString(v));
      crashes /= scale.replications;
      table.addRow({Table::num(fraction, 2), core::toString(v),
                    Table::num(agg.deliveryFraction.mean() * 100.0, 1),
                    Table::num(agg.avgDelaySec.mean() * 1000.0, 1),
                    Table::num(agg.normalizedOverhead.mean(), 2),
                    Table::num(crashes, 1)});
    }
  }
  table.print("Fault sweep — delivery under node churn", "fault_sweep.csv");
  return 0;
}
