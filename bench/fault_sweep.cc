// Fault sweep — robustness of the caching strategies under node churn.
//
// The paper's techniques fight route staleness caused by mobility; node
// churn is a harsher staleness source (a crashed node invalidates every
// cached route through it at once, and a recovered node may have lost all
// its soft state). This sweep crosses churn intensity (fraction of nodes
// cycling up/down, 30 s mean up-time, 5 s mean down-time) with the cache
// strategies and reports packet delivery fraction, delay, and overhead —
// showing which technique degrades most gracefully.
//
// The MANET_FAULT_* environment knobs are deliberately NOT read here: the
// sweep sets its plans explicitly so rows are comparable.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/fault/fault_plan.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "fault_sweep");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  base.fault = {};  // explicit plan; ignore MANET_FAULT_* for this sweep
  base.fault.churn.meanUpTimeSec = 30.0;
  base.fault.churn.meanDownTimeSec = 5.0;
  std::printf(
      "Fault sweep: churn x strategy — %d nodes, %d flows, %.0f s, "
      "%d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      cli.replications(), scale.full ? " (full scale)" : "");

  std::vector<scenario::AxisValue> variants;
  for (core::Variant v :
       {core::Variant::kBase, core::Variant::kWiderError,
        core::Variant::kAdaptiveExpiry, core::Variant::kNegCache}) {
    variants.push_back({core::toString(v), [v](scenario::ScenarioConfig& cfg) {
                          cfg.dsr = core::makeVariantConfig(v);
                        }});
  }

  scenario::ExperimentPlan plan("fault_sweep", base);
  plan.axis(
          "churn_fraction", {0.0, 0.05, 0.1, 0.2},
          [](scenario::ScenarioConfig& cfg, double fraction) {
            cfg.fault.churn.fraction = fraction;
          })
      .axis("protocol", std::move(variants))
      .metric("delivery_pct",
              [](const scenario::AggregateResult& a) {
                return a.deliveryFraction.mean() * 100.0;
              },
              1)
      .metric("delay_ms",
              [](const scenario::AggregateResult& a) {
                return a.avgDelaySec.mean() * 1000.0;
              },
              1)
      .metric("norm_overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2);
  cli.applyFilters(plan);

  // Crash counts live on the per-run metrics, not the aggregate; collect
  // them through the deterministic merge-order observer.
  std::vector<double> crashes(plan.pointCount(), 0.0);
  scenario::RunnerOptions opts = cli.runnerOptions();
  opts.onRun = [&crashes](const scenario::SweepPoint& point, int,
                          const scenario::RunResult& r) {
    crashes[point.index] +=
        static_cast<double>(r.metrics.faultNodeCrashes);
  };

  const scenario::SweepResult result = scenario::runPlan(plan, opts);

  Table table({"churn_fraction", "protocol", "delivery_pct", "delay_ms",
               "norm_overhead", "crashes"});
  for (const scenario::PointResult& p : result.points) {
    std::vector<std::string> row = p.point.coordinates;
    for (const scenario::MetricColumn& m : plan.metrics()) {
      row.push_back(Table::num(m.fn(p.agg), m.precision));
    }
    row.push_back(
        Table::num(crashes[p.point.index] / result.replications, 1));
    table.addRow(row);
  }
  table.print("Fault sweep — delivery under node churn", "fault_sweep.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
