// Microbenchmarks (google-benchmark): hot-path costs of the simulator —
// cache operations, scheduler throughput, mobility queries and a whole
// small simulation measured in simulated-events per second.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/negative_cache.h"
#include "src/core/route_cache.h"
#include "src/mobility/mobility_model.h"
#include "src/mobility/waypoint.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/phy/channel.h"
#include "src/phy/neighbor_index.h"
#include "src/phy/radio.h"
#include "src/sim/event_queue.h"
#include "src/prof/profiler.h"
#include "src/scenario/scenario.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/trace.h"

namespace {

using namespace manet;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      sched.scheduleAt(sim::Time::micros(i), [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_RouteCacheInsert(benchmark::State& state) {
  sim::Rng rng(1);
  std::vector<std::vector<net::NodeId>> paths;
  for (int i = 0; i < 256; ++i) {
    std::vector<net::NodeId> p{0};
    const int len = static_cast<int>(rng.uniformInt(1, 8));
    for (int j = 0; j < len; ++j) {
      net::NodeId next;
      do {
        next = static_cast<net::NodeId>(rng.uniformInt(1, 100));
      } while (std::find(p.begin(), p.end(), next) != p.end());
      p.push_back(next);
    }
    paths.push_back(std::move(p));
  }
  core::RouteCache cache(0, 128);
  std::size_t i = 0;
  for (auto _ : state) {
    ++i;
    cache.insert(paths[i % paths.size()],
                 sim::Time::micros(static_cast<std::int64_t>(i)));
    benchmark::DoNotOptimize(cache.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCacheInsert);

void BM_RouteCacheFindRoute(benchmark::State& state) {
  sim::Rng rng(2);
  core::RouteCache cache(0, 128);
  for (int i = 0; i < 128; ++i) {
    std::vector<net::NodeId> p{0};
    for (int j = 0; j < 6; ++j) {
      p.push_back(static_cast<net::NodeId>(1 + i * 7 + j));
    }
    cache.insert(p, sim::Time::zero());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto r = cache.findRoute(static_cast<net::NodeId>(1 + (i++ % 800)));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCacheFindRoute);

void BM_RouteCacheRemoveLink(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::RouteCache cache(0, 128);
    for (int i = 0; i < 128; ++i) {
      cache.insert(std::vector<net::NodeId>{0, 1, static_cast<net::NodeId>(
                                                       2 + i)},
                   sim::Time::zero());
    }
    state.ResumeTiming();
    auto affected = cache.removeLink(net::LinkId{0, 1}, sim::Time::zero());
    benchmark::DoNotOptimize(affected);
  }
}
BENCHMARK(BM_RouteCacheRemoveLink);

void BM_NegativeCacheOps(benchmark::State& state) {
  core::NegativeCache neg(64, sim::Time::seconds(10));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto now = sim::Time::millis(static_cast<std::int64_t>(i));
    neg.insert(net::LinkId{static_cast<net::NodeId>(i % 100),
                           static_cast<net::NodeId>((i + 1) % 100)},
               now);
    benchmark::DoNotOptimize(
        neg.contains(net::LinkId{static_cast<net::NodeId>((i / 2) % 100),
                                 static_cast<net::NodeId>((i / 2 + 1) % 100)},
                     now));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeCacheOps);

// NegativeCache primitive costs in isolation (BM_NegativeCacheOps above
// measures the mixed insert+contains workload the DSR agent produces).
void BM_NegativeCacheInsert(benchmark::State& state) {
  core::NegativeCache neg(64, sim::Time::seconds(10));
  std::uint64_t i = 0;
  for (auto _ : state) {
    neg.insert(net::LinkId{static_cast<net::NodeId>(i % 64),
                           static_cast<net::NodeId>((i + 1) % 64)},
               sim::Time::millis(static_cast<std::int64_t>(i)));
    ++i;
    benchmark::DoNotOptimize(neg.rawSize());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeCacheInsert);

void BM_NegativeCacheLookup(benchmark::State& state) {
  core::NegativeCache neg(64, sim::Time::seconds(10));
  const auto now = sim::Time::seconds(1);
  for (std::uint64_t i = 0; i < 64; ++i) {
    neg.insert(net::LinkId{static_cast<net::NodeId>(i),
                           static_cast<net::NodeId>(i + 1)},
               sim::Time::zero());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Alternate hits and misses; no entry expires at t=1 s so contains()
    // never triggers a sweep and measures lookup alone.
    benchmark::DoNotOptimize(
        neg.contains(net::LinkId{static_cast<net::NodeId>(i % 128),
                                 static_cast<net::NodeId>(i % 128 + 1)},
                     now));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeCacheLookup);

void BM_NegativeCacheExpirySweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::NegativeCache neg(128, sim::Time::seconds(10));
    for (std::uint64_t i = 0; i < 128; ++i) {
      neg.insert(net::LinkId{static_cast<net::NodeId>(i),
                             static_cast<net::NodeId>(i + 1)},
                 sim::Time::zero());
    }
    state.ResumeTiming();
    // All 128 entries are past their TTL: one full sweep.
    benchmark::DoNotOptimize(neg.size(sim::Time::seconds(20)));
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_NegativeCacheExpirySweep);

void BM_WaypointPositionQuery(benchmark::State& state) {
  mobility::RandomWaypoint::Params p;
  p.horizon = sim::Time::seconds(500);
  mobility::RandomWaypoint wp(sim::Rng(7), p);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wp.positionAt(sim::Time::millis(static_cast<std::int64_t>(
            (i++ * 37) % 500000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaypointPositionQuery);

scenario::ScenarioConfig smallSimConfig() {
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {800.0, 400.0};
  cfg.numFlows = 5;
  cfg.packetsPerSecond = 2.0;
  cfg.duration = sim::Time::seconds(10);
  cfg.mobilitySeed = 3;
  // Pin telemetry off regardless of MANET_* env so the baseline is stable.
  cfg.telemetry = telemetry::TelemetryConfig{};
  return cfg;
}

void BM_SmallSimulationEventsPerSec(benchmark::State& state) {
  for (auto _ : state) {
    const scenario::RunResult r = scenario::runScenario(smallSimConfig());
    state.counters["events"] = static_cast<double>(r.eventsExecuted);
    benchmark::DoNotOptimize(r.metrics.dataDelivered);
  }
}
BENCHMARK(BM_SmallSimulationEventsPerSec)->Unit(benchmark::kMillisecond);

// Same simulation with a ring sink attached: the cost of tracing when ON.
// Compare against BM_SmallSimulationEventsPerSec for the enabled overhead.
void BM_SmallSimulationTraced(benchmark::State& state) {
  for (auto _ : state) {
    scenario::ScenarioConfig cfg = smallSimConfig();
    cfg.telemetry.ringCapacity = 1 << 16;
    const scenario::RunResult r = scenario::runScenario(cfg);
    state.counters["events"] = static_cast<double>(r.eventsExecuted);
    benchmark::DoNotOptimize(r.metrics.dataDelivered);
  }
}
BENCHMARK(BM_SmallSimulationTraced)->Unit(benchmark::kMillisecond);

// The hook guard every trace site pays when tracing is disabled: a null
// check plus Tracer::enabled() (an empty-vector check). This is the cost
// added to the hot path when no sink is attached — it must stay ~free.
void BM_TracerDisabledHookGuard(benchmark::State& state) {
  telemetry::Tracer tracer;
  telemetry::Tracer* hook = &tracer;
  benchmark::DoNotOptimize(hook);
  std::uint64_t taken = 0;
  for (auto _ : state) {
    if (hook != nullptr && hook->enabled()) ++taken;
    benchmark::DoNotOptimize(taken);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerDisabledHookGuard);

// Cost of one enabled emit into the in-memory ring (record construction,
// dispatch, ring copy).
void BM_TracerRingEmit(benchmark::State& state) {
  telemetry::Tracer tracer;
  telemetry::RingBufferSink ring(4096);
  tracer.addSink(&ring);
  std::uint64_t i = 0;
  for (auto _ : state) {
    telemetry::TraceRecord r;
    r.at = sim::Time::micros(static_cast<std::int64_t>(++i));
    r.event = telemetry::TraceEvent::kPktForward;
    r.node = static_cast<net::NodeId>(i % 100);
    r.uid = i;
    r.src = 1;
    r.dst = 2;
    tracer.emit(r);
    benchmark::DoNotOptimize(ring.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerRingEmit);

// The guard a prof::Scope pays when profiling is off: a null/bool check,
// no clock read. This is what every tagged handler costs in normal runs.
void BM_ProfScopeDisabled(benchmark::State& state) {
  prof::Profiler prof(prof::ProfConfig{});  // enabled = false
  prof::Profiler* hook = &prof;
  benchmark::DoNotOptimize(hook);
  for (auto _ : state) {
    prof::Scope scope(hook, prof::Category::kMac);
    benchmark::DoNotOptimize(&scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeDisabled);

// Full cost of one enabled scope: two clock reads plus a histogram record.
void BM_ProfScopeEnabled(benchmark::State& state) {
  prof::ProfConfig cfg;
  cfg.enabled = true;
  prof::Profiler prof(cfg);
  for (auto _ : state) {
    prof::Scope scope(&prof, prof::Category::kMac);
    benchmark::DoNotOptimize(&scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeEnabled);

void BM_ProfHistogramRecord(benchmark::State& state) {
  prof::LatencyHistogram hist;
  std::uint64_t i = 0;
  for (auto _ : state) {
    hist.record((i++ * 2654435761u) & 0xFFFFF);  // spread across octaves
    benchmark::DoNotOptimize(hist.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfHistogramRecord);

// Scheduler dispatch with a profiler installed and collecting — compare
// against BM_SchedulerScheduleRun for the per-event profiling overhead.
void BM_SchedulerDispatchProfiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  prof::ProfConfig cfg;
  cfg.enabled = true;
  for (auto _ : state) {
    sim::Scheduler sched;
    prof::Profiler prof(cfg);
    sched.setProfiler(&prof);
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      sched.scheduleAt(sim::Time::micros(i), [&sum] { ++sum; },
                       prof::Category::kMac);
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerDispatchProfiled)->Arg(100000);

// --- Engine-core hot-path machinery (PR 10) -------------------------------

// Packet allocation through the pool vs the generic heap. Same call site
// (Packet::make), only the process-wide pool switch differs.
void BM_PacketMakePooled(benchmark::State& state) {
  const bool saved = net::PacketPool::enabled();
  net::PacketPool::setEnabled(true);
  for (auto _ : state) {
    auto p = net::Packet::make();
    benchmark::DoNotOptimize(p);
  }
  net::PacketPool::setEnabled(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketMakePooled);

void BM_PacketMakeHeap(benchmark::State& state) {
  const bool saved = net::PacketPool::enabled();
  net::PacketPool::setEnabled(false);
  for (auto _ : state) {
    auto p = net::Packet::make();
    benchmark::DoNotOptimize(p);
  }
  net::PacketPool::setEnabled(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketMakeHeap);

// One neighborhood query against N radios: the full scan is O(N); the
// grid visits only the candidate block around the transmitter.
template <class Index>
void neighborQueryBench(benchmark::State& state, Index& index,
                        sim::Scheduler& sched,
                        std::vector<std::unique_ptr<phy::Radio>>& radios) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    const phy::Radio& tx = *radios[i++ % radios.size()];
    std::uint64_t inRange = 0;
    index.forEachInRange(tx.mobility().positionAt(sched.now()), 250.0,
                         sched.now(), &tx,
                         [&](phy::Radio&, double) { ++inRange; });
    benchmark::DoNotOptimize(inRange);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["radios"] = static_cast<double>(radios.size());
}

struct NeighborBenchField {
  sim::Scheduler sched;
  phy::PhyConfig cfg;
  phy::Channel channel{sched, cfg};
  std::vector<std::unique_ptr<mobility::MobilityModel>> mobs;
  std::vector<std::unique_ptr<phy::Radio>> radios;

  explicit NeighborBenchField(int n) {
    sim::Rng rng(42);
    for (int i = 0; i < n; ++i) {
      mobs.push_back(std::make_unique<mobility::StaticMobility>(Vec2{
          rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)}));
      radios.push_back(std::make_unique<phy::Radio>(
          static_cast<net::NodeId>(i), *mobs.back(), channel, sched));
    }
  }
};

void BM_NeighborQueryScan(benchmark::State& state) {
  NeighborBenchField f(static_cast<int>(state.range(0)));
  phy::ScanNeighborIndex scan(f.sched);
  for (auto& r : f.radios) scan.attach(r.get());
  neighborQueryBench(state, scan, f.sched, f.radios);
}
BENCHMARK(BM_NeighborQueryScan)->Arg(50)->Arg(500);

void BM_NeighborQueryGrid(benchmark::State& state) {
  NeighborBenchField f(static_cast<int>(state.range(0)));
  phy::GridNeighborIndex grid(f.sched, 250.0, 20.0, sim::Time::seconds(1));
  for (auto& r : f.radios) grid.attach(r.get());
  neighborQueryBench(state, grid, f.sched, f.radios);
}
BENCHMARK(BM_NeighborQueryGrid)->Arg(50)->Arg(500);

// Scheduler throughput on each event-queue implementation. The workload
// mixes ties and spread-out timers like a real MAC/timer mix.
void schedulerQueueBench(benchmark::State& state, sim::EventQueueKind kind) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched(kind);
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      sched.scheduleAt(sim::Time::micros((i * 7) % (n / 4 + 1)),
                       [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SchedulerHeapQueue(benchmark::State& state) {
  schedulerQueueBench(state, sim::EventQueueKind::kHeap);
}
BENCHMARK(BM_SchedulerHeapQueue)->Arg(100000);

void BM_SchedulerCalendarQueue(benchmark::State& state) {
  schedulerQueueBench(state, sim::EventQueueKind::kCalendar);
}
BENCHMARK(BM_SchedulerCalendarQueue)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
