// Ablation bench (beyond the paper): the design knobs DESIGN.md calls out.
//
//  1. adaptive alpha            — the paper's alpha is unreadable; show the
//                                 sensitivity and why alpha = 2 is chosen.
//  2. negative cache size / Nt  — paper gives Nt = 10 s and a garbled size.
//  3. route cache capacity      — "stale entries stay forever" requires
//                                 caches big enough for entries to linger;
//                                 small FIFO caches mask the disease.
//  4. expiry "use" semantics    — whether originating over a route counts
//                                 as using it (the paper's wording says no,
//                                 and that is what makes tiny timeouts
//                                 expensive).
#include <cctype>
#include <cstdio>
#include <string>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

using namespace manet;
using scenario::Table;

namespace {

/// Runs one ablation setting; the row label doubles as the structured-export
/// label (sanitized to stay filename-friendly under MANET_EXPORT_DIR).
scenario::AggregateResult run(const scenario::ScenarioConfig& cfg, int reps,
                              std::string label) {
  for (char& c : label) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '-') {
      c = '_';
    }
  }
  return scenario::runReplicated(cfg, reps, {}, "ablation_" + label);
}

std::vector<std::string> row(const std::string& label,
                             const scenario::AggregateResult& agg) {
  return {label, Table::num(agg.deliveryFraction.mean(), 3),
          Table::num(agg.avgDelaySec.mean(), 3),
          Table::num(agg.normalizedOverhead.mean(), 2),
          Table::num(agg.goodReplyPct.mean(), 1),
          Table::num(agg.invalidCacheHitPct.mean(), 1)};
}

const std::vector<std::string> kHeader{"setting", "delivery", "delay_s",
                                       "overhead", "good_pct", "invalid_pct"};

}  // namespace

int main() {
  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  const int reps = scale.replications;
  std::printf("Ablations — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(), reps,
              scale.full ? " (full scale)" : "");

  {  // 1. adaptive alpha
    Table t(kHeader);
    for (double alpha : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(core::Variant::kAdaptiveExpiry);
      cfg.dsr.adaptiveAlpha = alpha;
      std::printf("  alpha=%.1f...\n", alpha);
      const std::string label = "alpha=" + Table::num(alpha, 1);
      t.addRow(row(label, run(cfg, reps, label)));
    }
    t.print("Ablation 1 — adaptive timeout alpha", "ablation_alpha.csv");
  }

  {  // 2. negative cache size and Nt
    Table t(kHeader);
    struct Knob {
      std::size_t cap;
      double nt;
    };
    for (Knob k : {Knob{16, 10}, Knob{64, 10}, Knob{256, 10}, Knob{64, 3},
                   Knob{64, 30}}) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(core::Variant::kNegCache);
      cfg.dsr.negCacheCapacity = k.cap;
      cfg.dsr.negCacheTtl = sim::Time::fromSeconds(k.nt);
      std::printf("  negcache cap=%zu Nt=%.0fs...\n", k.cap, k.nt);
      const std::string label =
          "cap=" + std::to_string(k.cap) + ",Nt=" + Table::num(k.nt, 0);
      t.addRow(row(label, run(cfg, reps, label)));
    }
    t.print("Ablation 2 — negative cache size / Nt", "ablation_negcache.csv");
  }

  {  // 3. route cache capacity (base DSR)
    Table t(kHeader);
    for (std::size_t cap : {32u, 64u, 128u, 256u, 1024u}) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(core::Variant::kBase);
      cfg.dsr.routeCacheCapacity = cap;
      std::printf("  route cache capacity=%zu...\n", (size_t)cap);
      const std::string label = "capacity=" + std::to_string(cap);
      t.addRow(row(label, run(cfg, reps, label)));
    }
    t.print("Ablation 3 — route cache capacity (base DSR)",
            "ablation_capacity.csv");
  }

  {  // 4. cache structure: the paper's path cache vs Hu & Johnson's link
     //    cache, under base DSR and under ALL (footnote 1 of the paper).
    Table t(kHeader);
    for (core::CacheStructure s :
         {core::CacheStructure::kPath, core::CacheStructure::kLink}) {
      for (core::Variant v : {core::Variant::kBase, core::Variant::kAll}) {
        scenario::ScenarioConfig cfg = base;
        cfg.dsr = core::makeVariantConfig(v);
        cfg.dsr.cacheStructure = s;
        // A link cache stores individual links, not whole paths: give it a
        // comparable information budget.
        cfg.dsr.routeCacheCapacity =
            s == core::CacheStructure::kLink ? 512 : 128;
        std::printf("  %s cache, %s...\n", core::toString(s),
                    core::toString(v));
        const std::string label =
            std::string(core::toString(s)) + "+" + core::toString(v);
        t.addRow(row(label, run(cfg, reps, label)));
      }
    }
    t.print("Ablation 4 — cache structure (path vs link)",
            "ablation_structure.csv");
  }

  {  // 5. freshness tagging (the paper's future work) on top of ALL
    Table t(kHeader);
    for (bool fresh : {false, true}) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(core::Variant::kAll);
      cfg.dsr.freshnessTagging = fresh;
      std::printf("  ALL, freshness=%d...\n", fresh);
      const std::string label = fresh ? "ALL + freshness tags" : "ALL";
      t.addRow(row(label, run(cfg, reps, label)));
    }
    t.print("Ablation 5 — route freshness tagging (future-work extension)",
            "ablation_freshness.csv");
  }

  {  // 6. expiry use semantics at a small timeout
    Table t(kHeader);
    for (bool countsOrigination : {false, true}) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(core::Variant::kStaticExpiry,
                                        sim::Time::fromSeconds(1));
      cfg.dsr.expiryCountsOrigination = countsOrigination;
      std::printf("  T=1s, origination-counts=%d...\n", countsOrigination);
      const std::string label = countsOrigination
                                    ? "T=1s, origination counts"
                                    : "T=1s, forwarded-only (paper)";
      t.addRow(row(label, run(cfg, reps, label)));
    }
    t.print("Ablation 6 — expiry 'use' semantics at T=1s",
            "ablation_use_semantics.csv");
  }
  return 0;
}
