// Ablation bench (beyond the paper): the design knobs DESIGN.md calls out.
//
//  1. adaptive alpha            — the paper's alpha is unreadable; show the
//                                 sensitivity and why alpha = 2 is chosen.
//  2. negative cache size / Nt  — paper gives Nt = 10 s and a garbled size.
//  3. route cache capacity      — "stale entries stay forever" requires
//                                 caches big enough for entries to linger;
//                                 small FIFO caches mask the disease.
//  4. expiry "use" semantics    — whether originating over a route counts
//                                 as using it (the paper's wording says no,
//                                 and that is what makes tiny timeouts
//                                 expensive).
//
// Six single-axis plans run back to back; --filter applies to whichever
// plan has the named axis (e.g. --filter alpha=2.0 narrows plan 1 and
// leaves the others whole).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

using namespace manet;
using scenario::Table;

namespace {

/// The shared metric columns (same shape as the paper's per-figure rows).
scenario::ExperimentPlan& addMetrics(scenario::ExperimentPlan& plan) {
  return plan
      .metric("delivery",
              [](const scenario::AggregateResult& a) {
                return a.deliveryFraction.mean();
              })
      .metric("delay_s",
              [](const scenario::AggregateResult& a) {
                return a.avgDelaySec.mean();
              })
      .metric("overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2)
      .metric("good_pct",
              [](const scenario::AggregateResult& a) {
                return a.goodReplyPct.mean();
              },
              1)
      .metric("invalid_pct",
              [](const scenario::AggregateResult& a) {
                return a.invalidCacheHitPct.mean();
              },
              1);
}

/// Run one ablation plan and print its table. Returns the campaign's
/// exit code (nonzero when cells were quarantined under isolation).
int runAblation(const scenario::BenchCli& cli, scenario::ExperimentPlan& plan,
                 const std::string& title, const std::string& csvName) {
  addMetrics(plan);
  cli.applyMatchingFilters(plan);
  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());
  scenario::pointTable(plan, result).print(title, csvName);
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}

}  // namespace

int main(int argc, char** argv) {
  const scenario::BenchCli cli(argc, argv, "ablation_knobs");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Ablations — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              cli.replications(), scale.full ? " (full scale)" : "");
  int rc = 0;

  {  // 1. adaptive alpha
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kAdaptiveExpiry);
    scenario::ExperimentPlan plan("ablation_alpha", cfg);
    plan.axis(
        "alpha", {0.5, 1.0, 2.0, 4.0, 8.0},
        [](scenario::ScenarioConfig& c, double alpha) {
          c.dsr.adaptiveAlpha = alpha;
        },
        /*labelPrecision=*/1);
    rc |= runAblation(cli, plan, "Ablation 1 — adaptive timeout alpha",
                "ablation_alpha.csv");
  }

  {  // 2. negative cache size and Nt
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kNegCache);
    struct Knob {
      std::size_t cap;
      double nt;
    };
    std::vector<scenario::AxisValue> knobs;
    for (Knob k : {Knob{16, 10}, Knob{64, 10}, Knob{256, 10}, Knob{64, 3},
                   Knob{64, 30}}) {
      knobs.push_back({"cap=" + std::to_string(k.cap) +
                           ",Nt=" + Table::num(k.nt, 0),
                       [k](scenario::ScenarioConfig& c) {
                         c.dsr.negCacheCapacity = k.cap;
                         c.dsr.negCacheTtl = sim::Time::fromSeconds(k.nt);
                       }});
    }
    scenario::ExperimentPlan plan("ablation_negcache", cfg);
    plan.axis("negcache", std::move(knobs));
    rc |= runAblation(cli, plan, "Ablation 2 — negative cache size / Nt",
                "ablation_negcache.csv");
  }

  {  // 3. route cache capacity (base DSR)
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kBase);
    std::vector<scenario::AxisValue> caps;
    for (std::size_t cap : {32u, 64u, 128u, 256u, 1024u}) {
      caps.push_back({std::to_string(cap), [cap](scenario::ScenarioConfig& c) {
                        c.dsr.routeCacheCapacity = cap;
                      }});
    }
    scenario::ExperimentPlan plan("ablation_capacity", cfg);
    plan.axis("capacity", std::move(caps));
    rc |= runAblation(cli, plan, "Ablation 3 — route cache capacity (base DSR)",
                "ablation_capacity.csv");
  }

  {  // 4. cache structure: the paper's path cache vs Hu & Johnson's link
     //    cache, under base DSR and under ALL (footnote 1 of the paper).
    std::vector<scenario::AxisValue> structures;
    for (core::CacheStructure s :
         {core::CacheStructure::kPath, core::CacheStructure::kLink}) {
      structures.push_back(
          {core::toString(s), [s](scenario::ScenarioConfig& c) {
             c.dsr.cacheStructure = s;
             // A link cache stores individual links, not whole paths: give
             // it a comparable information budget.
             c.dsr.routeCacheCapacity =
                 s == core::CacheStructure::kLink ? 512 : 128;
           }});
    }
    std::vector<scenario::AxisValue> variants;
    for (core::Variant v : {core::Variant::kBase, core::Variant::kAll}) {
      // makeVariantConfig replaces the whole dsr block, so this mutator
      // (applied after the structure axis) re-applies the structure knobs
      // it would otherwise wipe.
      variants.push_back({core::toString(v),
                          [v](scenario::ScenarioConfig& c) {
                            const core::CacheStructure keep =
                                c.dsr.cacheStructure;
                            const std::size_t cap = c.dsr.routeCacheCapacity;
                            c.dsr = core::makeVariantConfig(v);
                            c.dsr.cacheStructure = keep;
                            c.dsr.routeCacheCapacity = cap;
                          }});
    }
    scenario::ExperimentPlan plan("ablation_structure", base);
    plan.axis("structure", std::move(structures))
        .axis("structure_variant", std::move(variants));
    rc |= runAblation(cli, plan, "Ablation 4 — cache structure (path vs link)",
                "ablation_structure.csv");
  }

  {  // 5. freshness tagging (the paper's future work) on top of ALL
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kAll);
    scenario::ExperimentPlan plan("ablation_freshness", cfg);
    plan.axis("freshness",
              {scenario::AxisValue{"ALL",
                                   [](scenario::ScenarioConfig& c) {
                                     c.dsr.freshnessTagging = false;
                                   }},
               scenario::AxisValue{"ALL+freshness_tags",
                                   [](scenario::ScenarioConfig& c) {
                                     c.dsr.freshnessTagging = true;
                                   }}});
    rc |= runAblation(cli, plan,
                "Ablation 5 — route freshness tagging (future-work extension)",
                "ablation_freshness.csv");
  }

  {  // 6. expiry use semantics at a small timeout
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kStaticExpiry,
                                      sim::Time::fromSeconds(1));
    scenario::ExperimentPlan plan("ablation_use_semantics", cfg);
    plan.axis(
        "use_semantics",
        {scenario::AxisValue{"T=1s_forwarded-only_(paper)",
                             [](scenario::ScenarioConfig& c) {
                               c.dsr.expiryCountsOrigination = false;
                             }},
         scenario::AxisValue{"T=1s_origination_counts",
                             [](scenario::ScenarioConfig& c) {
                               c.dsr.expiryCountsOrigination = true;
                             }}});
    rc |= runAblation(cli, plan, "Ablation 6 — expiry 'use' semantics at T=1s",
                "ablation_use_semantics.csv");
  }

  cli.checkFiltersConsumed();
  return rc;
}
