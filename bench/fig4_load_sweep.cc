// Fig. 4 — Performance metrics with increasing offered load.
//
// Reproduces the paper's load sweep at constant mobility (pause 0 s): the
// per-flow CBR rate is varied, and received throughput, average delay and
// normalized overhead are reported per protocol variant.
//
// Expected shape: ALL outperforms base DSR across loads (throughput
// saturates later / higher); the individual techniques lie between the two,
// with the negative cache's benefit growing with load (cache pollution by
// in-flight stale routes is a high-rate phenomenon).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Fig. 4: load sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              scale.replications, scale.full ? " (full scale)" : "");

  const core::Variant variants[] = {
      core::Variant::kBase,           core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
      core::Variant::kAll,
  };
  const double ratesPktPerSec[] = {1, 2, 3, 5, 8};

  Table tput({"offered_kbps", "rate_pkt_s", "DSR", "WiderError",
              "AdaptiveExpiry", "NegCache", "ALL"});
  Table delay = tput;
  Table overhead = tput;

  for (double rate : ratesPktPerSec) {
    const double offeredKbps =
        rate * base.numFlows * base.payloadBytes * 8.0 / 1000.0;
    std::vector<std::string> tRow{Table::num(offeredKbps, 0),
                                  Table::num(rate, 0)};
    std::vector<std::string> lRow = tRow;
    std::vector<std::string> oRow = tRow;
    for (core::Variant v : variants) {
      scenario::ScenarioConfig cfg = base;
      cfg.packetsPerSecond = rate;
      cfg.dsr = core::makeVariantConfig(v);
      std::printf("  %.0f pkt/s, %s...\n", rate, core::toString(v));
      const auto agg = scenario::runReplicated(
          cfg, scale.replications, {},
          "fig4_r" + Table::num(rate, 0) + "_" + core::toString(v));
      tRow.push_back(Table::num(agg.throughputKbps.mean(), 1));
      lRow.push_back(Table::num(agg.avgDelaySec.mean(), 3));
      oRow.push_back(Table::num(agg.normalizedOverhead.mean(), 2));
    }
    tput.addRow(tRow);
    delay.addRow(lRow);
    overhead.addRow(oRow);
  }

  tput.print("Fig. 4(a) — received throughput (kb/s) vs offered load",
             "fig4a_throughput.csv");
  delay.print("Fig. 4(b) — average delay (s) vs offered load",
              "fig4b_delay.csv");
  overhead.print("Fig. 4(c) — normalized overhead vs offered load",
                 "fig4c_overhead.csv");
  return 0;
}
