// Fig. 4 — Performance metrics with increasing offered load.
//
// Reproduces the paper's load sweep at constant mobility (pause 0 s): the
// per-flow CBR rate is varied, and received throughput, average delay and
// normalized overhead are reported per protocol variant.
//
// Expected shape: ALL outperforms base DSR across loads (throughput
// saturates later / higher); the individual techniques lie between the two,
// with the negative cache's benefit growing with load (cache pollution by
// in-flight stale routes is a high-rate phenomenon).
//
// Two plan axes (rate x protocol); each panel is a pivot of one metric.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "fig4_load_sweep");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Fig. 4: load sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              cli.replications(), scale.full ? " (full scale)" : "");
  for (double rate : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    std::printf("  %.0f pkt/s per flow = %.0f kb/s offered\n", rate,
                rate * base.numFlows * base.payloadBytes * 8.0 / 1000.0);
  }

  std::vector<scenario::AxisValue> variants;
  for (core::Variant v :
       {core::Variant::kBase, core::Variant::kWiderError,
        core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
        core::Variant::kAll}) {
    variants.push_back({core::toString(v), [v](scenario::ScenarioConfig& cfg) {
                          cfg.dsr = core::makeVariantConfig(v);
                        }});
  }

  scenario::ExperimentPlan plan("fig4", base);
  plan.axis(
          "rate_pkt_s", {1.0, 2.0, 3.0, 5.0, 8.0},
          [](scenario::ScenarioConfig& cfg, double rate) {
            cfg.packetsPerSecond = rate;
          },
          /*labelPrecision=*/0)
      .axis("protocol", std::move(variants))
      .metric("throughput_kbps",
              [](const scenario::AggregateResult& a) {
                return a.throughputKbps.mean();
              },
              1)
      .metric("delay_s",
              [](const scenario::AggregateResult& a) {
                return a.avgDelaySec.mean();
              })
      .metric("overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2);
  cli.applyFilters(plan);

  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());

  scenario::pivotTable(plan, result, "throughput_kbps")
      .print("Fig. 4(a) — received throughput (kb/s) vs offered load",
             "fig4a_throughput.csv");
  scenario::pivotTable(plan, result, "delay_s")
      .print("Fig. 4(b) — average delay (s) vs offered load",
             "fig4b_delay.csv");
  scenario::pivotTable(plan, result, "overhead")
      .print("Fig. 4(c) — normalized overhead vs offered load",
             "fig4c_overhead.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
