// Extension experiment (beyond the paper's figures): TCP-like transfers
// over DSR under mobility, per caching strategy.
//
// Motivated by the paper's related work (Holland & Vaidya, MobiCom'99):
// stale routes are particularly damaging to feedback-controlled traffic —
// every stale-route loss looks like congestion, collapsing the sender's
// window. Expected shape: the caching techniques' goodput advantage over
// base DSR is at least as large as their CBR delivery advantage, and
// retransmission counts drop.
//
// Uses the sweep runner's custom runFn hook: each (variant, seed) cell
// builds its own Scenario plus TCP senders/receivers and records the
// transport counters into its private slot of a preallocated grid, so the
// cells stay data-race-free under --jobs > 1.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"
#include "src/transport/reliable.h"
#include "src/util/stats.h"

namespace {

/// Transport counters for one (point, seed) run: one sample per flow.
struct TcpRunStats {
  std::vector<double> goodputKbps;
  std::vector<double> acked;
  std::vector<double> retransmissions;
  std::vector<double> timeouts;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "tcp_extension");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  base.numFlows = 0;  // no CBR: transport generates all traffic
  const int tcpFlows = 5;
  std::printf("TCP extension — %d nodes, %d TCP flows, %.0f s, %d seeds%s\n",
              base.numNodes, tcpFlows, base.duration.toSeconds(),
              cli.replications(), scale.full ? " (full scale)" : "");

  std::vector<scenario::AxisValue> variants;
  for (core::Variant v :
       {core::Variant::kBase, core::Variant::kWiderError,
        core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
        core::Variant::kAll}) {
    variants.push_back({core::toString(v), [v](scenario::ScenarioConfig& cfg) {
                          cfg.dsr = core::makeVariantConfig(v);
                        }});
  }

  scenario::ExperimentPlan plan("tcp", base);
  plan.axis("variant", std::move(variants));
  cli.applyFilters(plan);

  // One private slot per (point, seed) cell; the merge below reads them in
  // deterministic plan order.
  const int reps = cli.replications();
  std::vector<TcpRunStats> cells(plan.pointCount() *
                                 static_cast<std::size_t>(reps));

  scenario::RunnerOptions opts = cli.runnerOptions();
  opts.runFn = [&cells, reps, tcpFlows](const scenario::SweepPoint& point,
                                        int rep,
                                        const scenario::ScenarioConfig& cfg)
      -> scenario::RunResult {
    scenario::Scenario s(cfg);
    net::Network& net = s.network();

    // Long-lived TCP flows between fixed endpoint pairs.
    sim::Rng trafficRng(cfg.trafficSeed);
    std::vector<std::unique_ptr<transport::ReliableReceiver>> receivers;
    std::vector<std::unique_ptr<transport::ReliableSender>> senders;
    for (int f = 0; f < tcpFlows; ++f) {
      net::NodeId src, dst;
      do {
        src = static_cast<net::NodeId>(
            trafficRng.uniformInt(0, cfg.numNodes - 1));
        dst = static_cast<net::NodeId>(
            trafficRng.uniformInt(0, cfg.numNodes - 1));
      } while (src == dst);
      const auto connId = static_cast<std::uint32_t>(f + 1);
      receivers.push_back(std::make_unique<transport::ReliableReceiver>(
          net.node(dst).dsr(), connId));
      senders.push_back(std::make_unique<transport::ReliableSender>(
          net.node(src).dsr(), net.scheduler(), dst, connId,
          /*totalSegments=*/1u << 30));  // saturating
      transport::ReliableSender* tx = senders.back().get();
      net.scheduler().scheduleAt(sim::Time::millis(1 + 10 * f),
                                 [tx] { tx->start(); });
    }
    scenario::RunResult r = s.run();

    TcpRunStats& cell =
        cells[point.index * static_cast<std::size_t>(reps) +
              static_cast<std::size_t>(rep)];
    for (auto& tx : senders) {
      cell.goodputKbps.push_back(tx->goodputKbps(net.scheduler().now()));
      cell.acked.push_back(static_cast<double>(tx->acked()));
      cell.retransmissions.push_back(
          static_cast<double>(tx->retransmissions()));
      cell.timeouts.push_back(static_cast<double>(tx->timeouts()));
    }
    return r;
  };

  const scenario::SweepResult result = scenario::runPlan(plan, opts);

  Table table({"variant", "goodput_kbps_per_flow", "segments_acked",
               "retransmissions", "timeouts"});
  for (const scenario::PointResult& p : result.points) {
    util::RunningStats goodput, acked, retx, tmo;
    for (int rep = 0; rep < reps; ++rep) {
      const TcpRunStats& cell =
          cells[p.point.index * static_cast<std::size_t>(reps) +
                static_cast<std::size_t>(rep)];
      for (double v : cell.goodputKbps) goodput.add(v);
      for (double v : cell.acked) acked.add(v);
      for (double v : cell.retransmissions) retx.add(v);
      for (double v : cell.timeouts) tmo.add(v);
    }
    table.addRow({p.point.coordinates[0], Table::num(goodput.mean(), 1),
                  Table::num(acked.mean(), 0), Table::num(retx.mean(), 1),
                  Table::num(tmo.mean(), 1)});
  }
  table.print("Extension — TCP-like flows vs caching strategy (pause 0)",
              "tcp_extension.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
