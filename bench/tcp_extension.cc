// Extension experiment (beyond the paper's figures): TCP-like transfers
// over DSR under mobility, per caching strategy.
//
// Motivated by the paper's related work (Holland & Vaidya, MobiCom'99):
// stale routes are particularly damaging to feedback-controlled traffic —
// every stale-route loss looks like congestion, collapsing the sender's
// window. Expected shape: the caching techniques' goodput advantage over
// base DSR is at least as large as their CBR delivery advantage, and
// retransmission counts drop.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"
#include "src/scenario/table.h"
#include "src/transport/reliable.h"
#include "src/util/stats.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  base.numFlows = 0;  // no CBR: transport generates all traffic
  const int tcpFlows = 5;
  std::printf("TCP extension — %d nodes, %d TCP flows, %.0f s, %d seeds%s\n",
              base.numNodes, tcpFlows, base.duration.toSeconds(),
              scale.replications, scale.full ? " (full scale)" : "");

  const core::Variant variants[] = {
      core::Variant::kBase,           core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
      core::Variant::kAll,
  };

  Table table({"variant", "goodput_kbps_per_flow", "segments_acked",
               "retransmissions", "timeouts"});
  for (core::Variant v : variants) {
    util::RunningStats goodput, acked, retx, tmo;
    for (int rep = 0; rep < scale.replications; ++rep) {
      scenario::ScenarioConfig cfg = base;
      cfg.dsr = core::makeVariantConfig(v);
      cfg.mobilitySeed = base.mobilitySeed + static_cast<std::uint64_t>(rep);
      scenario::Scenario s(cfg);
      net::Network& net = s.network();

      // Long-lived TCP flows between fixed endpoint pairs.
      sim::Rng trafficRng(cfg.trafficSeed);
      std::vector<std::unique_ptr<transport::ReliableReceiver>> receivers;
      std::vector<std::unique_ptr<transport::ReliableSender>> senders;
      for (int f = 0; f < tcpFlows; ++f) {
        net::NodeId src, dst;
        do {
          src = static_cast<net::NodeId>(
              trafficRng.uniformInt(0, cfg.numNodes - 1));
          dst = static_cast<net::NodeId>(
              trafficRng.uniformInt(0, cfg.numNodes - 1));
        } while (src == dst);
        const auto connId = static_cast<std::uint32_t>(f + 1);
        receivers.push_back(std::make_unique<transport::ReliableReceiver>(
            net.node(dst).dsr(), connId));
        senders.push_back(std::make_unique<transport::ReliableSender>(
            net.node(src).dsr(), net.scheduler(), dst, connId,
            /*totalSegments=*/1u << 30));  // saturating
        transport::ReliableSender* tx = senders.back().get();
        net.scheduler().scheduleAt(
            sim::Time::millis(1 + 10 * f), [tx] { tx->start(); });
      }
      s.run();
      for (auto& tx : senders) {
        goodput.add(tx->goodputKbps(net.scheduler().now()));
        acked.add(static_cast<double>(tx->acked()));
        retx.add(static_cast<double>(tx->retransmissions()));
        tmo.add(static_cast<double>(tx->timeouts()));
      }
      std::printf("  %s seed %d done\n", core::toString(v), rep);
    }
    table.addRow({core::toString(v), Table::num(goodput.mean(), 1),
                  Table::num(acked.mean(), 0), Table::num(retx.mean(), 1),
                  Table::num(tmo.mean(), 1)});
  }
  table.print("Extension — TCP-like flows vs caching strategy (pause 0)",
              "tcp_extension.csv");
  return 0;
}
