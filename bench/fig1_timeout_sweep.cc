// Fig. 1 — Performance metrics for different timeout periods.
//
// Reproduces the paper's static-timeout sweep at constant mobility
// (pause 0 s, 3 packets/s): packet delivery fraction, average delay and
// normalized overhead versus the route-expiry timeout, with the
// no-timeout (base DSR) and adaptive-timeout values as references.
//
// Expected shape: a too-small timeout hurts (worse delay/overhead than no
// timeout at all — every active route keeps getting invalidated under the
// sender), performance peaks at a well-chosen timeout, then decays back to
// the no-timeout baseline as the timeout grows; the adaptive mechanism
// lands near the static optimum.
//
// Scale: default is the paper's topology at 120 s x 2 seeds; set
// REPRO_FULL=1 for the paper's full 500 s x 5 seeds.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Fig. 1: timeout sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              scale.replications, scale.full ? " (full scale)" : "");

  Table table({"timeout_s", "delivery_fraction", "avg_delay_s",
               "normalized_overhead", "good_replies_pct",
               "invalid_hits_pct"});

  auto addRow = [&](const std::string& label,
                    const scenario::AggregateResult& agg) {
    table.addRow({label, Table::num(agg.deliveryFraction.mean(), 3),
                  Table::num(agg.avgDelaySec.mean(), 3),
                  Table::num(agg.normalizedOverhead.mean(), 2),
                  Table::num(agg.goodReplyPct.mean(), 1),
                  Table::num(agg.invalidCacheHitPct.mean(), 1)});
  };

  {  // No-timeout reference (base DSR).
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kBase);
    std::printf("  running no-timeout reference...\n");
    addRow("none", scenario::runReplicated(cfg, scale.replications, {},
                                           "fig1_none"));
  }

  const double timeouts[] = {0.25, 0.5, 1, 2, 5, 10, 20, 50};
  for (double t : timeouts) {
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kStaticExpiry,
                                      sim::Time::fromSeconds(t));
    std::printf("  running static timeout %.2fs...\n", t);
    addRow(Table::num(t, 2),
           scenario::runReplicated(cfg, scale.replications, {},
                                   "fig1_t" + Table::num(t, 2)));
  }

  {  // Adaptive reference.
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(core::Variant::kAdaptiveExpiry);
    std::printf("  running adaptive timeout...\n");
    addRow("adaptive", scenario::runReplicated(cfg, scale.replications, {},
                                               "fig1_adaptive"));
  }

  table.print("Fig. 1 — metrics vs route expiry timeout (pause 0, 3 pkt/s)",
              "fig1_timeout_sweep.csv");
  return 0;
}
