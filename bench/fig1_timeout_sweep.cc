// Fig. 1 — Performance metrics for different timeout periods.
//
// Reproduces the paper's static-timeout sweep at constant mobility
// (pause 0 s, 3 packets/s): packet delivery fraction, average delay and
// normalized overhead versus the route-expiry timeout, with the
// no-timeout (base DSR) and adaptive-timeout values as references.
//
// Expected shape: a too-small timeout hurts (worse delay/overhead than no
// timeout at all — every active route keeps getting invalidated under the
// sender), performance peaks at a well-chosen timeout, then decays back to
// the no-timeout baseline as the timeout grows; the adaptive mechanism
// lands near the static optimum.
//
// One ExperimentPlan, one axis (the timeout, mixing the two reference
// points with the static values); the runner parallelizes the grid across
// --jobs workers with byte-identical output for every job count. See
// --help for the shared bench flags (--jobs/--scale/--seeds/--filter/...).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "fig1_timeout_sweep");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Fig. 1: timeout sweep — %d nodes, %d flows, %.0f s, %d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      cli.replications(), scale.full ? " (full scale)" : "");

  std::vector<scenario::AxisValue> timeouts;
  timeouts.push_back({"none", [](scenario::ScenarioConfig& cfg) {
                        cfg.dsr = core::makeVariantConfig(core::Variant::kBase);
                      }});
  for (double t : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    timeouts.push_back({Table::num(t, 2), [t](scenario::ScenarioConfig& cfg) {
                          cfg.dsr = core::makeVariantConfig(
                              core::Variant::kStaticExpiry,
                              sim::Time::fromSeconds(t));
                        }});
  }
  timeouts.push_back(
      {"adaptive", [](scenario::ScenarioConfig& cfg) {
         cfg.dsr = core::makeVariantConfig(core::Variant::kAdaptiveExpiry);
       }});

  scenario::ExperimentPlan plan("fig1", base);
  plan.axis("timeout_s", std::move(timeouts))
      .metric("delivery_fraction",
              [](const scenario::AggregateResult& a) {
                return a.deliveryFraction.mean();
              })
      .metric("avg_delay_s",
              [](const scenario::AggregateResult& a) {
                return a.avgDelaySec.mean();
              })
      .metric("normalized_overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2)
      .metric("good_replies_pct",
              [](const scenario::AggregateResult& a) {
                return a.goodReplyPct.mean();
              },
              1)
      .metric("invalid_hits_pct",
              [](const scenario::AggregateResult& a) {
                return a.invalidCacheHitPct.mean();
              },
              1);
  cli.applyFilters(plan);

  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());

  scenario::pointTable(plan, result)
      .print("Fig. 1 — metrics vs route expiry timeout (pause 0, 3 pkt/s)",
             "fig1_timeout_sweep.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
