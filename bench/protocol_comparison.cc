// Extension experiment: DSR (base and ALL) vs AODV across mobility.
//
// Mirrors the companion study the paper builds on (Das, Perkins & Royer,
// INFOCOM 2000 — reference [3]): AODV's sequence-numbered, single-entry
// routes degrade more gracefully under mobility than DSR's unguarded path
// caches; the paper's techniques close much of that gap. The paper's
// conclusion also suggests AODV's intermediate replies would benefit from
// these ideas — compare the `aodv-noIR` row (intermediate replies off,
// i.e. no cache-like behaviour at all).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf("Protocol comparison — %d nodes, %d flows, %.0f s, %d seeds%s\n",
              base.numNodes, base.numFlows, base.duration.toSeconds(),
              scale.replications, scale.full ? " (full scale)" : "");

  struct Row {
    const char* name;
    net::Protocol protocol;
    core::Variant variant;       // DSR only
    bool intermediateReplies;    // AODV only
  };
  const Row rows[] = {
      {"DSR-base", net::Protocol::kDsr, core::Variant::kBase, true},
      {"DSR-ALL", net::Protocol::kDsr, core::Variant::kAll, true},
      {"AODV", net::Protocol::kAodv, core::Variant::kBase, true},
      {"AODV-noIR", net::Protocol::kAodv, core::Variant::kBase, false},
  };

  const double runLen = base.duration.toSeconds();
  Table delivery({"pause_s", "DSR-base", "DSR-ALL", "AODV", "AODV-noIR"});
  Table overhead = delivery;
  for (double frac : {0.0, 0.5, 1.0}) {
    std::vector<std::string> dRow{Table::num(frac * runLen, 0)};
    std::vector<std::string> oRow = dRow;
    for (const Row& r : rows) {
      scenario::ScenarioConfig cfg = base;
      cfg.pause = sim::Time::fromSeconds(frac * runLen);
      cfg.protocol = r.protocol;
      cfg.dsr = core::makeVariantConfig(r.variant);
      cfg.aodv.intermediateReplies = r.intermediateReplies;
      std::printf("  pause %.0fs, %s...\n", frac * runLen, r.name);
      const auto agg = scenario::runReplicated(
          cfg, scale.replications, {},
          "proto_p" + Table::num(frac * runLen, 0) + "_" + r.name);
      dRow.push_back(Table::num(agg.deliveryFraction.mean(), 3));
      oRow.push_back(Table::num(agg.normalizedOverhead.mean(), 2));
    }
    delivery.addRow(dRow);
    overhead.addRow(oRow);
  }

  delivery.print("Protocol comparison — delivery fraction vs pause time",
                 "protocol_comparison_delivery.csv");
  overhead.print("Protocol comparison — normalized overhead vs pause time",
                 "protocol_comparison_overhead.csv");
  return 0;
}
