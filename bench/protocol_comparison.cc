// Extension experiment: DSR (base and ALL) vs AODV across mobility.
//
// Mirrors the companion study the paper builds on (Das, Perkins & Royer,
// INFOCOM 2000 — reference [3]): AODV's sequence-numbered, single-entry
// routes degrade more gracefully under mobility than DSR's unguarded path
// caches; the paper's techniques close much of that gap. The paper's
// conclusion also suggests AODV's intermediate replies would benefit from
// these ideas — compare the `AODV-noIR` column (intermediate replies off,
// i.e. no cache-like behaviour at all).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "protocol_comparison");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Protocol comparison — %d nodes, %d flows, %.0f s, %d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      cli.replications(), scale.full ? " (full scale)" : "");

  const double runLen = base.duration.toSeconds();
  std::vector<scenario::AxisValue> pauses;
  for (double frac : {0.0, 0.5, 1.0}) {
    const double pauseSec = frac * runLen;
    pauses.push_back(
        {Table::num(pauseSec, 0), [pauseSec](scenario::ScenarioConfig& cfg) {
           cfg.pause = sim::Time::fromSeconds(pauseSec);
         }});
  }

  struct Proto {
    const char* name;
    net::Protocol protocol;
    core::Variant variant;     // DSR only
    bool intermediateReplies;  // AODV only
  };
  std::vector<scenario::AxisValue> protocols;
  for (const Proto p :
       {Proto{"DSR-base", net::Protocol::kDsr, core::Variant::kBase, true},
        Proto{"DSR-ALL", net::Protocol::kDsr, core::Variant::kAll, true},
        Proto{"AODV", net::Protocol::kAodv, core::Variant::kBase, true},
        Proto{"AODV-noIR", net::Protocol::kAodv, core::Variant::kBase,
              false}}) {
    protocols.push_back({p.name, [p](scenario::ScenarioConfig& cfg) {
                           cfg.protocol = p.protocol;
                           cfg.dsr = core::makeVariantConfig(p.variant);
                           cfg.aodv.intermediateReplies =
                               p.intermediateReplies;
                         }});
  }

  scenario::ExperimentPlan plan("proto", base);
  plan.axis("pause_s", std::move(pauses))
      .axis("protocol", std::move(protocols))
      .metric("delivery",
              [](const scenario::AggregateResult& a) {
                return a.deliveryFraction.mean();
              })
      .metric("overhead",
              [](const scenario::AggregateResult& a) {
                return a.normalizedOverhead.mean();
              },
              2);
  cli.applyFilters(plan);

  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());

  scenario::pivotTable(plan, result, "delivery")
      .print("Protocol comparison — delivery fraction vs pause time",
             "protocol_comparison_delivery.csv");
  scenario::pivotTable(plan, result, "overhead")
      .print("Protocol comparison — normalized overhead vs pause time",
             "protocol_comparison_overhead.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
