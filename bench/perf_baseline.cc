// perf_baseline: the repo's performance regression harness.
//
// Runs the canonical scenarios (paper baseline, high mobility, faulted
// churn, large-N stress) with profiling enabled, takes the median wall time
// of >= 3 repetitions each, and writes a schema-versioned BENCH_<label>.json
// (see src/prof/bench_report.h). Compare mode diffs two BENCH files and
// exits non-zero when any scenario's median wall time regressed past the
// threshold (CI uses --report-only: machines differ, so cross-machine
// deltas inform rather than gate).
//
//   perf_baseline [--quick] [--reps N] [--label L] [--out FILE]
//   perf_baseline --compare BASELINE CANDIDATE [--threshold 0.2]
//                 [--report-only]
//   perf_baseline --self-test
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/net/packet_pool.h"
#include "src/prof/bench_report.h"
#include "src/prof/profiler.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sweep.h"
#include "src/telemetry/export.h"

namespace {

using namespace manet;

struct NamedScenario {
  std::string name;
  scenario::ScenarioConfig cfg;
};

// Every knob pinned explicitly — the baseline must not shift when MANET_*
// env vars are set. Profiling on (that is what we are measuring with),
// heartbeat off (stderr writes would pollute the timing). The engine-core
// machinery (neighbor index, event queue, packet pool) is pinned to the
// fast configuration; --engine legacy selects the pre-overhaul reference
// machinery so the win stays measurable from the same binary.
bool gLegacyEngine = false;

scenario::ScenarioConfig pinnedBase() {
  scenario::ScenarioConfig cfg;
  cfg.telemetry = telemetry::TelemetryConfig{};
  cfg.fault = fault::FaultPlan{};
  cfg.prof = prof::ProfConfig{};
  cfg.prof.enabled = true;
  cfg.prof.histograms = true;
  cfg.mobilitySeed = 11;
  cfg.trafficSeed = 42;
  cfg.phy = phy::PhyConfig{};  // not fromEnv(): env must not shift timings
  cfg.phy.neighborIndex = gLegacyEngine ? phy::NeighborIndexKind::kScan
                                        : phy::NeighborIndexKind::kGrid;
  cfg.eventQueue = gLegacyEngine ? sim::EventQueueKind::kHeap
                                 : sim::EventQueueKind::kCalendar;
  return cfg;
}

std::vector<NamedScenario> canonicalScenarios(bool quick) {
  std::vector<NamedScenario> out;

  // The paper's evaluation shape (Section 4.1) at bench scale: moderate
  // mobility, 512-byte CBR flows.
  {
    scenario::ScenarioConfig cfg = pinnedBase();
    cfg.numNodes = quick ? 20 : 50;
    cfg.field = quick ? Vec2{800.0, 400.0} : Vec2{1500.0, 500.0};
    cfg.numFlows = quick ? 5 : 12;
    cfg.duration = sim::Time::seconds(quick ? 10 : 60);
    cfg.pause = sim::Time::seconds(30);
    out.push_back({"paper_baseline", cfg});
  }

  // Continuous fast motion: stresses route repair, cache invalidation and
  // the mobility evaluation path.
  {
    scenario::ScenarioConfig cfg = pinnedBase();
    cfg.numNodes = quick ? 20 : 50;
    cfg.field = quick ? Vec2{800.0, 400.0} : Vec2{1500.0, 500.0};
    cfg.numFlows = quick ? 5 : 12;
    cfg.duration = sim::Time::seconds(quick ? 10 : 60);
    cfg.pause = sim::Time::zero();
    cfg.maxSpeed = 30.0;
    out.push_back({"high_mobility", cfg});
  }

  // Node churn plus noise bursts: exercises the fault injector and the
  // protocol's failure paths (timeouts, salvage, negative cache).
  {
    scenario::ScenarioConfig cfg = pinnedBase();
    cfg.numNodes = quick ? 20 : 50;
    cfg.field = quick ? Vec2{800.0, 400.0} : Vec2{1500.0, 500.0};
    cfg.numFlows = quick ? 5 : 12;
    cfg.duration = sim::Time::seconds(quick ? 10 : 60);
    cfg.pause = sim::Time::seconds(30);
    cfg.fault.churn.fraction = 0.2;
    cfg.fault.churn.meanUpTimeSec = 15.0;
    cfg.fault.churn.meanDownTimeSec = 5.0;
    cfg.fault.noise.meanGapSec = 10.0;
    cfg.fault.noise.meanDurationSec = 1.0;
    cfg.fault.noise.corruptProb = 0.3;
    out.push_back({"faulted_churn", cfg});
  }

  // Scheduler / channel stress: most nodes, most flows, shortest horizon.
  {
    scenario::ScenarioConfig cfg = pinnedBase();
    cfg.numNodes = quick ? 40 : 100;
    cfg.field = quick ? Vec2{1200.0, 500.0} : Vec2{2200.0, 600.0};
    cfg.numFlows = quick ? 10 : 25;
    cfg.duration = sim::Time::seconds(quick ? 8 : 30);
    cfg.pause = sim::Time::seconds(30);
    out.push_back({"large_n_stress", cfg});
  }

  return out;
}

// Hot nodes worth listing per scenario: enough to see the spatial pattern,
// few enough that BENCH files stay reviewable in a diff.
constexpr std::size_t kTopNodes = 10;

prof::BenchScenario measure(const NamedScenario& ns, int reps,
                            std::string* heatmapOut) {
  prof::BenchScenario out;
  out.name = ns.name;
  out.repetitions = reps;

  // Repetitions are timing samples of the SAME config (not seed-varied),
  // expressed as a no-op "rep" axis. jobs is pinned to 1: concurrent reps
  // would contend for cores and corrupt the very wall times being measured.
  scenario::ExperimentPlan plan(ns.name, ns.cfg);
  std::vector<scenario::AxisValue> repAxis;
  for (int i = 0; i < reps; ++i) {
    repAxis.push_back({std::to_string(i + 1), {}});
  }
  plan.axis("rep", std::move(repAxis));
  scenario::RunnerOptions opts;
  opts.jobs = 1;
  opts.keepRuns = true;
  opts.onRun = [&](const scenario::SweepPoint& point, int,
                   const scenario::RunResult& r) {
    std::fprintf(stderr, "  %s rep %zu/%d: %.3f s, %llu events\n",
                 ns.name.c_str(), point.index + 1, reps, r.wallSeconds,
                 static_cast<unsigned long long>(r.eventsExecuted));
  };
  const scenario::SweepResult sweep = scenario::runPlan(plan, opts);

  std::vector<scenario::RunResult> results;
  results.reserve(static_cast<std::size_t>(reps));
  for (const scenario::PointResult& p : sweep.points) {
    results.push_back(p.agg.runs.at(0));
    out.wallSecondsAll.push_back(results.back().wallSeconds);
  }

  // Median repetition by wall time (lower-middle for even rep counts).
  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return results[a].wallSeconds < results[b].wallSeconds;
  });
  const scenario::RunResult& med = results[order[(order.size() - 1) / 2]];

  out.events = med.eventsExecuted;
  out.wallSecondsMedian = med.wallSeconds;
  out.eventsPerSecMedian =
      med.wallSeconds > 0.0
          ? static_cast<double>(med.eventsExecuted) / med.wallSeconds
          : 0.0;
  out.peakRssBytes = med.profile.peakRssBytes;
  out.schedQueuePeak = med.schedQueuePeak;
  for (const prof::CategoryReport& cat : med.profile.categories) {
    if (cat.scopes == 0 && cat.dispatches == 0) continue;
    out.categorySelfSeconds.emplace_back(
        prof::toString(cat.category),
        static_cast<double>(cat.selfNs) * 1e-9);
  }

  // Schema v2: hotspot observability from the median repetition. Top nodes
  // rank by deterministic activation count (node id breaks ties) so the
  // list is identical across same-seed runs; selfSeconds rides along as
  // informational wall time.
  out.hasHotspot = med.profile.enabled;
  if (out.hasHotspot) {
    const prof::HotspotReport& h = med.profile.hotspot;
    std::vector<const prof::EntityReport*> ranked;
    ranked.reserve(h.entities.size());
    for (const prof::EntityReport& e : h.entities) ranked.push_back(&e);
    std::sort(ranked.begin(), ranked.end(),
              [](const prof::EntityReport* a, const prof::EntityReport* b) {
                if (a->activations != b->activations) {
                  return a->activations > b->activations;
                }
                return a->node < b->node;
              });
    if (ranked.size() > kTopNodes) ranked.resize(kTopNodes);
    for (const prof::EntityReport* e : ranked) {
      prof::BenchTopNode tn;
      tn.node = e->node;
      if (e->node < med.nodePositions.size()) {
        tn.x = med.nodePositions[e->node].x;
        tn.y = med.nodePositions[e->node].y;
      }
      tn.activations = e->activations;
      tn.framesHeard = e->framesHeard;
      tn.selfSeconds = static_cast<double>(e->selfNs) * 1e-9;
      out.topNodes.push_back(tn);
    }
    out.fanout = h.fanout;
    out.queue = h.queue;
    out.alloc = h.alloc;
    if (heatmapOut != nullptr) {
      std::string csv = telemetry::heatmapCsv(med, ns.name);
      if (!csv.empty()) {
        if (!heatmapOut->empty()) {
          // Strip the repeated header: one header line for the whole file.
          csv.erase(0, csv.find('\n') + 1);
        }
        *heatmapOut += csv;
      }
    }
  }
  return out;
}

bool readWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int runCompare(const std::string& basePath, const std::string& candPath,
               double threshold, bool reportOnly) {
  std::string baseText, candText, err;
  if (!readWholeFile(basePath, &baseText)) {
    std::fprintf(stderr, "cannot read baseline %s\n", basePath.c_str());
    return 2;
  }
  if (!readWholeFile(candPath, &candText)) {
    std::fprintf(stderr, "cannot read candidate %s\n", candPath.c_str());
    return 2;
  }
  const auto base = prof::parseBenchReport(baseText, &err);
  if (!base) {
    std::fprintf(stderr, "baseline %s: %s\n", basePath.c_str(), err.c_str());
    return 2;
  }
  const auto cand = prof::parseBenchReport(candText, &err);
  if (!cand) {
    std::fprintf(stderr, "candidate %s: %s\n", candPath.c_str(), err.c_str());
    return 2;
  }
  const prof::BenchComparison cmp =
      prof::compareBenchReports(*base, *cand, threshold);
  std::fputs(prof::formatComparison(cmp).c_str(), stdout);
  if (cmp.regressed && reportOnly) {
    std::fputs("(report-only mode: not failing)\n", stdout);
    return 0;
  }
  return cmp.regressed ? 1 : 0;
}

// Self-test of the regression detector: a synthetic 25% slowdown must be
// flagged at a 20% threshold, and a 10% slowdown must pass — exercised
// through the full serialize -> parse -> compare path.
int runSelfTest() {
  prof::BenchReport base;
  base.label = "selftest_base";
  for (const char* name : {"alpha", "beta"}) {
    prof::BenchScenario s;
    s.name = name;
    s.repetitions = 3;
    s.events = 1000000;
    s.wallSecondsMedian = 2.0;
    s.eventsPerSecMedian = 500000.0;
    s.wallSecondsAll = {2.1, 2.0, 2.2};
    s.categorySelfSeconds.emplace_back("mac", 0.8);
    base.scenarios.push_back(std::move(s));
  }

  prof::BenchReport cand = base;
  cand.label = "selftest_cand";
  cand.scenarios[0].wallSecondsMedian = 2.0 * 1.25;  // alpha: regressed
  cand.scenarios[1].wallSecondsMedian = 2.0 * 1.10;  // beta: within budget
  cand.scenarios[0].categorySelfSeconds[0].second = 1.3;  // mac got slower

  std::string err;
  const auto reBase = prof::parseBenchReport(prof::toJson(base), &err);
  const auto reCand = prof::parseBenchReport(prof::toJson(cand), &err);
  if (!reBase || !reCand) {
    std::fprintf(stderr, "self-test: round-trip parse failed: %s\n",
                 err.c_str());
    return 1;
  }

  const prof::BenchComparison cmp =
      prof::compareBenchReports(*reBase, *reCand, 0.2);
  const std::string table = prof::formatComparison(cmp);
  std::fputs(table.c_str(), stdout);
  if (!cmp.regressed || cmp.rows.size() != 2 || !cmp.rows[0].regressed ||
      cmp.rows[1].regressed) {
    std::fprintf(stderr,
                 "self-test FAILED: 25%% slowdown not flagged (or 10%% "
                 "falsely flagged) at 20%% threshold\n");
    return 1;
  }
  // The failure message must name the worst-moving category with both of
  // its values, not just the scenario.
  if (cmp.rows[0].worstCategory != "mac" ||
      table.find("worst category: mac") == std::string::npos) {
    std::fprintf(stderr,
                 "self-test FAILED: regression detail does not name the "
                 "worst-moving category\n");
    return 1;
  }
  std::puts("self-test passed: regression detector behaves as specified");
  return 0;
}

// Serial-vs-parallel wall-time comparison on a small sweep, verifying the
// runner's determinism contract along the way: the aggregate JSON for every
// sweep point must be byte-identical between --jobs 1 and --jobs N.
int runSweepSpeedup(int jobs) {
  scenario::ScenarioConfig cfg = pinnedBase();
  cfg.prof = prof::ProfConfig{};  // timing the runner, not the profiler
  cfg.numNodes = 20;
  cfg.field = Vec2{800.0, 400.0};
  cfg.numFlows = 5;
  cfg.duration = sim::Time::seconds(10);
  cfg.pause = sim::Time::zero();

  // Eight independent cells (a fig1-style timeout axis), one seed each —
  // enough parallelism to saturate a typical 4-core CI runner.
  scenario::ExperimentPlan plan("speedup", cfg);
  plan.axis("timeout_s", {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0},
            [](scenario::ScenarioConfig& c, double t) {
              c.dsr = core::makeVariantConfig(core::Variant::kStaticExpiry,
                                              sim::Time::fromSeconds(t));
            });

  const auto sweepOnce = [&plan](int j) {
    scenario::RunnerOptions opts;
    opts.jobs = j;
    opts.keepRuns = true;
    return scenario::runPlan(plan, opts);
  };
  const int parJobs = scenario::resolveJobs(jobs);
  std::fprintf(stderr, "sweep-speedup: 8 cells, serial then %d jobs\n",
               parJobs);
  const scenario::SweepResult serial = sweepOnce(1);
  const scenario::SweepResult parallel = sweepOnce(parJobs);

  bool identical = true;
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    const std::string a = telemetry::aggregateJson(
        serial.points[p].agg, serial.points[p].point.config,
        serial.points[p].point.label);
    const std::string b = telemetry::aggregateJson(
        parallel.points[p].agg, parallel.points[p].point.config,
        parallel.points[p].point.label);
    if (a != b) {
      identical = false;
      std::fprintf(stderr, "DIVERGED at point %s\n",
                   serial.points[p].point.label.c_str());
    }
  }

  const double speedup = parallel.wallSeconds > 0.0
                             ? serial.wallSeconds / parallel.wallSeconds
                             : 0.0;
  std::printf("jobs  wall_s  speedup\n");
  std::printf("%4d  %6.2f  %7.2fx\n", 1, serial.wallSeconds, 1.0);
  std::printf("%4d  %6.2f  %7.2fx\n", parallel.jobs, parallel.wallSeconds,
              speedup);
  std::printf("aggregate JSON byte-identical across job counts: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

// "--floor NAME:EVPS" spec: after measuring, the named scenario's median
// events/sec must meet the floor or the run exits non-zero. This is the
// absolute perf gate (compare mode is relative and report-only on CI).
struct FloorSpec {
  std::string scenario;
  double eventsPerSec = 0.0;
};

bool parseFloor(const std::string& arg, FloorSpec* out) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->scenario = arg.substr(0, colon);
  out->eventsPerSec = std::atof(arg.c_str() + colon + 1);
  return out->eventsPerSec > 0.0;
}

int checkFloors(const prof::BenchReport& report,
                const std::vector<FloorSpec>& floors) {
  int rc = 0;
  for (const FloorSpec& floor : floors) {
    const prof::BenchScenario* found = nullptr;
    for (const prof::BenchScenario& s : report.scenarios) {
      if (s.name == floor.scenario) found = &s;
    }
    if (found == nullptr) {
      std::fprintf(stderr, "floor: no scenario named %s in this run\n",
                   floor.scenario.c_str());
      rc = 1;
      continue;
    }
    const bool ok = found->eventsPerSecMedian >= floor.eventsPerSec;
    std::printf("floor %-20s %12.0f ev/s (need >= %.0f): %s\n",
                floor.scenario.c_str(), found->eventsPerSecMedian,
                floor.eventsPerSec, ok ? "ok" : "FAIL");
    if (!ok) rc = 1;
  }
  return rc;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--quick] [--reps N] [--label L] [--out FILE]\n"
      "          [--heatmap FILE] [--engine fast|legacy]\n"
      "          [--floor SCENARIO:EVENTS_PER_SEC]...\n"
      "       %s --compare BASELINE CANDIDATE [--threshold T] "
      "[--report-only]\n"
      "       %s --sweep-speedup [--jobs N]\n"
      "       %s --self-test\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool reportOnly = false;
  int reps = 3;
  double threshold = 0.2;
  std::string label = "local";
  std::string outPath;
  std::string heatmapPath;
  std::string comparePaths[2];
  int compareCount = -1;
  bool selfTest = false;
  bool sweepSpeedup = false;
  int jobs = 0;
  std::vector<FloorSpec> floors;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string engine = argv[++i];
      if (engine == "legacy") {
        gLegacyEngine = true;
      } else if (engine != "fast") {
        return usage(argv[0]);
      }
    } else if (arg == "--floor" && i + 1 < argc) {
      FloorSpec floor;
      if (!parseFloor(argv[++i], &floor)) return usage(argv[0]);
      floors.push_back(std::move(floor));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else if (arg == "--heatmap" && i + 1 < argc) {
      heatmapPath = argv[++i];
    } else if (arg == "--compare" && i + 2 < argc) {
      comparePaths[0] = argv[++i];
      comparePaths[1] = argv[++i];
      compareCount = 2;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (arg == "--report-only") {
      reportOnly = true;
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (arg == "--sweep-speedup") {
      sweepSpeedup = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  if (selfTest) return runSelfTest();
  if (sweepSpeedup) return runSweepSpeedup(jobs);
  if (compareCount == 2) {
    return runCompare(comparePaths[0], comparePaths[1], threshold,
                      reportOnly);
  }
  if (reps < 1) return usage(argv[0]);

  // The packet pool is a process-wide switch, not a ScenarioConfig knob;
  // pin it to match the selected engine.
  net::PacketPool::setEnabled(!gLegacyEngine);

  prof::BenchReport report;
  report.label = label;
  const std::vector<NamedScenario> scenarios = canonicalScenarios(quick);
  std::fprintf(stderr, "perf_baseline: %zu scenarios x %d reps (%s, %s)\n",
               scenarios.size(), reps, quick ? "quick" : "full",
               gLegacyEngine ? "legacy engine" : "fast engine");
  std::string heatmap;
  for (const NamedScenario& ns : scenarios) {
    report.scenarios.push_back(
        measure(ns, reps, heatmapPath.empty() ? nullptr : &heatmap));
  }

  const std::string json = prof::toJson(report);
  if (outPath.empty()) outPath = "BENCH_" + label + ".json";
  if (!telemetry::writeFile(outPath, json)) return 2;
  std::fprintf(stderr, "wrote %s\n", outPath.c_str());
  if (!heatmapPath.empty()) {
    if (!telemetry::writeFile(heatmapPath, heatmap)) return 2;
    std::fprintf(stderr, "wrote %s\n", heatmapPath.c_str());
  }

  // Console summary.
  for (const prof::BenchScenario& s : report.scenarios) {
    std::printf("%-20s %9.3f s  %12.0f ev/s  queue peak %llu\n",
                s.name.c_str(), s.wallSecondsMedian, s.eventsPerSecMedian,
                static_cast<unsigned long long>(s.schedQueuePeak));
  }
  return checkFloors(report, floors);
}
