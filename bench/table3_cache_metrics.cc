// Table 3 (Fig. 3 in the text) — Cache-related metrics for different
// caching techniques at constant mobility (pause 0 s, 3 packets/s):
//   * percentage of good replies — route replies whose reported route was
//     actually valid when received (link oracle);
//   * percentage of invalid cached routes — cache hits that handed out a
//     route containing a dead link.
//
// Expected shape: every technique raises reply quality and lowers invalid
// hits relative to base DSR; ALL is the best (paper: ~70 % improvement in
// reply quality).
#include <cstdio>
#include <string>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

int main() {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchScale scale = scenario::benchScale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Table 3: cache metrics — %d nodes, %d flows, %.0f s, %d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      scale.replications, scale.full ? " (full scale)" : "");

  const core::Variant variants[] = {
      core::Variant::kBase,           core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
      core::Variant::kAll,
  };

  Table table({"protocol", "good_replies_pct", "invalid_routes_pct",
               "cache_hits", "link_breaks"});
  for (core::Variant v : variants) {
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(v);
    std::printf("  running %s...\n", core::toString(v));
    const auto agg = scenario::runReplicated(
        cfg, scale.replications, {},
        std::string("table3_") + core::toString(v));
    table.addRow({core::toString(v), Table::num(agg.goodReplyPct.mean(), 1),
                  Table::num(agg.invalidCacheHitPct.mean(), 1),
                  Table::num(agg.cacheHits.mean(), 0),
                  Table::num(agg.linkBreaks.mean(), 0)});
  }
  table.print("Table 3 — cache-related metrics at pause 0",
              "table3_cache_metrics.csv");
  return 0;
}
