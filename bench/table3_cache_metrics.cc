// Table 3 (Fig. 3 in the text) — Cache-related metrics for different
// caching techniques at constant mobility (pause 0 s, 3 packets/s):
//   * percentage of good replies — route replies whose reported route was
//     actually valid when received (link oracle);
//   * percentage of invalid cached routes — cache hits that handed out a
//     route containing a dead link.
//
// Expected shape: every technique raises reply quality and lowers invalid
// hits relative to base DSR; ALL is the best (paper: ~70 % improvement in
// reply quality).
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/bench_cli.h"
#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;
  using scenario::Table;

  const scenario::BenchCli cli(argc, argv, "table3_cache_metrics");
  const scenario::BenchScale& scale = cli.scale();
  scenario::ScenarioConfig base = scenario::paperScenario(scale);
  std::printf(
      "Table 3: cache metrics — %d nodes, %d flows, %.0f s, %d seeds%s\n",
      base.numNodes, base.numFlows, base.duration.toSeconds(),
      cli.replications(), scale.full ? " (full scale)" : "");

  std::vector<scenario::AxisValue> variants;
  for (core::Variant v :
       {core::Variant::kBase, core::Variant::kWiderError,
        core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
        core::Variant::kAll}) {
    variants.push_back({core::toString(v), [v](scenario::ScenarioConfig& cfg) {
                          cfg.dsr = core::makeVariantConfig(v);
                        }});
  }

  scenario::ExperimentPlan plan("table3", base);
  plan.axis("protocol", std::move(variants))
      .metric("good_replies_pct",
              [](const scenario::AggregateResult& a) {
                return a.goodReplyPct.mean();
              },
              1)
      .metric("invalid_routes_pct",
              [](const scenario::AggregateResult& a) {
                return a.invalidCacheHitPct.mean();
              },
              1)
      .metric("cache_hits",
              [](const scenario::AggregateResult& a) {
                return a.cacheHits.mean();
              },
              0)
      .metric("link_breaks",
              [](const scenario::AggregateResult& a) {
                return a.linkBreaks.mean();
              },
              0)
      // Provenance attribution (causal trace layer): where the stale
      // entries behind the invalid hits were learned — from route replies
      // (target / cached / gratuitous) vs passively (snooping, forwarding,
      // delivery, reverse request paths). Percentages of all invalid hits.
      .metric("inv_from_replies_pct",
              [](const scenario::AggregateResult& a) {
                using O = net::RouteOrigin;
                const double replies = a.meanInvalidHits(
                    {O::kTargetReply, O::kCachedReply, O::kGratuitous});
                const double all = a.meanInvalidHits(
                    {O::kTargetReply, O::kCachedReply, O::kGratuitous,
                     O::kReverseRequest, O::kForwarded, O::kDelivered,
                     O::kSnooped, O::kSeeded, O::kNone});
                return all > 0.0 ? 100.0 * replies / all : 0.0;
              },
              1)
      .metric("inv_from_passive_pct",
              [](const scenario::AggregateResult& a) {
                using O = net::RouteOrigin;
                const double passive = a.meanInvalidHits(
                    {O::kReverseRequest, O::kForwarded, O::kDelivered,
                     O::kSnooped});
                const double all = a.meanInvalidHits(
                    {O::kTargetReply, O::kCachedReply, O::kGratuitous,
                     O::kReverseRequest, O::kForwarded, O::kDelivered,
                     O::kSnooped, O::kSeeded, O::kNone});
                return all > 0.0 ? 100.0 * passive / all : 0.0;
              },
              1);
  cli.applyFilters(plan);

  const scenario::SweepResult result =
      scenario::runPlan(plan, cli.runnerOptions());

  scenario::pointTable(plan, result)
      .print("Table 3 — cache-related metrics at pause 0",
             "table3_cache_metrics.csv");
  std::printf("%zu points x %d seeds in %.1f s (%d jobs)\n",
              plan.pointCount(), result.replications, result.wallSeconds,
              result.jobs);
  return cli.finish(result);
}
