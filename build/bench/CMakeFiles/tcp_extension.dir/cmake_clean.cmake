file(REMOVE_RECURSE
  "CMakeFiles/tcp_extension.dir/tcp_extension.cc.o"
  "CMakeFiles/tcp_extension.dir/tcp_extension.cc.o.d"
  "tcp_extension"
  "tcp_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
