# Empty compiler generated dependencies file for tcp_extension.
# This may be replaced when dependencies are built.
