file(REMOVE_RECURSE
  "CMakeFiles/fig4_load_sweep.dir/fig4_load_sweep.cc.o"
  "CMakeFiles/fig4_load_sweep.dir/fig4_load_sweep.cc.o.d"
  "fig4_load_sweep"
  "fig4_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
