# Empty dependencies file for fig4_load_sweep.
# This may be replaced when dependencies are built.
