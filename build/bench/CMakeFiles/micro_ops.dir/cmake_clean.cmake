file(REMOVE_RECURSE
  "CMakeFiles/micro_ops.dir/micro_ops.cc.o"
  "CMakeFiles/micro_ops.dir/micro_ops.cc.o.d"
  "micro_ops"
  "micro_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
