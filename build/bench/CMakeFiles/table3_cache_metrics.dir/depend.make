# Empty dependencies file for table3_cache_metrics.
# This may be replaced when dependencies are built.
