file(REMOVE_RECURSE
  "CMakeFiles/table3_cache_metrics.dir/table3_cache_metrics.cc.o"
  "CMakeFiles/table3_cache_metrics.dir/table3_cache_metrics.cc.o.d"
  "table3_cache_metrics"
  "table3_cache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
