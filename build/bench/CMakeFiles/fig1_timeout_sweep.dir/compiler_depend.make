# Empty compiler generated dependencies file for fig1_timeout_sweep.
# This may be replaced when dependencies are built.
