file(REMOVE_RECURSE
  "CMakeFiles/fig1_timeout_sweep.dir/fig1_timeout_sweep.cc.o"
  "CMakeFiles/fig1_timeout_sweep.dir/fig1_timeout_sweep.cc.o.d"
  "fig1_timeout_sweep"
  "fig1_timeout_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_timeout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
