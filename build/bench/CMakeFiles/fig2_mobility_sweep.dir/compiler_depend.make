# Empty compiler generated dependencies file for fig2_mobility_sweep.
# This may be replaced when dependencies are built.
