file(REMOVE_RECURSE
  "CMakeFiles/fig2_mobility_sweep.dir/fig2_mobility_sweep.cc.o"
  "CMakeFiles/fig2_mobility_sweep.dir/fig2_mobility_sweep.cc.o.d"
  "fig2_mobility_sweep"
  "fig2_mobility_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mobility_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
