file(REMOVE_RECURSE
  "CMakeFiles/protocol_comparison.dir/protocol_comparison.cc.o"
  "CMakeFiles/protocol_comparison.dir/protocol_comparison.cc.o.d"
  "protocol_comparison"
  "protocol_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
