# Empty compiler generated dependencies file for protocol_comparison.
# This may be replaced when dependencies are built.
