
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aodv/aodv_test.cc" "tests/CMakeFiles/manet_tests.dir/aodv/aodv_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/aodv/aodv_test.cc.o.d"
  "/root/repo/tests/core/adaptive_timeout_test.cc" "tests/CMakeFiles/manet_tests.dir/core/adaptive_timeout_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/adaptive_timeout_test.cc.o.d"
  "/root/repo/tests/core/dsr_discovery_test.cc" "tests/CMakeFiles/manet_tests.dir/core/dsr_discovery_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/dsr_discovery_test.cc.o.d"
  "/root/repo/tests/core/dsr_evidence_test.cc" "tests/CMakeFiles/manet_tests.dir/core/dsr_evidence_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/dsr_evidence_test.cc.o.d"
  "/root/repo/tests/core/dsr_freshness_test.cc" "tests/CMakeFiles/manet_tests.dir/core/dsr_freshness_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/dsr_freshness_test.cc.o.d"
  "/root/repo/tests/core/dsr_maintenance_test.cc" "tests/CMakeFiles/manet_tests.dir/core/dsr_maintenance_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/dsr_maintenance_test.cc.o.d"
  "/root/repo/tests/core/dsr_strategy_test.cc" "tests/CMakeFiles/manet_tests.dir/core/dsr_strategy_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/dsr_strategy_test.cc.o.d"
  "/root/repo/tests/core/link_cache_test.cc" "tests/CMakeFiles/manet_tests.dir/core/link_cache_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/link_cache_test.cc.o.d"
  "/root/repo/tests/core/negative_cache_test.cc" "tests/CMakeFiles/manet_tests.dir/core/negative_cache_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/negative_cache_test.cc.o.d"
  "/root/repo/tests/core/route_cache_filter_test.cc" "tests/CMakeFiles/manet_tests.dir/core/route_cache_filter_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/route_cache_filter_test.cc.o.d"
  "/root/repo/tests/core/route_cache_test.cc" "tests/CMakeFiles/manet_tests.dir/core/route_cache_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/route_cache_test.cc.o.d"
  "/root/repo/tests/core/send_buffer_test.cc" "tests/CMakeFiles/manet_tests.dir/core/send_buffer_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/core/send_buffer_test.cc.o.d"
  "/root/repo/tests/integration/determinism_test.cc" "tests/CMakeFiles/manet_tests.dir/integration/determinism_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/integration/determinism_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/manet_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/mac/dcf_mac_test.cc" "tests/CMakeFiles/manet_tests.dir/mac/dcf_mac_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/mac/dcf_mac_test.cc.o.d"
  "/root/repo/tests/mac/nav_test.cc" "tests/CMakeFiles/manet_tests.dir/mac/nav_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/mac/nav_test.cc.o.d"
  "/root/repo/tests/metrics/metrics_test.cc" "tests/CMakeFiles/manet_tests.dir/metrics/metrics_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/metrics/metrics_test.cc.o.d"
  "/root/repo/tests/mobility/waypoint_test.cc" "tests/CMakeFiles/manet_tests.dir/mobility/waypoint_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/mobility/waypoint_test.cc.o.d"
  "/root/repo/tests/net/packet_test.cc" "tests/CMakeFiles/manet_tests.dir/net/packet_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/net/packet_test.cc.o.d"
  "/root/repo/tests/phy/capture_test.cc" "tests/CMakeFiles/manet_tests.dir/phy/capture_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/phy/capture_test.cc.o.d"
  "/root/repo/tests/phy/channel_test.cc" "tests/CMakeFiles/manet_tests.dir/phy/channel_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/phy/channel_test.cc.o.d"
  "/root/repo/tests/scenario/experiment_test.cc" "tests/CMakeFiles/manet_tests.dir/scenario/experiment_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/scenario/experiment_test.cc.o.d"
  "/root/repo/tests/scenario/table_test.cc" "tests/CMakeFiles/manet_tests.dir/scenario/table_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/scenario/table_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/manet_tests.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/scheduler_test.cc" "tests/CMakeFiles/manet_tests.dir/sim/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/sim/scheduler_test.cc.o.d"
  "/root/repo/tests/sim/time_test.cc" "tests/CMakeFiles/manet_tests.dir/sim/time_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/sim/time_test.cc.o.d"
  "/root/repo/tests/traffic/cbr_test.cc" "tests/CMakeFiles/manet_tests.dir/traffic/cbr_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/traffic/cbr_test.cc.o.d"
  "/root/repo/tests/transport/reliable_test.cc" "tests/CMakeFiles/manet_tests.dir/transport/reliable_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/transport/reliable_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/manet_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/vec2_test.cc" "tests/CMakeFiles/manet_tests.dir/util/vec2_test.cc.o" "gcc" "tests/CMakeFiles/manet_tests.dir/util/vec2_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
