# Empty compiler generated dependencies file for manet_tests.
# This may be replaced when dependencies are built.
