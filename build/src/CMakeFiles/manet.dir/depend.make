# Empty dependencies file for manet.
# This may be replaced when dependencies are built.
