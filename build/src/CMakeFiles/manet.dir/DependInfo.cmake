
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aodv/aodv_agent.cc" "src/CMakeFiles/manet.dir/aodv/aodv_agent.cc.o" "gcc" "src/CMakeFiles/manet.dir/aodv/aodv_agent.cc.o.d"
  "/root/repo/src/core/adaptive_timeout.cc" "src/CMakeFiles/manet.dir/core/adaptive_timeout.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/adaptive_timeout.cc.o.d"
  "/root/repo/src/core/dsr_agent.cc" "src/CMakeFiles/manet.dir/core/dsr_agent.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/dsr_agent.cc.o.d"
  "/root/repo/src/core/dsr_config.cc" "src/CMakeFiles/manet.dir/core/dsr_config.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/dsr_config.cc.o.d"
  "/root/repo/src/core/link_cache.cc" "src/CMakeFiles/manet.dir/core/link_cache.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/link_cache.cc.o.d"
  "/root/repo/src/core/negative_cache.cc" "src/CMakeFiles/manet.dir/core/negative_cache.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/negative_cache.cc.o.d"
  "/root/repo/src/core/route_cache.cc" "src/CMakeFiles/manet.dir/core/route_cache.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/route_cache.cc.o.d"
  "/root/repo/src/core/send_buffer.cc" "src/CMakeFiles/manet.dir/core/send_buffer.cc.o" "gcc" "src/CMakeFiles/manet.dir/core/send_buffer.cc.o.d"
  "/root/repo/src/mac/dcf_mac.cc" "src/CMakeFiles/manet.dir/mac/dcf_mac.cc.o" "gcc" "src/CMakeFiles/manet.dir/mac/dcf_mac.cc.o.d"
  "/root/repo/src/mac/frame.cc" "src/CMakeFiles/manet.dir/mac/frame.cc.o" "gcc" "src/CMakeFiles/manet.dir/mac/frame.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/manet.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/manet.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/metrics/oracle.cc" "src/CMakeFiles/manet.dir/metrics/oracle.cc.o" "gcc" "src/CMakeFiles/manet.dir/metrics/oracle.cc.o.d"
  "/root/repo/src/mobility/waypoint.cc" "src/CMakeFiles/manet.dir/mobility/waypoint.cc.o" "gcc" "src/CMakeFiles/manet.dir/mobility/waypoint.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/manet.dir/net/network.cc.o" "gcc" "src/CMakeFiles/manet.dir/net/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/CMakeFiles/manet.dir/net/node.cc.o" "gcc" "src/CMakeFiles/manet.dir/net/node.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/manet.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/manet.dir/net/packet.cc.o.d"
  "/root/repo/src/phy/channel.cc" "src/CMakeFiles/manet.dir/phy/channel.cc.o" "gcc" "src/CMakeFiles/manet.dir/phy/channel.cc.o.d"
  "/root/repo/src/phy/radio.cc" "src/CMakeFiles/manet.dir/phy/radio.cc.o" "gcc" "src/CMakeFiles/manet.dir/phy/radio.cc.o.d"
  "/root/repo/src/scenario/experiment.cc" "src/CMakeFiles/manet.dir/scenario/experiment.cc.o" "gcc" "src/CMakeFiles/manet.dir/scenario/experiment.cc.o.d"
  "/root/repo/src/scenario/scenario.cc" "src/CMakeFiles/manet.dir/scenario/scenario.cc.o" "gcc" "src/CMakeFiles/manet.dir/scenario/scenario.cc.o.d"
  "/root/repo/src/scenario/table.cc" "src/CMakeFiles/manet.dir/scenario/table.cc.o" "gcc" "src/CMakeFiles/manet.dir/scenario/table.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/manet.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/manet.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/manet.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/manet.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/traffic/cbr.cc" "src/CMakeFiles/manet.dir/traffic/cbr.cc.o" "gcc" "src/CMakeFiles/manet.dir/traffic/cbr.cc.o.d"
  "/root/repo/src/transport/reliable.cc" "src/CMakeFiles/manet.dir/transport/reliable.cc.o" "gcc" "src/CMakeFiles/manet.dir/transport/reliable.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/manet.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/manet.dir/util/logging.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/manet.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/manet.dir/util/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
