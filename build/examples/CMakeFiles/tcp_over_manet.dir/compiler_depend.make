# Empty compiler generated dependencies file for tcp_over_manet.
# This may be replaced when dependencies are built.
