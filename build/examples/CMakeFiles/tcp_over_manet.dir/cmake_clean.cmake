file(REMOVE_RECURSE
  "CMakeFiles/tcp_over_manet.dir/tcp_over_manet.cpp.o"
  "CMakeFiles/tcp_over_manet.dir/tcp_over_manet.cpp.o.d"
  "tcp_over_manet"
  "tcp_over_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_over_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
