file(REMOVE_RECURSE
  "CMakeFiles/cache_strategy_comparison.dir/cache_strategy_comparison.cpp.o"
  "CMakeFiles/cache_strategy_comparison.dir/cache_strategy_comparison.cpp.o.d"
  "cache_strategy_comparison"
  "cache_strategy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
