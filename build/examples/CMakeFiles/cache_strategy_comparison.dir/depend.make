# Empty dependencies file for cache_strategy_comparison.
# This may be replaced when dependencies are built.
