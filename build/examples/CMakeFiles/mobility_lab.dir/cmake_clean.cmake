file(REMOVE_RECURSE
  "CMakeFiles/mobility_lab.dir/mobility_lab.cpp.o"
  "CMakeFiles/mobility_lab.dir/mobility_lab.cpp.o.d"
  "mobility_lab"
  "mobility_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
