# Empty compiler generated dependencies file for mobility_lab.
# This may be replaced when dependencies are built.
