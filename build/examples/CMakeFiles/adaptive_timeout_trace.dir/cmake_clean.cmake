file(REMOVE_RECURSE
  "CMakeFiles/adaptive_timeout_trace.dir/adaptive_timeout_trace.cpp.o"
  "CMakeFiles/adaptive_timeout_trace.dir/adaptive_timeout_trace.cpp.o.d"
  "adaptive_timeout_trace"
  "adaptive_timeout_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_timeout_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
