# Empty compiler generated dependencies file for adaptive_timeout_trace.
# This may be replaced when dependencies are built.
