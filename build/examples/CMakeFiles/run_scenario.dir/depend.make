# Empty dependencies file for run_scenario.
# This may be replaced when dependencies are built.
