file(REMOVE_RECURSE
  "CMakeFiles/run_scenario.dir/run_scenario.cpp.o"
  "CMakeFiles/run_scenario.dir/run_scenario.cpp.o.d"
  "run_scenario"
  "run_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
