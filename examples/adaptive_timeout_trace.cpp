// Watch the adaptive timeout heuristic at work: run a mobile network and
// periodically sample each node's current expiry timeout
//   T = max(alpha * avg_route_lifetime, time_since_last_link_break)
// printing the population distribution over time. In a fresh network T
// grows (no breaks observed -> nothing to adapt to); once breaks start, T
// settles near the observed route stability.
//
//   $ ./adaptive_timeout_trace [numNodes] [seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace manet;

  scenario::ScenarioConfig cfg;
  cfg.numNodes = argc > 1 ? std::atoi(argv[1]) : 50;
  cfg.field = {1500.0, 500.0};
  cfg.numFlows = 12;
  cfg.packetsPerSecond = 3.0;
  cfg.duration = sim::Time::seconds(argc > 2 ? std::atoll(argv[2]) : 120);
  cfg.pause = sim::Time::zero();
  cfg.mobilitySeed = 5;
  cfg.dsr = core::makeVariantConfig(core::Variant::kAdaptiveExpiry);

  scenario::Scenario s(cfg);
  net::Network& net = s.network();

  std::printf("%8s  %10s %10s %10s  %12s %10s\n", "time", "T_p25", "T_med",
              "T_p75", "avg_life_med", "breaks");
  std::printf("%s\n", std::string(68, '-').c_str());

  const auto sampleEvery = sim::Time::seconds(10);
  for (sim::Time t = sampleEvery; t <= cfg.duration; t += sampleEvery) {
    net.scheduler().scheduleAt(t, [&net, t] {
      std::vector<double> timeouts, lifetimes;
      std::uint64_t samples = 0;
      for (net::NodeId i = 0; i < net.size(); ++i) {
        const core::DsrAgent& d = net.node(i).dsr();
        timeouts.push_back(d.currentExpiryTimeout().toSeconds());
        lifetimes.push_back(d.adaptiveTimeout().avgRouteLifetimeSec());
        samples += d.adaptiveTimeout().sampleCount();
      }
      std::sort(timeouts.begin(), timeouts.end());
      std::sort(lifetimes.begin(), lifetimes.end());
      const std::size_t n = timeouts.size();
      std::printf("%7.0fs  %9.2fs %9.2fs %9.2fs  %11.2fs %10llu\n",
                  t.toSeconds(), timeouts[n / 4], timeouts[n / 2],
                  timeouts[3 * n / 4], lifetimes[n / 2],
                  static_cast<unsigned long long>(samples));
    });
  }
  const scenario::RunResult r = s.run();
  std::printf(
      "\nfinal: delivery %.1f%%, %llu links pruned by the expiry timer\n",
      100.0 * r.metrics.packetDeliveryFraction(),
      static_cast<unsigned long long>(r.metrics.expiredLinks));
  return 0;
}
