// A reliable file-transfer-style session over a mobile ad hoc network,
// showing the transport extension's public API and why cache correctness
// matters for feedback-controlled traffic.
//
//   $ ./tcp_over_manet [segments] [seconds]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/dsr_config.h"
#include "src/scenario/scenario.h"
#include "src/transport/reliable.h"

int main(int argc, char** argv) {
  using namespace manet;

  const auto segments =
      static_cast<std::uint64_t>(argc > 1 ? std::atoll(argv[1]) : 2000);
  const auto seconds = argc > 2 ? std::atoll(argv[2]) : 120;

  for (core::Variant v : {core::Variant::kBase, core::Variant::kAll}) {
    scenario::ScenarioConfig cfg;
    cfg.numNodes = 50;
    cfg.field = {1500.0, 500.0};
    cfg.numFlows = 8;  // CBR background load
    cfg.packetsPerSecond = 2.0;
    cfg.duration = sim::Time::seconds(seconds);
    cfg.pause = sim::Time::zero();
    cfg.mobilitySeed = 9;
    cfg.dsr = core::makeVariantConfig(v);

    scenario::Scenario s(cfg);
    net::Network& net = s.network();

    // One bulk transfer across the field: node 0 -> node 49.
    transport::ReliableReceiver rx(net.node(49).dsr(), /*connId=*/1);
    transport::ReliableSender tx(net.node(0).dsr(), net.scheduler(), 49, 1,
                                 segments);
    net.scheduler().scheduleAt(sim::Time::millis(100),
                               [&tx] { tx.start(); });
    s.run();

    std::printf(
        "%-14s goodput %6.1f kb/s | %llu/%llu segments acked | "
        "%llu retransmissions, %llu RTO timeouts | cwnd %.1f\n",
        core::toString(v), tx.goodputKbps(net.scheduler().now()),
        static_cast<unsigned long long>(tx.acked()),
        static_cast<unsigned long long>(segments),
        static_cast<unsigned long long>(tx.retransmissions()),
        static_cast<unsigned long long>(tx.timeouts()), tx.cwnd());
  }
  std::printf(
      "\nStale caches translate into TCP losses and window collapses —\n"
      "the ALL variant should show higher goodput and fewer timeouts.\n");
  return 0;
}
