// Compare the paper's protocol variants head-to-head on one stressed
// scenario (constant mobility), printing routing and cache metrics per
// variant — a miniature of the paper's Fig. 2 / Table 3 at pause 0.
//
//   $ ./cache_strategy_comparison [numNodes] [seconds] [flows]
#include <cstdio>
#include <cstdlib>

#include "src/core/dsr_config.h"
#include "src/scenario/scenario.h"
#include "src/scenario/table.h"

int main(int argc, char** argv) {
  using namespace manet;

  scenario::ScenarioConfig base;
  base.numNodes = argc > 1 ? std::atoi(argv[1]) : 50;
  base.field = {1500.0, 500.0};
  base.numFlows = argc > 3 ? std::atoi(argv[3]) : 15;
  base.packetsPerSecond = 3.0;
  base.duration = sim::Time::seconds(argc > 2 ? std::atoll(argv[2]) : 120);
  base.pause = sim::Time::zero();
  base.mobilitySeed = 1;

  const core::Variant variants[] = {
      core::Variant::kBase,          core::Variant::kWiderError,
      core::Variant::kAdaptiveExpiry, core::Variant::kNegCache,
      core::Variant::kAll,
  };

  scenario::Table table({"variant", "delivery", "delay_ms", "overhead",
                         "good_replies_%", "invalid_hits_%", "breaks"});
  for (core::Variant v : variants) {
    scenario::ScenarioConfig cfg = base;
    cfg.dsr = core::makeVariantConfig(v);
    std::printf("running %-14s ...\n", core::toString(v));
    const scenario::RunResult r = scenario::runScenario(cfg);
    const metrics::Metrics& m = r.metrics;
    table.addRow({core::toString(v),
                  scenario::Table::num(m.packetDeliveryFraction(), 3),
                  scenario::Table::num(1000.0 * m.avgDelaySec(), 1),
                  scenario::Table::num(m.normalizedOverhead(), 2),
                  scenario::Table::num(m.goodReplyPct(), 1),
                  scenario::Table::num(m.invalidCacheHitPct(), 1),
                  std::to_string(m.linkBreaksDetected)});
  }
  table.print("Cache strategies at constant mobility (pause 0)");
  std::printf(
      "\nExpected shape (paper): ALL beats DSR on all three routing\n"
      "metrics; good replies up and invalid cache hits down for ALL.\n");
  return 0;
}
