// Explore the random waypoint model: how pause time shapes link lifetimes
// — the physical quantity the paper's caching techniques must adapt to.
//
// For each pause setting, samples every node pair over the run, measures
// contiguous intervals during which the pair is within radio range, and
// prints the resulting link-lifetime distribution.
//
//   $ ./mobility_lab [numNodes] [seconds]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/mobility/waypoint.h"
#include "src/sim/rng.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace manet;

  const int numNodes = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::int64_t seconds = argc > 2 ? std::atoll(argv[2]) : 300;
  const double range = 250.0;

  std::printf("random waypoint, %d nodes, 1500x500 m, 0.1-20 m/s, %llds\n\n",
              numNodes, static_cast<long long>(seconds));
  std::printf("%10s %12s %12s %12s %12s %14s\n", "pause(s)", "mean_life(s)",
              "p50_life(s)", "p90_life(s)", "links_seen", "avg_degree");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (std::int64_t pauseSec : {0LL, 30LL, 120LL, 300LL}) {
    mobility::RandomWaypoint::Params p;
    p.field = {1500.0, 500.0};
    p.pause = sim::Time::seconds(pauseSec);
    p.horizon = sim::Time::seconds(seconds);

    sim::Rng rng(42);
    std::vector<std::unique_ptr<mobility::RandomWaypoint>> nodes;
    for (int i = 0; i < numNodes; ++i) {
      nodes.push_back(std::make_unique<mobility::RandomWaypoint>(
          rng.stream("node", static_cast<std::uint64_t>(i)), p));
    }

    // Sample pairwise connectivity at 1 s resolution.
    util::RunningStats life;
    std::vector<double> lifetimes;
    double degreeSum = 0.0;
    std::size_t degreeSamples = 0;
    for (int i = 0; i < numNodes; ++i) {
      for (int j = i + 1; j < numNodes; ++j) {
        std::int64_t upSince = -1;
        for (std::int64_t t = 0; t <= seconds; ++t) {
          const bool up =
              distance(nodes[static_cast<std::size_t>(i)]->positionAt(
                           sim::Time::seconds(t)),
                       nodes[static_cast<std::size_t>(j)]->positionAt(
                           sim::Time::seconds(t))) <= range;
          if (up) {
            degreeSum += 2.0;  // both endpoints gain a neighbor
            if (upSince < 0) upSince = t;
          } else if (upSince >= 0) {
            life.add(static_cast<double>(t - upSince));
            lifetimes.push_back(static_cast<double>(t - upSince));
            upSince = -1;
          }
        }
        if (upSince >= 0) {
          life.add(static_cast<double>(seconds - upSince));
          lifetimes.push_back(static_cast<double>(seconds - upSince));
        }
      }
      degreeSamples += static_cast<std::size_t>(seconds + 1);
    }

    std::printf("%10lld %12.1f %12.1f %12.1f %12zu %14.1f\n",
                static_cast<long long>(pauseSec), life.mean(),
                util::quantile(lifetimes, 0.5), util::quantile(lifetimes, 0.9),
                life.count(),
                degreeSum / static_cast<double>(degreeSamples));
  }
  std::printf(
      "\nHigher pause -> longer-lived links -> less cache staleness; this is\n"
      "the x-axis of the paper's Fig. 2.\n");
  return 0;
}
