// Quickstart: build a small mobile ad hoc network, run DSR over it, and
// print the paper's headline metrics.
//
//   $ ./quickstart [numNodes] [seconds]
//
// Demonstrates the two public entry points most users need:
//   * scenario::ScenarioConfig / runScenario for canned experiments, and
//   * the metrics object every run returns.
#include <cstdio>
#include <cstdlib>

#include "src/core/dsr_config.h"
#include "src/scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace manet;

  scenario::ScenarioConfig cfg;
  cfg.numNodes = argc > 1 ? std::atoi(argv[1]) : 30;
  cfg.field = {1000.0, 500.0};
  cfg.numFlows = 8;
  cfg.packetsPerSecond = 2.0;
  cfg.duration =
      sim::Time::seconds(argc > 2 ? std::atoll(argv[2]) : 60);
  cfg.pause = sim::Time::zero();  // constant mobility
  cfg.mobilitySeed = 7;

  // The paper's best variant: all three cache-correctness techniques.
  cfg.dsr = core::makeVariantConfig(core::Variant::kAll);

  std::printf("Running DSR (ALL variant): %d nodes, %d flows, %.0f s...\n",
              cfg.numNodes, cfg.numFlows, cfg.duration.toSeconds());
  const scenario::RunResult r = scenario::runScenario(cfg);
  const metrics::Metrics& m = r.metrics;

  std::printf("\n--- application metrics ---\n");
  std::printf("packets originated      %llu\n",
              static_cast<unsigned long long>(m.dataOriginated));
  std::printf("packets delivered       %llu (%.1f%%)\n",
              static_cast<unsigned long long>(m.dataDelivered),
              100.0 * m.packetDeliveryFraction());
  std::printf("avg end-to-end delay    %.1f ms\n", 1000.0 * m.avgDelaySec());
  std::printf("throughput              %.1f kb/s\n",
              m.throughputKbps(r.duration));

  std::printf("\n--- overhead (hop-wise transmissions) ---\n");
  std::printf("RREQ/RREP/RERR          %llu / %llu / %llu\n",
              static_cast<unsigned long long>(m.rreqTx),
              static_cast<unsigned long long>(m.rrepTx),
              static_cast<unsigned long long>(m.rerrTx));
  std::printf("RTS/CTS/ACK             %llu / %llu / %llu\n",
              static_cast<unsigned long long>(m.rtsTx),
              static_cast<unsigned long long>(m.ctsTx),
              static_cast<unsigned long long>(m.ackTx));
  std::printf("normalized overhead     %.2f per delivered packet\n",
              m.normalizedOverhead());

  std::printf("\n--- cache behaviour ---\n");
  std::printf("cache hits              %llu (%.1f%% invalid)\n",
              static_cast<unsigned long long>(m.cacheHits),
              m.invalidCacheHitPct());
  std::printf("route replies received  %llu (%.1f%% good)\n",
              static_cast<unsigned long long>(m.repliesReceived),
              m.goodReplyPct());
  std::printf("link breaks detected    %llu\n",
              static_cast<unsigned long long>(m.linkBreaksDetected));
  std::printf("links expired by timer  %llu\n",
              static_cast<unsigned long long>(m.expiredLinks));

  std::printf("\nsimulated %llu events in %.2f s wall (%.0f events/s)\n",
              static_cast<unsigned long long>(r.eventsExecuted),
              r.wallSeconds,
              static_cast<double>(r.eventsExecuted) /
                  (r.wallSeconds > 0 ? r.wallSeconds : 1.0));
  return 0;
}
