// Replay a JSONL trace written by the telemetry layer and summarise it:
// event totals, per-reason drop counts, and a per-flow breakdown of where
// each flow's packets died. This is the offline half of the trace pipeline —
// run any bench or scenario with MANET_TRACE_JSONL=/tmp/trace.jsonl, then:
//
//   ./trace_inspector /tmp/trace.jsonl
//
// or, with no trace at hand, `./trace_inspector --demo` runs a small
// congested scenario, writes a trace, and inspects it in one go.
//
// `./trace_inspector --bench BENCH_x.json` instead pretty-prints a
// perf-baseline report (see bench/perf_baseline and src/prof/bench_report.h).
//
// `./trace_inspector <trace.jsonl> --causal <uid>` prints the causal chain
// of one packet (a passthrough to tools/manet_trace --chain; see
// src/telemetry/causal.h for the full analysis surface).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/prof/bench_report.h"
#include "src/scenario/scenario.h"
#include "src/telemetry/causal.h"
#include "src/telemetry/trace_reader.h"

using namespace manet;

namespace {

struct FlowStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::map<std::string, std::uint64_t> dropsByReason;
};

/// One decoded fault-injection record (node_crash / node_recover /
/// link_blackout / noise_burst / traffic_surge).
struct FaultEntry {
  double t = 0.0;
  std::string what;
};

bool isFaultEvent(const std::string& ev) {
  return ev == "node_crash" || ev == "node_recover" ||
         ev == "link_blackout" || ev == "noise_burst" ||
         ev == "traffic_surge";
}

FaultEntry decodeFault(const std::string& ev, const std::string& line,
                       double t) {
  FaultEntry e;
  e.t = t;
  const auto node = telemetry::jsonNumberField(line, "node");
  const auto src = telemetry::jsonNumberField(line, "src");
  const auto dst = telemetry::jsonNumberField(line, "dst");
  const auto detail = telemetry::jsonNumberField(line, "detail");
  char buf[128];
  if (ev == "node_crash") {
    std::snprintf(buf, sizeof(buf), "node %d crashed",
                  node ? static_cast<int>(*node) : -1);
  } else if (ev == "node_recover") {
    std::snprintf(buf, sizeof(buf), "node %d recovered%s",
                  node ? static_cast<int>(*node) : -1,
                  detail && *detail != 0.0 ? " (caches wiped)" : "");
  } else if (ev == "link_blackout") {
    std::snprintf(buf, sizeof(buf), "link %d->%d blacked out for %.3f s",
                  src ? static_cast<int>(*src) : -1,
                  dst ? static_cast<int>(*dst) : -1,
                  detail ? *detail / 1e9 : 0.0);
  } else if (ev == "noise_burst") {
    std::snprintf(buf, sizeof(buf), "noise burst for %.3f s",
                  detail ? *detail / 1e9 : 0.0);
  } else {
    std::snprintf(buf, sizeof(buf), "traffic surge for %.3f s",
                  detail ? *detail / 1e9 : 0.0);
  }
  e.what = buf;
  return e;
}

std::string writeDemoTrace(bool withFaults) {
  const std::string path = "/tmp/trace_inspector_demo.jsonl";
  scenario::ScenarioConfig cfg;
  cfg.numNodes = 20;
  cfg.field = {900.0, 450.0};
  cfg.numFlows = 10;
  cfg.packetsPerSecond = 6.0;
  cfg.duration = sim::Time::seconds(60);
  cfg.mobilitySeed = 3;
  cfg.telemetry = telemetry::TelemetryConfig{};
  cfg.telemetry.traceJsonlPath = path;
  if (withFaults) {
    cfg.fault = {};
    cfg.fault.churn.fraction = 0.15;
    cfg.fault.churn.meanUpTimeSec = 15.0;
    cfg.fault.churn.meanDownTimeSec = 4.0;
    cfg.fault.noise.meanGapSec = 20.0;
    cfg.fault.noise.meanDurationSec = 0.5;
  }
  std::printf("running demo scenario (%d nodes, %d flows, %.0f s%s)...\n",
              cfg.numNodes, cfg.numFlows, cfg.duration.toSeconds(),
              withFaults ? ", with fault injection" : "");
  scenario::runScenario(cfg);
  return path;
}

int inspectBench(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto report = prof::parseBenchReport(ss.str(), &err);
  if (!report) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 1;
  }

  std::printf("%s: label \"%s\", schema v%d, %zu scenarios\n\n", path.c_str(),
              report->label.c_str(), report->schemaVersion,
              report->scenarios.size());
  for (const prof::BenchScenario& s : report->scenarios) {
    std::printf("%s\n", s.name.c_str());
    std::printf("  wall (median of %d): %.3f s   [", s.repetitions,
                s.wallSecondsMedian);
    for (std::size_t i = 0; i < s.wallSecondsAll.size(); ++i) {
      std::printf("%s%.3f", i > 0 ? ", " : "", s.wallSecondsAll[i]);
    }
    std::printf("]\n");
    std::printf("  throughput: %.0f events/s  (%llu events)\n",
                s.eventsPerSecMedian,
                static_cast<unsigned long long>(s.events));
    std::printf("  peak RSS %.1f MB, scheduler queue peak %llu\n",
                static_cast<double>(s.peakRssBytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.schedQueuePeak));
    if (!s.categorySelfSeconds.empty()) {
      double total = 0.0;
      for (const auto& [name, secs] : s.categorySelfSeconds) total += secs;
      std::printf("  where the time went:\n");
      for (const auto& [name, secs] : s.categorySelfSeconds) {
        std::printf("    %-10s %8.4f s  %5.1f%%\n", name.c_str(), secs,
                    total > 0.0 ? 100.0 * secs / total : 0.0);
      }
    }
    // Schema v2 only; v1 reports (BENCH_seed.json) simply skip this block.
    if (s.hasHotspot) {
      std::printf("  hottest nodes (activations / frames heard @ x,y):\n");
      const std::size_t shown = std::min<std::size_t>(s.topNodes.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        const prof::BenchTopNode& t = s.topNodes[i];
        std::printf("    node %3u: %8llu / %6llu @ (%.0f, %.0f)\n", t.node,
                    static_cast<unsigned long long>(t.activations),
                    static_cast<unsigned long long>(t.framesHeard), t.x,
                    t.y);
      }
      std::printf("  fan-out: %llu tx, %.1f%% of examined radios in range, "
                  "p50/p90/p99 %.1f/%.1f/%.1f\n",
                  static_cast<unsigned long long>(s.fanout.transmissions),
                  s.fanout.radiosExamined > 0
                      ? 100.0 *
                            static_cast<double>(s.fanout.radiosInRange) /
                            static_cast<double>(s.fanout.radiosExamined)
                      : 0.0,
                  s.fanout.p50, s.fanout.p90, s.fanout.p99);
      std::printf("  queue: depth peak %llu mean %.1f, horizon p50 %.0f ns "
                  "p99 %.0f ns\n",
                  static_cast<unsigned long long>(s.queue.depthPeak),
                  s.queue.depthMean, s.queue.horizonP50Ns,
                  s.queue.horizonP99Ns);
      std::printf("  allocations:");
      for (std::size_t i = 0; i < prof::kNumAllocSites; ++i) {
        std::printf(" %s=%llu",
                    prof::toString(static_cast<prof::AllocSite>(i)),
                    static_cast<unsigned long long>(s.alloc[i].count));
      }
      std::printf("   (full histograms: tools/manet_prof)\n");
    } else {
      std::printf("  (schema v1: no hotspot section)\n");
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::uint64_t causalUid = 0;
  if (argc == 3 && std::string(argv[1]) == "--bench") {
    return inspectBench(argv[2]);
  } else if (argc == 2 && std::string(argv[1]) == "--demo") {
    path = writeDemoTrace(false);
  } else if (argc == 2 && std::string(argv[1]) == "--demo-faults") {
    path = writeDemoTrace(true);
  } else if (argc == 4 && std::string(argv[2]) == "--causal") {
    path = argv[1];
    causalUid = std::strtoull(argv[3], nullptr, 10);
    if (causalUid == 0) {
      std::fprintf(stderr, "--causal: '%s' is not a packet uid\n", argv[3]);
      return 2;
    }
  } else if (argc == 2 && std::string(argv[1]) != "--help" &&
             std::string(argv[1]) != "-h") {
    path = argv[1];
  } else {
    std::fprintf(
        stderr,
        "usage: %s <trace.jsonl>                summarise a JSONL trace\n"
        "       %s <trace.jsonl> --causal <uid> print one packet's causal\n"
        "                                       chain (same output as\n"
        "                                       manet_trace --chain <uid>)\n"
        "       %s --demo | --demo-faults       run a demo scenario first\n"
        "       %s --bench <BENCH_x.json>       pretty-print a perf report\n",
        argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }

  const auto checked = telemetry::readJsonlFileChecked(path);
  if (!checked) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  if (checked->skipped > 0) {
    std::fprintf(stderr, "%s: skipped %zu malformed line(s):\n", path.c_str(),
                 checked->skipped);
    for (const std::string& e : checked->errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
  }
  const std::vector<std::string>* lines = &checked->lines;

  if (causalUid != 0) {
    const telemetry::CausalIndex idx =
        telemetry::CausalIndex::fromLines(*lines);
    if (idx.packetRecords(causalUid).empty()) {
      std::fprintf(stderr, "no records for packet uid %llu\n",
                   static_cast<unsigned long long>(causalUid));
      return 1;
    }
    std::fputs(idx.renderChain(causalUid).c_str(), stdout);
    return 0;
  }

  std::map<std::string, std::uint64_t> eventTotals;
  std::map<std::string, std::uint64_t> dropTotals;
  std::map<std::uint32_t, FlowStats> flows;
  std::vector<FaultEntry> faults;
  double firstT = 0.0, lastT = 0.0;
  bool any = false;

  for (const std::string& line : *lines) {
    const auto ev = telemetry::jsonStringField(line, "ev");
    if (!ev) continue;
    ++eventTotals[*ev];
    const auto t = telemetry::jsonNumberField(line, "t");
    if (t) {
      if (!any) firstT = *t;
      lastT = *t;
      any = true;
    }
    if (isFaultEvent(*ev)) {
      faults.push_back(decodeFault(*ev, line, t ? *t : 0.0));
    }
    const auto flow = telemetry::jsonNumberField(line, "flow");
    if (*ev == "pkt_originate" && flow) {
      ++flows[static_cast<std::uint32_t>(*flow)].originated;
    } else if (*ev == "pkt_deliver" && flow) {
      ++flows[static_cast<std::uint32_t>(*flow)].delivered;
    } else if (*ev == "pkt_drop") {
      const auto reason = telemetry::jsonStringField(line, "reason");
      const std::string why = reason ? *reason : "unknown";
      ++dropTotals[why];
      if (flow) ++flows[static_cast<std::uint32_t>(*flow)].dropsByReason[why];
    }
  }

  std::printf("\n%s: %zu records, t = [%.3f s, %.3f s]\n\n", path.c_str(),
              lines->size(), firstT, lastT);

  std::printf("event totals:\n");
  for (const auto& [ev, n] : eventTotals)
    std::printf("  %-18s %10llu\n", ev.c_str(),
                static_cast<unsigned long long>(n));

  std::printf("\ndrop reasons:\n");
  if (dropTotals.empty()) std::printf("  (no drops)\n");
  for (const auto& [why, n] : dropTotals)
    std::printf("  %-22s %10llu\n", why.c_str(),
                static_cast<unsigned long long>(n));

  if (!faults.empty()) {
    std::printf("\nfault timeline (%zu events):\n", faults.size());
    // Show at most the first 40 entries; long churn runs get noisy.
    const std::size_t shown = std::min<std::size_t>(faults.size(), 40);
    for (std::size_t i = 0; i < shown; ++i)
      std::printf("  t=%9.3f s  %s\n", faults[i].t, faults[i].what.c_str());
    if (shown < faults.size())
      std::printf("  ... %zu more\n", faults.size() - shown);
  }

  std::printf("\nper-flow lifecycle (flow: originated -> delivered, drops by"
              " reason):\n");
  for (const auto& [flowId, fs] : flows) {
    const std::uint64_t lost = fs.originated > fs.delivered
                                   ? fs.originated - fs.delivered
                                   : 0;
    std::printf("  flow %2u: %6llu -> %6llu  (%5.1f%% delivered, %llu lost)\n",
                flowId, static_cast<unsigned long long>(fs.originated),
                static_cast<unsigned long long>(fs.delivered),
                fs.originated > 0 ? 100.0 * static_cast<double>(fs.delivered) /
                                        static_cast<double>(fs.originated)
                                  : 0.0,
                static_cast<unsigned long long>(lost));
    for (const auto& [why, n] : fs.dropsByReason)
      std::printf("           %-22s %6llu\n", why.c_str(),
                  static_cast<unsigned long long>(n));
  }

  // Sanity line mirroring the reconcile test. mac_duplicate drops are
  // redundant copies (the original frame was also received), so they don't
  // count against originated packets.
  std::uint64_t drops = 0;
  for (const auto& [why, n] : dropTotals)
    if (why != "mac_duplicate") drops += n;
  const auto orig = eventTotals.count("pkt_originate")
                        ? eventTotals.at("pkt_originate")
                        : 0;
  const auto deliv = eventTotals.count("pkt_deliver")
                         ? eventTotals.at("pkt_deliver")
                         : 0;
  std::printf("\noriginated %llu, delivered %llu, dropped %llu"
              " (in-flight/buffered at end: %lld)\n",
              static_cast<unsigned long long>(orig),
              static_cast<unsigned long long>(deliv),
              static_cast<unsigned long long>(drops),
              static_cast<long long>(orig) - static_cast<long long>(deliv) -
                  static_cast<long long>(drops));
  return 0;
}
