// General-purpose scenario driver: every knob of the simulation exposed as
// a command-line flag. The tool a downstream user reaches for first.
//
//   $ ./run_scenario --nodes 100 --pause 0 --rate 3 --variant all
//                    --duration 120 --seeds 3 --csv out.csv
//
// Prints the paper's routing and cache metrics (mean over seeds).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/dsr_config.h"
#include "src/scenario/experiment.h"
#include "src/scenario/table.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N        number of nodes              (default 100)\n"
      "  --field WxH      field size in meters         (default 2200x600)\n"
      "  --flows N        CBR flows                    (default 25)\n"
      "  --rate R         packets/s per flow           (default 3)\n"
      "  --payload B      payload bytes                (default 512)\n"
      "  --pause S        waypoint pause time, seconds (default 0)\n"
      "  --speed V        max speed m/s                (default 20)\n"
      "  --duration S     simulated seconds            (default 120)\n"
      "  --seeds N        replications                 (default 1)\n"
      "  --seed S         base mobility seed           (default 1)\n"
      "  --variant V      base|wide|static|adaptive|neg|all (default base)\n"
      "  --timeout T      static expiry timeout, seconds    (default 10)\n"
      "  --cache C        path|link cache structure    (default path)\n"
      "  --capacity N     route cache capacity         (default 128)\n"
      "  --freshness      enable freshness tagging extension\n"
      "  --csv FILE       also write a CSV row per seed\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  scenario::ScenarioConfig cfg;
  core::Variant variant = core::Variant::kBase;
  double staticTimeout = 10.0;
  bool freshness = false;
  core::CacheStructure structure = core::CacheStructure::kPath;
  std::size_t capacity = 128;
  int seeds = 1;
  std::string csvPath;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    const char* a = argv[i];
    if (!std::strcmp(a, "--nodes")) {
      cfg.numNodes = std::atoi(next());
    } else if (!std::strcmp(a, "--field")) {
      const char* v = next();
      double w = 0, h = 0;
      if (std::sscanf(v, "%lfx%lf", &w, &h) != 2 || w <= 0 || h <= 0) {
        std::fprintf(stderr, "bad --field %s\n", v);
        return 2;
      }
      cfg.field = {w, h};
    } else if (!std::strcmp(a, "--flows")) {
      cfg.numFlows = std::atoi(next());
    } else if (!std::strcmp(a, "--rate")) {
      cfg.packetsPerSecond = std::atof(next());
    } else if (!std::strcmp(a, "--payload")) {
      cfg.payloadBytes = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(a, "--pause")) {
      cfg.pause = sim::Time::fromSeconds(std::atof(next()));
    } else if (!std::strcmp(a, "--speed")) {
      cfg.maxSpeed = std::atof(next());
    } else if (!std::strcmp(a, "--duration")) {
      cfg.duration = sim::Time::fromSeconds(std::atof(next()));
    } else if (!std::strcmp(a, "--seeds")) {
      seeds = std::atoi(next());
    } else if (!std::strcmp(a, "--seed")) {
      cfg.mobilitySeed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(a, "--variant")) {
      const std::string v = next();
      if (v == "base") variant = core::Variant::kBase;
      else if (v == "wide") variant = core::Variant::kWiderError;
      else if (v == "static") variant = core::Variant::kStaticExpiry;
      else if (v == "adaptive") variant = core::Variant::kAdaptiveExpiry;
      else if (v == "neg") variant = core::Variant::kNegCache;
      else if (v == "all") variant = core::Variant::kAll;
      else {
        std::fprintf(stderr, "unknown variant %s\n", v.c_str());
        return 2;
      }
    } else if (!std::strcmp(a, "--timeout")) {
      staticTimeout = std::atof(next());
    } else if (!std::strcmp(a, "--cache")) {
      const std::string v = next();
      structure = v == "link" ? core::CacheStructure::kLink
                              : core::CacheStructure::kPath;
    } else if (!std::strcmp(a, "--capacity")) {
      capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (!std::strcmp(a, "--freshness")) {
      freshness = true;
    } else if (!std::strcmp(a, "--csv")) {
      csvPath = next();
    } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a);
      usage(argv[0]);
      return 2;
    }
  }

  cfg.dsr = core::makeVariantConfig(variant,
                                    sim::Time::fromSeconds(staticTimeout));
  cfg.dsr.cacheStructure = structure;
  cfg.dsr.routeCacheCapacity = capacity;
  cfg.dsr.freshnessTagging = freshness;

  std::printf("%s | %d nodes, %.0fx%.0f m, %d flows @ %.1f pkt/s, pause %.0fs,"
              " %.0fs x %d seed(s)\n",
              core::toString(variant), cfg.numNodes, cfg.field.x, cfg.field.y,
              cfg.numFlows, cfg.packetsPerSecond, cfg.pause.toSeconds(),
              cfg.duration.toSeconds(), seeds);

  scenario::Table csv({"seed", "delivery", "delay_s", "overhead",
                       "throughput_kbps", "good_pct", "invalid_pct",
                       "link_breaks"});
  const auto agg = scenario::runReplicated(
      cfg, seeds,
      [&](int i, const scenario::RunResult& r) {
    const auto& m = r.metrics;
    csv.addRow({std::to_string(i),
                scenario::Table::num(m.packetDeliveryFraction(), 4),
                scenario::Table::num(m.avgDelaySec(), 4),
                scenario::Table::num(m.normalizedOverhead(), 2),
                scenario::Table::num(m.throughputKbps(r.duration), 1),
                scenario::Table::num(m.goodReplyPct(), 1),
                scenario::Table::num(m.invalidCacheHitPct(), 1),
                std::to_string(m.linkBreaksDetected)});
    std::printf("  seed %d: delivery %.3f, delay %.3fs, overhead %.1f\n", i,
                m.packetDeliveryFraction(), m.avgDelaySec(),
                m.normalizedOverhead());
      },
      "run_scenario");

  std::printf(
      "\nmean over %d seed(s):\n"
      "  delivery fraction   %.3f\n"
      "  avg delay           %.3f s\n"
      "  normalized overhead %.2f\n"
      "  throughput          %.1f kb/s\n"
      "  good replies        %.1f %%\n"
      "  invalid cache hits  %.1f %%\n",
      seeds, agg.deliveryFraction.mean(), agg.avgDelaySec.mean(),
      agg.normalizedOverhead.mean(), agg.throughputKbps.mean(),
      agg.goodReplyPct.mean(), agg.invalidCacheHitPct.mean());

  if (!csvPath.empty()) csv.print("per-seed results", csvPath);
  return 0;
}
