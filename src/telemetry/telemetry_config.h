// Telemetry knobs: one struct switches tracing, sampling and structured
// export for a run. Every knob has an environment-variable override so the
// bench binaries become machine-readable without recompiling:
//
//   MANET_TRACE_JSONL=<path>   stream every trace record to <path> as JSONL
//                              (replicated runs get a .rN suffix per seed)
//   MANET_TRACE_RING=<N>       keep the last N records in memory
//   MANET_SAMPLE_PERIOD=<sec>  periodic time-series probe (0 = off)
//   MANET_EXPORT_DIR=<dir>     runReplicated / Table write JSON + CSV
//                              artifacts into <dir>
//   MANET_LOG_LEVEL=<level>    none|error|info|debug|trace — one verbosity
//                              config shared by util::log and trace capture
//   MANET_TRACE_LOGS=1         mirror util::log lines into the trace
//   MANET_TRACE_PERFETTO=<p>   write a Perfetto/Chrome trace_event JSON
//                              timeline to <p> (per-run suffixes as above)
//   MANET_TRACE_SPANS=<N>      keep the last N scheduler dispatch spans and
//                              export them as timeline tracks (0 = off)
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "src/sim/time.h"
#include "src/util/logging.h"

namespace manet::telemetry {

struct TelemetryConfig {
  /// Keep the most recent `ringCapacity` records in memory (0 = off).
  std::size_t ringCapacity = 0;
  /// Stream records to this JSONL file ("" = off).
  std::string traceJsonlPath;
  /// Periodic time-series probe interval (zero = off). Default when
  /// enabled via env without a value: 1 s of simulated time.
  sim::Time samplePeriod = sim::Time::zero();
  /// Directory for structured run artifacts ("" = off).
  std::string exportDir;
  /// Verbosity applied to util::log for the run; also filters kLog records.
  util::LogLevel logLevel = util::LogLevel::kNone;
  /// Mirror util::log lines into the trace as kLog records.
  bool captureLogs = false;
  /// Write a Perfetto (Chrome trace_event JSON) timeline here ("" = off).
  std::string perfettoPath;
  /// Capture the most recent N scheduler dispatch spans and export them as
  /// per-category timeline tracks (0 = off; only useful with perfettoPath).
  std::size_t dispatchSpanCapacity = 0;

  bool traceEnabled() const {
    return ringCapacity > 0 || !traceJsonlPath.empty() ||
           !perfettoPath.empty();
  }

  /// `base` overlaid with any MANET_* environment overrides.
  static TelemetryConfig fromEnv(TelemetryConfig base);
  static TelemetryConfig fromEnv();
};

/// Path variant for replicated runs: "trace.jsonl" -> "trace.r2.jsonl".
/// Paths without an extension get the suffix appended ("trace" ->
/// "trace.r2"); a dot inside a directory name is not an extension
/// ("out.d/trace" -> "out.d/trace.r2").
std::string perRunPath(const std::string& path, int run);

/// Sweep variant: tags the path with the sweep point's label before the
/// replication suffix, so every (point x seed) run of a parallel sweep
/// streams its trace to its own file: "trace.jsonl" ->
/// "trace.fig1_t0.25.r1.jsonl".
std::string perRunPath(const std::string& path, std::string_view pointLabel,
                       int run);

/// Parse "none|error|info|debug|trace" (case-insensitive; also accepts
/// 0..4). Unknown strings return `fallback`.
util::LogLevel parseLogLevel(const char* s, util::LogLevel fallback);

}  // namespace manet::telemetry
