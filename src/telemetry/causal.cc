#include "src/telemetry/causal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <unordered_set>

#include "src/telemetry/trace_reader.h"

namespace manet::telemetry {

bool parseCausalLine(std::string_view line, CausalRecord& out) {
  auto ev = jsonStringField(line, "ev");
  if (!ev) return false;
  out = CausalRecord{};
  out.event = std::move(*ev);
  if (auto v = jsonNumberField(line, "t")) out.t = *v;
  if (auto v = jsonStringField(line, "reason")) out.reason = std::move(*v);
  if (auto v = jsonNumberField(line, "node")) {
    out.node = static_cast<net::NodeId>(*v);
  }
  if (auto v = jsonStringField(line, "kind")) out.kind = std::move(*v);
  if (auto v = jsonNumberField(line, "uid")) {
    out.uid = static_cast<std::uint64_t>(*v);
  }
  if (auto v = jsonNumberField(line, "cause")) {
    out.cause = static_cast<std::uint64_t>(*v);
  }
  if (auto v = jsonNumberField(line, "src")) {
    out.src = static_cast<net::NodeId>(*v);
  }
  if (auto v = jsonNumberField(line, "dst")) {
    out.dst = static_cast<net::NodeId>(*v);
  }
  if (auto v = jsonNumberField(line, "detail")) {
    out.detail = static_cast<std::int64_t>(*v);
  }
  if (auto v = jsonNumberField(line, "prov")) {
    out.prov = static_cast<std::uint64_t>(*v);
  }
  if (auto v = jsonStringField(line, "origin")) out.origin = std::move(*v);
  if (auto v = jsonNumberField(line, "pnode")) {
    out.provNode = static_cast<net::NodeId>(*v);
  }
  if (auto v = jsonNumberField(line, "born")) out.born = *v;
  if (auto v = jsonNumberField(line, "phops")) {
    out.provHops = static_cast<unsigned>(*v);
  }
  return true;
}

std::string_view ageBucketLabel(double ageSeconds) {
  if (ageSeconds < 1.0) return "<1s";
  if (ageSeconds < 2.0) return "1-2s";
  if (ageSeconds < 5.0) return "2-5s";
  if (ageSeconds < 10.0) return "5-10s";
  return ">=10s";
}

CausalIndex CausalIndex::fromLines(const std::vector<std::string>& lines) {
  CausalIndex idx;
  CausalRecord r;
  for (const std::string& line : lines) {
    if (parseCausalLine(line, r)) idx.add(std::move(r));
  }
  return idx;
}

void CausalIndex::add(CausalRecord r) {
  const std::size_t pos = records_.size();
  if (r.uid != 0) {
    byUid_[r.uid].push_back(pos);
    if (r.cause != 0 && r.cause != r.uid) {
      // First sighting wins; a packet has exactly one cause.
      causeOf_.try_emplace(r.uid, r.cause);
      auto& kids = childrenOf_[r.cause];
      if (std::find(kids.begin(), kids.end(), r.uid) == kids.end()) {
        kids.push_back(r.uid);
      }
    }
  }
  records_.push_back(std::move(r));
}

CausalRecord toCausalRecord(const TraceRecord& r) {
  CausalRecord c;
  c.t = r.at.toSeconds();
  c.event = toString(r.event);
  if (r.event == TraceEvent::kPktDrop) c.reason = toString(r.reason);
  c.node = r.node;
  if (r.uid != 0) c.kind = net::toString(r.kind);
  c.uid = r.uid;
  c.cause = r.cause;
  c.src = r.src;
  c.dst = r.dst;
  c.detail = r.detail;
  c.prov = r.prov.id;
  if (r.prov.id != 0) {
    c.origin = net::toString(r.prov.origin);
    c.provNode = r.prov.insertedBy;
    c.born = r.prov.bornAt.toSeconds();
    c.provHops = r.prov.hopsAtInsert;
  }
  return c;
}

void CausalIndex::add(const TraceRecord& r) { add(toCausalRecord(r)); }

std::vector<const CausalRecord*> CausalIndex::packetRecords(
    std::uint64_t uid) const {
  std::vector<const CausalRecord*> out;
  auto it = byUid_.find(uid);
  if (it == byUid_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t pos : it->second) out.push_back(&records_[pos]);
  return out;
}

std::vector<std::uint64_t> CausalIndex::ancestry(std::uint64_t uid) const {
  std::vector<std::uint64_t> chain{uid};
  std::unordered_set<std::uint64_t> seen{uid};
  std::uint64_t cur = uid;
  for (;;) {
    auto it = causeOf_.find(cur);
    if (it == causeOf_.end()) break;
    cur = it->second;
    if (!seen.insert(cur).second) break;  // cycle guard
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<std::uint64_t> CausalIndex::causedBy(std::uint64_t uid) const {
  auto it = childrenOf_.find(uid);
  if (it == childrenOf_.end()) return {};
  std::vector<std::uint64_t> kids = it->second;
  std::sort(kids.begin(), kids.end());
  return kids;
}

namespace {

void appendRecordLine(std::string& out, const CausalRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %.9f node=%u %s", r.t, r.node,
                r.event.c_str());
  out += buf;
  if (!r.kind.empty()) {
    out += " kind=";
    out += r.kind;
  }
  if (!r.reason.empty()) {
    out += " reason=";
    out += r.reason;
  }
  if (r.src != 0 || r.dst != 0) {
    std::snprintf(buf, sizeof(buf), " src=%u dst=%u", r.src, r.dst);
    out += buf;
  }
  if (r.cause != 0) {
    std::snprintf(buf, sizeof(buf), " cause=%" PRIu64, r.cause);
    out += buf;
  }
  if (r.prov != 0) {
    std::snprintf(buf, sizeof(buf),
                  " prov=%" PRIu64 "(%s by n%u born=%.9f hops=%u)", r.prov,
                  r.origin.c_str(), r.provNode, r.born, r.provHops);
    out += buf;
  }
  if (r.detail != 0) {
    std::snprintf(buf, sizeof(buf), " detail=%" PRId64, r.detail);
    out += buf;
  }
  out += '\n';
}

}  // namespace

std::string CausalIndex::renderChain(std::uint64_t uid) const {
  std::string out;
  char buf[128];
  const auto chain = ancestry(uid);
  std::snprintf(buf, sizeof(buf), "causal chain for uid %" PRIu64 " (%zu packet%s)\n",
                uid, chain.size(), chain.size() == 1 ? "" : "s");
  out += buf;
  for (std::uint64_t link : chain) {
    const auto recs = packetRecords(link);
    std::snprintf(buf, sizeof(buf), "packet %" PRIu64 "%s (%zu records)\n",
                  link, link == uid ? " *" : "", recs.size());
    out += buf;
    for (const CausalRecord* r : recs) appendRecordLine(out, *r);
  }
  const auto kids = causedBy(uid);
  if (!kids.empty()) {
    out += "caused:";
    for (std::uint64_t k : kids) {
      std::snprintf(buf, sizeof(buf), " %" PRIu64, k);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

StaleReport CausalIndex::staleReport() const {
  StaleReport rep;
  // (origin, bucket) -> drops; ordered so rows come out sorted.
  std::map<std::pair<std::string, std::string>, std::uint64_t> cells;
  std::set<std::uint64_t> entries;
  for (const CausalRecord& r : records_) {
    if (r.event != "pkt_drop" || r.kind != "DATA") continue;
    if (r.reason != "link_fail_no_salvage" && r.reason != "negative_cache") {
      continue;
    }
    ++rep.staleDrops;
    if (r.prov == 0) continue;
    ++rep.attributed;
    entries.insert(r.prov);
    const double age = r.t - r.born;
    ++cells[{r.origin, std::string(ageBucketLabel(age))}];
  }
  rep.distinctEntries = entries.size();
  rep.rows.reserve(cells.size());
  for (const auto& [key, count] : cells) {
    rep.rows.push_back(StaleReport::Row{key.first, key.second, count});
  }
  return rep;
}

std::string StaleReport::render() const {
  std::string out;
  char buf[160];
  out += "stale-route drop attribution (origin x entry age at drop)\n";
  std::snprintf(buf, sizeof(buf), "%-18s %-8s %10s\n", "origin", "age",
                "drops");
  out += buf;
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf), "%-18s %-8s %10" PRIu64 "\n",
                  r.origin.c_str(), r.ageBucket.c_str(), r.drops);
    out += buf;
  }
  const double pct = staleDrops == 0
                         ? 100.0
                         : 100.0 * static_cast<double>(attributed) /
                               static_cast<double>(staleDrops);
  std::snprintf(buf, sizeof(buf),
                "stale drops: %" PRIu64 "  attributed: %" PRIu64
                " (%.1f%%)  distinct entries: %" PRIu64 "\n",
                staleDrops, attributed, pct, distinctEntries);
  out += buf;
  return out;
}

}  // namespace manet::telemetry
