#include "src/telemetry/trace_reader.h"

#include <cstdlib>
#include <fstream>

#include "src/util/json.h"

namespace manet::telemetry {

namespace {

/// Position just past `"key":`, or npos.
std::size_t findValueStart(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return std::string_view::npos;
  return pos + needle.size();
}

}  // namespace

std::optional<std::string> jsonStringField(std::string_view line,
                                           std::string_view key) {
  std::size_t pos = findValueStart(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      ++pos;
      switch (line[pos]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        default:
          out += line[pos];
      }
    } else {
      out += line[pos];
    }
    ++pos;
  }
  return out;
}

std::optional<double> jsonNumberField(std::string_view line,
                                      std::string_view key) {
  const std::size_t pos = findValueStart(line, key);
  if (pos == std::string_view::npos || pos >= line.size()) {
    return std::nullopt;
  }
  const std::string num(line.substr(pos, line.find_first_of(",}", pos) - pos));
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  if (end == num.c_str()) return std::nullopt;
  return v;
}

std::optional<std::vector<std::string>> readJsonlFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::optional<JsonlReadResult> readJsonlFileChecked(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  JsonlReadResult out;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string err;
    const auto parsed = util::parseJson(line, &err);
    if (!parsed) {
      out.errors.push_back("line " + std::to_string(lineNo) + ": " + err);
      ++out.skipped;
      continue;
    }
    if (!parsed->isObject()) {
      out.errors.push_back("line " + std::to_string(lineNo) +
                           ": not a JSON object");
      ++out.skipped;
      continue;
    }
    out.lines.push_back(line);
  }
  return out;
}

}  // namespace manet::telemetry
