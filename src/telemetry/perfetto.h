// Perfetto timeline export: Chrome trace_event JSON ("Trace Event Format",
// the JSON array flavour), loadable by ui.perfetto.dev and chrome://tracing.
//
// Track layout:
//  * pid 1 "nodes" — one thread track per simulated node; every trace
//    record becomes an instant event at its simulated time (microsecond
//    timestamps), with uid / cause / provenance fields in args so the
//    timeline is clickable back into the causal index.
//  * pid 1, global-scope instants — fault-plan events (crash, recover,
//    blackout, noise, surge) span the whole view so cache-behaviour shifts
//    line up with the adversity that caused them.
//  * pid 2 "scheduler" — one thread track per prof::Category; each captured
//    dispatch span (sim::Scheduler::dispatchSpans) becomes a complete event
//    whose timestamp is the handler's *simulated* time and whose duration
//    is the handler's *wall-clock* cost. The axis stays simulated time;
//    span width shows where host time went along it (documented in args).
//
// The writer streams: events are appended as they arrive and the array is
// closed in the destructor, so even an aborted run leaves valid JSON once
// the object is destroyed. Export is purely observational — it consumes
// records and profiler clock reads and feeds nothing back, so a run with a
// Perfetto sink attached is bit-identical to one without.
#pragma once

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/telemetry/causal.h"
#include "src/telemetry/trace.h"

namespace manet::telemetry {

/// Process ids of the two top-level track groups.
inline constexpr std::uint32_t kPerfettoNodesPid = 1;
inline constexpr std::uint32_t kPerfettoSchedulerPid = 2;

/// Streaming trace_event JSON array writer. Emits metadata and events in
/// arrival order; closing the writer (or destroying it) terminates the
/// array so the file always parses.
class PerfettoWriter {
 public:
  explicit PerfettoWriter(const std::string& path);
  ~PerfettoWriter();

  PerfettoWriter(const PerfettoWriter&) = delete;
  PerfettoWriter& operator=(const PerfettoWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }
  std::uint64_t eventsWritten() const { return written_; }

  /// Metadata: name the process / thread tracks.
  void processName(std::uint32_t pid, std::string_view name);
  void threadName(std::uint32_t pid, std::uint32_t tid,
                  std::string_view name);

  /// Instant event (ph "i"); global scope spans the whole timeline height.
  /// `argsJson` is a pre-rendered JSON object ("" = none).
  void instant(std::string_view name, std::string_view cat, double tsUs,
               std::uint32_t pid, std::uint32_t tid,
               std::string_view argsJson = {}, bool globalScope = false);

  /// Complete event (ph "X"): a span of `durUs` starting at `tsUs`.
  void complete(std::string_view name, std::string_view cat, double tsUs,
                double durUs, std::uint32_t pid, std::uint32_t tid,
                std::string_view argsJson = {});

  void flush();
  /// Terminate the JSON array and close the file (idempotent).
  void close();

 private:
  void emitRaw(std::string_view eventJson);

  std::string path_;
  std::FILE* f_ = nullptr;
  bool first_ = true;
  std::uint64_t written_ = 0;
};

/// Render the args object for one record: uid, cause, kind, reason,
/// provenance (id / origin / inserting node / birth time / hops), detail.
/// Returns "" when the record carries none of them.
std::string perfettoArgs(const CausalRecord& r);

/// Emit one record as instant event(s) on `w`. `trackReady(node)` must have
/// named the node's track already (PerfettoSink handles this lazily).
void perfettoEmitRecord(PerfettoWriter& w, const CausalRecord& r);

/// True for fault-plan events (rendered as global instants).
bool perfettoIsFaultEvent(std::string_view event);

/// Append the scheduler's captured dispatch spans as complete events on the
/// per-category tracks of pid 2 (includes the track metadata).
void writeDispatchSpans(PerfettoWriter& w,
                        const std::vector<sim::DispatchSpan>& spans);

/// Live sink: converts every TraceRecord to timeline events as it is
/// emitted. Node tracks are named lazily on first sighting.
class PerfettoSink final : public TraceSink {
 public:
  explicit PerfettoSink(const std::string& path);

  bool ok() const { return w_.ok(); }
  PerfettoWriter& writer() { return w_; }

  void record(const TraceRecord& r) override;
  void flush() override { w_.flush(); }

 private:
  PerfettoWriter w_;
  std::set<net::NodeId> namedNodes_;
};

/// Offline converter: previously-written JSONL trace lines -> a Perfetto
/// timeline at `outPath` (used by tools/manet_trace --perfetto). Returns
/// the number of timeline events written, or -1 if the file cannot be
/// opened. Lines that are not trace records are skipped.
long convertJsonlToPerfetto(const std::vector<std::string>& lines,
                            const std::string& outPath);

}  // namespace manet::telemetry
