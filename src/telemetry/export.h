// Structured run export: JSON and CSV writers for RunResult /
// AggregateResult and the sampled time series, so bench output is a
// machine-readable artifact instead of a stdout table.
//
// Switched on by ScenarioConfig.telemetry.exportDir (env:
// MANET_EXPORT_DIR); runReplicated calls exportAggregate automatically.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"
#include "src/telemetry/sampler.h"

namespace manet::telemetry {

/// All Metrics counters plus the paper's derived metrics as one flat JSON
/// object.
std::string metricsJson(const metrics::Metrics& m, sim::Time duration);

/// One run: duration, event count, wall time, metrics. When
/// `includeVolatile` is false, host-dependent fields (wall_seconds and the
/// wall-time profile block) are omitted so two same-seed runs — in the same
/// process or separate ones — must produce byte-identical JSON; the replay
/// regression test diffs exactly this form.
std::string runResultJson(const scenario::RunResult& r,
                          bool includeVolatile = true);

/// A replicated experiment: label, scenario parameters, per-metric
/// aggregate statistics (mean/stddev/min/max/n) and every run's metrics.
/// Per-run entries are volatile-free (no wall_seconds / profile block), so
/// the artifact is a pure function of the configuration — byte-identical
/// across hosts, repeat runs, and sweep job counts.
///
/// `quarantinedReps` (optional) lists replication indices the supervisor
/// quarantined; when non-null and non-empty a "quarantined_reps" array is
/// emitted so a degraded artifact is self-describing. Clean runs emit
/// exactly the historical byte sequence.
std::string aggregateJson(const scenario::AggregateResult& agg,
                          const scenario::ScenarioConfig& cfg,
                          std::string_view label,
                          const std::vector<int>* quarantinedReps = nullptr);

/// Sampled series as CSV (header + one row per probe).
std::string seriesCsv(const SampleSeries& s);

/// Spatial cost heatmap from a profiled run: one row per node with its
/// end-of-run position (r.nodePositions), per-entity cost attribution
/// (activations, self time, frames heard) and the per-category self-time
/// split. Empty string when the run carries no hotspot data (profiling was
/// off). Plot x,y against any cost column to see *where* the simulation
/// spends its time on the field. An optional `scenarioName` prefixes every
/// row so multi-scenario files (bench/perf_baseline --heatmap) stay
/// self-describing.
std::string heatmapCsv(const scenario::RunResult& r,
                       std::string_view scenarioName = {});

/// Write `content` to `path` crash-safely (util::atomicWriteFile:
/// write-temp-fsync-rename), creating parent directories as needed — a
/// SIGKILL mid-export can never leave a torn artifact. Returns false (and
/// logs to stderr) on failure.
bool writeFile(const std::string& path, std::string_view content);

/// Write `<dir>/<label>.json` (aggregate + runs) and, for every run with a
/// non-empty sampled series, `<dir>/<label>.r<N>.series.csv`. No-op when
/// cfg.telemetry.exportDir is empty. Returns the number of files written.
int exportAggregate(const scenario::AggregateResult& agg,
                    const scenario::ScenarioConfig& cfg,
                    std::string_view label,
                    const std::vector<int>* quarantinedReps = nullptr);

}  // namespace manet::telemetry
