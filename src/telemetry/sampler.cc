#include "src/telemetry/sampler.h"

#include "src/core/dsr_agent.h"

namespace manet::telemetry {

Sampler::Sampler(net::Network& network, sim::Time period)
    : network_(network), period_(period) {
  series_.period = period;
}

void Sampler::start() {
  if (period_ <= sim::Time::zero()) return;
  network_.scheduler().scheduleAfter(
      period_, [this] { probe(); }, prof::Category::kTelemetry);
}

void Sampler::probe() {
  const sim::Time now = network_.scheduler().now();

  std::size_t dsrNodes = 0;
  std::size_t cacheEntries = 0;
  std::size_t sendBufOccupancy = 0;
  std::size_t routesChecked = 0;
  std::size_t routesInvalid = 0;
  const metrics::LinkOracle& oracle = network_.oracle();
  for (std::size_t i = 0; i < network_.size(); ++i) {
    net::Node& node = network_.node(static_cast<net::NodeId>(i));
    if (node.protocol() != net::Protocol::kDsr) continue;
    ++dsrNodes;
    const core::DsrAgent& dsr = node.dsr();
    cacheEntries += dsr.routeCache().size();
    sendBufOccupancy += dsr.sendBuffer().size();
    dsr.routeCache().forEachRoute([&](std::span<const net::NodeId> route) {
      ++routesChecked;
      if (!oracle.routeValid(route, now)) ++routesInvalid;
    });
  }

  series_.timeSec.push_back(now.toSeconds());
  const double n = dsrNodes > 0 ? static_cast<double>(dsrNodes) : 1.0;
  series_.meanCacheSize.push_back(static_cast<double>(cacheEntries) / n);
  series_.invalidEntryFrac.push_back(
      routesChecked > 0
          ? static_cast<double>(routesInvalid) /
                static_cast<double>(routesChecked)
          : 0.0);
  series_.meanSendBufOccupancy.push_back(
      static_cast<double>(sendBufOccupancy) / n);

  const metrics::Metrics& m = network_.metrics();
  series_.originated.push_back(m.dataOriginated - last_.dataOriginated);
  series_.delivered.push_back(m.dataDelivered - last_.dataDelivered);
  series_.dropped.push_back(m.totalDropped() - last_.totalDropped());
  series_.cacheHits.push_back(m.cacheHits - last_.cacheHits);
  series_.linkBreaks.push_back(m.linkBreaksDetected - last_.linkBreaksDetected);
  last_ = m;

  network_.scheduler().scheduleAfter(
      period_, [this] { probe(); }, prof::Category::kTelemetry);
}

}  // namespace manet::telemetry
