#include "src/telemetry/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/prof/profiler.h"
#include "src/util/atomic_file.h"

namespace manet::telemetry {

namespace {

void kv(std::string& out, const char* key, double v, bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", first ? "" : ",", key, v);
  out += buf;
}

void kv(std::string& out, const char* key, std::uint64_t v,
        bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                v);
  out += buf;
}

void kvStats(std::string& out, const char* key, const util::RunningStats& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\"%s\":{\"mean\":%.9g,\"stddev\":%.9g,\"min\":%.9g,"
                "\"max\":%.9g,\"n\":%zu}",
                key, s.mean(), s.stddev(), s.min(), s.max(), s.count());
  out += buf;
}

}  // namespace

std::string metricsJson(const metrics::Metrics& m, sim::Time duration) {
  std::string out = "{";
  kv(out, "data_originated", m.dataOriginated, /*first=*/true);
  kv(out, "data_delivered", m.dataDelivered);
  kv(out, "bytes_delivered", m.bytesDelivered);
  kv(out, "delay_sum_s", m.delaySumSec);
  kv(out, "drop_send_buffer_timeout", m.dropSendBufferTimeout);
  kv(out, "drop_send_buffer_overflow", m.dropSendBufferOverflow);
  kv(out, "drop_ifq_full", m.dropIfqFull);
  kv(out, "drop_link_fail_no_salvage", m.dropLinkFailNoSalvage);
  kv(out, "drop_negative_cache", m.dropNegativeCache);
  kv(out, "drop_ttl_expired", m.dropTtlExpired);
  kv(out, "drop_mac_duplicate", m.dropMacDuplicate);
  kv(out, "total_dropped", m.totalDropped());
  kv(out, "rreq_tx", m.rreqTx);
  kv(out, "rrep_tx", m.rrepTx);
  kv(out, "rerr_tx", m.rerrTx);
  kv(out, "rts_tx", m.rtsTx);
  kv(out, "cts_tx", m.ctsTx);
  kv(out, "ack_tx", m.ackTx);
  kv(out, "data_frame_tx", m.dataFrameTx);
  kv(out, "cts_timeouts", m.ctsTimeouts);
  kv(out, "ack_timeouts", m.ackTimeouts);
  kv(out, "rts_ignored_busy", m.rtsIgnoredBusy);
  kv(out, "cache_hits", m.cacheHits);
  kv(out, "invalid_cache_hits", m.invalidCacheHits);
  // Provenance attribution: invalid hits by how the serving entry was
  // learned. Zero origins are elided; index order keeps output stable.
  {
    out += ",\"invalid_cache_hits_by_origin\":{";
    bool firstOrigin = true;
    for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
      if (m.invalidCacheHitsByOrigin[i] == 0) continue;
      kv(out, net::toString(static_cast<net::RouteOrigin>(i)),
         m.invalidCacheHitsByOrigin[i], firstOrigin);
      firstOrigin = false;
    }
    out += '}';
  }
  kv(out, "replies_received", m.repliesReceived);
  kv(out, "good_replies_received", m.goodRepliesReceived);
  kv(out, "cache_replies_generated", m.cacheRepliesGenerated);
  kv(out, "target_replies_generated", m.targetRepliesGenerated);
  kv(out, "gratuitous_replies_generated", m.gratuitousRepliesGenerated);
  kv(out, "stale_replies_ignored", m.staleRepliesIgnored);
  kv(out, "route_discoveries_started", m.routeDiscoveriesStarted);
  kv(out, "non_prop_requests_sent", m.nonPropRequestsSent);
  kv(out, "flood_requests_sent", m.floodRequestsSent);
  kv(out, "link_breaks_detected", m.linkBreaksDetected);
  kv(out, "fake_link_breaks", m.fakeLinkBreaks);
  kv(out, "salvage_attempts", m.salvageAttempts);
  kv(out, "expired_links", m.expiredLinks);
  kv(out, "rerr_wide_rebroadcasts", m.rerrWideRebroadcasts);
  kv(out, "neg_cache_insertions", m.negCacheInsertions);
  // Derived (the paper's plotted metrics).
  kv(out, "packet_delivery_fraction", m.packetDeliveryFraction());
  kv(out, "avg_delay_s", m.avgDelaySec());
  kv(out, "normalized_overhead", m.normalizedOverhead());
  kv(out, "throughput_kbps", m.throughputKbps(duration));
  kv(out, "good_reply_pct", m.goodReplyPct());
  kv(out, "invalid_cache_hit_pct", m.invalidCacheHitPct());
  out += '}';
  return out;
}

std::string runResultJson(const scenario::RunResult& r,
                          bool includeVolatile) {
  std::string out = "{";
  kv(out, "duration_s", r.duration.toSeconds(), /*first=*/true);
  kv(out, "events_executed", r.eventsExecuted);
  if (includeVolatile) kv(out, "wall_seconds", r.wallSeconds);
  // Scheduler pressure counters are tracked unconditionally, so they are
  // exported even when full profiling is off.
  kv(out, "sched_queue_peak", r.schedQueuePeak);
  kv(out, "sched_total_dispatched", r.eventsExecuted);
  kv(out, "samples", static_cast<std::uint64_t>(r.series.size()));
  if (includeVolatile && r.profile.enabled) {
    out += ",\"profile\":";
    out += prof::toJson(r.profile);
  }
  out += ",\"metrics\":";
  out += metricsJson(r.metrics, r.duration);
  out += '}';
  return out;
}

std::string aggregateJson(const scenario::AggregateResult& agg,
                          const scenario::ScenarioConfig& cfg,
                          std::string_view label,
                          const std::vector<int>* quarantinedReps) {
  std::string out = "{\"label\":\"";
  out += label;
  out += "\",\"config\":{";
  kv(out, "num_nodes", static_cast<std::uint64_t>(cfg.numNodes),
     /*first=*/true);
  kv(out, "field_x_m", cfg.field.x);
  kv(out, "field_y_m", cfg.field.y);
  kv(out, "max_speed_mps", cfg.maxSpeed);
  kv(out, "pause_s", cfg.pause.toSeconds());
  kv(out, "num_flows", static_cast<std::uint64_t>(cfg.numFlows));
  kv(out, "packets_per_second", cfg.packetsPerSecond);
  kv(out, "payload_bytes", static_cast<std::uint64_t>(cfg.payloadBytes));
  kv(out, "duration_s", cfg.duration.toSeconds());
  kv(out, "mobility_seed", cfg.mobilitySeed);
  kv(out, "traffic_seed", cfg.trafficSeed);
  out += ",\"protocol\":\"";
  out += cfg.protocol == net::Protocol::kDsr ? "dsr" : "aodv";
  out += "\"}";
  out += ",\"aggregate\":{\"replications\":";
  out += std::to_string(agg.runs.size());
  // Only emitted for degraded campaigns: a clean run's artifact stays
  // byte-identical to every aggregate exported before quarantine existed.
  if (quarantinedReps != nullptr && !quarantinedReps->empty()) {
    out += ",\"quarantined_reps\":[";
    for (std::size_t i = 0; i < quarantinedReps->size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string((*quarantinedReps)[i]);
    }
    out += ']';
  }
  kvStats(out, "delivery_fraction", agg.deliveryFraction);
  kvStats(out, "avg_delay_s", agg.avgDelaySec);
  kvStats(out, "normalized_overhead", agg.normalizedOverhead);
  kvStats(out, "throughput_kbps", agg.throughputKbps);
  kvStats(out, "good_reply_pct", agg.goodReplyPct);
  kvStats(out, "invalid_cache_hit_pct", agg.invalidCacheHitPct);
  kvStats(out, "cache_hits", agg.cacheHits);
  kvStats(out, "link_breaks", agg.linkBreaks);
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    const util::RunningStats& s = agg.invalidHitsByOrigin[i];
    if (s.count() == 0 || s.max() == 0.0) continue;
    const std::string key =
        std::string("invalid_hits_origin_") +
        net::toString(static_cast<net::RouteOrigin>(i));
    kvStats(out, key.c_str(), s);
  }
  out += "},\"runs\":[";
  for (std::size_t i = 0; i < agg.runs.size(); ++i) {
    if (i > 0) out += ',';
    // Volatile-free per-run entries: aggregate artifacts must be a pure
    // function of the configuration, byte-identical across hosts, repeat
    // runs, and sweep job counts (the parallel-determinism tests diff them).
    out += runResultJson(agg.runs[i], /*includeVolatile=*/false);
  }
  out += "]}";
  return out;
}

std::string seriesCsv(const SampleSeries& s) {
  std::string out =
      "t_s,mean_cache_size,invalid_entry_frac,mean_sendbuf_occupancy,"
      "originated,delivered,dropped,cache_hits,link_breaks\n";
  char buf[256];
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%.3f,%.3f,%.4f,%.3f,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 ",%" PRIu64 "\n",
                  s.timeSec[i], s.meanCacheSize[i], s.invalidEntryFrac[i],
                  s.meanSendBufOccupancy[i], s.originated[i], s.delivered[i],
                  s.dropped[i], s.cacheHits[i], s.linkBreaks[i]);
    out += buf;
  }
  return out;
}

std::string heatmapCsv(const scenario::RunResult& r,
                       std::string_view scenarioName) {
  if (!r.profile.enabled || r.profile.hotspot.entities.empty()) return {};
  std::string out =
      "scenario,node,x,y,activations,self_seconds,frames_heard";
  for (std::size_t c = 0; c < prof::kNumCategories; ++c) {
    out += ',';
    out += prof::toString(static_cast<prof::Category>(c));
    out += "_self_seconds";
  }
  out += '\n';
  char buf[160];
  for (const prof::EntityReport& e : r.profile.hotspot.entities) {
    Vec2 pos{};
    if (e.node < r.nodePositions.size()) pos = r.nodePositions[e.node];
    out += scenarioName;
    std::snprintf(buf, sizeof(buf), ",%u,%.6g,%.6g,%" PRIu64 ",%.9g,%" PRIu64,
                  e.node, pos.x, pos.y, e.activations,
                  static_cast<double>(e.selfNs) / 1e9, e.framesHeard);
    out += buf;
    for (std::size_t c = 0; c < prof::kNumCategories; ++c) {
      std::snprintf(buf, sizeof(buf), ",%.9g",
                    static_cast<double>(e.categorySelfNs[c]) / 1e9);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool writeFile(const std::string& path, std::string_view content) {
  // Crash safety satellite: every structured artifact lands via
  // write-temp-fsync-rename, so readers only ever see absent-or-complete.
  return util::atomicWriteFile(path, content);
}

int exportAggregate(const scenario::AggregateResult& agg,
                    const scenario::ScenarioConfig& cfg,
                    std::string_view label,
                    const std::vector<int>* quarantinedReps) {
  if (cfg.telemetry.exportDir.empty()) return 0;
  const std::string base =
      cfg.telemetry.exportDir + "/" + std::string(label);
  int written = 0;
  if (writeFile(base + ".json",
                aggregateJson(agg, cfg, label, quarantinedReps))) {
    ++written;
  }
  for (std::size_t i = 0; i < agg.runs.size(); ++i) {
    if (agg.runs[i].series.empty()) continue;
    if (writeFile(base + ".r" + std::to_string(i) + ".series.csv",
                  seriesCsv(agg.runs[i].series))) {
      ++written;
    }
  }
  return written;
}

}  // namespace manet::telemetry
