#include "src/telemetry/perfetto.h"

#include <cinttypes>
#include <cstring>

namespace manet::telemetry {

namespace {

/// Append a JSON-escaped copy of `s` (quotes not included). Our strings are
/// enum names and file paths, but escape defensively anyway.
void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendKeyString(std::string& out, std::string_view key,
                     std::string_view value) {
  out += '"';
  out += key;
  out += "\":\"";
  appendEscaped(out, value);
  out += '"';
}

}  // namespace

PerfettoWriter::PerfettoWriter(const std::string& path) : path_(path) {
  ensureParentDir(path);
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ != nullptr) std::fputs("[\n", f_);
}

PerfettoWriter::~PerfettoWriter() { close(); }

void PerfettoWriter::close() {
  if (f_ == nullptr) return;
  std::fputs("\n]\n", f_);
  std::fclose(f_);
  f_ = nullptr;
}

void PerfettoWriter::flush() {
  if (f_ != nullptr) std::fflush(f_);
}

void PerfettoWriter::emitRaw(std::string_view eventJson) {
  if (f_ == nullptr) return;
  if (!first_) std::fputs(",\n", f_);
  first_ = false;
  std::fwrite(eventJson.data(), 1, eventJson.size(), f_);
  ++written_;
}

void PerfettoWriter::processName(std::uint32_t pid, std::string_view name) {
  std::string ev = R"({"ph":"M","name":"process_name","pid":)";
  ev += std::to_string(pid);
  ev += R"(,"tid":0,"args":{)";
  appendKeyString(ev, "name", name);
  ev += "}}";
  emitRaw(ev);
}

void PerfettoWriter::threadName(std::uint32_t pid, std::uint32_t tid,
                                std::string_view name) {
  std::string ev = R"({"ph":"M","name":"thread_name","pid":)";
  ev += std::to_string(pid);
  ev += ",\"tid\":";
  ev += std::to_string(tid);
  ev += R"(,"args":{)";
  appendKeyString(ev, "name", name);
  ev += "}}";
  emitRaw(ev);
}

void PerfettoWriter::instant(std::string_view name, std::string_view cat,
                             double tsUs, std::uint32_t pid,
                             std::uint32_t tid, std::string_view argsJson,
                             bool globalScope) {
  std::string ev = "{";
  appendKeyString(ev, "name", name);
  ev += ',';
  appendKeyString(ev, "cat", cat);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"ph\":\"i\",\"ts\":%.3f", tsUs);
  ev += buf;
  ev += ",\"pid\":";
  ev += std::to_string(pid);
  ev += ",\"tid\":";
  ev += std::to_string(tid);
  ev += globalScope ? R"(,"s":"g")" : R"(,"s":"t")";
  if (!argsJson.empty()) {
    ev += ",\"args\":";
    ev += argsJson;
  }
  ev += '}';
  emitRaw(ev);
}

void PerfettoWriter::complete(std::string_view name, std::string_view cat,
                              double tsUs, double durUs, std::uint32_t pid,
                              std::uint32_t tid, std::string_view argsJson) {
  std::string ev = "{";
  appendKeyString(ev, "name", name);
  ev += ',';
  appendKeyString(ev, "cat", cat);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                tsUs, durUs);
  ev += buf;
  ev += ",\"pid\":";
  ev += std::to_string(pid);
  ev += ",\"tid\":";
  ev += std::to_string(tid);
  if (!argsJson.empty()) {
    ev += ",\"args\":";
    ev += argsJson;
  }
  ev += '}';
  emitRaw(ev);
}

bool perfettoIsFaultEvent(std::string_view event) {
  return event == "node_crash" || event == "node_recover" ||
         event == "link_blackout" || event == "noise_burst" ||
         event == "traffic_surge";
}

std::string perfettoArgs(const CausalRecord& r) {
  std::string args;
  char buf[96];
  const auto addNum = [&](const char* key, std::uint64_t v) {
    args += args.empty() ? '{' : ',';
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
    args += buf;
  };
  const auto addStr = [&](const char* key, const std::string& v) {
    args += args.empty() ? '{' : ',';
    appendKeyString(args, key, v);
  };
  if (r.uid != 0) addNum("uid", r.uid);
  if (r.cause != 0) addNum("cause", r.cause);
  if (!r.kind.empty()) addStr("kind", r.kind);
  if (!r.reason.empty()) addStr("reason", r.reason);
  if (r.src != 0 || r.dst != 0) {
    addNum("src", r.src);
    addNum("dst", r.dst);
  }
  if (r.prov != 0) {
    addNum("prov", r.prov);
    addStr("origin", r.origin);
    addNum("prov_node", r.provNode);
    args += ',';
    std::snprintf(buf, sizeof(buf), "\"born\":%.9f", r.born);
    args += buf;
    addNum("prov_hops", r.provHops);
  }
  if (r.detail != 0) {
    args += args.empty() ? '{' : ',';
    std::snprintf(buf, sizeof(buf), "\"detail\":%" PRId64, r.detail);
    args += buf;
  }
  if (!args.empty()) args += '}';
  return args;
}

void perfettoEmitRecord(PerfettoWriter& w, const CausalRecord& r) {
  const double tsUs = r.t * 1e6;
  std::string name = r.event;
  if (!r.kind.empty()) {
    name += ':';
    name += r.kind;
  }
  const bool fault = perfettoIsFaultEvent(r.event);
  const char* cat = fault                ? "fault"
                    : r.uid != 0         ? "packet"
                    : r.event == "log"   ? "log"
                    : r.prov != 0        ? "cache"
                                         : "protocol";
  w.instant(name, cat, tsUs, kPerfettoNodesPid, r.node, perfettoArgs(r),
            /*globalScope=*/fault);
}

PerfettoSink::PerfettoSink(const std::string& path) : w_(path) {
  if (w_.ok()) w_.processName(kPerfettoNodesPid, "nodes (sim time)");
}

void PerfettoSink::record(const TraceRecord& r) {
  if (!w_.ok()) return;
  if (namedNodes_.insert(r.node).second) {
    w_.threadName(kPerfettoNodesPid, r.node,
                  "node " + std::to_string(r.node));
  }
  perfettoEmitRecord(w_, toCausalRecord(r));
}

void writeDispatchSpans(PerfettoWriter& w,
                        const std::vector<sim::DispatchSpan>& spans) {
  if (!w.ok() || spans.empty()) return;
  w.processName(kPerfettoSchedulerPid,
                "scheduler (ts = sim time, dur = wall cost)");
  bool named[prof::kNumCategories] = {};
  for (const sim::DispatchSpan& s : spans) {
    const auto tid = static_cast<std::uint32_t>(s.cat);
    if (tid < prof::kNumCategories && !named[tid]) {
      named[tid] = true;
      w.threadName(kPerfettoSchedulerPid, tid, prof::toString(s.cat));
    }
    char args[96];
    std::snprintf(args, sizeof(args),
                  "{\"seq\":%" PRIu64 ",\"wall_ns\":%" PRIu64 "}", s.seq,
                  s.wallDurNs);
    // Timestamp is simulated time; the span's width is the handler's wall
    // cost, scaled ns -> us so it is visible on the sim-time axis.
    w.complete(prof::toString(s.cat), "dispatch",
               static_cast<double>(s.at.ns()) / 1e3,
               static_cast<double>(s.wallDurNs) / 1e3, kPerfettoSchedulerPid,
               tid, args);
  }
}

long convertJsonlToPerfetto(const std::vector<std::string>& lines,
                            const std::string& outPath) {
  PerfettoWriter w(outPath);
  if (!w.ok()) return -1;
  w.processName(kPerfettoNodesPid, "nodes (sim time)");
  std::set<net::NodeId> named;
  CausalRecord r;
  for (const std::string& line : lines) {
    if (!parseCausalLine(line, r)) continue;
    if (named.insert(r.node).second) {
      w.threadName(kPerfettoNodesPid, r.node,
                   "node " + std::to_string(r.node));
    }
    perfettoEmitRecord(w, r);
  }
  return static_cast<long>(w.eventsWritten());
}

}  // namespace manet::telemetry
