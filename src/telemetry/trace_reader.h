// Minimal JSONL trace reading: just enough to replay traces written by
// JsonlFileSink (flat objects, string/number values) without a JSON
// dependency. Shared by examples/trace_inspector and the reconciliation
// integration test.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manet::telemetry {

/// Value of `"key":"..."` in a flat JSON object line, or nullopt.
std::optional<std::string> jsonStringField(std::string_view line,
                                           std::string_view key);

/// Value of `"key":<number>` in a flat JSON object line, or nullopt.
std::optional<double> jsonNumberField(std::string_view line,
                                      std::string_view key);

/// Read a JSONL file into lines (empty lines skipped). Returns nullopt if
/// the file cannot be opened. Performs no validation; prefer
/// readJsonlFileChecked for anything user-facing.
std::optional<std::vector<std::string>> readJsonlFile(
    const std::string& path);

/// Result of a validating JSONL read: well-formed object lines in file
/// order, plus a line-numbered error for every rejected line. A truncated
/// tail (the common failure: a run killed mid-write) shows up as one error
/// on the final line instead of silently vanishing from the analysis.
struct JsonlReadResult {
  std::vector<std::string> lines;   // lines that parsed as JSON objects
  std::vector<std::string> errors;  // "line N: <why>" per rejected line
  std::size_t skipped = 0;          // rejected line count (== errors.size())
};

/// Read + validate a JSONL file: every non-empty line must parse as a JSON
/// object (checked with util::parseJson). Returns nullopt only if the file
/// cannot be opened; malformed lines are collected, not fatal.
std::optional<JsonlReadResult> readJsonlFileChecked(const std::string& path);

}  // namespace manet::telemetry
