// Minimal JSONL trace reading: just enough to replay traces written by
// JsonlFileSink (flat objects, string/number values) without a JSON
// dependency. Shared by examples/trace_inspector and the reconciliation
// integration test.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manet::telemetry {

/// Value of `"key":"..."` in a flat JSON object line, or nullopt.
std::optional<std::string> jsonStringField(std::string_view line,
                                           std::string_view key);

/// Value of `"key":<number>` in a flat JSON object line, or nullopt.
std::optional<double> jsonNumberField(std::string_view line,
                                      std::string_view key);

/// Read a JSONL file into lines (empty lines skipped). Returns nullopt if
/// the file cannot be opened.
std::optional<std::vector<std::string>> readJsonlFile(
    const std::string& path);

}  // namespace manet::telemetry
