#include "src/telemetry/trace.h"

#include <cinttypes>
#include <filesystem>
#include <system_error>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::telemetry {

const char* toString(TraceEvent e) {
  switch (e) {
    case TraceEvent::kPktOriginate:
      return "pkt_originate";
    case TraceEvent::kPktForward:
      return "pkt_forward";
    case TraceEvent::kPktDeliver:
      return "pkt_deliver";
    case TraceEvent::kPktDrop:
      return "pkt_drop";
    case TraceEvent::kCacheHit:
      return "cache_hit";
    case TraceEvent::kCacheMiss:
      return "cache_miss";
    case TraceEvent::kCacheEvict:
      return "cache_evict";
    case TraceEvent::kCacheExpire:
      return "cache_expire";
    case TraceEvent::kCacheInsert:
      return "cache_insert";
    case TraceEvent::kNegCacheInsert:
      return "neg_cache_insert";
    case TraceEvent::kNegCacheExpire:
      return "neg_cache_expire";
    case TraceEvent::kRerrOriginate:
      return "rerr_originate";
    case TraceEvent::kRerrForward:
      return "rerr_forward";
    case TraceEvent::kLinkBreak:
      return "link_break";
    case TraceEvent::kLog:
      return "log";
    case TraceEvent::kNodeCrash:
      return "node_crash";
    case TraceEvent::kNodeRecover:
      return "node_recover";
    case TraceEvent::kLinkBlackout:
      return "link_blackout";
    case TraceEvent::kNoiseBurst:
      return "noise_burst";
    case TraceEvent::kTrafficSurge:
      return "traffic_surge";
  }
  return "unknown";
}

const char* toString(DropReason r) {
  switch (r) {
    case DropReason::kNone:
      return "none";
    case DropReason::kSendBufferTimeout:
      return "send_buffer_timeout";
    case DropReason::kSendBufferOverflow:
      return "send_buffer_overflow";
    case DropReason::kIfqFull:
      return "ifq_full";
    case DropReason::kLinkFailNoSalvage:
      return "link_fail_no_salvage";
    case DropReason::kNegativeCache:
      return "negative_cache";
    case DropReason::kTtlExpired:
      return "ttl_expired";
    case DropReason::kMacDuplicate:
      return "mac_duplicate";
    case DropReason::kNodeDown:
      return "node_down";
  }
  return "unknown";
}

TraceRecord packetRecord(TraceEvent event, sim::Time at, net::NodeId node,
                         const net::Packet& p, DropReason reason) {
  TraceRecord r;
  r.at = at;
  r.event = event;
  r.reason = reason;
  r.node = node;
  r.kind = p.kind;
  r.uid = p.uid;
  r.src = p.src;
  r.dst = p.dst;
  r.flowId = p.flowId;
  r.seqInFlow = p.seqInFlow;
  r.cause = p.causeUid;
  r.prov = p.routeProv;
  return r;
}

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string toJson(const TraceRecord& r, std::string_view note) {
  char buf[256];
  std::string out;
  out.reserve(192);
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9f,\"ev\":\"%s\",\"node\":%u",
                r.at.toSeconds(), toString(r.event), r.node);
  out += buf;
  const bool packetScoped = r.uid != 0;
  if (packetScoped) {
    std::snprintf(buf, sizeof(buf),
                  ",\"kind\":\"%s\",\"uid\":%" PRIu64
                  ",\"src\":%u,\"dst\":%u,\"flow\":%u,\"seq\":%" PRIu64,
                  net::toString(r.kind), r.uid, r.src, r.dst, r.flowId,
                  r.seqInFlow);
    out += buf;
  } else if (r.src != 0 || r.dst != 0) {
    // Link-scoped events (link breaks, negative-cache churn, cache lookups)
    // reuse src/dst for the link or lookup endpoints.
    std::snprintf(buf, sizeof(buf), ",\"src\":%u,\"dst\":%u", r.src, r.dst);
    out += buf;
  }
  if (r.event == TraceEvent::kPktDrop) {
    std::snprintf(buf, sizeof(buf), ",\"reason\":\"%s\"", toString(r.reason));
    out += buf;
  }
  if (r.detail != 0) {
    std::snprintf(buf, sizeof(buf), ",\"detail\":%" PRId64, r.detail);
    out += buf;
  }
  if (r.cause != 0) {
    std::snprintf(buf, sizeof(buf), ",\"cause\":%" PRIu64, r.cause);
    out += buf;
  }
  if (r.prov.id != 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"prov\":%" PRIu64
                  ",\"origin\":\"%s\",\"pnode\":%u,\"born\":%.9f,\"phops\":%u",
                  r.prov.id, net::toString(r.prov.origin), r.prov.insertedBy,
                  r.prov.bornAt.toSeconds(),
                  static_cast<unsigned>(r.prov.hopsAtInsert));
    out += buf;
  }
  const std::string_view n = note.empty() ? r.note : note;
  if (!n.empty()) {
    out += ",\"note\":\"";
    appendEscaped(out, n);
    out += '"';
  }
  out += '}';
  return out;
}

// ------------------------------------------------------------- RingBuffer

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buf_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void RingBufferSink::record(const TraceRecord& r) {
  Stored s{r, std::string(r.note)};
  s.rec.note = {};  // the string_view would dangle; keep the owned copy
  if (buf_.size() < capacity_) {
    buf_.push_back(std::move(s));
  } else {
    buf_[head_] = std::move(s);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<RingBufferSink::Stored> RingBufferSink::snapshot() const {
  std::vector<Stored> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

void RingBufferSink::clear() {
  buf_.clear();
  head_ = 0;
}

// ------------------------------------------------------------ JsonlFile

void ensureParentDir(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (!p.has_parent_path()) return;
  // Parallel sweep workers open sinks concurrently; serialize directory
  // creation so racing mkdir calls cannot spuriously fail.
  // manet-lint: allow(shared-mutable): process-wide mutex guarding
  // filesystem mutation only; no simulation state.
  // manet-lint: allow(lock-discipline): serializes filesystem mkdir, an
  // external resource with no in-process data members.
  static util::Mutex dirMutex;
  const util::MutexLock lock(dirMutex);
  std::filesystem::create_directories(p.parent_path(), ec);
}

JsonlFileSink::JsonlFileSink(const std::string& path) : path_(path) {
  ensureParentDir(path);
  f_ = std::fopen(path.c_str(), "w");
}

JsonlFileSink::~JsonlFileSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonlFileSink::record(const TraceRecord& r) {
  if (f_ == nullptr) return;
  const std::string line = toJson(r);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  ++written_;
}

void JsonlFileSink::flush() {
  if (f_ != nullptr) std::fflush(f_);
}

}  // namespace manet::telemetry
