// Time-series sampler: a scheduler-driven periodic probe over the live
// network, recording per-node cache state and global Metrics deltas into a
// columnar series — the ns-2-style time-series view the paper's figures are
// plotted from (cache staleness and drop behaviour *over* a run, not just
// at its end).
#pragma once

#include <cstdint>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/net/network.h"
#include "src/sim/time.h"

namespace manet::telemetry {

/// Columnar recording; one entry per probe across all vectors.
struct SampleSeries {
  sim::Time period = sim::Time::zero();
  std::vector<double> timeSec;
  // ---- per-node state, averaged over DSR nodes ----
  std::vector<double> meanCacheSize;       // cached paths/links per node
  std::vector<double> invalidEntryFrac;    // stale cached routes / total,
                                           // checked against the link oracle
  std::vector<double> meanSendBufOccupancy;
  // ---- global Metrics deltas since the previous probe ----
  std::vector<std::uint64_t> originated;
  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> dropped;
  std::vector<std::uint64_t> cacheHits;
  std::vector<std::uint64_t> linkBreaks;

  std::size_t size() const { return timeSec.size(); }
  bool empty() const { return timeSec.empty(); }
};

/// Probes the network every `period` of simulated time, starting at
/// `period`, until the simulation horizon ends. Create after all nodes are
/// added; call start() before Network::run.
class Sampler {
 public:
  Sampler(net::Network& network, sim::Time period);

  void start();
  const SampleSeries& series() const { return series_; }
  SampleSeries takeSeries() { return std::move(series_); }

 private:
  void probe();

  net::Network& network_;
  sim::Time period_;
  metrics::Metrics last_;
  SampleSeries series_;
};

}  // namespace manet::telemetry
