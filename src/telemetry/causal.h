// Causal chain reconstruction over trace records.
//
// The trace layer stamps every record with the packet's uid (stable across
// hops: forwarding clones preserve it), a `cause` uid linking derived
// packets to what provoked them (RREQ <- the data packet that needed a
// route, RREP <- the RREQ it answers, RERR <- the packet whose transmission
// failed, gratuitous RREP <- the tapped data packet), and the provenance of
// the cache entry behind the event. CausalIndex ingests records — from a
// live RingBufferSink or re-parsed JSONL lines — and answers the questions
// the paper's outcome counters cannot:
//   * the full life of one packet across every node it touched,
//   * the causal ancestry of any control packet back to the application
//     packet that started it,
//   * which cache insertion (origin, inserting node, age at failure) each
//     stale-route drop traces back to, bucketed into the attribution table
//     behind Table 3's invalid-cached-routes column.
//
// Everything here is deterministic: records keep ingestion order, all maps
// are ordered, and renderings are pure functions of the trace — the
// jobs-independence test compares rendered chains byte-for-byte across
// sweep worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/trace.h"

namespace manet::telemetry {

/// One trace record, reduced to the fields causal analysis needs. Produced
/// either from a live TraceRecord or by parsing one JSONL line (enum-coded
/// fields stay strings so a CausalRecord round-trips through JSONL
/// unchanged).
struct CausalRecord {
  double t = 0.0;           // sim-time seconds
  std::string event;        // toString(TraceEvent)
  std::string reason;       // drop reason ("" unless a drop)
  net::NodeId node = 0;     // node where the event happened
  std::string kind;         // packet kind ("" when not packet-scoped)
  std::uint64_t uid = 0;    // packet uid (0 = not packet-scoped)
  std::uint64_t cause = 0;  // uid of the packet that caused this one
  net::NodeId src = 0;
  net::NodeId dst = 0;
  std::int64_t detail = 0;
  // Provenance of the cache entry behind the event (id 0 = none).
  std::uint64_t prov = 0;
  std::string origin;       // toString(RouteOrigin)
  net::NodeId provNode = 0; // inserting node
  double born = 0.0;        // entry birth sim-time (seconds)
  unsigned provHops = 0;    // route length at insert
};

/// Parse one JSONL trace line into a CausalRecord. Returns false when the
/// line has no "ev" field (i.e. is not a trace record).
bool parseCausalLine(std::string_view line, CausalRecord& out);

/// Reduce a live TraceRecord to its causal fields (the same projection the
/// JSONL round-trip produces). Shared by CausalIndex and the Perfetto sink.
CausalRecord toCausalRecord(const TraceRecord& r);

/// Stale-drop attribution: data-packet drops whose route failed underneath
/// them (link_fail_no_salvage) or was intercepted by the negative cache,
/// grouped by the origin of the cache entry that supplied the route and by
/// the entry's age at the moment of the drop.
struct StaleReport {
  struct Row {
    std::string origin;     // how the blamed entry was learned
    std::string ageBucket;  // entry age at drop time (see ageBucketLabel)
    std::uint64_t drops = 0;
  };
  std::vector<Row> rows;            // sorted by (origin, bucket)
  std::uint64_t staleDrops = 0;     // all qualifying drops
  std::uint64_t attributed = 0;     // ...that carried a provenance record
  std::uint64_t distinctEntries = 0;  // distinct blamed cache entries

  /// Fixed-width text table (deterministic; ends with an attribution
  /// summary line). Used by manet_trace --stale-report and CI.
  std::string render() const;
};

/// Bucket label for an entry age in seconds: "<1s", "1-2s", "2-5s",
/// "5-10s", ">=10s" (the paper's Nt and timeout scales make these the
/// interesting decision boundaries).
std::string_view ageBucketLabel(double ageSeconds);

class CausalIndex {
 public:
  /// Ingest parsed JSONL trace lines (non-records are ignored).
  static CausalIndex fromLines(const std::vector<std::string>& lines);

  void add(CausalRecord r);
  /// Convert-and-add a live record (ring snapshots, tests).
  void add(const TraceRecord& r);

  const std::vector<CausalRecord>& records() const { return records_; }

  /// Every record carrying `uid`, in ingestion (= emission) order.
  std::vector<const CausalRecord*> packetRecords(std::uint64_t uid) const;

  /// Causal ancestry of `uid`: root first, `uid` last. Follows `cause`
  /// links; cycle-guarded (a malformed trace cannot loop the walk).
  std::vector<std::uint64_t> ancestry(std::uint64_t uid) const;

  /// Packets directly caused by `uid`, ascending.
  std::vector<std::uint64_t> causedBy(std::uint64_t uid) const;

  /// Render the full causal chain of `uid` as deterministic text: its
  /// ancestry root -> uid, each packet's records in order, then the uids it
  /// caused. The jobs-independence test compares this output byte-for-byte.
  std::string renderChain(std::uint64_t uid) const;

  StaleReport staleReport() const;

 private:
  std::vector<CausalRecord> records_;
  /// Ordered maps: iteration feeds deterministic output.
  std::map<std::uint64_t, std::vector<std::size_t>> byUid_;
  std::map<std::uint64_t, std::uint64_t> causeOf_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> childrenOf_;
};

}  // namespace manet::telemetry
