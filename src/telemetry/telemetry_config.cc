#include "src/telemetry/telemetry_config.h"

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace manet::telemetry {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

util::LogLevel parseLogLevel(const char* s, util::LogLevel fallback) {
  if (s == nullptr) return fallback;
  const std::string_view v(s);
  if (iequals(v, "none") || v == "0") return util::LogLevel::kNone;
  if (iequals(v, "error") || v == "1") return util::LogLevel::kError;
  if (iequals(v, "info") || v == "2") return util::LogLevel::kInfo;
  if (iequals(v, "debug") || v == "3") return util::LogLevel::kDebug;
  if (iequals(v, "trace") || v == "4") return util::LogLevel::kTrace;
  return fallback;
}

TelemetryConfig TelemetryConfig::fromEnv() { return fromEnv(TelemetryConfig{}); }

TelemetryConfig TelemetryConfig::fromEnv(TelemetryConfig base) {
  if (const char* v = std::getenv("MANET_TRACE_JSONL");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    base.traceJsonlPath = v;
  }
  if (const char* v = std::getenv("MANET_TRACE_RING");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    base.ringCapacity = n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  if (const char* v = std::getenv("MANET_SAMPLE_PERIOD");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const double secs = std::strtod(v, &end);
    if (end != v && secs > 0.0) {
      base.samplePeriod = sim::Time::fromSeconds(secs);
    } else if (end != v && secs == 0.0) {
      base.samplePeriod = sim::Time::zero();
    }
    // Unparsable values leave the base setting (sampling stays off).
  }
  if (const char* v = std::getenv("MANET_EXPORT_DIR");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    base.exportDir = v;
  }
  if (const char* v = std::getenv("MANET_LOG_LEVEL"); v != nullptr) {  // NOLINT(concurrency-mt-unsafe)
    base.logLevel = parseLogLevel(v, base.logLevel);
  }
  if (const char* v = std::getenv("MANET_TRACE_LOGS"); v != nullptr) {  // NOLINT(concurrency-mt-unsafe)
    base.captureLogs = v[0] == '1';
  }
  if (const char* v = std::getenv("MANET_TRACE_PERFETTO");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    base.perfettoPath = v;
  }
  if (const char* v = std::getenv("MANET_TRACE_SPANS");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    base.dispatchSpanCapacity = n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  return base;
}

namespace {

/// Insert `suffix` before the path's extension (or append when the basename
/// has none; a dot inside a directory component is not an extension).
std::string insertBeforeExtension(const std::string& path,
                                  const std::string& suffix) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      path.find('/', dot) != std::string::npos) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace

std::string perRunPath(const std::string& path, int run) {
  return insertBeforeExtension(path, ".r" + std::to_string(run));
}

std::string perRunPath(const std::string& path, std::string_view pointLabel,
                       int run) {
  std::string suffix = ".";
  suffix += pointLabel;
  suffix += ".r" + std::to_string(run);
  return insertBeforeExtension(path, suffix);
}

}  // namespace manet::telemetry
