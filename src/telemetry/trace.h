// Simulation trace layer: typed per-event records with pluggable sinks.
//
// The paper's analysis hinges on *why* packets die (stale cache hits, RERR
// propagation, negative-cache drops), which end-of-run scalar counters in
// metrics/ cannot answer. The trace layer emits one typed record per
// protocol event — packet lifecycle (originate/forward/deliver/drop with
// reason), cache behaviour (hit/miss/evict/expire), route-error propagation
// and link-break detection — stamped with simulated time and node id.
//
// Design constraints:
//  * Zero overhead when disabled: every hook guards on
//    `tracer && tracer->enabled()`, which is a null/empty check; no record
//    is even constructed unless a sink is attached.
//  * Sinks are simple: a bounded in-memory ring (post-mortem debugging,
//    tests) and a JSONL file writer (machine-readable artifacts,
//    examples/trace_inspector).
//  * Drop records are emitted at exactly the sites that increment the
//    corresponding Metrics drop counters, so a trace always reconciles with
//    the final counters (asserted by tests/integration/trace_reconcile).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/packet.h"
#include "src/prof/hotspot.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/util/logging.h"

namespace manet::telemetry {

enum class TraceEvent : std::uint8_t {
  kPktOriginate,    // application handed a data packet to the routing layer
  kPktForward,      // intermediate node relayed a source-routed data packet
  kPktDeliver,      // data packet reached its destination
  kPktDrop,         // packet discarded; `reason` says why
  kCacheHit,        // route served from a cache (detail: 1 valid / 0 stale
                    // per the link oracle, -1 unknown)
  kCacheMiss,       // lookup failed, triggering route discovery
  kCacheEvict,      // capacity eviction (detail: entries removed)
  kCacheExpire,     // timer-based expiry pruned links (detail: count)
  kCacheInsert,     // route (or link set) inserted into a cache; the record
                    // carries the entry's provenance (origin, born, hops)
  kNegCacheInsert,  // broken link quarantined
  kNegCacheExpire,  // quarantine aged out (detail: links expired)
  kRerrOriginate,   // route error transmitted by the detecting node
  kRerrForward,     // route error relayed (detail: 1 = wide rebroadcast)
  kLinkBreak,       // MAC retry exhaustion (detail: 1 = false positive,
                    // link geometrically still up)
  kLog,             // util::log line captured into the trace (detail: level)
  // Fault-injection events (src/fault/). Window events carry the window
  // length in `detail` (nanoseconds).
  kNodeCrash,       // node's radio went down (fault injection)
  kNodeRecover,     // node's radio came back up (detail: 1 = caches wiped)
  kLinkBlackout,    // directed link src->dst blocked for `detail` ns
  kNoiseBurst,      // global frame-corruption burst for `detail` ns
  kTrafficSurge,    // CBR rate multiplier applied for `detail` ns
};
const char* toString(TraceEvent e);

/// Why a packet was dropped. Mirrors the Metrics drop counters one-to-one.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kSendBufferTimeout,
  kSendBufferOverflow,
  kIfqFull,
  kLinkFailNoSalvage,
  kNegativeCache,
  kTtlExpired,
  kMacDuplicate,
  kNodeDown,  // flushed from the MAC queue when the node crashed
};
const char* toString(DropReason r);

/// One trace record. Interpretation of src/dst depends on the event: packet
/// events carry the packet's endpoints; link/route-error events carry the
/// broken link's endpoints.
struct TraceRecord {
  sim::Time at;
  TraceEvent event = TraceEvent::kPktOriginate;
  DropReason reason = DropReason::kNone;
  net::NodeId node = 0;  // node where the event happened
  net::PacketKind kind = net::PacketKind::kData;
  std::uint64_t uid = 0;  // packet uid; 0 when not packet-scoped
  net::NodeId src = 0;
  net::NodeId dst = 0;
  std::uint32_t flowId = 0;
  std::uint64_t seqInFlow = 0;
  std::int64_t detail = 0;        // event-specific (see TraceEvent docs)
  /// Uid of the packet that caused this packet to exist (0 = root / n.a.).
  std::uint64_t cause = 0;
  /// Provenance of the cache entry behind this event: for kCacheInsert /
  /// kNegCacheInsert the entry being created, for packet events the entry
  /// whose route the packet follows, for kCacheHit the entry served.
  /// prov.id == 0 means "no cache entry involved" and suppresses emission.
  net::RouteProvenance prov{};
  std::string_view note = {};     // only valid during record(); sinks copy
};

/// Fill the packet-scoped fields of a record from a packet.
TraceRecord packetRecord(TraceEvent event, sim::Time at, net::NodeId node,
                         const net::Packet& p,
                         DropReason reason = DropReason::kNone);

/// Render a record as one JSON object (no trailing newline).
std::string toJson(const TraceRecord& r, std::string_view note = {});

/// Sink interface: receives every record emitted while attached.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
  virtual void flush() {}
};

/// Bounded in-memory ring: keeps the most recent `capacity` records.
class RingBufferSink final : public TraceSink {
 public:
  struct Stored {
    TraceRecord rec;   // rec.note is cleared; use `note` below
    std::string note;
  };

  explicit RingBufferSink(std::size_t capacity);

  void record(const TraceRecord& r) override;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buf_.size(); }
  std::uint64_t totalRecorded() const { return total_; }

  /// Records in chronological order (oldest retained first).
  std::vector<Stored> snapshot() const;
  void clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write position once full
  std::uint64_t total_ = 0;
  std::vector<Stored> buf_;
};

/// Create `path`'s parent directories if they do not exist yet, so sinks
/// opened at sim start (before any exporter runs) can write into a not-yet
/// created export directory. Thread-safe; best-effort (open errors are
/// still reported by the caller).
void ensureParentDir(const std::string& path);

/// Streams records as JSON Lines to a file (one object per line), suitable
/// for examples/trace_inspector and offline tooling.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }
  std::uint64_t recordsWritten() const { return written_; }

  void record(const TraceRecord& r) override;
  void flush() override;

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t written_ = 0;
};

/// Dispatch point owned by the Network. Hooks hold a Tracer* (possibly
/// null) and emit through it; with no sinks attached `enabled()` is false
/// and hooks skip record construction entirely.
class Tracer {
 public:
  bool enabled() const { return !sinks_.empty(); }

  /// Attach a sink (non-owning; the caller keeps it alive for the run).
  void addSink(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void emit(const TraceRecord& r) {
    // Trace-record allocation tally (one per record, however many sinks):
    // count and bytes size the future record arena; records are retained or
    // streamed, so `live` tracks total emitted, not a churn high-water.
    if (prof::AllocTracker* a = prof::AllocTracker::current()) {
      a->recordAlloc(prof::AllocSite::kTraceRecord, r.note.size());
    }
    for (TraceSink* s : sinks_) s->record(r);
  }

  void flush() {
    for (TraceSink* s : sinks_) s->flush();
  }

  /// Bind the simulation clock so sources without scheduler access (caches,
  /// log capture) can stamp records.
  void bindClock(const sim::Scheduler* sched) { sched_ = sched; }
  sim::Time now() const {
    return sched_ != nullptr ? sched_->now() : sim::Time::zero();
  }

  /// Capture a util::log line as a kLog record (shared verbosity: the
  /// telemetry config drives both util::setLogLevel and this filter).
  void emitLog(util::LogLevel level, std::string_view msg) {
    if (!enabled() || level > logCaptureLevel_) return;
    TraceRecord r;
    r.at = now();
    r.event = TraceEvent::kLog;
    r.detail = static_cast<std::int64_t>(level);
    r.note = msg;
    emit(r);
  }
  void setLogCaptureLevel(util::LogLevel level) { logCaptureLevel_ = level; }

 private:
  std::vector<TraceSink*> sinks_;
  const sim::Scheduler* sched_ = nullptr;
  util::LogLevel logCaptureLevel_ = util::LogLevel::kTrace;
};

}  // namespace manet::telemetry
