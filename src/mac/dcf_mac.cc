#include "src/mac/dcf_mac.h"

#include <algorithm>
#include <cassert>

#include "src/util/logging.h"

namespace manet::mac {

DcfMac::DcfMac(net::NodeId id, phy::Radio& radio, sim::Scheduler& sched,
               sim::Rng rng, const MacConfig& cfg, metrics::Metrics* metrics,
               telemetry::Tracer* tracer)
    : id_(id),
      radio_(radio),
      sched_(sched),
      rng_(std::move(rng)),
      cfg_(cfg),
      metrics_(metrics),
      tracer_(tracer),
      cw_(cfg.cwMin) {
  radio_.setReceiveHandler([this](const Frame& f) { onFrame(f); });
}

sim::Time DcfMac::airtime(std::uint32_t bytes) const {
  return radio_.airtime(bytes);
}

sim::Time DcfMac::ctsTimeout() const {
  return cfg_.sifs + airtime(kCtsBytes) + cfg_.timeoutSlack;
}

sim::Time DcfMac::ackTimeoutFor(std::uint32_t) const {
  return cfg_.sifs + airtime(kAckBytes) + cfg_.timeoutSlack;
}

void DcfMac::send(net::PacketPtr pkt, net::NodeId nextHop, bool priority) {
  if (queue_.size() >= cfg_.queueCapacity) {
    if (metrics_) ++metrics_->dropIfqFull;
    if (tracer_ && tracer_->enabled() && pkt) {
      tracer_->emit(telemetry::packetRecord(
          telemetry::TraceEvent::kPktDrop, sched_.now(), id_, *pkt,
          telemetry::DropReason::kIfqFull));
    }
    return;
  }
  QueuedPacket qp{std::move(pkt), nextHop};
  qp.priority = priority;
  qp.seq = seqCounter_++;
  if (priority) {
    // Insert after the in-flight head (if any) and after earlier priority
    // packets, but ahead of all buffered data (ns-2 CMUPriQueue behaviour).
    std::size_t pos = state_ == State::kIdle ? 0 : 1;
    while (pos < queue_.size() && queue_[pos].priority) ++pos;
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(qp));
  } else {
    queue_.push_back(std::move(qp));
  }
  startAccessIfIdle();
}

std::vector<QueuedPacket> DcfMac::purgeNextHop(net::NodeId nextHop) {
  std::vector<QueuedPacket> removed;
  const std::size_t keepHead = state_ == State::kIdle ? 0 : 1;
  for (std::size_t i = queue_.size(); i-- > keepHead;) {
    if (queue_[i].nextHop == nextHop) {
      removed.push_back(std::move(queue_[i]));
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  std::reverse(removed.begin(), removed.end());  // restore FIFO order
  return removed;
}

void DcfMac::flushQueue() {
  const std::size_t keepHead = state_ == State::kIdle ? 0 : 1;
  while (queue_.size() > keepHead) {
    const QueuedPacket qp = std::move(queue_.back());
    queue_.pop_back();
    if (metrics_) ++metrics_->dropNodeDown;
    if (tracer_ && tracer_->enabled() && qp.packet) {
      tracer_->emit(telemetry::packetRecord(
          telemetry::TraceEvent::kPktDrop, sched_.now(), id_, *qp.packet,
          telemetry::DropReason::kNodeDown));
    }
  }
}

void DcfMac::startAccessIfIdle() {
  if (state_ != State::kIdle || queue_.empty()) return;
  beginContention();
}

void DcfMac::beginContention() {
  state_ = State::kContending;
  backoffSlots_ = static_cast<std::uint32_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(cw_)));
  scheduleAttempt();
}

void DcfMac::scheduleAttempt() {
  sched_.cancel(pendingEvent_);
  const sim::Time base =
      std::max({sched_.now(), navUntil_, radio_.busyUntil()});
  const sim::Time at =
      base + cfg_.difs + cfg_.slot * static_cast<double>(backoffSlots_);
  pendingEvent_ = sched_.scheduleAt(at, [this] { attempt(); },
                                   prof::Category::kMac);
}

void DcfMac::attempt() {
  prof::Scope profScope(sched_.profiler(), prof::Category::kMac, id_);
  pendingEvent_ = sim::kInvalidEvent;
  if (state_ != State::kContending || queue_.empty()) return;
  if (radio_.carrierBusy() || sched_.now() < navUntil_) {
    scheduleAttempt();  // medium became busy again: re-defer
    return;
  }
  transmitHeadOfLine();
}

void DcfMac::transmitHeadOfLine() {
  const QueuedPacket& head = queue_.front();
  if (head.nextHop == net::kBroadcast) {
    Frame f;
    f.type = FrameType::kData;
    f.src = id_;
    f.dst = net::kBroadcast;
    f.seq = head.seq;
    f.packet = head.packet;
    countFrameTx(f);
    state_ = State::kSending;
    const sim::Time end = radio_.startTx(f);
    pendingEvent_ = sched_.scheduleAt(
        end, [this] { finishCurrent(true); }, prof::Category::kMac);
    return;
  }

  Frame data;
  data.type = FrameType::kData;
  data.packet = head.packet;
  const bool useRts = data.bytes() >= cfg_.rtsThresholdBytes;
  if (useRts) {
    Frame rts;
    rts.type = FrameType::kRts;
    rts.src = id_;
    rts.dst = head.nextHop;
    rts.retry = shortRetries_ > 0;
    rts.duration = cfg_.sifs * 3.0 + airtime(kCtsBytes) +
                   airtime(kMacDataHeaderBytes + head.packet->wireBytes()) +
                   airtime(kAckBytes);
    countFrameTx(rts);
    state_ = State::kAwaitCts;
    const sim::Time end = radio_.startTx(rts);
    pendingEvent_ = sched_.scheduleAt(
        end + ctsTimeout(), [this] { onCtsTimeout(); },
        prof::Category::kMac);
  } else {
    sendDataFrame();
  }
}

void DcfMac::sendDataFrame() {
  assert(!queue_.empty());
  const QueuedPacket& head = queue_.front();
  Frame f;
  f.type = FrameType::kData;
  f.src = id_;
  f.dst = head.nextHop;
  f.seq = head.seq;
  f.retry = longRetries_ > 0 || shortRetries_ > 0;
  f.packet = head.packet;
  f.duration = cfg_.sifs + airtime(kAckBytes);
  countFrameTx(f);
  state_ = State::kAwaitAck;
  const sim::Time end = radio_.startTx(f);
  pendingEvent_ = sched_.scheduleAt(
      end + ackTimeoutFor(f.bytes()), [this] { onAckTimeout(); },
      prof::Category::kMac);
}

void DcfMac::sendControl(FrameType type, net::NodeId dst,
                         sim::Time duration) {
  // CTS/ACK responses: sent SIFS after the triggering frame, without
  // contention, per the standard. If we happen to be transmitting (rare
  // pathological overlap) the response is simply lost — the peer times out.
  if (radio_.transmitting()) return;
  Frame f;
  f.type = type;
  f.src = id_;
  f.dst = dst;
  f.duration = duration;
  countFrameTx(f);
  radio_.startTx(f);
}

void DcfMac::onFrame(const Frame& f) {
  prof::Scope profScope(sched_.profiler(), prof::Category::kMac, id_);
  const sim::Time now = sched_.now();
  if (f.dst == id_) {
    switch (f.type) {
      case FrameType::kRts:
        // Respond only if we are not mid-exchange and our NAV allows it.
        if ((state_ != State::kIdle && state_ != State::kContending) ||
            now < navUntil_) {
          if (metrics_) ++metrics_->rtsIgnoredBusy;
        } else {
          const sim::Time ctsDur =
              f.duration - cfg_.sifs - airtime(kCtsBytes);
          const net::NodeId peer = f.src;
          sched_.scheduleAfter(
              cfg_.sifs,
              [this, peer, ctsDur] {
                sendControl(FrameType::kCts, peer, ctsDur);
              },
              prof::Category::kMac);
        }
        break;
      case FrameType::kCts:
        if (state_ == State::kAwaitCts) {
          sched_.cancel(pendingEvent_);
          pendingEvent_ = sim::kInvalidEvent;
          sched_.scheduleAfter(
              cfg_.sifs,
              [this] {
                if (state_ == State::kAwaitCts && !queue_.empty()) {
                  sendDataFrame();
                }
              },
              prof::Category::kMac);
        }
        break;
      case FrameType::kData: {
        const net::NodeId peer = f.src;
        const sim::Time ackDur = sim::Time::zero();
        sched_.scheduleAfter(
            cfg_.sifs,
            [this, peer, ackDur] {
              sendControl(FrameType::kAck, peer, ackDur);
            },
            prof::Category::kMac);
        // Filter duplicates created by lost ACKs.
        auto it = lastDeliveredSeq_.find(f.src);
        if (f.retry && it != lastDeliveredSeq_.end() && it->second == f.seq) {
          if (metrics_) ++metrics_->dropMacDuplicate;
          if (tracer_ && tracer_->enabled() && f.packet) {
            tracer_->emit(telemetry::packetRecord(
                telemetry::TraceEvent::kPktDrop, sched_.now(), id_, *f.packet,
                telemetry::DropReason::kMacDuplicate));
          }
          break;
        }
        lastDeliveredSeq_[f.src] = f.seq;
        if (handlers_.receive && f.packet) handlers_.receive(f.packet, f.src);
        break;
      }
      case FrameType::kAck:
        if (state_ == State::kAwaitAck) {
          sched_.cancel(pendingEvent_);
          pendingEvent_ = sim::kInvalidEvent;
          finishCurrent(true);
        }
        break;
    }
    return;
  }

  if (f.dst == net::kBroadcast) {
    if (f.type == FrameType::kData && handlers_.receive && f.packet) {
      handlers_.receive(f.packet, f.src);
    }
    return;
  }

  // Overheard frame for someone else: honor its NAV reservation and hand
  // data frames to the promiscuous tap (DSR snooping).
  //
  // 802.11 NAV-reset rule, approximated: a station that hears only an RTS
  // (but never the CTS) must not reserve the medium for the whole exchange,
  // or dead exchanges wedge the neighborhood. Reserve just the CTS-response
  // window for RTS frames; the CTS and DATA frames (re)extend the NAV for
  // exchanges that actually proceed.
  sim::Time reserve = f.duration;
  if (f.type == FrameType::kRts) {
    reserve = std::min(reserve, cfg_.sifs * 2.0 + airtime(kCtsBytes) +
                                    cfg_.slot * 2.0);
  }
  navUntil_ = std::max(navUntil_, now + reserve);
  if (f.type == FrameType::kData && handlers_.promiscuousTap) {
    handlers_.promiscuousTap(f);
  }
}

void DcfMac::onCtsTimeout() {
  prof::Scope profScope(sched_.profiler(), prof::Category::kMac, id_);
  pendingEvent_ = sim::kInvalidEvent;
  if (state_ != State::kAwaitCts) return;
  if (metrics_) ++metrics_->ctsTimeouts;
  retryOrFail(/*shortRetry=*/true);
}

void DcfMac::onAckTimeout() {
  prof::Scope profScope(sched_.profiler(), prof::Category::kMac, id_);
  pendingEvent_ = sim::kInvalidEvent;
  if (state_ != State::kAwaitAck) return;
  if (metrics_) ++metrics_->ackTimeouts;
  retryOrFail(/*shortRetry=*/false);
}

void DcfMac::retryOrFail(bool shortRetry) {
  int& counter = shortRetry ? shortRetries_ : longRetries_;
  const int limit = shortRetry ? cfg_.shortRetryLimit : cfg_.longRetryLimit;
  ++counter;
  if (counter >= limit) {
    finishCurrent(false);
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, cfg_.cwMax);
  beginContention();
}

void DcfMac::finishCurrent(bool success) {
  sched_.cancel(pendingEvent_);
  pendingEvent_ = sim::kInvalidEvent;
  assert(!queue_.empty());
  QueuedPacket done = std::move(queue_.front());
  queue_.pop_front();
  state_ = State::kIdle;
  cw_ = cfg_.cwMin;
  shortRetries_ = 0;
  longRetries_ = 0;
  // Callbacks may enqueue new packets or purge the queue; run them with the
  // MAC in a consistent idle state.
  if (done.nextHop != net::kBroadcast) {
    if (success) {
      if (handlers_.sendOk) handlers_.sendOk(done.packet, done.nextHop);
    } else {
      if (handlers_.sendFailed) {
        handlers_.sendFailed(done.packet, done.nextHop);
      }
    }
  }
  startAccessIfIdle();
}

void DcfMac::countFrameTx(const Frame& f) {
  if (!metrics_) return;
  switch (f.type) {
    case FrameType::kRts:
      ++metrics_->rtsTx;
      return;
    case FrameType::kCts:
      ++metrics_->ctsTx;
      return;
    case FrameType::kAck:
      ++metrics_->ackTx;
      return;
    case FrameType::kData:
      break;
  }
  if (!f.packet) return;
  switch (f.packet->kind) {
    case net::PacketKind::kData:
      ++metrics_->dataFrameTx;
      break;
    case net::PacketKind::kRouteRequest:
      ++metrics_->rreqTx;
      break;
    case net::PacketKind::kRouteReply:
      ++metrics_->rrepTx;
      break;
    case net::PacketKind::kRouteError:
      ++metrics_->rerrTx;
      break;
  }
}

}  // namespace manet::mac
