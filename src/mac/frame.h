// MAC-layer frame: what actually travels over the radio channel.
#pragma once

#include <cstdint>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace manet::mac {

enum class FrameType : std::uint8_t { kRts, kCts, kData, kAck };

const char* toString(FrameType t);

struct Frame {
  FrameType type = FrameType::kData;
  net::NodeId src = 0;                 // transmitter
  net::NodeId dst = net::kBroadcast;   // intended receiver
  /// NAV value: how long the medium stays reserved after this frame ends.
  sim::Time duration;
  std::uint32_t seq = 0;   // per-transmitter sequence, for dup detection
  bool retry = false;      // MAC-level retransmission flag
  net::PacketPtr packet;   // payload; only kData frames carry one

  /// Size on the air, including MAC header and PHY preamble-equivalent
  /// bytes (the channel charges transmission time from this).
  std::uint32_t bytes() const;
};

/// Frame-size constants (bytes), modeled on IEEE 802.11 over 2 Mb/s
/// WaveLAN. PLCP preamble time is charged separately by the channel.
inline constexpr std::uint32_t kRtsBytes = 20;
inline constexpr std::uint32_t kCtsBytes = 14;
inline constexpr std::uint32_t kAckBytes = 14;
inline constexpr std::uint32_t kMacDataHeaderBytes = 28;

}  // namespace manet::mac
