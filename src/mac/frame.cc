#include "src/mac/frame.h"

namespace manet::mac {

const char* toString(FrameType t) {
  switch (t) {
    case FrameType::kRts:
      return "RTS";
    case FrameType::kCts:
      return "CTS";
    case FrameType::kData:
      return "DATA";
    case FrameType::kAck:
      return "ACK";
  }
  return "?";
}

std::uint32_t Frame::bytes() const {
  switch (type) {
    case FrameType::kRts:
      return kRtsBytes;
    case FrameType::kCts:
      return kCtsBytes;
    case FrameType::kAck:
      return kAckBytes;
    case FrameType::kData:
      return kMacDataHeaderBytes + (packet ? packet->wireBytes() : 0);
  }
  return 0;
}

}  // namespace manet::mac
