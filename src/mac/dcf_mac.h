// IEEE 802.11 DCF subset: CSMA/CA with RTS/CTS/DATA/ACK, binary exponential
// backoff, NAV virtual carrier sense and bounded retries.
//
// The piece DSR depends on is the *link-layer feedback*: when the retry
// limit is exhausted (no CTS after repeated RTS, or no ACK after data), the
// MAC reports sendFailed(packet, nextHop) to the routing agent — that is how
// DSR learns a link broke. RTS/CTS/ACK transmissions are counted into the
// metrics because the paper's normalized overhead includes MAC control
// packets.
//
// Simplifications vs the full standard (documented in DESIGN.md): no EIFS,
// no fragmentation, no capture effect, and backoff is modeled as a randomized
// deferral after the medium goes idle rather than a pausable slot counter.
// Contention, collisions, exponential backoff and retry-limit failures — the
// behaviours the paper's results rest on — are preserved.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/mac/frame.h"
#include "src/metrics/metrics.h"
#include "src/net/packet.h"
#include "src/phy/radio.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/trace.h"

namespace manet::mac {

struct MacConfig {
  sim::Time slot = sim::Time::micros(20);
  sim::Time sifs = sim::Time::micros(10);
  sim::Time difs = sim::Time::micros(50);
  std::uint32_t cwMin = 31;
  std::uint32_t cwMax = 1023;
  /// Attempts before giving up: RTS attempts (short) / DATA attempts (long).
  int shortRetryLimit = 7;
  int longRetryLimit = 4;
  /// Unicast packets of at least this size use RTS/CTS. ns-2's DSR studies
  /// ran with RTSThreshold = 0, i.e. RTS/CTS for every unicast frame.
  std::uint32_t rtsThresholdBytes = 0;
  std::size_t queueCapacity = 50;  // ns-2 IFQ length
  /// Extra slack allowed when waiting for CTS/ACK beyond SIFS + airtime.
  sim::Time timeoutSlack = sim::Time::micros(40);
};

/// One entry of the interface queue.
struct QueuedPacket {
  net::PacketPtr packet;
  net::NodeId nextHop = net::kBroadcast;
  bool priority = false;
  std::uint32_t seq = 0;  // MAC sequence for duplicate detection
};

class DcfMac {
 public:
  struct Handlers {
    /// Intact frame addressed to this node (or broadcast).
    std::function<void(net::PacketPtr, net::NodeId from)> receive;
    /// Overheard data frame not addressed to this node (promiscuous mode).
    std::function<void(const Frame&)> promiscuousTap;
    /// Retry limit exhausted: the link to nextHop is considered broken.
    std::function<void(net::PacketPtr, net::NodeId nextHop)> sendFailed;
    /// Unicast acknowledged end-to-end at this hop.
    std::function<void(net::PacketPtr, net::NodeId nextHop)> sendOk;
  };

  DcfMac(net::NodeId id, phy::Radio& radio, sim::Scheduler& sched,
         sim::Rng rng, const MacConfig& cfg, metrics::Metrics* metrics,
         telemetry::Tracer* tracer = nullptr);

  void setHandlers(Handlers h) { handlers_ = std::move(h); }

  /// Enqueue a packet for transmission to `nextHop` (kBroadcast for
  /// link-layer broadcast). `priority` packets (routing control) jump ahead
  /// of buffered data, as in ns-2's CMUPriQueue.
  void send(net::PacketPtr pkt, net::NodeId nextHop, bool priority = false);

  /// Remove all queued packets destined to `nextHop` (called by DSR when the
  /// link is known broken) and return them for salvaging.
  std::vector<QueuedPacket> purgeNextHop(net::NodeId nextHop);

  /// Drop the whole queue (fault injection: the node crashed). Every
  /// flushed packet is counted and traced as a `node_down` drop. The
  /// in-flight head of an ongoing exchange is kept; its failure surfaces
  /// through the normal timeout/retry path.
  void flushQueue();

  std::size_t queueLength() const { return queue_.size(); }
  net::NodeId id() const { return id_; }

 private:
  enum class State {
    kIdle,       // nothing to send
    kContending, // have a head-of-line packet, waiting for channel access
    kSending,    // transmitting (RTS, DATA, or broadcast)
    kAwaitCts,
    kAwaitAck,
  };

  void startAccessIfIdle();
  void beginContention();
  void scheduleAttempt();
  void attempt();
  void transmitHeadOfLine();
  void sendControl(FrameType type, net::NodeId dst, sim::Time duration);
  void sendDataFrame();
  void onFrame(const Frame& f);
  void onCtsTimeout();
  void onAckTimeout();
  void retryOrFail(bool shortRetry);
  void finishCurrent(bool success);
  void countFrameTx(const Frame& f);

  sim::Time airtime(std::uint32_t bytes) const;
  sim::Time ctsTimeout() const;
  sim::Time ackTimeoutFor(std::uint32_t dataBytes) const;

  net::NodeId id_;
  phy::Radio& radio_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  MacConfig cfg_;
  metrics::Metrics* metrics_;
  telemetry::Tracer* tracer_;
  Handlers handlers_;

  std::deque<QueuedPacket> queue_;
  State state_ = State::kIdle;
  std::uint32_t cw_;
  int shortRetries_ = 0;
  int longRetries_ = 0;
  std::uint32_t backoffSlots_ = 0;
  bool backoffDrawn_ = false;
  sim::Time navUntil_ = sim::Time::zero();
  sim::EventId pendingEvent_ = sim::kInvalidEvent;   // attempt or timeout
  std::uint32_t seqCounter_ = 0;
  /// Duplicate filter: last sequence number delivered upward, per sender.
  std::unordered_map<net::NodeId, std::uint32_t> lastDeliveredSeq_;
};

}  // namespace manet::mac
