// Constant-bit-rate traffic source (the paper's workload).
//
// 25 CBR flows of 512-byte packets; the per-flow packet rate is the offered
// load knob in Fig. 4. Flows start at random times near the beginning of the
// run and stay active to the end.
#pragma once

#include <cstdint>

#include "src/net/routing_agent.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace manet::traffic {

class CbrSource {
 public:
  struct Params {
    net::NodeId dst = 0;
    double packetsPerSecond = 3.0;
    std::uint32_t payloadBytes = 512;
    sim::Time start;
    sim::Time stop = sim::Time::max();
    std::uint32_t flowId = 0;
  };

  CbrSource(net::RoutingAgent& agent, sim::Scheduler& sched,
            const Params& p);
  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  std::uint64_t packetsSent() const { return sent_; }

  /// Fault injection (traffic surge): scale the send rate by `m` from the
  /// next tick on. Multiplier 1 restores the precomputed base interval
  /// exactly, so surge-free runs stay bit-identical.
  void setRateMultiplier(double m) { rateMultiplier_ = m; }
  double rateMultiplier() const { return rateMultiplier_; }

 private:
  void tick();

  net::RoutingAgent& agent_;
  sim::Scheduler& sched_;
  Params params_;
  sim::Time interval_;
  double rateMultiplier_ = 1.0;
  std::uint64_t sent_ = 0;
};

}  // namespace manet::traffic
