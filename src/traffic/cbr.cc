#include "src/traffic/cbr.h"

#include <cassert>

namespace manet::traffic {

CbrSource::CbrSource(net::RoutingAgent& agent, sim::Scheduler& sched,
                     const Params& p)
    : agent_(agent), sched_(sched), params_(p) {
  assert(p.packetsPerSecond > 0.0);
  // manet-lint: allow(float-time): rate -> interval, fixed-op conversion
  interval_ = sim::Time::fromSeconds(1.0 / p.packetsPerSecond);
  sched_.scheduleAt(
      params_.start, [this] { tick(); }, prof::Category::kTraffic);
}

void CbrSource::tick() {
  if (sched_.now() > params_.stop) return;
  agent_.sendData(params_.dst, params_.payloadBytes, params_.flowId, sent_);
  ++sent_;
  const sim::Time next =
      rateMultiplier_ == 1.0
          ? interval_
          // manet-lint: allow(float-time): surge rate -> interval, fixed-op
          : sim::Time::fromSeconds(
                1.0 / (params_.packetsPerSecond * rateMultiplier_));
  sched_.scheduleAfter(
      next, [this] { tick(); }, prof::Category::kTraffic);
}

}  // namespace manet::traffic
