#include "src/phy/channel.h"

#include <algorithm>

#include "src/phy/radio.h"

namespace manet::phy {

sim::Time Channel::transmit(Radio& sender, const mac::Frame& f) {
  const sim::Time now = sched_.now();
  const sim::Time dur = txDuration(f.bytes());
  const sim::Time end = now + dur;
  const Vec2 pos = sender.position();
  const std::uint64_t txId = nextTxId_++;

  prune();
  active_.push_back(ActiveTx{&sender, pos, end});

  for (Radio* r : radios_) {
    if (r == &sender) continue;
    // In-range test uses positions at transmission start. Frames last
    // microseconds; node movement within a frame is negligible (< 1 mm at
    // 20 m/s).
    const double d = distance(pos, r->position());
    if (d > cfg_.rangeMeters) continue;
    sched_.scheduleAt(now + cfg_.propagationDelay,
                      [r, txId, d] { r->rxStart(txId, d); });
    // Copy the frame into the end event: the sender's copy may be reused.
    sched_.scheduleAt(end + cfg_.propagationDelay,
                      [r, txId, f] { r->rxEnd(txId, f); });
  }
  return end;
}

bool Channel::carrierBusy(const Radio& r) const {
  prune();
  const Vec2 pos = r.position();
  for (const ActiveTx& tx : active_) {
    if (tx.sender == &r) return true;  // transmitting ourselves
    if (distance(tx.senderPos, pos) <= cfg_.rangeMeters) return true;
  }
  return false;
}

sim::Time Channel::busyUntil(const Radio& r) const {
  prune();
  sim::Time latest = sched_.now();
  const Vec2 pos = r.position();
  for (const ActiveTx& tx : active_) {
    if (tx.sender != &r && distance(tx.senderPos, pos) > cfg_.rangeMeters) {
      continue;
    }
    latest = std::max(latest, tx.end);
  }
  return latest;
}

void Channel::prune() const {
  const sim::Time now = sched_.now();
  std::erase_if(active_, [now](const ActiveTx& tx) { return tx.end < now; });
}

}  // namespace manet::phy
