#include "src/phy/channel.h"

#include <algorithm>

#include "src/phy/radio.h"

namespace manet::phy {

PhyConfig PhyConfig::fromEnv() { return fromEnv(PhyConfig{}); }

PhyConfig PhyConfig::fromEnv(PhyConfig base) {
  base.neighborIndex = neighborIndexKindFromEnv(base.neighborIndex);
  return base;
}

sim::Time Channel::transmit(Radio& sender, const mac::Frame& f) {
  const sim::Time now = sched_.now();
  const sim::Time dur = txDuration(f.bytes());
  const sim::Time end = now + dur;
  const Vec2 pos = sender.position();
  const std::uint64_t txId = nextTxId_++;

  prune();
  active_.push_back(ActiveTx{&sender, pos, end});

  std::uint32_t inRange = 0;
  // In-range tests use positions at transmission start. Frames last
  // microseconds; node movement within a frame is negligible (< 1 mm at
  // 20 m/s). The index visits receivers in attach (id) order, so delivery
  // ordering — and therefore every downstream tie-break — is identical
  // whichever index implementation is configured.
  index_->forEachInRange(
      pos, cfg_.rangeMeters, now, &sender, [&](Radio& r, double d) {
        if (!blackouts_.empty() && linkBlocked(sender.id(), r.id(), now)) {
          return;
        }
        ++inRange;
        Radio* rp = &r;
        sched_.scheduleAt(
            now + cfg_.propagationDelay,
            [rp, txId, d] { rp->rxStart(txId, d); }, prof::Category::kPhy);
        // Copy the frame into the end event: the sender's copy may be
        // reused.
        sched_.scheduleAt(
            end + cfg_.propagationDelay, [rp, txId, f] { rp->rxEnd(txId, f); },
            prof::Category::kPhy);
      });
  // Fan-out tally: how many radios this broadcast had to examine versus how
  // many could actually hear it — the O(N) waste the grid index reclaims.
  if (prof::Profiler* p = sched_.profiler()) {
    p->recordFanout(static_cast<std::uint32_t>(index_->lastExamined()),
                    inRange);
  }
  return end;
}

bool Channel::carrierBusy(const Radio& r) const {
  prune();
  const sim::Time now = sched_.now();
  const Vec2 pos = r.position();
  for (const ActiveTx& tx : active_) {
    if (tx.sender == &r) return true;  // transmitting ourselves
    if (distance(tx.senderPos, pos) > cfg_.rangeMeters) continue;
    // A blacked-out link is inaudible to carrier sense too — jamming blinds
    // the receiver, it does not politely defer it.
    if (!blackouts_.empty() && linkBlocked(tx.sender->id(), r.id(), now)) {
      continue;
    }
    return true;
  }
  return false;
}

sim::Time Channel::busyUntil(const Radio& r) const {
  prune();
  const sim::Time now = sched_.now();
  sim::Time latest = now;
  const Vec2 pos = r.position();
  for (const ActiveTx& tx : active_) {
    if (tx.sender != &r) {
      if (distance(tx.senderPos, pos) > cfg_.rangeMeters) continue;
      if (!blackouts_.empty() && linkBlocked(tx.sender->id(), r.id(), now)) {
        continue;
      }
    }
    latest = std::max(latest, tx.end);
  }
  return latest;
}

void Channel::addLinkBlackout(net::NodeId from, net::NodeId to,
                              sim::Time start, sim::Time end) {
  blackouts_.push_back(Blackout{from, to, start, end});
}

bool Channel::linkBlocked(net::NodeId from, net::NodeId to,
                          sim::Time t) const {
  std::erase_if(blackouts_, [t](const Blackout& b) { return b.end <= t; });
  for (const Blackout& b : blackouts_) {
    if (b.from == from && b.to == to && b.start <= t) return true;
  }
  return false;
}

void Channel::prune() const {
  const sim::Time now = sched_.now();
  std::erase_if(active_, [now](const ActiveTx& tx) { return tx.end < now; });
}

}  // namespace manet::phy
