// A node's half-duplex radio: tracks overlapping receptions to detect
// collisions and delivers intact frames to the MAC.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mac/frame.h"
#include "src/mobility/mobility_model.h"
#include "src/net/packet.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::phy {

class Channel;

class Radio {
 public:
  /// Handler for frames that arrive intact (no collision, not while
  /// transmitting). The MAC filters by destination address.
  using RxHandler = std::function<void(const mac::Frame&)>;

  Radio(net::NodeId id, const mobility::MobilityModel& mobility,
        Channel& channel, sim::Scheduler& sched);

  net::NodeId id() const { return id_; }
  Vec2 position() const;
  /// position() without the per-entity mobility profiler scope: the
  /// NeighborIndex hot loops evaluate dozens of candidate positions per
  /// transmission, where a scope per call (two clock reads) would dominate
  /// the loop. Attribution for these stays with the querying event's
  /// category; all other callers use position().
  Vec2 positionQuiet() const;
  /// The trajectory this radio rides on (NeighborIndex evaluates it for
  /// arbitrary-time oracle queries).
  const mobility::MobilityModel& mobility() const { return mobility_; }

  void setReceiveHandler(RxHandler h) { rxHandler_ = std::move(h); }

  /// Transmit a frame (MAC must ensure we are not already transmitting).
  /// Returns the time the transmission ends.
  sim::Time startTx(const mac::Frame& f);

  bool transmitting() const;
  /// Carrier sense including our own transmission.
  bool carrierBusy() const;
  sim::Time busyUntil() const;
  /// Airtime for `bytes` on this radio's channel (PHY overhead included).
  sim::Time airtime(std::uint32_t bytes) const;

  // --- fault injection (src/fault/) ---
  /// Power the radio down/up. While down, nothing is put on the air
  /// (startTx burns the airtime silently, so MAC timeouts fire naturally)
  /// and nothing is received; going down also kills in-flight receptions.
  void setUp(bool up);
  bool up() const { return up_; }
  /// Corrupt each otherwise-intact reception with probability `corruptProb`
  /// (draws from `rng`, which must outlive the setting). Probability 0
  /// disables the draw entirely — the default costs one comparison.
  void setNoise(double corruptProb, sim::Rng* rng) {
    noiseProb_ = corruptProb;
    noiseRng_ = rng;
  }

  // --- called by Channel ---
  /// `senderDistance` is the transmitter's distance at tx start, used for
  /// the capture-effect power comparison.
  void rxStart(std::uint64_t txId, double senderDistance);
  void rxEnd(std::uint64_t txId, const mac::Frame& f);

  // --- introspection for tests ---
  std::uint64_t framesDelivered() const { return framesDelivered_; }
  std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  std::uint64_t framesNoiseCorrupted() const { return framesNoiseCorrupted_; }

 private:
  struct OngoingRx {
    std::uint64_t txId;
    bool corrupt;
    double senderDistance;
  };

  net::NodeId id_;
  const mobility::MobilityModel& mobility_;
  Channel& channel_;
  sim::Scheduler& sched_;
  RxHandler rxHandler_;
  sim::Time txEnd_ = sim::Time::zero();
  std::vector<OngoingRx> ongoing_;
  bool up_ = true;
  double noiseProb_ = 0.0;
  sim::Rng* noiseRng_ = nullptr;
  std::uint64_t framesDelivered_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t framesNoiseCorrupted_ = 0;
};

}  // namespace manet::phy
