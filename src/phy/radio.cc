#include "src/phy/radio.h"

#include <algorithm>
#include <cmath>

#include "src/phy/channel.h"

namespace manet::phy {

Radio::Radio(net::NodeId id, const mobility::MobilityModel& mobility,
             Channel& channel, sim::Scheduler& sched)
    : id_(id), mobility_(mobility), channel_(channel), sched_(sched) {
  channel_.attach(this);
}

Vec2 Radio::position() const {
  // Position queries dominate channel work; attribute the waypoint
  // evaluation to mobility rather than the PHY/MAC event that needed it,
  // and to this node's per-entity row.
  prof::Scope profScope(sched_.profiler(), prof::Category::kMobility,
                        static_cast<std::uint32_t>(id_));
  return mobility_.positionAt(sched_.now());
}

Vec2 Radio::positionQuiet() const { return mobility_.positionAt(sched_.now()); }

sim::Time Radio::startTx(const mac::Frame& f) {
  // Crashed radio: nothing reaches the air. Burn the airtime anyway so the
  // MAC's state machine proceeds into its CTS/ACK timeout paths — that is
  // how neighbors' and our own routing layers learn the "link" is dead.
  if (!up_) {
    txEnd_ = sched_.now() + channel_.txDuration(f.bytes());
    return txEnd_;
  }
  // Half duplex: anything we were receiving is lost.
  for (OngoingRx& rx : ongoing_) rx.corrupt = true;
  txEnd_ = channel_.transmit(*this, f);
  return txEnd_;
}

void Radio::setUp(bool up) {
  if (up_ == up) return;
  up_ = up;
  // Going down kills in-flight receptions; their rxEnd events find no entry
  // and are ignored (also covers receptions spanning the recovery instant).
  if (!up_) ongoing_.clear();
}

bool Radio::transmitting() const { return sched_.now() < txEnd_; }

bool Radio::carrierBusy() const { return channel_.carrierBusy(*this); }

sim::Time Radio::busyUntil() const { return channel_.busyUntil(*this); }

sim::Time Radio::airtime(std::uint32_t bytes) const {
  return channel_.txDuration(bytes);
}

void Radio::rxStart(std::uint64_t txId, double senderDistance) {
  if (!up_) return;  // crashed: deaf
  prof::Scope profScope(sched_.profiler(), prof::Category::kPhy,
                        static_cast<std::uint32_t>(id_));
  // Frames-heard tally: every in-range arrival at a live radio, delivered
  // or not — the per-node measure of broadcast pressure.
  if (prof::Profiler* p = sched_.profiler()) {
    p->countFrameHeard(static_cast<std::uint32_t>(id_));
  }
  // Receiving while transmitting always fails (half duplex).
  if (transmitting()) {
    ongoing_.push_back(OngoingRx{txId, true, senderDistance});
    return;
  }
  // Capture effect (as in the CMU ns-2 PHY): an ongoing reception survives
  // an overlapping arrival that is `captureThreshold` times weaker; the
  // weaker arrival is absorbed as noise. Otherwise both frames are lost.
  const phy::PhyConfig& cfg = channel_.config();
  bool newCorrupt = false;
  for (OngoingRx& rx : ongoing_) {
    if (cfg.captureEffect && !rx.corrupt) {
      // power ~ d^-k  =>  p_rx / p_new = (d_new / d_rx)^k
      const double ratio = std::pow(senderDistance / rx.senderDistance,
                                    cfg.pathLossExponent);
      if (ratio >= cfg.captureThreshold) {
        newCorrupt = true;  // existing reception captures; new one is noise
        continue;
      }
    }
    rx.corrupt = true;
    newCorrupt = true;
  }
  ongoing_.push_back(OngoingRx{txId, newCorrupt, senderDistance});
}

void Radio::rxEnd(std::uint64_t txId, const mac::Frame& f) {
  prof::Scope profScope(sched_.profiler(), prof::Category::kPhy,
                        static_cast<std::uint32_t>(id_));
  auto it = std::find_if(ongoing_.begin(), ongoing_.end(),
                         [txId](const OngoingRx& rx) {
                           return rx.txId == txId;
                         });
  if (it == ongoing_.end()) return;  // shouldn't happen
  // Transmitting at any point during the reception corrupts it; check again
  // at the end (we may have started transmitting mid-reception).
  const bool corrupt = it->corrupt || transmitting();
  ongoing_.erase(it);
  if (corrupt) {
    ++framesCorrupted_;
    return;
  }
  // Injected channel noise (fault layer): an otherwise-intact frame is lost
  // with noiseProb_. Zero probability (the default) draws nothing, keeping
  // no-fault runs bit-identical.
  if (noiseProb_ > 0.0 && noiseRng_ != nullptr &&
      noiseRng_->bernoulli(noiseProb_)) {
    ++framesNoiseCorrupted_;
    return;
  }
  ++framesDelivered_;
  if (rxHandler_) rxHandler_(f);
}

}  // namespace manet::phy
