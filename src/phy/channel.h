// Shared wireless channel with a disc propagation model.
//
// Models the paper's WaveLAN radio: 2 Mb/s shared medium, 250 m nominal
// range. Every transmission is heard by all radios within range of the
// transmitter's position at transmission start; overlapping receptions at a
// radio corrupt each other (receiver-side collision), which is what makes
// hidden terminals, request storms and congestion behave realistically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mac/frame.h"
#include "src/net/packet.h"
#include "src/phy/neighbor_index.h"
#include "src/sim/scheduler.h"
#include "src/util/vec2.h"

namespace manet::phy {

struct PhyConfig {
  double rangeMeters = 250.0;   // nominal WaveLAN range
  double bitRateBps = 2e6;      // nominal WaveLAN bit rate
  /// Fixed per-frame physical-layer overhead (PLCP preamble + header time).
  sim::Time phyOverhead = sim::Time::micros(192);
  /// Propagation delay; 250 m at light speed is ~0.83 us.
  sim::Time propagationDelay = sim::Time::micros(1);
  /// Capture effect, as in the CMU ns-2 wireless PHY: an ongoing reception
  /// survives an overlapping arrival whose power is `captureThreshold`
  /// times weaker (power falls off as distance^-pathLossExponent).
  bool captureEffect = true;
  double captureThreshold = 10.0;  // ns-2 CPThresh
  double pathLossExponent = 4.0;   // two-ray ground regime at these ranges

  /// Which neighbor index the channel delivers broadcasts through. Both
  /// kinds produce byte-identical runs (the grid confirms candidates with
  /// exact distance checks and visits them in scan order); the grid makes
  /// per-frame delivery O(in-range) instead of O(N).
  NeighborIndexKind neighborIndex = NeighborIndexKind::kGrid;
  /// Fastest node movement the grid plans for (m/s). Scenario raises it to
  /// the configured maxSpeed automatically; raise it manually when driving
  /// Network directly with faster custom mobility.
  double indexSpeedBound = 50.0;
  /// How stale grid buckets may get before a query triggers a re-bucket.
  sim::Time indexRefreshPeriod = sim::Time::seconds(1);

  /// `base` with the MANET_PHY_INDEX (scan|grid) override applied.
  static PhyConfig fromEnv();
  static PhyConfig fromEnv(PhyConfig base);
};

class Radio;

class Channel {
 public:
  Channel(sim::Scheduler& sched, PhyConfig cfg)
      : sched_(sched),
        cfg_(cfg),
        index_(makeNeighborIndex(cfg.neighborIndex, sched, cfg.rangeMeters,
                                 cfg.indexSpeedBound,
                                 cfg.indexRefreshPeriod)) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Register a radio. The pointer must outlive the channel's use.
  void attach(Radio* r) { index_->attach(r); }

  /// The spatial index every neighbor query goes through — transmission
  /// delivery here, ground-truth link checks in metrics::LinkOracle,
  /// radio-wide sweeps in fault::FaultInjector.
  NeighborIndex& neighborIndex() { return *index_; }
  const NeighborIndex& neighborIndex() const { return *index_; }

  /// Begin transmitting `f` from `sender`; schedules reception start/end at
  /// every radio in range. Returns when the transmission will end.
  sim::Time transmit(Radio& sender, const mac::Frame& f);

  /// Carrier sense for `r`: true if any ongoing transmission (including its
  /// own) is audible at `r` right now.
  bool carrierBusy(const Radio& r) const;

  /// Latest end time among transmissions currently audible at `r`
  /// (now() if the medium is free). MAC uses this to re-defer.
  sim::Time busyUntil(const Radio& r) const;

  /// Airtime for a frame of `bytes` bytes, including PHY overhead.
  sim::Time txDuration(std::uint32_t bytes) const {
    return cfg_.phyOverhead +
           // manet-lint: allow(float-time): airtime from a constant bit rate;
           // fixed-op, same inputs -> same duration on every host.
           sim::Time::fromSeconds(static_cast<double>(bytes) * 8.0 /
                                  cfg_.bitRateBps);
  }

  const PhyConfig& config() const { return cfg_; }
  sim::Scheduler& scheduler() { return sched_; }

  // --- fault injection (src/fault/) ---
  /// Block the directed link from->to during [start, end): the receiver
  /// neither receives frames from, nor carrier-senses, that transmitter.
  /// Registering only one direction models an asymmetric link. Expired
  /// windows are pruned lazily; with none registered the cost is one
  /// empty-vector check per receiver.
  void addLinkBlackout(net::NodeId from, net::NodeId to, sim::Time start,
                       sim::Time end);
  /// True if from->to is inside an active blackout window at `t`.
  bool linkBlocked(net::NodeId from, net::NodeId to, sim::Time t) const;

 private:
  struct ActiveTx {
    const Radio* sender;
    Vec2 senderPos;
    sim::Time end;
  };

  struct Blackout {
    net::NodeId from;
    net::NodeId to;
    sim::Time start;
    sim::Time end;
  };

  void prune() const;

  sim::Scheduler& sched_;
  PhyConfig cfg_;
  std::unique_ptr<NeighborIndex> index_;
  mutable std::vector<ActiveTx> active_;
  mutable std::vector<Blackout> blackouts_;
  std::uint64_t nextTxId_ = 1;
};

}  // namespace manet::phy
