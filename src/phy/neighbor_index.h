// Spatial neighbor queries over the registered radios.
//
// The channel is a shared broadcast medium: every transmission must reach
// exactly the radios within range of the transmitter. Doing that by scanning
// every radio is O(N) per frame — the dominant cost on large scenarios (the
// PR 8 fan-out histogram exists to show precisely this waste). NeighborIndex
// is the seam that makes the fast implementation a swappable drop-in:
//
//   * ScanNeighborIndex — the original full scan; zero bookkeeping, exact.
//   * GridNeighborIndex — a uniform grid of cells sized so that only a
//     radio bucketed in the 3x3 cell block around a query point can possibly
//     be in range. Node positions are continuous functions of time, so the
//     grid re-buckets lazily (amortized over queries) and pads its search
//     radius by the worst-case movement since the last refresh; candidates
//     are then confirmed with an exact distance check. The candidate set is
//     therefore always a superset of the true in-range set, and the visit
//     order (ascending attach order) matches the full scan — so the two
//     implementations deliver *identical* frame sets in identical order and
//     runs stay byte-identical whichever index is selected.
//
// Consumers beyond Channel::transmit (the link oracle's ground-truth checks,
// the fault injector's radio-wide sweeps and neighbor-aware blackout
// targeting, Network::positionOf) use the same query API instead of reaching
// into radio lists directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/scheduler.h"
#include "src/util/vec2.h"

namespace manet::phy {

class Radio;

/// Non-owning callable reference used on the per-transmission visit path.
/// Two words, never allocates: a std::function built from a capturing
/// lambda would heap-allocate on every Channel::transmit. The referenced
/// callable must outlive the forEachInRange call (trivially true for the
/// inline lambdas at every call site).
class RadioVisitor {
 public:
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, RadioVisitor>>>
  // NOLINTNEXTLINE(google-explicit-constructor): call-site lambdas convert
  RadioVisitor(F&& f)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* o, Radio& r, double d) {
          (*static_cast<std::remove_reference_t<F>*>(o))(r, d);
        }) {}

  void operator()(Radio& r, double d) const { call_(obj_, r, d); }

 private:
  void* obj_;
  void (*call_)(void*, Radio&, double);
};

/// Which NeighborIndex implementation a channel builds.
enum class NeighborIndexKind : std::uint8_t { kScan, kGrid };

const char* toString(NeighborIndexKind k);
/// Parse "scan" / "grid"; anything else returns `fallback`.
NeighborIndexKind neighborIndexKindFromString(const char* s,
                                              NeighborIndexKind fallback);
/// MANET_PHY_INDEX environment override (scan|grid), else `fallback`.
NeighborIndexKind neighborIndexKindFromEnv(NeighborIndexKind fallback);

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  /// Register a radio (non-owning; must outlive the index). Radios are
  /// visited in attach order by every enumeration below; Network attaches
  /// in node-id order, so attach order == id order in a simulation.
  virtual void attach(Radio* r) = 0;

  /// Visit every attached radio (except `exclude`, which may be null) whose
  /// current position is within `range` meters of `pos`, in attach order.
  /// `now` must be the scheduler's current time. `fn` receives the radio and
  /// its exact distance from `pos`.
  virtual void forEachInRange(const Vec2& pos, double range, sim::Time now,
                              const Radio* exclude,
                              RadioVisitor fn) const = 0;

  /// Radios whose (possibly stale) indexed position the previous
  /// forEachInRange call had to examine — the fan-out histogram's
  /// "examined" input. A full scan examines everyone but the excluded
  /// sender; the grid examines only the candidate cells.
  virtual std::size_t lastExamined() const = 0;

  /// Visit every attached radio in attach order (fault sweeps, tests).
  virtual void forEachRadio(const std::function<void(Radio&)>& fn) const = 0;

  virtual std::size_t size() const = 0;
  virtual const char* name() const = 0;

  // --- exact queries (measurement paths; no spatial acceleration) ---

  /// Position of radio `id` at an arbitrary sim time, evaluated directly
  /// from its trajectory (charged to the mobility category like every other
  /// position query). `id` must be attached.
  Vec2 positionAt(net::NodeId id, sim::Time t) const;

  /// True if radios `a` and `b` are within `range` meters of each other at
  /// time `t`. Exact: evaluates both trajectories at `t`.
  bool inRangeAt(net::NodeId a, net::NodeId b, sim::Time t,
                 double range) const;

 protected:
  explicit NeighborIndex(sim::Scheduler& sched) : sched_(sched) {}

  /// Shared id -> radio map for the exact queries; implementations call
  /// this from attach().
  void registerId(Radio* r);

  sim::Scheduler& sched_;

 private:
  std::unordered_map<net::NodeId, Radio*> byId_;
};

/// The original O(N) full scan. Reference implementation and the byte-compare
/// partner for GridNeighborIndex.
class ScanNeighborIndex final : public NeighborIndex {
 public:
  explicit ScanNeighborIndex(sim::Scheduler& sched) : NeighborIndex(sched) {}

  void attach(Radio* r) override;
  void forEachInRange(const Vec2& pos, double range, sim::Time now,
                      const Radio* exclude, RadioVisitor fn) const override;
  std::size_t lastExamined() const override { return lastExamined_; }
  void forEachRadio(const std::function<void(Radio&)>& fn) const override;
  std::size_t size() const override { return radios_.size(); }
  const char* name() const override { return "scan"; }

 private:
  std::vector<Radio*> radios_;
  mutable std::size_t lastExamined_ = 0;
};

/// Uniform-grid spatial index keyed to the fixed transmission disc.
///
/// Cell size = range + speedBound * refreshPeriod, so after a refresh no
/// radio can drift out of the 3x3 cell block around a query point before the
/// next refresh is due. Queries lazily trigger a full re-bucket when the
/// last one is older than `refreshPeriod` (O(N), amortized over the many
/// queries between refreshes) and pad the candidate search radius by the
/// worst-case drift since then. Purely passive: never schedules events,
/// never draws randomness — selecting it cannot perturb a run.
class GridNeighborIndex final : public NeighborIndex {
 public:
  /// `speedBound` is the fastest any node may move (m/s); `refreshPeriod`
  /// bounds bucket staleness. The defaults in PhyConfig cover the paper's
  /// scenarios with a wide margin; Scenario raises the bound automatically
  /// when a config's maxSpeed exceeds it.
  GridNeighborIndex(sim::Scheduler& sched, double cellRange,
                    double speedBound, sim::Time refreshPeriod);

  void attach(Radio* r) override;
  void forEachInRange(const Vec2& pos, double range, sim::Time now,
                      const Radio* exclude, RadioVisitor fn) const override;
  std::size_t lastExamined() const override { return lastExamined_; }
  void forEachRadio(const std::function<void(Radio&)>& fn) const override;
  std::size_t size() const override { return slots_.size(); }
  const char* name() const override { return "grid"; }

  /// Test hook: number of full re-buckets performed so far.
  std::uint64_t refreshCount() const { return refreshes_; }

 private:
  struct Slot {
    Radio* radio;
    std::uint64_t cell;  // key of the bucket currently holding this slot
  };

  static std::uint64_t cellKey(const Vec2& p, double cellSize);
  void refresh(sim::Time now) const;

  double cellSize_;
  double speedBound_;
  sim::Time refreshPeriod_;
  // Lazily maintained spatial state (const queries refresh it; the same
  // mutable-cache idiom as Channel::prune).
  mutable std::vector<Slot> slots_;  // by attach order
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
      cells_;  // cell key -> slot indices (each vector kept sorted ascending)
  mutable sim::Time lastRefresh_ = sim::Time::zero();
  mutable bool everRefreshed_ = false;
  mutable std::size_t lastExamined_ = 0;
  mutable std::vector<std::uint32_t> scratch_;  // candidate slot indices
  mutable std::uint64_t refreshes_ = 0;
};

/// Build the index selected by `kind`. `rangeMeters`, `speedBound` and
/// `refreshPeriod` parameterize the grid; the scan ignores them.
std::unique_ptr<NeighborIndex> makeNeighborIndex(NeighborIndexKind kind,
                                                 sim::Scheduler& sched,
                                                 double rangeMeters,
                                                 double speedBound,
                                                 sim::Time refreshPeriod);

}  // namespace manet::phy
