#include "src/phy/neighbor_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/phy/radio.h"
#include "src/prof/profiler.h"

namespace manet::phy {

const char* toString(NeighborIndexKind k) {
  switch (k) {
    case NeighborIndexKind::kScan:
      return "scan";
    case NeighborIndexKind::kGrid:
      return "grid";
  }
  return "?";
}

NeighborIndexKind neighborIndexKindFromString(const char* s,
                                              NeighborIndexKind fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "scan") == 0) return NeighborIndexKind::kScan;
  if (std::strcmp(s, "grid") == 0) return NeighborIndexKind::kGrid;
  return fallback;
}

NeighborIndexKind neighborIndexKindFromEnv(NeighborIndexKind fallback) {
  const char* v = std::getenv("MANET_PHY_INDEX");  // NOLINT(concurrency-mt-unsafe)
  return neighborIndexKindFromString(v, fallback);
}

// ------------------------------------------------------------ base class

void NeighborIndex::registerId(Radio* r) { byId_[r->id()] = r; }

Vec2 NeighborIndex::positionAt(net::NodeId id, sim::Time t) const {
  const Radio* r = byId_.at(id);
  // Trajectory evaluation is mobility work wherever it runs; charge it to
  // the queried node's per-entity row like every other position query.
  prof::Scope profScope(sched_.profiler(), prof::Category::kMobility,
                        static_cast<std::uint32_t>(id));
  return r->mobility().positionAt(t);
}

bool NeighborIndex::inRangeAt(net::NodeId a, net::NodeId b, sim::Time t,
                              double range) const {
  return distance(positionAt(a, t), positionAt(b, t)) <= range;
}

// ------------------------------------------------------------ full scan

void ScanNeighborIndex::attach(Radio* r) {
  registerId(r);
  radios_.push_back(r);
}

void ScanNeighborIndex::forEachInRange(const Vec2& pos, double range,
                                       sim::Time /*now*/,
                                       const Radio* exclude,
                                       RadioVisitor fn) const {
  std::size_t examined = 0;
  for (Radio* r : radios_) {
    if (r == exclude) continue;
    ++examined;
    const double d = distance(pos, r->positionQuiet());
    if (d > range) continue;
    fn(*r, d);
  }
  lastExamined_ = examined;
}

void ScanNeighborIndex::forEachRadio(
    const std::function<void(Radio&)>& fn) const {
  for (Radio* r : radios_) fn(*r);
}

// ------------------------------------------------------------ uniform grid

GridNeighborIndex::GridNeighborIndex(sim::Scheduler& sched, double cellRange,
                                     double speedBound,
                                     sim::Time refreshPeriod)
    : NeighborIndex(sched),
      // Cell size covers the query disc plus the worst drift between two
      // refreshes, so a 3x3 cell block around any query point always holds
      // every possible receiver.
      cellSize_(cellRange + speedBound * refreshPeriod.toSeconds()),
      speedBound_(speedBound),
      refreshPeriod_(refreshPeriod) {}

std::uint64_t GridNeighborIndex::cellKey(const Vec2& p, double cellSize) {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cellSize));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cellSize));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

void GridNeighborIndex::attach(Radio* r) {
  registerId(r);
  const auto idx = static_cast<std::uint32_t>(slots_.size());
  const std::uint64_t key = cellKey(r->positionQuiet(), cellSize_);
  slots_.push_back(Slot{r, key});
  // Attach order is ascending, so push_back keeps each bucket sorted.
  cells_[key].push_back(idx);
}

void GridNeighborIndex::refresh(sim::Time now) const {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    const std::uint64_t key = cellKey(s.radio->positionQuiet(), cellSize_);
    if (key == s.cell) continue;
    std::vector<std::uint32_t>& old = cells_[s.cell];
    old.erase(std::find(old.begin(), old.end(), i));
    std::vector<std::uint32_t>& fresh = cells_[key];
    fresh.insert(std::lower_bound(fresh.begin(), fresh.end(), i), i);
    s.cell = key;
  }
  lastRefresh_ = now;
  ++refreshes_;
}

void GridNeighborIndex::forEachInRange(const Vec2& pos, double range,
                                       sim::Time now, const Radio* exclude,
                                       RadioVisitor fn) const {
  if (now - lastRefresh_ >= refreshPeriod_) refresh(now);
  // A radio in range *now* was bucketed at most `slack` meters away from its
  // current position, so searching the cells within `range + slack` of the
  // query point yields a guaranteed superset of the true receiver set.
  const double slack = speedBound_ * (now - lastRefresh_).toSeconds();
  const double reach = range + slack;

  scratch_.clear();
  const auto cx0 = static_cast<std::int64_t>(std::floor((pos.x - reach) /
                                                        cellSize_));
  const auto cx1 = static_cast<std::int64_t>(std::floor((pos.x + reach) /
                                                        cellSize_));
  const auto cy0 = static_cast<std::int64_t>(std::floor((pos.y - reach) /
                                                        cellSize_));
  const auto cy1 = static_cast<std::int64_t>(std::floor((pos.y + reach) /
                                                        cellSize_));
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
      const auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      scratch_.insert(scratch_.end(), it->second.begin(), it->second.end());
    }
  }
  // Buckets are individually sorted but interleave across cells; restore
  // global attach order so grid and scan visit receivers identically.
  std::sort(scratch_.begin(), scratch_.end());

  std::size_t examined = 0;
  for (const std::uint32_t idx : scratch_) {
    Radio& r = *slots_[idx].radio;
    if (&r == exclude) continue;
    ++examined;
    const double d = distance(pos, r.positionQuiet());
    if (d > range) continue;
    fn(r, d);
  }
  lastExamined_ = examined;
}

void GridNeighborIndex::forEachRadio(
    const std::function<void(Radio&)>& fn) const {
  for (const Slot& s : slots_) fn(*s.radio);
}

// ------------------------------------------------------------ factory

std::unique_ptr<NeighborIndex> makeNeighborIndex(NeighborIndexKind kind,
                                                 sim::Scheduler& sched,
                                                 double rangeMeters,
                                                 double speedBound,
                                                 sim::Time refreshPeriod) {
  if (kind == NeighborIndexKind::kGrid) {
    return std::make_unique<GridNeighborIndex>(sched, rangeMeters, speedBound,
                                               refreshPeriod);
  }
  return std::make_unique<ScanNeighborIndex>(sched);
}

}  // namespace manet::phy
