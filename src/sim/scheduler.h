// Discrete-event scheduler: the heart of the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace manet::sim {

/// Handle for a scheduled event, usable with Scheduler::cancel.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling (FIFO) order, which keeps
/// runs deterministic. Cancellation is lazy: cancelled ids are skipped when
/// they reach the head of the queue.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Valid inside and outside event handlers.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId scheduleAt(Time at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now().
  EventId scheduleAfter(Time delay, std::function<void()> fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Safe to call with an already-fired or invalid id.
  void cancel(EventId id);

  /// Run events until the queue is empty or simulated time exceeds `until`.
  /// Events scheduled exactly at `until` still run.
  void runUntil(Time until);

  /// Run all remaining events.
  void run() { runUntil(Time::max()); }

  /// Number of events executed so far (for microbenchmarks / sanity checks).
  std::uint64_t executedCount() const { return executed_; }
  std::size_t pendingCount() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among ties
    }
  };

  Time now_ = Time::zero();
  EventId nextId_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace manet::sim
