// Discrete-event scheduler: the heart of the simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/prof/profiler.h"
#include "src/sim/event_fn.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace manet::sim {

/// Handle for a scheduled event, usable with Scheduler::cancel.
/// (EventId itself is declared in event_queue.h next to EventEntry.)
inline constexpr EventId kInvalidEvent = 0;

/// One dispatched handler, captured for timeline export: when it ran in
/// simulated time, what it cost in wall time, and which category it was
/// scheduled under. Wall fields are zero when no profiler is attached
/// (capture still records order and categories).
struct DispatchSpan {
  Time at;                        // simulated time of the dispatch
  std::uint64_t seq = 0;          // 1-based dispatch index (executed count)
  std::uint64_t wallStartNs = 0;  // profiler clock at handler entry
  std::uint64_t wallDurNs = 0;    // handler wall-clock cost
  prof::Category cat = prof::Category::kOther;
};

/// Single-threaded discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling (FIFO) order, which keeps
/// runs deterministic. The pending set lives behind the EventQueue
/// interface (binary heap or calendar queue, chosen at construction); both
/// implementations dispatch in identical (time, id) order, so the choice
/// is a pure performance knob. Cancellation is lazy: cancelled entries are
/// skipped when they reach the head of the queue. Event status is tracked
/// in a dense per-id window (ids are assigned sequentially and retired
/// roughly in order), so cancelling an already-fired id is a true no-op
/// and pendingCount() stays exact.
class Scheduler {
 public:
  /// A bare scheduler defaults to the tuning-free binary heap; Scenario
  /// runs select the calendar queue (see ScenarioConfig::eventQueue).
  explicit Scheduler(EventQueueKind queue = EventQueueKind::kHeap)
      : queue_(makeEventQueue(queue)) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Valid inside and outside event handlers.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  /// `cat` attributes the handler's wall time when profiling is on.
  EventId scheduleAt(Time at, EventFn fn,
                     prof::Category cat = prof::Category::kOther);

  /// Schedule `fn` to run `delay` after now().
  EventId scheduleAfter(Time delay, EventFn fn,
                        prof::Category cat = prof::Category::kOther) {
    return scheduleAt(now_ + delay, std::move(fn), cat);
  }

  /// Cancel a pending event. Safe to call with an already-fired or invalid id.
  void cancel(EventId id);

  /// Run events until the queue is empty or simulated time exceeds `until`.
  /// Events scheduled exactly at `until` still run.
  void runUntil(Time until);

  /// Run all remaining events.
  void run() { runUntil(Time::max()); }

  // --- introspection (queue-agnostic: identical answers whichever
  //     EventQueue implementation is selected) ---

  /// Number of events executed so far (for microbenchmarks / sanity checks).
  std::uint64_t executedCount() const { return executed_; }
  /// Total handlers dispatched (alias of executedCount; cancelled entries
  /// are popped without dispatching and do not count).
  std::uint64_t totalDispatched() const { return executed_; }
  /// Number of events still queued and not cancelled.
  std::size_t pendingCount() const { return queue_->size() - cancelledLive_; }
  /// Largest raw queue size ever reached (cancelled entries included —
  /// this is the memory high-water mark). Tracked unconditionally.
  std::size_t queueHighWater() const { return queuePeak_; }
  /// Timestamp of the next entry that would dispatch (cancelled entries
  /// included until they are lazily popped), or Time::max() when idle.
  Time nextEventAt();
  /// The selected pending-set implementation ("heap" / "calendar").
  const char* queueName() const { return queue_->name(); }

  /// Attach a profiler (nullable; not owned). When set, each dispatched
  /// event is timed and charged to its scheduling category, and the
  /// profiler's progress heartbeat is driven from the dispatch loop. The
  /// profiler only observes wall time — never sim time or any RNG stream —
  /// so profiled runs stay bit-identical. The profiler's horizon histogram
  /// (recordHorizon) is fed from scheduleAt whichever queue is selected.
  void setProfiler(prof::Profiler* p) { prof_ = p; }
  prof::Profiler* profiler() const { return prof_; }

  /// Pending-entry footprint for the event allocation-site tally (the
  /// calendar queue's buckets and the heap both store EventEntry inline).
  static constexpr std::size_t eventEntryBytes() { return sizeof(EventEntry); }

  /// Keep the most recent `capacity` dispatch spans (0 disables). Purely
  /// observational: the buffer is bounded, reads only the profiler's wall
  /// clock, and nothing in the simulation ever consumes it, so capturing
  /// spans cannot perturb a run.
  void enableSpanCapture(std::size_t capacity);
  bool spanCaptureEnabled() const { return spanCapacity_ > 0; }
  /// Captured spans, oldest retained first.
  std::vector<DispatchSpan> dispatchSpans() const;

 private:
  enum class EvState : std::uint8_t { kPending, kCancelled, kDone };

  /// Status slot for `id`, or nullptr if the id was never issued or its
  /// slot has been retired (the event already fired).
  EvState* stateOf(EventId id);
  /// Mark the popped entry done and retire the leading run of done slots.
  void retire(EventId id);

  Time now_ = Time::zero();
  EventId nextId_ = 1;
  std::uint64_t executed_ = 0;
  std::unique_ptr<EventQueue> queue_;
  /// states_[id - baseId_] for every id not yet retired. The window stays
  /// small because events retire in near-id order; it is trimmed from the
  /// front as soon as the oldest outstanding id fires.
  std::deque<EvState> states_;
  EventId baseId_ = 1;
  /// Entries in queue_ whose state is kCancelled (kept exact so
  /// pendingCount() cannot underflow).
  std::size_t cancelledLive_ = 0;
  std::size_t queuePeak_ = 0;
  prof::Profiler* prof_ = nullptr;
  /// Dispatch-span ring (see enableSpanCapture): fixed capacity, overwrite
  /// oldest. Empty unless capture is enabled.
  std::vector<DispatchSpan> spans_;
  std::size_t spanCapacity_ = 0;
  std::size_t spanHead_ = 0;  // next write position once full

  void recordSpan(const DispatchSpan& s);
};

}  // namespace manet::sim
