#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace manet::sim {

const char* toString(EventQueueKind k) {
  switch (k) {
    case EventQueueKind::kHeap:
      return "heap";
    case EventQueueKind::kCalendar:
      return "calendar";
  }
  return "?";
}

EventQueueKind eventQueueKindFromString(std::string_view s) {
  if (s == "heap") return EventQueueKind::kHeap;
  if (s == "calendar" || s == "cal") return EventQueueKind::kCalendar;
  throw std::invalid_argument("unknown event queue kind '" + std::string(s) +
                              "' (want heap|calendar)");
}

EventQueueKind eventQueueKindFromEnv(EventQueueKind fallback) {
  const char* v = std::getenv("MANET_EVENT_QUEUE");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || v[0] == '\0') return fallback;
  return eventQueueKindFromString(v);
}

namespace {
/// Heap comparator: the entry popped first is the minimum by (at, id).
struct Later {
  bool operator()(const EventEntry& a, const EventEntry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.id > b.id;  // FIFO among equal timestamps
  }
};
}  // namespace

// ------------------------------------------------------- HeapEventQueue

void HeapEventQueue::push(EventEntry e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

const EventEntry* HeapEventQueue::peek() {
  return heap_.empty() ? nullptr : &heap_.front();
}

EventEntry HeapEventQueue::pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  EventEntry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

// --------------------------------------------------- CalendarEventQueue
//
// Invariants (N = kBuckets, w = kBucketWidthNs, abs(e) = e.at.ns() / w):
//  * curBucket_ <= abs(e) for every pending entry e, because curBucket_
//    only ever becomes abs(last popped entry), pops are in (at, id) order,
//    and the Scheduler never schedules into the past.
//  * Every wheel-resident entry has abs(e) < curBucket_ + N (enforced at
//    push and migration time), so each bucket holds entries of exactly one
//    absolute bucket number and the first occupied bucket in circular
//    order from curBucket_ is the one holding the minimum.
//  * Overflow entries have abs(e) >= curBucket_ + N *after drainOverflow*,
//    so when the wheel is non-empty its minimum beats the overflow top.

namespace {
/// Window limit in ns, saturating so a pop at Time::max() cannot overflow.
std::int64_t windowLimitNs(std::int64_t curBucket) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (curBucket > kMax / CalendarEventQueue::kBucketWidthNs -
                      static_cast<std::int64_t>(CalendarEventQueue::kBuckets)) {
    return kMax;
  }
  return (curBucket + static_cast<std::int64_t>(CalendarEventQueue::kBuckets)) *
         CalendarEventQueue::kBucketWidthNs;
}
}  // namespace

void CalendarEventQueue::push(EventEntry e) {
  assert(e.at.ns() / kBucketWidthNs >= curBucket_ &&
         "cannot schedule before the last popped event");
  cached_.valid = false;
  if (e.at.ns() >= windowLimitNs(curBucket_)) {
    overflow_.push_back(std::move(e));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    return;
  }
  pushWheel(std::move(e));
}

void CalendarEventQueue::pushWheel(EventEntry&& e) {
  const auto b = static_cast<std::size_t>(
      (e.at.ns() / kBucketWidthNs) & static_cast<std::int64_t>(kBuckets - 1));
  buckets_[b].push_back(std::move(e));
  markOccupied(b);
  ++wheelSize_;
}

void CalendarEventQueue::drainOverflow() {
  const std::int64_t limitNs = windowLimitNs(curBucket_);
  while (!overflow_.empty() && overflow_.front().at.ns() < limitNs) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    EventEntry e = std::move(overflow_.back());
    overflow_.pop_back();
    pushWheel(std::move(e));
    cached_.valid = false;
  }
}

CalendarEventQueue::Cursor CalendarEventQueue::findMin() {
  assert(wheelSize_ > 0);
  // First occupied bucket in circular order from curBucket_: scan the
  // occupancy bitmap word-wise (start word masked below the start bit, and
  // revisited unmasked after a full wrap).
  constexpr std::size_t kWords = kBuckets / 64;
  const auto start = static_cast<std::size_t>(
      curBucket_ & static_cast<std::int64_t>(kBuckets - 1));
  std::size_t wi = start >> 6;
  std::uint64_t word = occupied_[wi] & (~0ull << (start & 63));
  std::size_t b = kBuckets;
  for (std::size_t step = 0; step <= kWords; ++step) {
    if (word != 0) {
      b = (wi << 6) + static_cast<std::size_t>(std::countr_zero(word));
      break;
    }
    wi = (wi + 1) & (kWords - 1);
    word = occupied_[wi];
  }
  assert(b < kBuckets && "occupancy bitmap out of sync with wheelSize_");
  const std::vector<EventEntry>& bucket = buckets_[b];
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    const EventEntry& e = bucket[i];
    const EventEntry& m = bucket[best];
    if (e.at < m.at || (e.at == m.at && e.id < m.id)) best = i;
  }
  return Cursor{b, best, true};
}

const EventEntry* CalendarEventQueue::peek() {
  drainOverflow();
  if (wheelSize_ == 0) {
    return overflow_.empty() ? nullptr : &overflow_.front();
  }
  cached_ = findMin();
  return &buckets_[cached_.bucket][cached_.entry];
}

EventEntry CalendarEventQueue::pop() {
  drainOverflow();
  EventEntry out;
  if (wheelSize_ == 0) {
    assert(!overflow_.empty());
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    out = std::move(overflow_.back());
    overflow_.pop_back();
  } else {
    const Cursor c = cached_.valid ? cached_ : findMin();
    std::vector<EventEntry>& bucket = buckets_[c.bucket];
    out = std::move(bucket[c.entry]);
    // Swap-remove: order within a bucket is irrelevant because every pop
    // re-selects the minimum by (at, id).
    if (c.entry + 1 != bucket.size()) {
      bucket[c.entry] = std::move(bucket.back());
    }
    bucket.pop_back();
    if (bucket.empty()) clearOccupied(c.bucket);
    --wheelSize_;
  }
  cached_.valid = false;
  curBucket_ = out.at.ns() / kBucketWidthNs;
  return out;
}

// --------------------------------------------------------------- factory

std::unique_ptr<EventQueue> makeEventQueue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kHeap:
      return std::make_unique<HeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  return std::make_unique<HeapEventQueue>();
}

}  // namespace manet::sim
