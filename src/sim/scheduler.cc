#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

namespace manet::sim {

EventId Scheduler::scheduleAt(Time at, EventFn fn, prof::Category cat) {
  assert(at >= now_ && "cannot schedule in the past");
  const EventId id = nextId_++;
  queue_->push(EventEntry{at, id, std::move(fn), cat});
  if (queue_->size() > queuePeak_) queuePeak_ = queue_->size();
  states_.push_back(EvState::kPending);
  assert(baseId_ + states_.size() == nextId_);
  // Hotspot observability: event horizon (how far ahead of now the event
  // fires — the calendar-queue design input) and the event allocation
  // tally. Pure counters driven by simulation state; no wall-clock reads.
  if (prof_ != nullptr) {
    prof_->recordHorizon((at - now_).ns());
    prof_->allocRecord(prof::AllocSite::kEvent);
  }
  return id;
}

Scheduler::EvState* Scheduler::stateOf(EventId id) {
  if (id < baseId_ || id >= nextId_) return nullptr;
  return &states_[static_cast<std::size_t>(id - baseId_)];
}

void Scheduler::retire(EventId id) {
  EvState* st = stateOf(id);
  assert(st != nullptr && *st != EvState::kDone);
  if (*st == EvState::kCancelled) --cancelledLive_;
  *st = EvState::kDone;
  while (!states_.empty() && states_.front() == EvState::kDone) {
    states_.pop_front();
    ++baseId_;
  }
}

void Scheduler::cancel(EventId id) {
  EvState* st = stateOf(id);
  if (st == nullptr || *st != EvState::kPending) return;  // fired or cancelled
  *st = EvState::kCancelled;
  ++cancelledLive_;
}

Time Scheduler::nextEventAt() {
  const EventEntry* top = queue_->peek();
  return top == nullptr ? Time::max() : top->at;
}

void Scheduler::runUntil(Time until) {
  while (const EventEntry* top = queue_->peek()) {
    if (top->at > until) break;
    const EventId id = top->id;
    if (*stateOf(id) == EvState::kCancelled) {
      queue_->pop();
      retire(id);
      if (prof_ != nullptr) prof_->allocRelease(prof::AllocSite::kEvent);
      continue;
    }
    EventEntry e = queue_->pop();
    retire(id);  // a handler cancelling its own id is a no-op
    now_ = e.at;
    ++executed_;
    // Span capture reads only the profiler's wall clock and writes into a
    // bounded buffer nothing in the simulation reads back.
    const bool capture = spanCapacity_ > 0;
    const std::uint64_t w0 =
        capture && prof_ != nullptr ? prof_->clockNs() : 0;
    if (prof_ != nullptr) {
      prof_->allocRelease(prof::AllocSite::kEvent);
      {
        prof::Scope scope(prof_, e.cat);  // inert unless collecting
        prof_->countDispatch(e.cat);
        e.fn();
      }
      // Depth after the handler ran: counts whatever it just scheduled.
      prof_->noteQueueDepth(now_.ns(), queue_->size());
      prof_->heartbeat(now_.ns(), until.ns(), executed_);
    } else {
      e.fn();
    }
    if (capture) {
      const std::uint64_t w1 =
          prof_ != nullptr ? prof_->clockNs() : 0;
      recordSpan(DispatchSpan{e.at, executed_, w0, w1 - w0, e.cat});
    }
  }
  if (now_ < until && until != Time::max()) now_ = until;
}

void Scheduler::enableSpanCapture(std::size_t capacity) {
  spanCapacity_ = capacity;
  spans_.clear();
  spans_.reserve(capacity);
  spanHead_ = 0;
}

void Scheduler::recordSpan(const DispatchSpan& s) {
  if (spans_.size() < spanCapacity_) {
    spans_.push_back(s);
    return;
  }
  spans_[spanHead_] = s;
  spanHead_ = (spanHead_ + 1) % spanCapacity_;
}

std::vector<DispatchSpan> Scheduler::dispatchSpans() const {
  std::vector<DispatchSpan> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(spanHead_ + i) % spans_.size()]);
  }
  return out;
}

}  // namespace manet::sim
