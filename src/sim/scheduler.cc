#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

namespace manet::sim {

EventId Scheduler::scheduleAt(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  const EventId id = nextId_++;
  queue_.push(Entry{at, id, std::move(fn)});
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

void Scheduler::runUntil(Time until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > until) break;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    // Move the handler out before popping so it may schedule/cancel freely.
    Time at = top.at;
    std::function<void()> fn = std::move(const_cast<Entry&>(top).fn);
    queue_.pop();
    now_ = at;
    ++executed_;
    fn();
  }
  if (now_ < until && until != Time::max()) now_ = until;
}

}  // namespace manet::sim
