#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

namespace manet::sim {

EventId Scheduler::scheduleAt(Time at, std::function<void()> fn,
                              prof::Category cat) {
  assert(at >= now_ && "cannot schedule in the past");
  const EventId id = nextId_++;
  queue_.push(Entry{at, id, std::move(fn), cat});
  if (queue_.size() > queuePeak_) queuePeak_ = queue_.size();
  states_.push_back(EvState::kPending);
  assert(baseId_ + states_.size() == nextId_);
  return id;
}

Scheduler::EvState* Scheduler::stateOf(EventId id) {
  if (id < baseId_ || id >= nextId_) return nullptr;
  return &states_[static_cast<std::size_t>(id - baseId_)];
}

void Scheduler::retire(EventId id) {
  EvState* st = stateOf(id);
  assert(st != nullptr && *st != EvState::kDone);
  if (*st == EvState::kCancelled) --cancelledLive_;
  *st = EvState::kDone;
  while (!states_.empty() && states_.front() == EvState::kDone) {
    states_.pop_front();
    ++baseId_;
  }
}

void Scheduler::cancel(EventId id) {
  EvState* st = stateOf(id);
  if (st == nullptr || *st != EvState::kPending) return;  // fired or cancelled
  *st = EvState::kCancelled;
  ++cancelledLive_;
}

void Scheduler::runUntil(Time until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > until) break;
    const EventId id = top.id;
    if (*stateOf(id) == EvState::kCancelled) {
      queue_.pop();
      retire(id);
      continue;
    }
    // Move the handler out before popping so it may schedule/cancel freely.
    Time at = top.at;
    const prof::Category cat = top.cat;
    std::function<void()> fn = std::move(const_cast<Entry&>(top).fn);
    queue_.pop();
    retire(id);  // a handler cancelling its own id is a no-op
    now_ = at;
    ++executed_;
    if (prof_ != nullptr) {
      {
        prof::Scope scope(prof_, cat);  // inert unless collecting
        prof_->countDispatch(cat);
        fn();
      }
      prof_->heartbeat(now_.ns(), until.ns(), executed_);
    } else {
      fn();
    }
  }
  if (now_ < until && until != Time::max()) now_ = until;
}

}  // namespace manet::sim
