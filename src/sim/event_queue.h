// Pluggable pending-event set for the Scheduler.
//
// The Scheduler's correctness contract lives here, not in any particular
// data structure: peek()/pop() must yield entries in strictly ascending
// (at, id) order — time first, then scheduling order among equal
// timestamps (the FIFO tie-break every determinism test depends on). Any
// implementation honoring that order produces byte-identical runs, which
// is what lets the queue be selected by config instead of being baked in.
//
// Two implementations ship:
//  * HeapEventQueue     — binary min-heap, O(log n) per op. The safe
//    default for a bare Scheduler: no tuning knobs, good at any size.
//  * CalendarEventQueue — Brown's calendar queue: a bucket wheel over the
//    near future plus a min-heap overflow for far-future timers. The
//    simulator's event-horizon histogram (prof::recordHorizon) is bimodal —
//    microsecond-scale MAC/PHY events dominate, with a thin tail of
//    second-scale protocol timers — so almost every event lands in the
//    wheel and enqueue/dequeue are O(1) amortized. Scenario runs select it
//    by default (ScenarioConfig::eventQueue / MANET_EVENT_QUEUE=heap|cal).
//
// Determinism note for the calendar queue: bucket placement is a pure
// function of the entry's timestamp, min-selection within a bucket breaks
// ties by id, and equal timestamps always share a bucket — so its pop
// sequence is identical to the heap's, not merely equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/prof/profiler.h"
#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace manet::sim {

using EventId = std::uint64_t;

/// One pending event. `id` is the Scheduler-issued sequence number that
/// doubles as the FIFO tie-break among equal timestamps.
struct EventEntry {
  Time at;
  EventId id = 0;
  EventFn fn;
  prof::Category cat = prof::Category::kOther;
};

enum class EventQueueKind : std::uint8_t {
  kHeap,
  kCalendar,
};

const char* toString(EventQueueKind k);
/// Parse "heap" / "calendar"; throws std::invalid_argument otherwise.
EventQueueKind eventQueueKindFromString(std::string_view s);
/// MANET_EVENT_QUEUE override, else `fallback`.
EventQueueKind eventQueueKindFromEnv(EventQueueKind fallback);

/// Minimum-(at, id) priority queue of EventEntry.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(EventEntry e) = 0;
  /// The minimum entry by (at, id), or nullptr when empty. The pointer is
  /// invalidated by the next push/pop; callers may read but not mutate.
  virtual const EventEntry* peek() = 0;
  /// Remove and return the minimum entry. Precondition: !empty().
  virtual EventEntry pop() = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
  virtual const char* name() const = 0;
};

/// Binary min-heap over a contiguous vector (std::push_heap/pop_heap).
class HeapEventQueue final : public EventQueue {
 public:
  void push(EventEntry e) override;
  const EventEntry* peek() override;
  EventEntry pop() override;
  std::size_t size() const override { return heap_.size(); }
  const char* name() const override { return "heap"; }

 private:
  std::vector<EventEntry> heap_;
};

/// Calendar queue: `kBuckets` buckets of `kBucketWidth` simulated time
/// each cover a rolling near-future window; events beyond the window wait
/// in a min-heap and migrate into the wheel as the window advances past
/// them (each entry migrates at most once). A 64-bit occupancy bitmap
/// makes skipping empty buckets a countr_zero scan instead of a walk.
class CalendarEventQueue final : public EventQueue {
 public:
  /// 8192 buckets x 16.384 us ≈ a 134 ms window: wide enough that only
  /// second-scale protocol timers overflow, fine enough that a bucket
  /// rarely holds more than a handful of events under MAC load.
  static constexpr std::size_t kBuckets = 8192;  // power of two
  static constexpr std::int64_t kBucketWidthNs = 16384;

  void push(EventEntry e) override;
  const EventEntry* peek() override;
  EventEntry pop() override;
  std::size_t size() const override { return wheelSize_ + overflow_.size(); }
  const char* name() const override { return "calendar"; }

  /// Entries currently waiting in the far-future overflow heap (test and
  /// introspection hook; not part of the scheduling contract).
  std::size_t overflowSize() const { return overflow_.size(); }

 private:
  struct Cursor {
    std::size_t bucket = 0;  // index into buckets_
    std::size_t entry = 0;   // index into buckets_[bucket]
    bool valid = false;
  };

  /// Absolute bucket number (at / width) of the earliest un-popped time.
  std::int64_t curBucket_ = 0;
  std::vector<EventEntry> buckets_[kBuckets];
  std::uint64_t occupied_[kBuckets / 64] = {};
  std::size_t wheelSize_ = 0;
  std::vector<EventEntry> overflow_;  // min-heap by (at, id)
  /// Cache of the min location found by peek(), consumed by the following
  /// pop() so the Scheduler's peek-then-pop pattern searches once.
  Cursor cached_;

  void pushWheel(EventEntry&& e);
  void drainOverflow();
  /// Locate the minimum wheel entry at or after curBucket_; advances
  /// curBucket_ past empty buckets. Precondition: wheelSize_ > 0.
  Cursor findMin();
  void markOccupied(std::size_t b) { occupied_[b >> 6] |= 1ull << (b & 63); }
  void clearOccupied(std::size_t b) {
    occupied_[b >> 6] &= ~(1ull << (b & 63));
  }
};

/// Factory used by the Scheduler.
std::unique_ptr<EventQueue> makeEventQueue(EventQueueKind kind);

}  // namespace manet::sim
