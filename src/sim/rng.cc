#include "src/sim/rng.h"

namespace manet::sim {
namespace {

// FNV-1a, stable across platforms (std::hash is not guaranteed stable).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// splitmix64 finalizer: decorrelates nearby seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::stream(std::string_view name, std::uint64_t salt) const {
  return Rng(mix(seed_ ^ fnv1a(name) ^ mix(salt)));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(gen_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(gen_);
}

}  // namespace manet::sim
