// Simulation time as integer nanoseconds.
//
// Integer time keeps event ordering exact (no floating-point drift) and makes
// same-seed runs bit-reproducible, which the paper's methodology (identical
// scenarios across protocol variants) depends on.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace manet::sim {

/// A point in simulated time or a duration, with nanosecond resolution.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time nanos(std::int64_t v) { return Time(v); }
  static constexpr Time micros(std::int64_t v) { return Time(v * 1'000); }
  static constexpr Time millis(std::int64_t v) { return Time(v * 1'000'000); }
  static constexpr Time seconds(std::int64_t v) {
    return Time(v * 1'000'000'000);
  }
  /// Fractional seconds (e.g. packet transmission times).
  static constexpr Time fromSeconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr Time zero() { return Time(0); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double toSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr friend auto operator<=>(Time, Time) = default;
  constexpr Time operator+(Time o) const { return Time(ns_ + o.ns_); }
  constexpr Time operator-(Time o) const { return Time(ns_ - o.ns_); }
  constexpr Time& operator+=(Time o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ns_ -= o.ns_;
    return *this;
  }
  /// Scale a duration (used for timeout heuristics such as alpha * lifetime).
  constexpr Time operator*(double s) const {
    return Time(static_cast<std::int64_t>(static_cast<double>(ns_) * s));
  }

  std::string str() const { return std::to_string(toSeconds()) + "s"; }

 private:
  constexpr explicit Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace manet::sim
