// Deterministic random-number streams.
//
// Every consumer of randomness (mobility, traffic, MAC jitter, each DSR
// agent) owns a named stream derived from the scenario seed. This lets the
// experiment harness vary the mobility pattern across replications while
// holding the traffic pattern fixed, exactly as the paper does ("identical
// traffic models, but different randomly generated mobility scenarios").
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace manet::sim {

/// A self-contained pseudo-random stream (mt19937_64 under the hood).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), gen_(seed) {}

  /// Derive an independent child stream. The child's seed mixes this
  /// stream's seed with a hash of `name`; the parent state is not consumed.
  Rng stream(std::string_view name, std::uint64_t salt = 0) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  /// Exponentially distributed value with the given mean.
  double exponential(double mean);
  bool bernoulli(double p);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 gen_;
};

}  // namespace manet::sim
