// Move-only event closure with enough inline storage for the hot-path
// lambdas, replacing std::function<void()> in the scheduler.
//
// Why not std::function: libstdc++'s small-object buffer is two words, and
// the busiest closure in the simulator — the channel's rxEnd handler, which
// captures a Radio*, a transmission id and a mac::Frame (itself holding a
// shared_ptr payload) — is ~64 bytes, so every frame delivery paid a heap
// allocation and free. EventFn gives closures up to kInlineBytes of inline
// storage (chosen to fit that rxEnd capture) and falls back to the heap
// only for larger ones, which do not occur on the per-frame path.
//
// Semantics are the minimal subset the Scheduler needs: construct from any
// callable, move, invoke once or more, destroy. No copy, no target(), no
// allocator awareness. Dispatch goes through a hand-rolled vtable (invoke /
// relocate / destroy) so the common case is one indirect call, same as
// std::function, with zero allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace manet::sim {

class EventFn {
 public:
  /// Inline capture budget. Sized for the largest per-frame closure (the
  /// channel rxEnd handler: Radio* + txId + mac::Frame ≈ 64 bytes); larger
  /// captures still work but heap-allocate like std::function would.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every scheduleAt call site
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtableInline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtableHeap<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);  // move + destroy source
      other.vt_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* buf);
    /// Move-construct the stored callable from `src` into `dst`, then
    /// destroy the source (a "relocate", so moved-from EventFns hold
    /// nothing and moves are a single vtable call).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static constexpr bool fitsInline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static void invokeInline(void* buf) {
    (*std::launder(reinterpret_cast<Fn*>(buf)))();
  }
  template <typename Fn>
  static void relocateInline(void* dst, void* src) {
    Fn* s = std::launder(reinterpret_cast<Fn*>(src));
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void destroyInline(void* buf) {
    std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
  }

  template <typename Fn>
  static void invokeHeap(void* buf) {
    (**std::launder(reinterpret_cast<Fn**>(buf)))();
  }
  template <typename Fn>
  static void relocateHeap(void* dst, void* src) {
    Fn** s = std::launder(reinterpret_cast<Fn**>(src));
    ::new (dst) Fn*(*s);  // steal the pointer
  }
  template <typename Fn>
  static void destroyHeap(void* buf) {
    delete *std::launder(reinterpret_cast<Fn**>(buf));
  }

  template <typename Fn>
  static constexpr VTable vtableInline{&invokeInline<Fn>, &relocateInline<Fn>,
                                       &destroyInline<Fn>};
  template <typename Fn>
  static constexpr VTable vtableHeap{&invokeHeap<Fn>, &relocateHeap<Fn>,
                                     &destroyHeap<Fn>};

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace manet::sim
