// Crash-safe file writes: write-temp-then-rename, with an fsync before the
// rename so a power cut or SIGKILL can never leave a torn or truncated
// artifact under the final name. Every structured export in the repo
// (aggregate JSON, series/table CSVs, BENCH_*.json, journal cell payloads)
// goes through this helper; readers therefore only ever see a file that is
// either absent or complete.
#pragma once

#include <string>
#include <string_view>

namespace manet::util {

/// Write `content` to `path` atomically: the bytes land in a unique
/// temporary sibling (`<path>.tmp.<pid>`), are flushed and fsynced, and the
/// temporary is then renamed over `path` (rename(2) is atomic within a
/// filesystem). Parent directories are created as needed. Returns false and
/// logs to stderr on failure; a failed attempt removes its temporary.
bool atomicWriteFile(const std::string& path, std::string_view content);

/// Append `line` (a newline is added if missing) to `path`, then flush and
/// fsync, so the line is durable before the call returns. Creates the file
/// and parent directories on first use. A single append is one write(2)
/// call, so concurrent appenders (O_APPEND) never interleave bytes.
/// Returns false and logs to stderr on failure.
bool appendLineDurable(const std::string& path, std::string_view line);

}  // namespace manet::util
