// 2-D geometry primitives used by mobility and the radio channel.
#pragma once

#include <cmath>

namespace manet {

/// A point or displacement in the simulation plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const = default;

  // sqrt, not std::hypot: coordinates are bounded field positions (a few
  // km), so the squares cannot overflow/underflow and hypot's extra-
  // precision path only costs time on the range-check hot loop.
  double norm() const { return std::sqrt(x * x + y * y); }
};

/// Euclidean distance between two points, in meters.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace manet
