// 2-D geometry primitives used by mobility and the radio channel.
#pragma once

#include <cmath>

namespace manet {

/// A point or displacement in the simulation plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::hypot(x, y); }
};

/// Euclidean distance between two points, in meters.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace manet
