#include "src/util/logging.h"

#include <cstdio>
#include <utility>

namespace manet::util {
namespace {
LogLevel g_level = LogLevel::kNone;
LogSinkFn g_sink;
}  // namespace

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void setLogSink(LogSinkFn sink) { g_sink = std::move(sink); }

void logLine(LogLevel level, std::string_view msg) {
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  static constexpr const char* kNames[] = {"", "E", "I", "D", "T"};
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace manet::util
