#include "src/util/logging.h"

#include <cstdio>

namespace manet::util {
namespace {
LogLevel g_level = LogLevel::kNone;
}

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void logLine(LogLevel level, std::string_view msg) {
  static constexpr const char* kNames[] = {"", "E", "I", "D", "T"};
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace manet::util
