#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <utility>

namespace manet::util {
namespace {
// manet-lint: allow(shared-mutable): the verbosity level is a deliberate
// process-wide sink — every run under one invocation shares one level, it
// never feeds back into simulation decisions, and the atomic makes the
// cross-thread reads race-free.
std::atomic<LogLevel> g_level{LogLevel::kNone};
// manet-lint: allow(shared-mutable): thread-local by design — the parallel
// runner executes each run wholly on one worker thread, and a per-thread
// sink guarantees a run's captured log lines can never cross-wire into a
// concurrent run's trace.
thread_local LogSinkFn t_sink;
}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

Mutex& stderrMutex() {
  // manet-lint: allow(shared-mutable): stderr serialization only; guards
  // writes to a shared fd and is never read by simulation code.
  // manet-lint: allow(lock-discipline): guards the process-wide stderr
  // stream, an external resource with no in-process data members.
  static Mutex m;
  return m;
}

void setLogSink(LogSinkFn sink) { t_sink = std::move(sink); }

void logLine(LogLevel level, std::string_view msg) {
  if (t_sink) {
    t_sink(level, msg);
    return;
  }
  static constexpr const char* kNames[] = {"", "E", "I", "D", "T"};
  const MutexLock lock(stderrMutex());
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace manet::util
