#include "src/util/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace manet::util {

JsonValue::JsonValue(JsonArray a)
    : kind_(Kind::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : kind_(Kind::kObject),
      obj_(std::make_shared<JsonObject>(std::move(o))) {}

const std::string& JsonValue::asString() const {
  static const std::string kEmpty;
  return isString() ? str_ : kEmpty;
}

const JsonArray& JsonValue::asArray() const {
  static const JsonArray kEmpty;
  return isArray() ? *arr_ : kEmpty;
}

const JsonObject& JsonValue::asObject() const {
  static const JsonObject kEmpty;
  return isObject() ? *obj_ : kEmpty;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  const auto it = obj_->find(std::string(key));
  return it != obj_->end() ? &it->second : nullptr;
}

double JsonValue::numberAt(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->asNumber(fallback) : fallback;
}

std::string JsonValue::stringAt(std::string_view key,
                                const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->asString() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* err) {
    std::optional<JsonValue> v = parseValue();
    if (v) {
      skipWs();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && err != nullptr) *err = error_;
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("bad literal");
  }

  std::optional<JsonValue> parseValue() {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        std::string s;
        if (!parseString(&s)) return std::nullopt;
        return JsonValue(std::move(s));
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        return JsonValue(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return JsonValue(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return JsonValue();
      default: return parseNumber();
    }
  }

  std::optional<JsonValue> parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      digits = true;
      ++pos_;
    }
    if (!digits) {
      fail("invalid number");
      return std::nullopt;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail("invalid number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  bool parseString(std::string* out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            // Preserved verbatim (see header); our writers never emit \u.
            *out += "\\u";
            break;
          default: return fail("bad escape");
        }
        pos_ += 2;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parseArray() {
    if (!consume('[')) return std::nullopt;
    JsonArray arr;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      std::optional<JsonValue> v = parseValue();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']')) return std::nullopt;
      return JsonValue(std::move(arr));
    }
  }

  std::optional<JsonValue> parseObject() {
    if (!consume('{')) return std::nullopt;
    JsonObject obj;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(&key)) return std::nullopt;
      skipWs();
      if (!consume(':')) return std::nullopt;
      std::optional<JsonValue> v = parseValue();
      if (!v) return std::nullopt;
      obj.insert_or_assign(std::move(key), std::move(*v));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}')) return std::nullopt;
      return JsonValue(std::move(obj));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* err) {
  return Parser(text).run(err);
}

}  // namespace manet::util
