// Minimal leveled logging for simulator tracing.
//
// Logging is off by default (benches run millions of events); tests and
// examples can raise the level to trace protocol behaviour. printf-style
// formatting (libstdc++ 12 has no <format>).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace manet::util {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

LogLevel logLevel();
void setLogLevel(LogLevel level);

void logLine(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (level > logLevel()) return;
  if constexpr (sizeof...(Args) == 0) {
    logLine(level, fmt);
  } else {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    logLine(level, buf);
  }
}

#define MANET_TRACE(...) \
  ::manet::util::log(::manet::util::LogLevel::kTrace, __VA_ARGS__)
#define MANET_DEBUG(...) \
  ::manet::util::log(::manet::util::LogLevel::kDebug, __VA_ARGS__)
#define MANET_INFO(...) \
  ::manet::util::log(::manet::util::LogLevel::kInfo, __VA_ARGS__)

}  // namespace manet::util
