// Minimal leveled logging for simulator tracing.
//
// Logging is off by default (benches run millions of events); tests and
// examples can raise the level to trace protocol behaviour. printf-style
// formatting (libstdc++ 12 has no <format>); messages of any length are
// formatted exactly (a second heap-allocating pass handles lines that
// exceed the stack buffer).
//
// Output goes to stderr unless a LogSink is installed; the telemetry layer
// installs one so log lines become trace records and both share a single
// verbosity config (ScenarioConfig.telemetry.logLevel / MANET_LOG_LEVEL).
//
// Thread model (the parallel sweep runner executes whole runs on worker
// threads): the level is a process-wide atomic, the sink is thread-local —
// each run installs its capture sink on the thread it runs on, so parallel
// runs can never cross-wire log lines into each other's traces — and the
// default stderr writer serializes lines through stderrMutex(), which the
// profiler heartbeat shares.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::util {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Process-wide mutex serializing raw stderr lines (log fallback writer,
/// profiler heartbeat, runner progress), so concurrent runs never interleave
/// partial lines. Hold it as `const util::MutexLock lock(stderrMutex());`
/// around the fprintf calls that emit one logical line.
Mutex& stderrMutex();

/// Redirect formatted log lines (e.g. into a telemetry TraceSink). Pass an
/// empty function to restore the default stderr writer. Thread-local: the
/// sink applies only to log calls made on the installing thread.
using LogSinkFn = std::function<void(LogLevel, std::string_view)>;
void setLogSink(LogSinkFn sink);

void logLine(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (level > logLevel()) return;
  if constexpr (sizeof...(Args) == 0) {
    logLine(level, fmt);
  } else {
    char buf[512];
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n < 0) return;
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
      logLine(level, std::string_view(buf, static_cast<std::size_t>(n)));
    } else {
      std::string big(static_cast<std::size_t>(n) + 1, '\0');
      std::snprintf(big.data(), big.size(), fmt, args...);
      big.resize(static_cast<std::size_t>(n));
      logLine(level, big);
    }
  }
}

#define MANET_TRACE(...) \
  ::manet::util::log(::manet::util::LogLevel::kTrace, __VA_ARGS__)
#define MANET_DEBUG(...) \
  ::manet::util::log(::manet::util::LogLevel::kDebug, __VA_ARGS__)
#define MANET_INFO(...) \
  ::manet::util::log(::manet::util::LogLevel::kInfo, __VA_ARGS__)

}  // namespace manet::util
