// Clang Thread Safety Analysis attribute macros.
//
// The parallel sweep runner (src/scenario/runner.cc) executes whole
// simulation runs on worker threads, and the region-parallel scheduler on
// the roadmap will push sharing deeper into the engine. These macros let
// every mutex-protected structure state its locking contract in the type
// system: which mutex guards which data (GUARDED_BY), which functions need
// a lock held (REQUIRES) or must be called without it (EXCLUDES), and which
// types are capabilities (CAPABILITY) or RAII lock holders
// (SCOPED_CAPABILITY). Clang's -Wthread-safety -Wthread-safety-beta then
// proves the discipline at compile time — a data race on an annotated
// structure is a build error, not a TSan lottery ticket.
//
// On GCC (which has no thread-safety analysis) every macro expands to
// nothing, so annotated code compiles identically everywhere; the CI
// thread-safety job is the enforcing build. The spellings follow the Clang
// documentation's canonical mutex.h so the annotations read like the
// upstream examples.
//
// Discipline is linted, not just compiled: the lock-discipline rule in
// tools/manet_lint requires every mutex declaration in src/ to guard an
// annotated data set (or carry an allow naming the external resource it
// serializes), and annotation-coverage requires every audited
// shared-mutable site to include this header.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MANET_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef MANET_THREAD_ANNOTATION__
#define MANET_THREAD_ANNOTATION__(x)  // expands away outside Clang
#endif

#define CAPABILITY(x) MANET_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY MANET_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) MANET_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) MANET_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  MANET_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  MANET_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  MANET_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  MANET_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  MANET_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  MANET_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  MANET_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  MANET_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  MANET_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  MANET_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  MANET_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) MANET_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  MANET_THREAD_ANNOTATION__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  MANET_THREAD_ANNOTATION__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) MANET_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  MANET_THREAD_ANNOTATION__(no_thread_safety_analysis)
