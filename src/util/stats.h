// Online statistics helpers used by metrics collection and the benches.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace manet::util {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& o);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for link-lifetime and delay distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t totalCount() const { return total_; }
  std::size_t binCount(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double binLow(std::size_t i) const;
  /// Linear-interpolated quantile in [0,1]; 0 if empty.
  double quantile(double q) const;
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact quantile over a stored sample set (fine for per-run aggregates).
double quantile(std::vector<double> xs, double q);

}  // namespace manet::util
