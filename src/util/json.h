// Minimal recursive-descent JSON parser: full value trees (objects,
// arrays, strings, numbers, bools, null), no external dependency.
//
// The telemetry layer's trace_reader covers flat JSONL lines; this parser
// exists for the nested documents the repo itself writes — BENCH_*.json
// perf baselines and structured run exports — so tooling (perf_baseline
// --compare, trace_inspector --bench) can read them back. It is a reader
// for our own well-formed output, not a hardened general-purpose parser:
// \uXXXX escapes are preserved verbatim rather than decoded.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manet::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps object keys ordered, making round-trips deterministic.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a);
  explicit JsonValue(JsonObject o);

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isNumber() const { return kind_ == Kind::kNumber; }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  bool asBool(bool fallback = false) const {
    return isBool() ? bool_ : fallback;
  }
  double asNumber(double fallback = 0.0) const {
    return isNumber() ? num_ : fallback;
  }
  const std::string& asString() const;
  const JsonArray& asArray() const;
  const JsonObject& asObject() const;

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* find(std::string_view key) const;
  /// Chained convenience: find(key) as a number/string, or fallback.
  double numberAt(std::string_view key, double fallback = 0.0) const;
  std::string stringAt(std::string_view key,
                       const std::string& fallback = {}) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirection keeps JsonValue movable while recursive.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parse a complete JSON document. Returns nullopt on malformed input and
/// sets `err` (if non-null) to a message with the byte offset.
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* err = nullptr);

}  // namespace manet::util
