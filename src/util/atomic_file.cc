#include "src/util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::util {

namespace {

void ensureParent(const std::string& path) {
  const std::filesystem::path p(path);
  if (!p.has_parent_path()) return;
  // Parallel sweep workers write artifacts concurrently; serialize directory
  // creation so racing mkdir calls cannot spuriously fail.
  // manet-lint: allow(shared-mutable): process-wide mkdir serialization
  // only; never read by simulation code
  // manet-lint: allow(lock-discipline): serializes filesystem mkdir, an
  // external resource with no in-process data members.
  static Mutex dirMutex;
  const MutexLock lock(dirMutex);
  std::error_code ec;
  std::filesystem::create_directories(p.parent_path(), ec);
}

bool writeAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void fail(const char* what, const std::string& path) {
  std::fprintf(stderr, "atomic_file: %s %s: %s\n", what, path.c_str(),
               std::strerror(errno));
}

}  // namespace

bool atomicWriteFile(const std::string& path, std::string_view content) {
  ensureParent(path);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fail("cannot create", tmp);
    return false;
  }
  const bool wrote = writeAll(fd, content.data(), content.size());
  // fsync before rename: the rename must only ever expose fully-persisted
  // bytes, otherwise a crash between rename and writeback re-creates the
  // torn-file problem this helper exists to close.
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || !synced) {
    fail(wrote ? "cannot fsync" : "cannot write", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("cannot rename into place", path);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool appendLineDurable(const std::string& path, std::string_view line) {
  ensureParent(path);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    fail("cannot open for append", path);
    return false;
  }
  std::string buf(line);
  if (buf.empty() || buf.back() != '\n') buf += '\n';
  const bool wrote = writeAll(fd, buf.data(), buf.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || !synced) {
    fail(wrote ? "cannot fsync" : "cannot append", path);
    return false;
  }
  return true;
}

}  // namespace manet::util
