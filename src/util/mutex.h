// Annotated mutex primitives for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so code locking
// it directly is invisible to -Wthread-safety: the analysis would demand
// GUARDED_BY proofs it can never discharge. These thin wrappers are the
// repo's sanctioned locking vocabulary — util::Mutex is the CAPABILITY,
// util::MutexLock the RAII holder the analysis tracks, util::CondVar the
// condition variable that states its lock requirement in the signature.
//
// Locking discipline (enforced by tools/manet_lint):
//   * every Mutex declaration in src/ names the data it guards via
//     GUARDED_BY(mu) members, or carries an allow(lock-discipline) comment
//     naming the external resource it serializes (a file descriptor, the
//     stderr stream);
//   * bare .lock()/.unlock() calls are banned in src/ (rule bare-lock):
//     critical sections are MutexLock scopes, so no early return or
//     exception can leak a held lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace manet::util {

/// A std::mutex the thread-safety analysis can reason about. Members name
/// it in GUARDED_BY(...); functions in REQUIRES(...)/EXCLUDES(...).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a util::Mutex; the only sanctioned way to
/// hold one outside src/util/mutex.h itself.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. The wait side states its lock
/// requirement so the analysis proves every waiter actually holds the
/// mutex the predicate reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait up to `timeout` (or a notify), and
  /// re-acquire before returning — the std::condition_variable contract,
  /// expressed against the annotated mutex.
  template <typename Rep, typename Period>
  void waitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    // Adopt the already-held native mutex, wait, then hand ownership back
    // without unlocking: the caller's MutexLock continues to own it.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait_for(native, timeout);
    native.release();
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace manet::util
