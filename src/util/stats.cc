#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace manet::util {

void RunningStats::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::binLow(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double binWidth = (hi_ - lo_) / static_cast<double>(bins());
  for (std::size_t i = 0; i < bins(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts_[i]);
      return binLow(i) + within * binWidth;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < bins(); ++i) {
    const auto bar =
        peak == 0 ? std::size_t{0} : counts_[i] * width / peak;
    out += std::to_string(binLow(i)) + " | " + std::string(bar, '#') + " " +
           std::to_string(counts_[i]) + "\n";
  }
  return out;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace manet::util
