// A network node: mobility + radio + MAC + routing agent, wired together.
#pragma once

#include <cassert>
#include <memory>

#include "src/aodv/aodv_agent.h"
#include "src/core/dsr_agent.h"
#include "src/core/dsr_config.h"
#include "src/mac/dcf_mac.h"
#include "src/metrics/metrics.h"
#include "src/metrics/oracle.h"
#include "src/mobility/mobility_model.h"
#include "src/net/routing_agent.h"
#include "src/phy/channel.h"
#include "src/phy/radio.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/trace.h"

namespace manet::net {

/// Which routing protocol a network runs.
enum class Protocol { kDsr, kAodv };

/// Everything a node needs besides its trajectory.
struct NodeConfig {
  mac::MacConfig mac;
  Protocol protocol = Protocol::kDsr;
  core::DsrConfig dsr;
  aodv::AodvConfig aodv;
};

class Node {
 public:
  Node(NodeId id, std::unique_ptr<mobility::MobilityModel> mobility,
       phy::Channel& channel, sim::Scheduler& sched, const sim::Rng& baseRng,
       const NodeConfig& cfg, metrics::Metrics* metrics,
       const metrics::LinkOracle* oracle,
       telemetry::Tracer* tracer = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Protocol protocol() const { return protocol_; }

  RoutingAgent& routing() { return *routing_; }
  /// The DSR agent (asserts the node runs DSR).
  core::DsrAgent& dsr() {
    assert(protocol_ == Protocol::kDsr);
    return static_cast<core::DsrAgent&>(*routing_);
  }
  const core::DsrAgent& dsr() const {
    assert(protocol_ == Protocol::kDsr);
    return static_cast<const core::DsrAgent&>(*routing_);
  }
  /// The AODV agent (asserts the node runs AODV).
  aodv::AodvAgent& aodv() {
    assert(protocol_ == Protocol::kAodv);
    return static_cast<aodv::AodvAgent&>(*routing_);
  }

  mac::DcfMac& macLayer() { return mac_; }
  phy::Radio& radio() { return radio_; }
  const mobility::MobilityModel& mobility() const { return *mobility_; }

 private:
  NodeId id_;
  Protocol protocol_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  phy::Radio radio_;
  mac::DcfMac mac_;
  std::unique_ptr<RoutingAgent> routing_;
};

}  // namespace manet::net
