// Abstract routing agent: what the traffic layer and node assembly need
// from a routing protocol. Implemented by DSR (the paper's subject) and by
// AODV (the comparison protocol of the paper's companion studies, which
// "uses caching indirectly when intermediate nodes generate route replies").
#pragma once

#include <cstdint>

#include "src/net/packet.h"

namespace manet::net {

class RoutingAgent {
 public:
  virtual ~RoutingAgent() = default;

  /// Application entry point: send `payloadBytes` of data to `dst`.
  virtual void sendData(NodeId dst, std::uint32_t payloadBytes,
                        std::uint32_t flowId, std::uint64_t seqInFlow) = 0;

  virtual NodeId id() const = 0;
};

}  // namespace manet::net
