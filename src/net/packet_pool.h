// Per-thread freelist recycling packet allocations (Click-style).
//
// Every Packet lives in a shared_ptr, and the hot paths (originate, clone
// on forward, control-packet generation) were paying one heap round-trip
// per packet — the exact cost the AllocTracker's kPacket site was added to
// measure. The pool removes it: allocate_shared with PoolAllocator places
// the packet and its control block in one pooled slot, and freed slots go
// onto a freelist instead of back to the heap. Slots come from slabs of 64
// so steady-state traffic allocates nothing at all.
//
// Correctness properties:
//  * Determinism — recycling changes only addresses, never contents, and
//    nothing in the simulator orders by pointer value; pooled and
//    non-pooled runs are byte-identical (covered by tests/net).
//  * Symmetric deallocation — the enabled() gate is consulted only at
//    Packet::make / clone. allocate_shared embeds a copy of the allocator
//    in the control block, so a packet allocated from the pool frees into
//    the pool even if the flag is flipped mid-run.
//  * Thread safety — the pool is thread_local (one per sweep worker); a
//    packet must be released on the thread that made it, which holds
//    because a run executes wholly on one thread and packets never
//    outlive their run (Scenario owns everything transitively).
//
// Enabled by default except under AddressSanitizer, where recycling would
// mask use-after-free of packet memory; MANET_POOL=0|1 overrides either
// default, and benchmarks/tests can call setEnabled directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace manet::net {

class PacketPool {
 public:
  /// Objects per slab: one ::operator new per 64 packets when growing.
  static constexpr std::size_t kSlabObjects = 64;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// Process-wide switch, consulted only at allocation sites.
  static bool enabled();
  static void setEnabled(bool on);

  /// This thread's pool (created on first use).
  static PacketPool& local();

  /// A slot of at least `bytes` bytes (max_align_t aligned).
  void* acquire(std::size_t bytes);
  /// Return a slot obtained from acquire(`bytes`) on this thread.
  void release(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t slabAllocs = 0;  // heap allocations actually performed
    std::size_t freeObjects = 0;   // slots currently on freelists
  };
  Stats stats() const;

 private:
  /// One freelist per distinct (rounded) allocation size. In practice the
  /// process sees a single size — the allocate_shared block for Packet —
  /// so the linear class lookup is one comparison.
  struct SizeClass {
    std::size_t bytes;
    std::vector<void*> free;   // LIFO freelist
    std::vector<void*> slabs;  // owned slab base pointers
  };

  SizeClass& classFor(std::size_t bytes);

  std::vector<SizeClass> classes_;
  std::uint64_t acquires_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t slabAllocs_ = 0;
};

/// Minimal std allocator over the thread's PacketPool, for allocate_shared.
/// Single-object allocations go through the pool; anything else (not used
/// by allocate_shared) falls back to the heap.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(PacketPool::local().acquire(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      PacketPool::local().release(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace manet::net
