#include "src/net/packet.h"

#include <unordered_set>

#include "src/net/packet_pool.h"
#include "src/util/thread_annotations.h"

namespace manet::net {

const char* toString(PacketKind k) {
  switch (k) {
    case PacketKind::kData:
      return "DATA";
    case PacketKind::kRouteRequest:
      return "RREQ";
    case PacketKind::kRouteReply:
      return "RREP";
    case PacketKind::kRouteError:
      return "RERR";
  }
  return "?";
}

std::uint32_t Packet::wireBytes() const {
  // DSR fixed header (4 B) plus per-option costs modeled after the draft:
  // source route option 4 B + 4 B/hop; rreq/rrep/rerr similar.
  std::uint32_t bytes = payloadBytes + 4;
  if (route) bytes += 4 + 4 * static_cast<std::uint32_t>(route->hops.size());
  if (rreq) bytes += 8 + 4 * static_cast<std::uint32_t>(rreq->path.size()) +
                     (rreq->piggybackedError ? 12 : 0);
  if (rrep) bytes += 4 + 4 * static_cast<std::uint32_t>(rrep->route.size());
  if (rerr) bytes += 12;
  if (aodvRreq) bytes += 24;  // RFC 3561 RREQ size
  if (aodvRrep) bytes += 20;
  if (aodvRerr) {
    bytes += 4 + 8 * static_cast<std::uint32_t>(aodvRerr->unreachable.size());
  }
  if (transport) bytes += 12;
  return bytes;
}

std::string Packet::summary() const {
  std::string s = toString(kind);
  s += " uid=" + std::to_string(uid) + " " + std::to_string(src) + "->" +
       (dst == kBroadcast ? std::string("*") : std::to_string(dst));
  return s;
}

const char* toString(RouteOrigin o) {
  switch (o) {
    case RouteOrigin::kNone:
      return "none";
    case RouteOrigin::kTargetReply:
      return "target_reply";
    case RouteOrigin::kCachedReply:
      return "cached_reply";
    case RouteOrigin::kReverseRequest:
      return "reverse_request";
    case RouteOrigin::kForwarded:
      return "forwarded";
    case RouteOrigin::kDelivered:
      return "delivered";
    case RouteOrigin::kSnooped:
      return "snooped";
    case RouteOrigin::kGratuitous:
      return "gratuitous";
    case RouteOrigin::kSeeded:
      return "seeded";
    case RouteOrigin::kMacFeedback:
      return "mac_feedback";
    case RouteOrigin::kRerrUnicast:
      return "rerr_unicast";
    case RouteOrigin::kRerrBroadcast:
      return "rerr_broadcast";
    case RouteOrigin::kPiggybackedRepair:
      return "piggybacked_repair";
  }
  return "?";
}

namespace {
// Thread-local so concurrent sweep runs (one run per worker thread) assign
// uids independently; Scenario resets it per run, making the sequence a
// deterministic function of the run alone — not of process history or of
// how many jobs the sweep used.
// manet-lint: allow(shared-mutable): thread-local and reset per Scenario;
// uids never feed back into simulation decisions, only into traces.
thread_local std::uint64_t t_nextUid = 1;

// Provenance ids follow the same regime as packet uids: thread-local, reset
// per Scenario, never consulted by the protocol — purely a trace join key.
// manet-lint: allow(shared-mutable): thread-local and reset per Scenario;
// provenance ids never feed back into simulation decisions, only traces.
thread_local std::uint64_t t_nextProvId = 1;
}  // namespace

RouteProvenance RouteProvenance::next(RouteOrigin origin, NodeId insertedBy,
                                      sim::Time bornAt, std::size_t hops) {
  RouteProvenance p;
  p.id = t_nextProvId++;
  p.origin = origin;
  p.insertedBy = insertedBy;
  p.bornAt = bornAt;
  p.hopsAtInsert = hops > 255 ? std::uint8_t{255}
                              : static_cast<std::uint8_t>(hops);
  return p;
}

void RouteProvenance::resetIdCounter() { t_nextProvId = 1; }

std::shared_ptr<Packet> Packet::make() {
  // The pool gate lives only here (and in clone): allocate_shared embeds
  // the allocator in the control block, so whichever path allocated a
  // packet also frees it — no flag check on destruction.
  std::shared_ptr<Packet> p =
      PacketPool::enabled() ? std::allocate_shared<Packet>(PoolAllocator<Packet>{})
                            : std::make_shared<Packet>();
  p->uid = t_nextUid++;
  return p;
}

void Packet::resetUidCounter() { t_nextUid = 1; }

std::shared_ptr<Packet> clone(const Packet& p) {
  // uid preserved: same logical packet
  return PacketPool::enabled()
             ? std::allocate_shared<Packet>(PoolAllocator<Packet>{}, p)
             : std::make_shared<Packet>(p);
}

bool routeContainsLink(std::span<const NodeId> hops, LinkId link) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i] == link.from && hops[i + 1] == link.to) return true;
  }
  return false;
}

bool routeHasDuplicates(std::span<const NodeId> hops) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : hops) {
    if (!seen.insert(n).second) return true;
  }
  return false;
}

}  // namespace manet::net
