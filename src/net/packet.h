// Network-layer packet model: DSR headers and source routes.
//
// DSR is a source-routing protocol: every data packet carries the complete
// hop list in its header, and the three control packet types (route request,
// route reply, route error) carry accumulated or cached routes. We model the
// headers as plain structs; wireBytes() charges the byte cost a real header
// would add so that MAC transmission times and channel load are realistic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace manet::net {

using NodeId = std::uint32_t;
/// MAC-level broadcast address.
inline constexpr NodeId kBroadcast = 0xffffffffu;

/// A directed link `from -> to`. DSR route errors name exactly one broken
/// link; caches index on it.
struct LinkId {
  NodeId from = 0;
  NodeId to = 0;
  constexpr auto operator<=>(const LinkId&) const = default;
};

struct LinkIdHash {
  std::size_t operator()(const LinkId& l) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(l.from) << 32) | l.to);
  }
};

/// The complete route a source-routed packet follows, including the source
/// at hops.front() and the destination at hops.back(). `cursor` is the index
/// of the node currently holding the packet.
struct SourceRoute {
  std::vector<NodeId> hops;
  std::size_t cursor = 0;

  bool atDestination() const { return cursor + 1 >= hops.size(); }
  NodeId nextHop() const { return hops.at(cursor + 1); }
  NodeId source() const { return hops.front(); }
  NodeId destination() const { return hops.back(); }
};

enum class PacketKind : std::uint8_t {
  kData,
  kRouteRequest,
  kRouteReply,
  kRouteError,
};

const char* toString(PacketKind k);

/// Route request (flooded). `path` accumulates the traversed nodes,
/// starting with the originator; each forwarder appends itself before
/// rebroadcast.
struct RouteRequestHdr {
  NodeId origin = 0;
  NodeId target = 0;
  std::uint32_t id = 0;  // per-origin discovery id, for duplicate suppression
  std::uint8_t ttl = 255;
  std::vector<NodeId> path;
  /// Gratuitous route repair: a recent route error piggybacked by the origin
  /// so caches along the flood can purge the broken link.
  std::optional<LinkId> piggybackedError;
};

/// Route reply (unicast back to the originator over the reversed request
/// path, carried in the packet's SourceRoute). `route` is the full
/// origin -> target route being reported.
struct RouteReplyHdr {
  std::vector<NodeId> route;
  NodeId replier = 0;
  bool fromCache = false;  // true when generated from an intermediate cache
  /// Freshness-tagging extension (the paper's future work: "so that the
  /// relative freshness of cached routes can be determined"): targets stamp
  /// their replies with a monotonically increasing per-target sequence
  /// number; cached replies carry the stamp the cache learned. Receivers
  /// ignore information older than what they already hold.
  std::uint32_t freshness = 0;
};

/// Route error: link `broken` failed, detected by `detector`. In base DSR it
/// is unicast to the source of the failed packet; with wider error
/// notification it is broadcast and selectively re-broadcast.
struct RouteErrorHdr {
  LinkId broken;
  NodeId detector = 0;
  std::uint32_t errorId = 0;  // per-detector id, dedups wide rebroadcasts
};

/// AODV route request (flooded). Unlike DSR, no path accumulates; nodes
/// build reverse-route table entries hop by hop instead.
struct AodvRreqHdr {
  NodeId origin = 0;
  std::uint32_t originSeq = 0;
  std::uint32_t rreqId = 0;  // per-origin, for duplicate suppression
  NodeId target = 0;
  std::uint32_t targetSeq = 0;  // last known; 0 + unknown flag if none
  bool unknownTargetSeq = true;
  std::uint8_t hopCount = 0;
  std::uint8_t ttl = 64;
};

/// AODV route reply, unicast hop-by-hop along reverse-route entries.
struct AodvRrepHdr {
  NodeId origin = 0;  // requester the reply travels to
  NodeId target = 0;  // destination the route leads to
  std::uint32_t targetSeq = 0;
  std::uint8_t hopCount = 0;  // distance from the transmitter to target
  bool fromIntermediate = false;  // answered from a route table, not target
};

/// AODV route error: destinations that became unreachable through the
/// transmitter, each with its invalidated sequence number.
struct AodvRerrHdr {
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;
};

/// Transport-layer header for the reliable (TCP-like) transport extension.
/// Data segments and ACKs are ordinary DSR data packets to the routing
/// layer; this header rides on top.
struct TransportHdr {
  std::uint32_t connId = 0;
  bool isAck = false;
  std::uint64_t seq = 0;    // first byte/segment index of this segment
  std::uint64_t ackNo = 0;  // cumulative: next expected segment index
};

/// A network-layer packet. Immutable once handed to the MAC (shared_ptr to
/// const); forwarding nodes copy-and-advance the route cursor.
struct Packet {
  std::uint64_t uid = 0;  // globally unique, assigned by Packet::make
  PacketKind kind = PacketKind::kData;
  NodeId src = 0;  // original source (network-level, not per-hop)
  NodeId dst = kBroadcast;
  std::uint32_t payloadBytes = 0;  // application payload (512 B in the paper)
  sim::Time originatedAt;          // when the application generated it

  /// Present for data, replies and unicast errors; absent for requests and
  /// broadcast errors.
  std::optional<SourceRoute> route;
  std::optional<RouteRequestHdr> rreq;
  std::optional<RouteReplyHdr> rrep;
  std::optional<RouteErrorHdr> rerr;
  std::optional<AodvRreqHdr> aodvRreq;
  std::optional<AodvRrepHdr> aodvRrep;
  std::optional<AodvRerrHdr> aodvRerr;
  std::optional<TransportHdr> transport;

  int salvageCount = 0;  // times intermediate nodes re-routed this packet

  // Traffic bookkeeping for metrics.
  std::uint32_t flowId = 0;
  std::uint64_t seqInFlow = 0;

  /// Bytes on the wire: payload + DSR header cost (4 bytes per listed hop
  /// plus a fixed part, per the DSR draft's option formats).
  std::uint32_t wireBytes() const;

  std::string summary() const;

  /// Allocate a packet with a fresh uid.
  static std::shared_ptr<Packet> make();

  /// Restart uid assignment at 1. The counter is thread-local and each run
  /// executes wholly on one thread, so a Scenario resets it at construction:
  /// uids are then a run-local, deterministic sequence — identical whether
  /// the run executes serially, on a sweep worker thread, or in a fresh
  /// process (the cross-process replay and parallel-determinism tests rely
  /// on this).
  static void resetUidCounter();
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Deep-copy for forwarding (advance cursor, piggyback, salvage rewrites).
std::shared_ptr<Packet> clone(const Packet& p);

/// True if `hops` contains the directed link a->b adjacently.
bool routeContainsLink(std::span<const NodeId> hops, LinkId link);

/// True if any node appears twice (source-routing must stay loop-free).
bool routeHasDuplicates(std::span<const NodeId> hops);

}  // namespace manet::net
