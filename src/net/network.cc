#include "src/net/network.h"

namespace manet::net {

Network::Network(const NetworkConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      channel_(sched_, cfg.phy),
      oracle_([this](NodeId id, sim::Time t) { return positionOf(id, t); },
              cfg.phy.rangeMeters) {
  tracer_.bindClock(&sched_);
}

Node& Network::addNode(std::unique_ptr<mobility::MobilityModel> mobility) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const NodeConfig nodeCfg{cfg_.mac, cfg_.protocol, cfg_.dsr, cfg_.aodv};
  nodes_.push_back(std::make_unique<Node>(id, std::move(mobility), channel_,
                                          sched_, rng_, nodeCfg, &metrics_,
                                          &oracle_, &tracer_));
  return *nodes_.back();
}

}  // namespace manet::net
