#include "src/net/network.h"

#include "src/fault/fault_injector.h"
#include "src/net/packet.h"
#include "src/telemetry/trace.h"

namespace manet::net {

Network::Network(const NetworkConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      sched_(cfg.eventQueue),
      channel_(sched_, cfg.phy),
      oracle_(channel_.neighborIndex(), cfg.phy.rangeMeters) {
  tracer_.bindClock(&sched_);
}

Network::~Network() = default;

void Network::enableProfiling(const prof::ProfConfig& cfg) {
  if (!cfg.installed()) return;
  profiler_ = std::make_unique<prof::Profiler>(cfg);
  sched_.setProfiler(profiler_.get());
  // Allocation-site unit sizes: prof cannot see the concrete types, so the
  // layer that can registers them once at install time.
  prof::AllocTracker& tracker = profiler_->allocTracker();
  tracker.setUnitBytes(prof::AllocSite::kPacket, sizeof(Packet));
  tracker.setUnitBytes(prof::AllocSite::kEvent,
                       sim::Scheduler::eventEntryBytes());
  tracker.setUnitBytes(prof::AllocSite::kTraceRecord,
                       sizeof(telemetry::TraceRecord));
  // Presize the per-entity table for nodes added before profiling came up
  // (addNode keeps it sized afterwards) so the record path never allocates.
  profiler_->ensureEntities(nodes_.size());
}

void Network::installFaults(const fault::FaultPlan& plan, sim::Time horizon) {
  if (plan.empty()) return;
  plan.validate(static_cast<int>(nodes_.size()), horizon);
  faults_ = std::make_unique<fault::FaultInjector>(*this, plan, horizon);
}

Node& Network::addNode(std::unique_ptr<mobility::MobilityModel> mobility) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const NodeConfig nodeCfg{cfg_.mac, cfg_.protocol, cfg_.dsr, cfg_.aodv};
  nodes_.push_back(std::make_unique<Node>(id, std::move(mobility), channel_,
                                          sched_, rng_, nodeCfg, &metrics_,
                                          &oracle_, &tracer_));
  if (profiler_ != nullptr) profiler_->ensureEntities(nodes_.size());
  return *nodes_.back();
}

}  // namespace manet::net
