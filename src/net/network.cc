#include "src/net/network.h"

#include "src/fault/fault_injector.h"

namespace manet::net {

Network::Network(const NetworkConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      channel_(sched_, cfg.phy),
      oracle_([this](NodeId id, sim::Time t) { return positionOf(id, t); },
              cfg.phy.rangeMeters) {
  tracer_.bindClock(&sched_);
}

Network::~Network() = default;

void Network::enableProfiling(const prof::ProfConfig& cfg) {
  if (!cfg.installed()) return;
  profiler_ = std::make_unique<prof::Profiler>(cfg);
  sched_.setProfiler(profiler_.get());
}

void Network::installFaults(const fault::FaultPlan& plan, sim::Time horizon) {
  if (plan.empty()) return;
  plan.validate(static_cast<int>(nodes_.size()), horizon);
  faults_ = std::make_unique<fault::FaultInjector>(*this, plan, horizon);
}

Node& Network::addNode(std::unique_ptr<mobility::MobilityModel> mobility) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const NodeConfig nodeCfg{cfg_.mac, cfg_.protocol, cfg_.dsr, cfg_.aodv};
  nodes_.push_back(std::make_unique<Node>(id, std::move(mobility), channel_,
                                          sched_, rng_, nodeCfg, &metrics_,
                                          &oracle_, &tracer_));
  return *nodes_.back();
}

}  // namespace manet::net
