#include "src/net/node.h"

namespace manet::net {

Node::Node(NodeId id, std::unique_ptr<mobility::MobilityModel> mobility,
           phy::Channel& channel, sim::Scheduler& sched,
           const sim::Rng& baseRng, const NodeConfig& cfg,
           metrics::Metrics* metrics, const metrics::LinkOracle* oracle,
           telemetry::Tracer* tracer)
    : id_(id),
      protocol_(cfg.protocol),
      mobility_(std::move(mobility)),
      radio_(id, *mobility_, channel, sched),
      mac_(id, radio_, sched, baseRng.stream("mac", id), cfg.mac, metrics,
           tracer) {
  switch (cfg.protocol) {
    case Protocol::kDsr:
      routing_ = std::make_unique<core::DsrAgent>(
          id, mac_, sched, baseRng.stream("dsr", id), cfg.dsr, metrics,
          oracle, tracer);
      break;
    case Protocol::kAodv:
      routing_ = std::make_unique<aodv::AodvAgent>(
          id, mac_, sched, baseRng.stream("aodv", id), cfg.aodv, metrics,
          oracle);
      break;
  }
}

}  // namespace manet::net
