// The Network owns the scheduler, channel, nodes and metrics for one run.
#pragma once

#include <memory>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/mac/dcf_mac.h"
#include "src/metrics/metrics.h"
#include "src/metrics/oracle.h"
#include "src/net/node.h"
#include "src/phy/channel.h"
#include "src/prof/profiler.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/trace.h"

namespace manet::fault {
struct FaultPlan;
class FaultInjector;
}  // namespace manet::fault

namespace manet::net {

struct NetworkConfig {
  phy::PhyConfig phy;
  mac::MacConfig mac;
  Protocol protocol = Protocol::kDsr;
  core::DsrConfig dsr;
  aodv::AodvConfig aodv;
  /// Pending-event set for the scheduler; both kinds dispatch in identical
  /// (time, id) order, so this is purely a performance knob. The calendar
  /// queue fits simulation workloads (dense near-future MAC events); a
  /// bare Scheduler outside Network still defaults to the heap.
  sim::EventQueueKind eventQueue = sim::EventQueueKind::kCalendar;
};

class Network {
 public:
  Network(const NetworkConfig& cfg, std::uint64_t seed);
  ~Network();

  /// Add a node with the given trajectory; ids are assigned sequentially
  /// from 0. All nodes must be added before the simulation runs.
  Node& addNode(std::unique_ptr<mobility::MobilityModel> mobility);

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t size() const { return nodes_.size(); }

  sim::Scheduler& scheduler() { return sched_; }
  phy::Channel& channel() { return channel_; }
  metrics::Metrics& metrics() { return metrics_; }
  const metrics::LinkOracle& oracle() const { return oracle_; }
  const sim::Rng& rng() const { return rng_; }
  /// Trace dispatch point; attach sinks before adding traffic to capture a
  /// full run. With no sinks attached, tracing costs one branch per hook.
  telemetry::Tracer& tracer() { return tracer_; }

  /// Construct and attach the self-profiler when `cfg.installed()`; call
  /// before the run starts (ideally before nodes are added). Profiling
  /// reads only the wall clock — never sim time or sim RNG — so enabling
  /// it cannot change a run's results. A non-installed config is a no-op.
  void enableProfiling(const prof::ProfConfig& cfg);
  /// The installed profiler, or nullptr (subsystems use the scheduler's
  /// accessor on the hot path; this one is for reports).
  prof::Profiler* profiler() { return profiler_.get(); }

  /// Install a fault plan (validated fail-fast against the current node
  /// count). Call after all nodes are added and before the run starts. An
  /// empty plan installs nothing — the fault layer is then a strict no-op.
  void installFaults(const fault::FaultPlan& plan, sim::Time horizon);
  /// The installed injector, or nullptr when no (non-empty) plan was given.
  fault::FaultInjector* faults() { return faults_.get(); }

  Vec2 positionOf(NodeId id, sim::Time t) const {
    // One query path for positions: the channel's neighbor index (which
    // charges the evaluation to the mobility category).
    return channel_.neighborIndex().positionAt(id, t);
  }

  void run(sim::Time until) { sched_.runUntil(until); }

 private:
  NetworkConfig cfg_;
  sim::Rng rng_;
  sim::Scheduler sched_;
  phy::Channel channel_;
  metrics::Metrics metrics_;
  metrics::LinkOracle oracle_;
  telemetry::Tracer tracer_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::unique_ptr<prof::Profiler> profiler_;
};

}  // namespace manet::net
