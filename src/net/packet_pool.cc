#include "src/net/packet_pool.h"

#include <cstdlib>

namespace manet::net {

namespace {

constexpr bool kAsanBuild =
#if defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

/// Round to max_align_t so slab slots stay aligned for any packed object.
constexpr std::size_t roundUp(std::size_t bytes) {
  constexpr std::size_t a = alignof(std::max_align_t);
  return (bytes + a - 1) / a * a;
}

bool initialEnabled() {
  const char* v = std::getenv("MANET_POOL");  // NOLINT(concurrency-mt-unsafe)
  if (v != nullptr && v[0] != '\0') return v[0] == '1';
  return !kAsanBuild;
}

std::atomic<bool>& enabledFlag() {
  // manet-lint: allow(shared-mutable): process-wide switch set once at
  // startup (env default) or explicitly by tests/benchmarks; flipping it
  // mid-run is safe because allocate_shared embeds the allocator, making
  // every packet's deallocation path independent of the flag.
  static std::atomic<bool> flag{initialEnabled()};
  return flag;
}

}  // namespace

bool PacketPool::enabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}

void PacketPool::setEnabled(bool on) {
  enabledFlag().store(on, std::memory_order_relaxed);
}

PacketPool& PacketPool::local() {
  // manet-lint: allow(shared-mutable): thread-local — each sweep worker
  // owns a private pool, and packets never cross run (thread) boundaries.
  static thread_local PacketPool t_pool;
  return t_pool;
}

PacketPool::~PacketPool() {
  for (SizeClass& c : classes_) {
    for (void* slab : c.slabs) ::operator delete(slab);
  }
}

PacketPool::SizeClass& PacketPool::classFor(std::size_t bytes) {
  for (SizeClass& c : classes_) {
    if (c.bytes == bytes) return c;
  }
  classes_.push_back(SizeClass{bytes, {}, {}});
  return classes_.back();
}

void* PacketPool::acquire(std::size_t bytes) {
  ++acquires_;
  SizeClass& c = classFor(roundUp(bytes));
  if (c.free.empty()) {
    ++slabAllocs_;
    auto* slab = static_cast<unsigned char*>(
        ::operator new(c.bytes * kSlabObjects));
    c.slabs.push_back(slab);
    c.free.reserve(c.free.size() + kSlabObjects);
    // Push in reverse so slots hand out in ascending address order.
    for (std::size_t i = kSlabObjects; i > 0; --i) {
      c.free.push_back(slab + (i - 1) * c.bytes);
    }
  }
  void* p = c.free.back();
  c.free.pop_back();
  return p;
}

void PacketPool::release(void* p, std::size_t bytes) noexcept {
  ++releases_;
  classFor(roundUp(bytes)).free.push_back(p);
}

PacketPool::Stats PacketPool::stats() const {
  Stats s;
  s.acquires = acquires_;
  s.releases = releases_;
  s.slabAllocs = slabAllocs_;
  for (const SizeClass& c : classes_) s.freeObjects += c.free.size();
  return s;
}

}  // namespace manet::net
