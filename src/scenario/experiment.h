// Replicated experiments: run a scenario across several mobility seeds and
// aggregate the paper's metrics ("each data point represents an average of
// five runs with identical traffic models, but different randomly generated
// mobility scenarios").
//
// runReplicated is the single-point convenience wrapper; full grids go
// through ExperimentPlan + runPlan (src/scenario/sweep.h, runner.h).
#pragma once

#include <array>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/packet.h"
#include "src/scenario/scenario.h"
#include "src/util/stats.h"

namespace manet::scenario {

struct AggregateResult {
  util::RunningStats deliveryFraction;
  util::RunningStats avgDelaySec;
  util::RunningStats normalizedOverhead;
  util::RunningStats throughputKbps;
  util::RunningStats goodReplyPct;
  util::RunningStats invalidCacheHitPct;
  util::RunningStats cacheHits;
  util::RunningStats linkBreaks;
  /// Per-origin breakdown of invalid cache hits (indexed by
  /// net::RouteOrigin): which learning path inserted the entries that went
  /// stale. Fed by Metrics::invalidCacheHitsByOrigin.
  std::array<util::RunningStats, net::kNumRouteOrigins> invalidHitsByOrigin{};

  /// Mean invalid hits summed over a set of origins (helper for
  /// attribution columns; pass e.g. {kSnooped, kForwarded}).
  double meanInvalidHits(std::initializer_list<net::RouteOrigin> origins)
      const {
    double sum = 0.0;
    for (net::RouteOrigin o : origins) {
      sum += invalidHitsByOrigin[static_cast<std::size_t>(o)].mean();
    }
    return sum;
  }
  /// Full per-run results. Populated by runReplicated; runPlan drops them
  /// after export unless RunnerOptions.keepRuns is set (a large sweep must
  /// not retain every run's sampled series and profile in memory).
  std::vector<RunResult> runs;
};

/// Run `replications` copies of `base`, varying the mobility seed per run
/// (base.mobilitySeed + i), and aggregate. `onRun` (optional) observes each
/// completed run in seed order. `label` names the experiment in structured
/// exports: when base.telemetry.exportDir is set (e.g. via
/// MANET_EXPORT_DIR), the aggregate is written to <exportDir>/<label>.json
/// plus per-run series CSVs. An empty label with a non-empty exportDir is a
/// hard error (std::invalid_argument): every caller used to fall back to
/// the same "run.json", so concurrent or sequential experiments silently
/// clobbered each other's artifacts. Honors MANET_JOBS for parallel seed
/// execution (default serial); output is byte-identical either way.
AggregateResult runReplicated(
    ScenarioConfig base, int replications,
    const std::function<void(int, const RunResult&)>& onRun = {},
    const std::string& label = {});

/// Scale knobs shared by all bench binaries. Default scale keeps every
/// qualitative shape but fits a 1-core grading machine; REPRO_FULL=1
/// switches to the paper's exact scale (100 nodes, 500 s, 5 seeds).
struct BenchScale {
  int numNodes;
  sim::Time duration;
  int replications;
  int numFlows;
  bool full;
};
BenchScale benchScale();

/// Scale tier by name: "tiny" (30 nodes, 30 s, 1 seed — CI determinism and
/// sanitizer smoke), "quick" (the default tier), "full" (the paper's
/// scale). Throws std::invalid_argument on anything else.
BenchScale benchScaleNamed(std::string_view name);

/// Apply the scale to a config. When the node count differs from the
/// paper's 100, the field shrinks proportionally (same area per node) so
/// smaller tiers keep paper-like density instead of going sparse and
/// disconnected.
void applyScale(ScenarioConfig& cfg, const BenchScale& s);

/// The paper's evaluation scenario (Section 4.1) at the given scale:
/// random waypoint in a rectangle, CBR flows of 512-byte packets at
/// 3 packets/s, pause time as the mobility knob.
ScenarioConfig paperScenario(const BenchScale& s);

}  // namespace manet::scenario
