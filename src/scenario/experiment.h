// Replicated experiments: run a scenario across several mobility seeds and
// aggregate the paper's metrics ("each data point represents an average of
// five runs with identical traffic models, but different randomly generated
// mobility scenarios").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/util/stats.h"

namespace manet::scenario {

struct AggregateResult {
  util::RunningStats deliveryFraction;
  util::RunningStats avgDelaySec;
  util::RunningStats normalizedOverhead;
  util::RunningStats throughputKbps;
  util::RunningStats goodReplyPct;
  util::RunningStats invalidCacheHitPct;
  util::RunningStats cacheHits;
  util::RunningStats linkBreaks;
  std::vector<RunResult> runs;
};

/// Run `replications` copies of `base`, varying the mobility seed per run
/// (base.mobilitySeed + i), and aggregate. `onRun` (optional) observes each
/// completed run (progress reporting in benches). `label` names the
/// experiment in structured exports: when base.telemetry.exportDir is set
/// (e.g. via MANET_EXPORT_DIR), the aggregate is written to
/// <exportDir>/<label>.json plus per-run series CSVs.
AggregateResult runReplicated(
    ScenarioConfig base, int replications,
    const std::function<void(int, const RunResult&)>& onRun = {},
    const std::string& label = {});

/// Scale knobs shared by all bench binaries. Default scale keeps every
/// qualitative shape but fits a 1-core grading machine; REPRO_FULL=1
/// switches to the paper's exact scale (100 nodes, 500 s, 5 seeds).
struct BenchScale {
  int numNodes;
  sim::Time duration;
  int replications;
  int numFlows;
  bool full;
};
BenchScale benchScale();

/// Apply the scale to a config (keeps node density roughly paper-like by
/// shrinking the field with the node count).
void applyScale(ScenarioConfig& cfg, const BenchScale& s);

/// The paper's evaluation scenario (Section 4.1) at the given scale:
/// random waypoint in a rectangle, CBR flows of 512-byte packets at
/// 3 packets/s, pause time as the mobility knob.
ScenarioConfig paperScenario(const BenchScale& s);

}  // namespace manet::scenario
