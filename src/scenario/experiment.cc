#include "src/scenario/experiment.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"

namespace manet::scenario {

AggregateResult runReplicated(
    ScenarioConfig base, int replications,
    const std::function<void(int, const RunResult&)>& onRun,
    const std::string& label) {
  if (!base.telemetry.exportDir.empty() && label.empty()) {
    throw std::invalid_argument(
        "runReplicated: exportDir is set but no export label was given; "
        "every unlabelled experiment would write the same "
        "<exportDir>/run.json and clobber the previous one — pass a unique "
        "label (or use an ExperimentPlan, which derives one per point)");
  }
  ExperimentPlan plan(label.empty() ? std::string("run") : label, base);
  RunnerOptions opts;
  opts.jobs = -1;  // MANET_JOBS when set, else serial
  if (std::getenv("MANET_JOBS") == nullptr) opts.jobs = 1;  // NOLINT(concurrency-mt-unsafe)
  opts.replications = replications;
  opts.keepRuns = true;
  if (onRun) {
    opts.onRun = [&onRun](const SweepPoint&, int rep, const RunResult& r) {
      onRun(rep, r);
    };
  }
  SweepResult sweep = runPlan(plan, opts);
  return std::move(sweep.points.at(0).agg);
}

BenchScale benchScale() {
  const char* full = std::getenv("REPRO_FULL");  // NOLINT(concurrency-mt-unsafe)
  if (full != nullptr && full[0] == '1') return benchScaleNamed("full");
  return benchScaleNamed("quick");
}

BenchScale benchScaleNamed(std::string_view name) {
  if (name == "full") {
    return BenchScale{.numNodes = 100,
                      .duration = sim::Time::seconds(500),
                      .replications = 5,
                      .numFlows = 25,
                      .full = true};
  }
  if (name == "quick") {
    // Default scale: the paper's full topology and workload, but shorter
    // runs and fewer seeds so the whole bench suite fits a small machine.
    return BenchScale{.numNodes = 100,
                      .duration = sim::Time::seconds(120),
                      .replications = 2,
                      .numFlows = 25,
                      .full = false};
  }
  if (name == "tiny") {
    // CI smoke tier: seconds per run, so determinism diffs and sanitizer
    // jobs can afford a whole sweep per job count.
    return BenchScale{.numNodes = 30,
                      .duration = sim::Time::seconds(30),
                      .replications = 1,
                      .numFlows = 8,
                      .full = false};
  }
  throw std::invalid_argument("unknown bench scale '" + std::string(name) +
                              "' (expected tiny, quick or full)");
}

ScenarioConfig paperScenario(const BenchScale& s) {
  ScenarioConfig cfg;
  cfg.field = {2200.0, 600.0};
  cfg.maxSpeed = 20.0;
  cfg.packetsPerSecond = 3.0;
  cfg.payloadBytes = 512;
  cfg.pause = sim::Time::zero();
  cfg.mobilitySeed = 1;
  applyScale(cfg, s);
  return cfg;
}

void applyScale(ScenarioConfig& cfg, const BenchScale& s) {
  if (s.numNodes != 100) {
    // Preserve area-per-node (the paper: 100 nodes on 2200 m x 600 m) so
    // a smaller tier stays as connected as the full field.
    const double shrink = std::sqrt(static_cast<double>(s.numNodes) / 100.0);
    cfg.field.x *= shrink;
    cfg.field.y *= shrink;
  }
  cfg.numNodes = s.numNodes;
  cfg.duration = s.duration;
  cfg.numFlows = s.numFlows;
}

}  // namespace manet::scenario
