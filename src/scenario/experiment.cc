#include "src/scenario/experiment.h"

#include <cstdlib>

#include "src/telemetry/export.h"
#include "src/telemetry/telemetry_config.h"

namespace manet::scenario {

AggregateResult runReplicated(
    ScenarioConfig base, int replications,
    const std::function<void(int, const RunResult&)>& onRun,
    const std::string& label) {
  AggregateResult agg;
  for (int i = 0; i < replications; ++i) {
    ScenarioConfig cfg = base;
    cfg.mobilitySeed = base.mobilitySeed + static_cast<std::uint64_t>(i);
    // Replications must not clobber one another's trace file.
    if (!cfg.telemetry.traceJsonlPath.empty() && replications > 1) {
      cfg.telemetry.traceJsonlPath =
          telemetry::perRunPath(base.telemetry.traceJsonlPath, i);
    }
    RunResult r = runScenario(cfg);
    const auto& m = r.metrics;
    agg.deliveryFraction.add(m.packetDeliveryFraction());
    agg.avgDelaySec.add(m.avgDelaySec());
    agg.normalizedOverhead.add(m.normalizedOverhead());
    agg.throughputKbps.add(m.throughputKbps(r.duration));
    agg.goodReplyPct.add(m.goodReplyPct());
    agg.invalidCacheHitPct.add(m.invalidCacheHitPct());
    agg.cacheHits.add(static_cast<double>(m.cacheHits));
    agg.linkBreaks.add(static_cast<double>(m.linkBreaksDetected));
    if (onRun) onRun(i, r);
    agg.runs.push_back(std::move(r));
  }
  if (!base.telemetry.exportDir.empty()) {
    telemetry::exportAggregate(agg, base,
                               label.empty() ? std::string("run") : label);
  }
  return agg;
}

BenchScale benchScale() {
  const char* full = std::getenv("REPRO_FULL");
  if (full != nullptr && full[0] == '1') {
    return BenchScale{.numNodes = 100,
                      .duration = sim::Time::seconds(500),
                      .replications = 5,
                      .numFlows = 25,
                      .full = true};
  }
  // Default scale: the paper's full topology and workload, but shorter
  // runs and fewer seeds so the whole bench suite fits a small machine.
  return BenchScale{.numNodes = 100,
                    .duration = sim::Time::seconds(120),
                    .replications = 2,
                    .numFlows = 25,
                    .full = false};
}

ScenarioConfig paperScenario(const BenchScale& s) {
  ScenarioConfig cfg;
  cfg.field = {2200.0, 600.0};
  cfg.maxSpeed = 20.0;
  cfg.packetsPerSecond = 3.0;
  cfg.payloadBytes = 512;
  cfg.pause = sim::Time::zero();
  cfg.mobilitySeed = 1;
  applyScale(cfg, s);
  return cfg;
}

void applyScale(ScenarioConfig& cfg, const BenchScale& s) {
  cfg.numNodes = s.numNodes;
  cfg.duration = s.duration;
  cfg.numFlows = s.numFlows;
}

}  // namespace manet::scenario
