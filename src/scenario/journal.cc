#include "src/scenario/journal.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/atomic_file.h"
#include "src/util/json.h"

namespace manet::scenario {

namespace {

// ---------------------------------------------------------------- writing

void kvD(std::string& out, const char* key, double v, bool first = false) {
  char buf[128];
  // %.17g round-trips every IEEE-754 double through strtod exactly; the
  // journal must restore bit-identical values or resumed aggregates drift.
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.17g", first ? "" : ",", key, v);
  out += buf;
}

void kvU(std::string& out, const char* key, std::uint64_t v,
         bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                v);
  out += buf;
}

void kvI(std::string& out, const char* key, std::int64_t v,
         bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64, first ? "" : ",", key,
                v);
  out += buf;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void kvS(std::string& out, const char* key, std::string_view v,
         bool first = false) {
  out += first ? "\"" : ",\"";
  out += key;
  out += "\":\"";
  out += jsonEscape(v);
  out += '"';
}

// Every Metrics field, in one place, applied to both the writer and the
// reader below — a field added to Metrics but not listed here would make a
// resumed campaign silently diverge from an uninterrupted one, which the
// journal round-trip test (tests/scenario/journal_test.cc) guards against.
#define MANET_JOURNAL_METRIC_U64(X)                                         \
  X(dataOriginated, "data_originated")                                      \
  X(dataDelivered, "data_delivered")                                        \
  X(bytesDelivered, "bytes_delivered")                                      \
  X(dropSendBufferTimeout, "drop_send_buffer_timeout")                      \
  X(dropSendBufferOverflow, "drop_send_buffer_overflow")                    \
  X(dropIfqFull, "drop_ifq_full")                                           \
  X(dropLinkFailNoSalvage, "drop_link_fail_no_salvage")                     \
  X(dropNegativeCache, "drop_negative_cache")                               \
  X(dropTtlExpired, "drop_ttl_expired")                                     \
  X(dropMacDuplicate, "drop_mac_duplicate")                                 \
  X(dropNodeDown, "drop_node_down")                                         \
  X(rreqTx, "rreq_tx")                                                      \
  X(rrepTx, "rrep_tx")                                                      \
  X(rerrTx, "rerr_tx")                                                      \
  X(rtsTx, "rts_tx")                                                        \
  X(ctsTx, "cts_tx")                                                        \
  X(ackTx, "ack_tx")                                                        \
  X(dataFrameTx, "data_frame_tx")                                           \
  X(ctsTimeouts, "cts_timeouts")                                            \
  X(ackTimeouts, "ack_timeouts")                                            \
  X(rtsIgnoredBusy, "rts_ignored_busy")                                     \
  X(cacheHits, "cache_hits")                                                \
  X(invalidCacheHits, "invalid_cache_hits")                                 \
  X(repliesReceived, "replies_received")                                    \
  X(goodRepliesReceived, "good_replies_received")                           \
  X(cacheRepliesGenerated, "cache_replies_generated")                       \
  X(targetRepliesGenerated, "target_replies_generated")                     \
  X(gratuitousRepliesGenerated, "gratuitous_replies_generated")             \
  X(staleRepliesIgnored, "stale_replies_ignored")                           \
  X(routeDiscoveriesStarted, "route_discoveries_started")                   \
  X(nonPropRequestsSent, "non_prop_requests_sent")                          \
  X(floodRequestsSent, "flood_requests_sent")                               \
  X(linkBreaksDetected, "link_breaks_detected")                             \
  X(fakeLinkBreaks, "fake_link_breaks")                                     \
  X(salvageAttempts, "salvage_attempts")                                    \
  X(expiredLinks, "expired_links")                                          \
  X(rerrWideRebroadcasts, "rerr_wide_rebroadcasts")                         \
  X(negCacheInsertions, "neg_cache_insertions")                             \
  X(faultNodeCrashes, "fault_node_crashes")                                 \
  X(faultNodeRecoveries, "fault_node_recoveries")                           \
  X(faultLinkBlackouts, "fault_link_blackouts")                             \
  X(faultNoiseBursts, "fault_noise_bursts")                                 \
  X(faultTrafficSurges, "fault_traffic_surges")

template <class T>
void arrD(std::string& out, const char* key, const std::vector<T>& v) {
  out += ",\"";
  out += key;
  out += "\":[";
  char buf[64];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.17g", i ? "," : "",
                  static_cast<double>(v[i]));
    out += buf;
  }
  out += ']';
}

void arrU(std::string& out, const char* key,
          const std::vector<std::uint64_t>& v) {
  out += ",\"";
  out += key;
  out += "\":[";
  char buf[64];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64, i ? "," : "", v[i]);
    out += buf;
  }
  out += ']';
}

// ---------------------------------------------------------------- reading

bool readU64(const util::JsonValue& obj, const char* key, std::uint64_t* out,
             std::string* err) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isNumber()) {
    if (err != nullptr) *err = std::string("missing field '") + key + "'";
    return false;
  }
  *out = static_cast<std::uint64_t>(v->asNumber());
  return true;
}

bool readVecD(const util::JsonValue& obj, const char* key,
              std::vector<double>* out, std::string* err) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isArray()) {
    if (err != nullptr) *err = std::string("missing array '") + key + "'";
    return false;
  }
  out->clear();
  out->reserve(v->asArray().size());
  for (const util::JsonValue& e : v->asArray()) out->push_back(e.asNumber());
  return true;
}

bool readVecU(const util::JsonValue& obj, const char* key,
              std::vector<std::uint64_t>* out, std::string* err) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isArray()) {
    if (err != nullptr) *err = std::string("missing array '") + key + "'";
    return false;
  }
  out->clear();
  out->reserve(v->asArray().size());
  for (const util::JsonValue& e : v->asArray()) {
    out->push_back(static_cast<std::uint64_t>(e.asNumber()));
  }
  return true;
}

// ------------------------------------------------------------ fingerprint

void fpTime(std::string& out, const char* key, sim::Time t) {
  kvI(out, key, t.ns());
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string codeVersion() {
#ifdef MANET_CODE_VERSION
  return MANET_CODE_VERSION;
#else
  return "unknown";
#endif
}

std::string configFingerprint(const ScenarioConfig& cfg) {
  std::string out = "{";
  kvU(out, "num_nodes", static_cast<std::uint64_t>(cfg.numNodes),
      /*first=*/true);
  kvD(out, "field_x", cfg.field.x);
  kvD(out, "field_y", cfg.field.y);
  kvD(out, "min_speed", cfg.minSpeed);
  kvD(out, "max_speed", cfg.maxSpeed);
  fpTime(out, "pause_ns", cfg.pause);
  kvU(out, "num_flows", static_cast<std::uint64_t>(cfg.numFlows));
  kvD(out, "pps", cfg.packetsPerSecond);
  kvU(out, "payload", cfg.payloadBytes);
  fpTime(out, "duration_ns", cfg.duration);
  fpTime(out, "flow_start_ns", cfg.flowStartWindow);
  kvU(out, "traffic_seed", cfg.trafficSeed);
  kvU(out, "protocol", static_cast<std::uint64_t>(cfg.protocol));
  kvU(out, "invariant_checks", cfg.invariantChecks ? 1 : 0);
  // DSR knobs (the sweep axes mutate these; two cells with equal labels
  // from *different* plans must still hash apart).
  const core::DsrConfig& d = cfg.dsr;
  kvU(out, "d_reply_cache", d.replyFromCache ? 1 : 0);
  kvU(out, "d_salvage", d.salvaging ? 1 : 0);
  kvU(out, "d_max_salvage", static_cast<std::uint64_t>(d.maxSalvageCount));
  kvU(out, "d_grat_repair", d.gratuitousRepair ? 1 : 0);
  kvU(out, "d_promisc", d.promiscuousListening ? 1 : 0);
  kvU(out, "d_grat_replies", d.gratuitousReplies ? 1 : 0);
  kvU(out, "d_nonprop", d.nonPropagatingRequests ? 1 : 0);
  kvU(out, "d_wider_err", d.widerErrorNotification ? 1 : 0);
  kvU(out, "d_expiry", static_cast<std::uint64_t>(d.expiry));
  fpTime(out, "d_static_to_ns", d.staticTimeout);
  kvD(out, "d_alpha", d.adaptiveAlpha);
  fpTime(out, "d_adaptive_min_ns", d.adaptiveMinTimeout);
  fpTime(out, "d_expiry_check_ns", d.expiryCheckPeriod);
  kvU(out, "d_expiry_orig", d.expiryCountsOrigination ? 1 : 0);
  kvU(out, "d_negcache", d.negativeCache ? 1 : 0);
  kvU(out, "d_negcache_cap", d.negCacheCapacity);
  fpTime(out, "d_negcache_ttl_ns", d.negCacheTtl);
  kvU(out, "d_cache_cap", d.routeCacheCapacity);
  kvU(out, "d_cache_structure", static_cast<std::uint64_t>(d.cacheStructure));
  kvU(out, "d_freshness", d.freshnessTagging ? 1 : 0);
  kvU(out, "d_sendbuf_cap", d.sendBufferCapacity);
  fpTime(out, "d_sendbuf_to_ns", d.sendBufferTimeout);
  fpTime(out, "d_nonprop_to_ns", d.nonPropRequestTimeout);
  fpTime(out, "d_backoff0_ns", d.requestBackoffInitial);
  fpTime(out, "d_backoff_max_ns", d.requestBackoffMax);
  kvU(out, "d_max_ttl", d.maxRequestTtl);
  fpTime(out, "d_bcast_jitter_ns", d.broadcastJitterMax);
  // AODV knobs.
  const aodv::AodvConfig& a = cfg.aodv;
  fpTime(out, "a_active_to_ns", a.activeRouteTimeout);
  fpTime(out, "a_disc_to_ns", a.discoveryTimeout);
  fpTime(out, "a_disc_backoff_ns", a.discoveryBackoffMax);
  kvU(out, "a_max_ttl", a.maxRequestTtl);
  fpTime(out, "a_bcast_jitter_ns", a.broadcastJitterMax);
  kvU(out, "a_intermediate", a.intermediateReplies ? 1 : 0);
  kvU(out, "a_sendbuf_cap", a.sendBufferCapacity);
  fpTime(out, "a_sendbuf_to_ns", a.sendBufferTimeout);
  fpTime(out, "a_sweep_ns", a.expirySweepPeriod);
  // MAC / PHY knobs.
  const mac::MacConfig& m = cfg.mac;
  fpTime(out, "m_slot_ns", m.slot);
  fpTime(out, "m_sifs_ns", m.sifs);
  fpTime(out, "m_difs_ns", m.difs);
  kvU(out, "m_cwmin", m.cwMin);
  kvU(out, "m_cwmax", m.cwMax);
  kvU(out, "m_srl", static_cast<std::uint64_t>(m.shortRetryLimit));
  kvU(out, "m_lrl", static_cast<std::uint64_t>(m.longRetryLimit));
  kvU(out, "m_rts_thresh", m.rtsThresholdBytes);
  kvU(out, "m_queue_cap", m.queueCapacity);
  fpTime(out, "m_slack_ns", m.timeoutSlack);
  const phy::PhyConfig& p = cfg.phy;
  kvD(out, "p_range", p.rangeMeters);
  kvD(out, "p_bitrate", p.bitRateBps);
  fpTime(out, "p_overhead_ns", p.phyOverhead);
  fpTime(out, "p_prop_ns", p.propagationDelay);
  kvU(out, "p_capture", p.captureEffect ? 1 : 0);
  kvD(out, "p_capture_thresh", p.captureThreshold);
  kvD(out, "p_path_loss", p.pathLossExponent);
  // Fault plan: scalar generator specs plus a digest of scripted events.
  const fault::FaultPlan& f = cfg.fault;
  kvU(out, "f_seed", f.seed);
  kvD(out, "f_churn_frac", f.churn.fraction);
  kvD(out, "f_churn_up", f.churn.meanUpTimeSec);
  kvD(out, "f_churn_down", f.churn.meanDownTimeSec);
  kvU(out, "f_churn_wipe", f.churn.wipeCachesOnRecovery ? 1 : 0);
  kvD(out, "f_bo_gap", f.blackout.meanGapSec);
  kvD(out, "f_bo_dur", f.blackout.meanDurationSec);
  kvU(out, "f_bo_unidir", f.blackout.unidirectional ? 1 : 0);
  kvU(out, "f_bo_inrange", f.blackout.inRangeOnly ? 1 : 0);
  kvD(out, "f_noise_gap", f.noise.meanGapSec);
  kvD(out, "f_noise_dur", f.noise.meanDurationSec);
  kvD(out, "f_noise_prob", f.noise.corruptProb);
  kvD(out, "f_surge_gap", f.surge.meanGapSec);
  kvD(out, "f_surge_dur", f.surge.meanDurationSec);
  kvD(out, "f_surge_mult", f.surge.rateMultiplier);
  std::string scripted;
  for (const fault::FaultEvent& e : f.scripted) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%u@%" PRId64 ":%u>%u:%" PRId64 ":%.17g:%d;",
                  static_cast<unsigned>(e.kind), e.at.ns(), e.node, e.peer,
                  e.duration.ns(), e.value, e.bothDirections ? 1 : 0);
    scripted += buf;
  }
  char sbuf[32];
  std::snprintf(sbuf, sizeof(sbuf), "%016" PRIx64, fnv1a64(scripted));
  kvS(out, "f_scripted", sbuf);
  out += '}';
  return out;
}

std::string cellKey(const ScenarioConfig& cfg) {
  std::string material = configFingerprint(cfg);
  material += "|seed=";
  material += std::to_string(cfg.mobilitySeed);
  material += "|code=";
  material += codeVersion();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fnv1a64(material));
  return buf;
}

std::string runResultToJournalJson(const RunResult& r) {
  std::string out = "{";
  kvI(out, "duration_ns", r.duration.ns(), /*first=*/true);
  kvU(out, "events_executed", r.eventsExecuted);
  kvU(out, "sched_queue_peak", r.schedQueuePeak);
  kvD(out, "wall_seconds", r.wallSeconds);  // reporting only, never merged
  out += ",\"metrics\":{";
  const metrics::Metrics& m = r.metrics;
  kvD(out, "delay_sum_s", m.delaySumSec, /*first=*/true);
#define MANET_X(field, name) kvU(out, name, m.field);
  MANET_JOURNAL_METRIC_U64(MANET_X)
#undef MANET_X
  out += ",\"invalid_hits_by_origin\":[";
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64, i ? "," : "",
                  m.invalidCacheHitsByOrigin[i]);
    out += buf;
  }
  out += "]}";
  out += ",\"series\":{";
  kvI(out, "period_ns", r.series.period.ns(), /*first=*/true);
  arrD(out, "t_s", r.series.timeSec);
  arrD(out, "mean_cache_size", r.series.meanCacheSize);
  arrD(out, "invalid_entry_frac", r.series.invalidEntryFrac);
  arrD(out, "mean_sendbuf", r.series.meanSendBufOccupancy);
  arrU(out, "originated", r.series.originated);
  arrU(out, "delivered", r.series.delivered);
  arrU(out, "dropped", r.series.dropped);
  arrU(out, "cache_hits", r.series.cacheHits);
  arrU(out, "link_breaks", r.series.linkBreaks);
  out += "}}";
  return out;
}

std::optional<RunResult> runResultFromJournalJson(const std::string& json,
                                                  std::string* err) {
  const std::optional<util::JsonValue> doc = util::parseJson(json, err);
  if (!doc || !doc->isObject()) {
    if (err != nullptr && err->empty()) *err = "payload is not an object";
    return std::nullopt;
  }
  RunResult r;
  const util::JsonValue* dur = doc->find("duration_ns");
  const util::JsonValue* met = doc->find("metrics");
  const util::JsonValue* ser = doc->find("series");
  if (dur == nullptr || !dur->isNumber() || met == nullptr ||
      !met->isObject() || ser == nullptr || !ser->isObject()) {
    if (err != nullptr) *err = "payload missing duration/metrics/series";
    return std::nullopt;
  }
  r.duration = sim::Time::nanos(static_cast<std::int64_t>(dur->asNumber()));
  if (!readU64(*doc, "events_executed", &r.eventsExecuted, err)) {
    return std::nullopt;
  }
  if (!readU64(*doc, "sched_queue_peak", &r.schedQueuePeak, err)) {
    return std::nullopt;
  }
  r.wallSeconds = doc->numberAt("wall_seconds");
  metrics::Metrics& m = r.metrics;
  m.delaySumSec = met->numberAt("delay_sum_s");
#define MANET_X(field, name) \
  if (!readU64(*met, name, &m.field, err)) return std::nullopt;
  MANET_JOURNAL_METRIC_U64(MANET_X)
#undef MANET_X
  {
    const util::JsonValue* origins = met->find("invalid_hits_by_origin");
    if (origins == nullptr || !origins->isArray() ||
        origins->asArray().size() != net::kNumRouteOrigins) {
      if (err != nullptr) *err = "bad invalid_hits_by_origin array";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
      m.invalidCacheHitsByOrigin[i] =
          static_cast<std::uint64_t>(origins->asArray()[i].asNumber());
    }
  }
  telemetry::SampleSeries& s = r.series;
  s.period =
      sim::Time::nanos(static_cast<std::int64_t>(ser->numberAt("period_ns")));
  if (!readVecD(*ser, "t_s", &s.timeSec, err) ||
      !readVecD(*ser, "mean_cache_size", &s.meanCacheSize, err) ||
      !readVecD(*ser, "invalid_entry_frac", &s.invalidEntryFrac, err) ||
      !readVecD(*ser, "mean_sendbuf", &s.meanSendBufOccupancy, err) ||
      !readVecU(*ser, "originated", &s.originated, err) ||
      !readVecU(*ser, "delivered", &s.delivered, err) ||
      !readVecU(*ser, "dropped", &s.dropped, err) ||
      !readVecU(*ser, "cache_hits", &s.cacheHits, err) ||
      !readVecU(*ser, "link_breaks", &s.linkBreaks, err)) {
    return std::nullopt;
  }
  return r;
}

std::size_t JournalState::countStatus(const std::string& status) const {
  std::size_t n = 0;
  for (const auto& [key, e] : cells) {
    if (e.status == status) ++n;
  }
  return n;
}

bool JournalWriter::campaign(const CampaignInfo& info) {
  std::string line = "{";
  kvS(line, "type", "campaign", /*first=*/true);
  kvU(line, "schema", kJournalSchemaVersion);
  kvS(line, "plan", info.plan);
  kvU(line, "points", info.points);
  kvU(line, "replications", static_cast<std::uint64_t>(info.replications));
  kvS(line, "code_version", info.codeVersion);
  kvS(line, "cmd", info.cmd);
  line += '}';
  const util::MutexLock lock(mu_);
  return util::appendLineDurable(path_, line);
}

bool JournalWriter::cell(const JournalEntry& e) {
  std::string line = "{";
  kvS(line, "type", "cell", /*first=*/true);
  kvS(line, "label", e.label);
  kvU(line, "rep", static_cast<std::uint64_t>(e.rep));
  kvS(line, "key", e.key);
  kvS(line, "status", e.status);
  kvU(line, "attempts", static_cast<std::uint64_t>(e.attempts));
  if (!e.error.empty()) kvS(line, "error", e.error);
  if (!e.resultJson.empty()) {
    line += ",\"result\":";
    line += e.resultJson;  // pre-serialized object
  }
  line += '}';
  const util::MutexLock lock(mu_);
  return util::appendLineDurable(path_, line);
}

JournalState loadJournal(const std::string& path) {
  JournalState state;
  std::ifstream in(path, std::ios::binary);
  if (!in) return state;  // absent journal == empty campaign history
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++state.totalLines;
    std::string err;
    const std::optional<util::JsonValue> doc = util::parseJson(line, &err);
    // A torn trailing line (crash mid-append) or a corrupt record must not
    // abort the load: everything before it is still a valid prefix and
    // resuming from that prefix is exactly the journal's purpose.
    if (!doc || !doc->isObject()) {
      ++state.corruptLines;
      continue;
    }
    const std::string type = doc->stringAt("type");
    if (type == "campaign") {
      CampaignInfo c;
      c.plan = doc->stringAt("plan");
      c.points = static_cast<std::size_t>(doc->numberAt("points"));
      c.replications = static_cast<int>(doc->numberAt("replications"));
      c.codeVersion = doc->stringAt("code_version");
      c.cmd = doc->stringAt("cmd");
      state.campaigns.push_back(std::move(c));
    } else if (type == "cell") {
      JournalEntry e;
      e.label = doc->stringAt("label");
      e.rep = static_cast<int>(doc->numberAt("rep"));
      e.key = doc->stringAt("key");
      e.status = doc->stringAt("status");
      e.attempts = static_cast<int>(doc->numberAt("attempts", 1));
      e.error = doc->stringAt("error");
      if (e.label.empty() || e.status.empty()) {
        ++state.corruptLines;
        continue;
      }
      if (e.status == "done") {
        const util::JsonValue* res = doc->find("result");
        if (res == nullptr || !res->isObject()) {
          ++state.corruptLines;
          continue;
        }
        // Keep the raw payload text so restoration parses exactly what was
        // written; re-serializing the parsed tree could reorder keys.
        const std::size_t pos = line.find("\"result\":");
        std::string payload = line.substr(pos + 9);
        if (!payload.empty() && payload.back() == '}') payload.pop_back();
        e.resultJson = std::move(payload);
        e.wallSeconds = res->numberAt("wall_seconds");
      }
      state.cells[{e.label, e.rep}] = std::move(e);
    }
    // Unknown record types from future schema versions are skipped quietly.
  }
  return state;
}

}  // namespace manet::scenario
