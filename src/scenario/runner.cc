#include "src/scenario/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/scenario/journal.h"
#include "src/scenario/supervisor.h"
#include "src/telemetry/export.h"
#include "src/telemetry/telemetry_config.h"
#include "src/util/atomic_file.h"
#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::scenario {

namespace {

ScenarioConfig taskConfig(const SweepPoint& point, int rep, int replications,
                          std::size_t numPoints) {
  ScenarioConfig cfg = point.config;
  cfg.mobilitySeed =
      point.config.mobilitySeed + static_cast<std::uint64_t>(rep);
  // Concurrent runs must never share a trace file: tag the path with the
  // point label (multi-point sweeps) and replication index. A single
  // (point, seed) run keeps the configured path untouched.
  const auto tagPath = [&](std::string& path) {
    if (path.empty()) return;
    if (numPoints > 1) {
      path = telemetry::perRunPath(path, point.label, rep);
    } else if (replications > 1) {
      path = telemetry::perRunPath(path, rep);
    }
  };
  tagPath(cfg.telemetry.traceJsonlPath);
  tagPath(cfg.telemetry.perfettoPath);
  return cfg;
}

void addToAggregate(AggregateResult& agg, const RunResult& r) {
  const metrics::Metrics& m = r.metrics;
  agg.deliveryFraction.add(m.packetDeliveryFraction());
  agg.avgDelaySec.add(m.avgDelaySec());
  agg.normalizedOverhead.add(m.normalizedOverhead());
  agg.throughputKbps.add(m.throughputKbps(r.duration));
  agg.goodReplyPct.add(m.goodReplyPct());
  agg.invalidCacheHitPct.add(m.invalidCacheHitPct());
  agg.cacheHits.add(static_cast<double>(m.cacheHits));
  agg.linkBreaks.add(static_cast<double>(m.linkBreaksDetected));
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    agg.invalidHitsByOrigin[i].add(
        static_cast<double>(m.invalidCacheHitsByOrigin[i]));
  }
}

// Fail fast, before any cell runs: a campaign that only discovers an
// unwritable export directory when its first point finishes has wasted
// every cell up to that moment.
void probeWritableDir(const std::string& dir, const char* what) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    throw std::invalid_argument(
        std::string(what) + " '" + dir + "' is not a creatable directory" +
        (ec ? " (" + ec.message() + ")" : "") +
        "; fix the path or permissions before launching the campaign");
  }
  const std::string probe = dir + "/.manet_write_probe";
  if (!util::atomicWriteFile(probe, "probe\n")) {
    throw std::invalid_argument(std::string(what) + " '" + dir +
                                "' is not writable; fix permissions before "
                                "launching the campaign");
  }
  fs::remove(probe, ec);
}

std::optional<std::string> slurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The hidden --run-cell child protocol: execute exactly one cell of the
// (identically rebuilt) plan, atomically write its lossless result JSON,
// and leave the process — the supervising parent interprets files and exit
// codes, never partial output.
[[noreturn]] void runCellChild(const SweepPoint& point,
                               const RunnerOptions& opts, int reps,
                               std::size_t numPoints) {
  const SweepPoint* pt = &point;
  if (opts.runCellRep < 0 || opts.runCellRep >= reps) {
    std::fprintf(stderr, "--run-cell: rep %d out of range [0,%d)\n",
                 opts.runCellRep, reps);
    std::exit(2);
  }
  try {
    const ScenarioConfig cfg =
        taskConfig(*pt, opts.runCellRep, reps, numPoints);
    const RunResult r = opts.runFn ? opts.runFn(*pt, opts.runCellRep, cfg)
                                   : runScenario(cfg);
    if (!util::atomicWriteFile(opts.runCellOut, runResultToJournalJson(r))) {
      std::exit(3);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--run-cell %s r%d: %s\n", opts.runCellLabel.c_str(),
                 opts.runCellRep, e.what());
    std::exit(1);
  }
  std::exit(0);
}

// Warn-only watchdog for in-process cells: a thread cannot be killed
// safely, so an overdue cell gets a loud stderr note (once) instead of a
// SIGKILL — isolate-cells mode is the enforcing variant.
class InProcessWatchdog {
 public:
  InProcessWatchdog(double timeoutSec, std::size_t numTasks)
      : timeoutSec_(timeoutSec) {
    (void)numTasks;
    if (timeoutSec_ <= 0) return;
    thread_ = std::thread([this] { loop(); });
  }

  ~InProcessWatchdog() {
    if (!thread_.joinable()) return;
    {
      const util::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notifyAll();
    thread_.join();
  }

  void enter(std::size_t taskIdx, const std::string& label, int rep)
      EXCLUDES(mu_) {
    if (timeoutSec_ <= 0) return;
    // Wall-clock deadline over a real thread's elapsed time; unrelated to
    // simulated time and never fed back into the simulation.
    // manet-lint: allow(wall-clock): in-process cell watchdog
    const auto now = std::chrono::steady_clock::now();
    const util::MutexLock lock(mu_);
    active_[taskIdx] = {now, label, rep};
  }

  void leave(std::size_t taskIdx) EXCLUDES(mu_) {
    if (timeoutSec_ <= 0) return;
    const util::MutexLock lock(mu_);
    active_.erase(taskIdx);
    warned_.erase(taskIdx);
  }

 private:
  struct Cell {
    // manet-lint: allow(wall-clock): watchdog bookkeeping, reports only
    std::chrono::steady_clock::time_point start;
    std::string label;
    int rep = 0;
  };

  void loop() EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    while (!stop_) {
      cv_.waitFor(mu_, std::chrono::milliseconds(200));
      if (stop_) return;
      // manet-lint: allow(wall-clock): in-process cell watchdog
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [idx, cell] : active_) {
        const double elapsed =
            std::chrono::duration<double>(now - cell.start).count();
        if (elapsed < timeoutSec_ || warned_.count(idx) != 0) continue;
        warned_.insert(idx);
        const util::MutexLock err(util::stderrMutex());
        std::fprintf(stderr,
                     "  WATCHDOG: cell %s r%d exceeded %.1fs (%.1fs elapsed); "
                     "cannot kill an in-process cell — rerun with "
                     "--isolate-cells to enforce the deadline\n",
                     cell.label.c_str(), cell.rep, timeoutSec_, elapsed);
      }
    }
  }

  const double timeoutSec_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::map<std::size_t, Cell> active_ GUARDED_BY(mu_);
  std::set<std::size_t> warned_ GUARDED_BY(mu_);
  std::thread thread_;
};

}  // namespace

const AggregateResult& SweepResult::at(std::string_view label) const {
  for (const PointResult& p : points) {
    if (p.point.label == label) return p.agg;
  }
  throw std::out_of_range("sweep result has no point labelled '" +
                          std::string(label) + "'");
}

int resolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  if (const char* v = std::getenv("MANET_JOBS"); v != nullptr && v[0] != '\0') {  // NOLINT(concurrency-mt-unsafe)
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

SweepResult runPlan(const ExperimentPlan& plan, RunnerOptions opts) {
  if (opts.replications < 1) {
    throw std::invalid_argument("experiment plan '" + plan.name() +
                                "': replications must be >= 1, got " +
                                std::to_string(opts.replications));
  }
  if (opts.maxAttempts < 1) {
    throw std::invalid_argument("runPlan: maxAttempts must be >= 1, got " +
                                std::to_string(opts.maxAttempts));
  }
  const std::vector<SweepPoint> points = plan.points();  // validates
  const int reps = opts.replications;

  // Child cell mode: run exactly one cell and leave the process. A label
  // that is not in THIS plan returns an empty result instead — benches
  // that execute several plans in sequence (e.g. the ablations) fall
  // through until the owning plan is reached; if none matches, the child
  // exits without writing its result file and the parent treats that as a
  // cell failure.
  if (!opts.runCellOut.empty()) {
    for (const SweepPoint& p : points) {
      if (p.label == opts.runCellLabel) {
        runCellChild(p, opts, reps, points.size());
      }
    }
    return SweepResult{};
  }

  if (opts.isolateCells && opts.selfCommand.empty()) {
    throw std::invalid_argument(
        "runPlan: isolateCells requires selfCommand (argv[0] plus "
        "plan-shaping flags, so cells can be re-executed in a child)");
  }
  if (opts.resume && opts.journalPath.empty()) {
    throw std::invalid_argument(
        "runPlan: resume requires a journal path (--journal FILE)");
  }

  const std::size_t numTasks = points.size() * static_cast<std::size_t>(reps);
  const int jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(resolveJobs(opts.jobs)),
                            numTasks));

  // Fail fast on unwritable artifact destinations before any cell runs.
  {
    std::set<std::string> dirs;
    for (const SweepPoint& p : points) {
      if (!p.config.telemetry.exportDir.empty()) {
        dirs.insert(p.config.telemetry.exportDir);
      }
    }
    for (const std::string& d : dirs) probeWritableDir(d, "export dir");
  }

  // Journal: load prior state for --resume, then append this campaign's
  // header — which doubles as the journal's own writability probe.
  std::unique_ptr<JournalWriter> journal;
  JournalState prior;
  if (!opts.journalPath.empty()) {
    if (opts.resume) prior = loadJournal(opts.journalPath);
    journal = std::make_unique<JournalWriter>(opts.journalPath);
    CampaignInfo info;
    info.plan = plan.name();
    info.points = points.size();
    info.replications = reps;
    info.codeVersion = codeVersion();
    info.cmd = opts.campaignCmd;
    if (!journal->campaign(info)) {
      throw std::invalid_argument(
          "journal '" + opts.journalPath +
          "' is not writable; fix the path or permissions before launching "
          "the campaign");
    }
    if (prior.corruptLines > 0) {
      std::fprintf(stderr,
                   "  journal %s: skipped %zu corrupt line(s) (crash tail); "
                   "resuming from the valid prefix\n",
                   opts.journalPath.c_str(), prior.corruptLines);
    }
  }

  // Preallocated result grid: workers write disjoint slots, so the only
  // shared mutable state is the task cursor.
  std::vector<std::vector<RunResult>> results(points.size());
  std::vector<std::vector<std::exception_ptr>> errors(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    results[p].resize(static_cast<std::size_t>(reps));
    errors[p].resize(static_cast<std::size_t>(reps));
  }
  std::vector<char> restoredFlag(numTasks, 0);
  std::vector<char> quarantinedFlag(numTasks, 0);
  std::vector<int> attemptsUsed(numTasks, 1);
  std::vector<std::string> cellErrors(numTasks);

  // Resume preload: restore every journaled cell whose key still matches
  // this build + config. A key mismatch (edited config, new code version)
  // silently re-runs the cell — stale results must never leak into a
  // campaign they no longer describe.
  std::size_t resumedCells = 0;
  if (opts.resume) {
    for (std::size_t t = 0; t < numTasks; ++t) {
      const std::size_t p = t / static_cast<std::size_t>(reps);
      const int rep = static_cast<int>(t % static_cast<std::size_t>(reps));
      const auto it = prior.cells.find({points[p].label, rep});
      if (it == prior.cells.end() || it->second.status != "done") continue;
      const ScenarioConfig cfg = taskConfig(points[p], rep, reps,
                                            points.size());
      if (it->second.key != cellKey(cfg)) continue;
      std::optional<RunResult> r =
          runResultFromJournalJson(it->second.resultJson);
      if (!r) continue;
      results[p][static_cast<std::size_t>(rep)] = std::move(*r);
      restoredFlag[t] = 1;
      ++resumedCells;
    }
    if (opts.progress && resumedCells > 0) {
      std::fprintf(stderr, "  resume: %zu/%zu cells restored from %s\n",
                   resumedCells, numTasks, opts.journalPath.c_str());
    }
  }

  std::atomic<std::size_t> nextTask{0};
  std::atomic<std::size_t> doneTasks{0};

  // Warn-only deadline for in-process cells; isolated cells get the real
  // SIGKILL watchdog inside runChildProcess.
  InProcessWatchdog watchdog(opts.isolateCells ? 0.0 : opts.cellTimeoutSec,
                             numTasks);

  const auto journalCell = [&](const SweepPoint& point, int rep,
                               const std::string& key,
                               const std::string& status, int attempts,
                               const std::string& error,
                               std::string resultJson) {
    if (!journal) return;
    JournalEntry e;
    e.label = point.label;
    e.rep = rep;
    e.key = key;
    e.status = status;
    e.attempts = attempts;
    e.error = error;
    e.resultJson = std::move(resultJson);
    journal->cell(e);
  };

  const auto runTask = [&](std::size_t taskIdx) {
    if (restoredFlag[taskIdx] != 0) return;
    const std::size_t pointIdx = taskIdx / static_cast<std::size_t>(reps);
    const int rep = static_cast<int>(taskIdx % static_cast<std::size_t>(reps));
    const SweepPoint& point = points[pointIdx];
    const ScenarioConfig cfg = taskConfig(point, rep, reps, points.size());
    const std::string key = journal ? cellKey(cfg) : std::string();
    for (int attempt = 1;; ++attempt) {
      attemptsUsed[taskIdx] = attempt;
      RunResult r;
      bool ok = false;
      std::string errMsg;
      if (opts.isolateCells) {
        const std::string outPath =
            (std::filesystem::temp_directory_path() /
             ("manet_cell_" + std::to_string(point.index) + "_r" +
              std::to_string(rep) + "_" + key + ".json"))
                .string();
        std::vector<std::string> argv = opts.selfCommand;
        argv.push_back("--run-cell");
        argv.push_back(point.label);
        argv.push_back(std::to_string(rep));
        argv.push_back(outPath);
        const ChildResult cr = runChildProcess(argv, opts.cellTimeoutSec);
        if (cr.ok()) {
          if (const std::optional<std::string> payload = slurpFile(outPath)) {
            std::string perr;
            if (std::optional<RunResult> parsed =
                    runResultFromJournalJson(*payload, &perr)) {
              r = std::move(*parsed);
              ok = true;
            } else {
              errMsg = "child result unreadable: " + perr;
            }
          } else {
            errMsg = "child exited 0 but wrote no result file";
          }
        } else {
          errMsg = cr.describe();
        }
        std::error_code ec;
        std::filesystem::remove(outPath, ec);
      } else {
        watchdog.enter(taskIdx, point.label, rep);
        try {
          r = opts.runFn ? opts.runFn(point, rep, cfg) : runScenario(cfg);
          ok = true;
        } catch (const std::exception& e) {
          errMsg = e.what();
          errors[pointIdx][static_cast<std::size_t>(rep)] =
              std::current_exception();
        } catch (...) {
          errMsg = "unknown exception";
          errors[pointIdx][static_cast<std::size_t>(rep)] =
              std::current_exception();
        }
        watchdog.leave(taskIdx);
      }
      if (ok) {
        // A retry that succeeds clears the earlier attempt's failure.
        errors[pointIdx][static_cast<std::size_t>(rep)] = nullptr;
        journalCell(point, rep, key, "done", attempt, "",
                    runResultToJournalJson(r));
        if (opts.progress) {
          const std::size_t done =
              doneTasks.fetch_add(1, std::memory_order_relaxed) + 1;
          const util::MutexLock lock(util::stderrMutex());
          std::fprintf(stderr,
                       "  [%zu/%zu] %s r%d: delivery %.3f, %.2fs wall\n",
                       done, numTasks, point.label.c_str(), rep,
                       r.metrics.packetDeliveryFraction(), r.wallSeconds);
        }
        results[pointIdx][static_cast<std::size_t>(rep)] = std::move(r);
        return;
      }
      if (attempt >= opts.maxAttempts) {
        cellErrors[taskIdx] = errMsg;
        if (opts.isolateCells) {
          quarantinedFlag[taskIdx] = 1;
          journalCell(point, rep, key, "quarantined", attempt, errMsg, "");
          const util::MutexLock lock(util::stderrMutex());
          std::fprintf(stderr, "  QUARANTINED %s r%d after %d attempt(s): %s\n",
                       point.label.c_str(), rep, attempt, errMsg.c_str());
        } else {
          journalCell(point, rep, key, "failed", attempt, errMsg, "");
        }
        return;
      }
      const double backoff =
          opts.retryBackoffSec * static_cast<double>(1 << (attempt - 1));
      {
        const util::MutexLock lock(util::stderrMutex());
        std::fprintf(stderr,
                     "  RETRY %s r%d (attempt %d/%d failed: %s); backing off "
                     "%.1fs\n",
                     point.label.c_str(), rep, attempt, opts.maxAttempts,
                     errMsg.c_str(), backoff);
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  };

  // Audited wall-clock read: brackets the whole sweep for throughput
  // reporting only (SweepResult::wallSeconds, a volatile field excluded
  // from deterministic exports); no simulation decision reads it.
  // manet-lint: allow(wall-clock): sweep timing for reports only
  const auto wallStart = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    // Serial path: run in the calling thread, no pool — behaviourally the
    // legacy runReplicated loop (heartbeats, sinks and all).
    for (std::size_t t = 0; t < numTasks; ++t) runTask(t);
  } else {
    // Work-stealing pool: idle workers pull the next unclaimed task from
    // the shared cursor, so long cells (e.g. pause-0 high-mobility runs)
    // never leave a fixed shard of short ones idle.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t t =
              nextTask.fetch_add(1, std::memory_order_relaxed);
          if (t >= numTasks) return;
          runTask(t);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  // manet-lint: allow(wall-clock): sweep timing for reports only
  const auto wallEnd = std::chrono::steady_clock::now();

  // Failures surface deterministically: first failing cell in task order,
  // regardless of which worker hit it first.
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (const std::exception_ptr& e : errors[p]) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Deterministic merge: plan order, then seed order. Aggregation, onRun
  // observation and export all happen here, serially, so every artifact is
  // byte-identical no matter how the pool interleaved the runs. Quarantined
  // cells are excluded from aggregates and listed in the export, so a
  // degraded campaign's artifacts are self-describing.
  SweepResult out;
  out.jobs = jobs;
  out.replications = reps;
  out.resumedCells = resumedCells;
  out.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  out.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult pr;
    pr.point = points[p];
    std::vector<int> quarantinedReps;
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t t =
          p * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep);
      if (quarantinedFlag[t] != 0) {
        quarantinedReps.push_back(rep);
        out.quarantined.push_back(
            {pr.point.label, rep, attemptsUsed[t], cellErrors[t]});
        continue;
      }
      RunResult& r = results[p][static_cast<std::size_t>(rep)];
      addToAggregate(pr.agg, r);
      if (opts.onRun) opts.onRun(pr.point, rep, r);
      pr.agg.runs.push_back(std::move(r));
    }
    if (!pr.point.config.telemetry.exportDir.empty()) {
      telemetry::exportAggregate(pr.agg, pr.point.config, pr.point.label,
                                 quarantinedReps.empty() ? nullptr
                                                         : &quarantinedReps);
    }
    if (!opts.keepRuns) {
      // The aggregate and exports are complete; drop the per-run payloads
      // (sampled series, profiles) so big grids stay flat in memory.
      pr.agg.runs.clear();
      pr.agg.runs.shrink_to_fit();
    }
    out.points.push_back(std::move(pr));
  }
  return out;
}

std::string failureDigest(const SweepResult& result) {
  if (result.quarantined.empty()) return "";
  std::ostringstream os;
  os << "FAILURE DIGEST: " << result.quarantined.size() << " cell(s) "
     << "quarantined (excluded from aggregates):\n";
  for (const CellOutcome& c : result.quarantined) {
    os << "  " << c.label << " r" << c.rep << ": " << c.error << " ("
       << c.attempts << " attempt" << (c.attempts == 1 ? "" : "s") << ")\n";
  }
  os << "Inspect with `manet_ctl failures <journal>`; a later run with "
        "--resume retries only the quarantined cells.\n";
  return os.str();
}

int reportFailures(const SweepResult& result) {
  const std::string digest = failureDigest(result);
  if (digest.empty()) return 0;
  std::fprintf(stderr, "%s", digest.c_str());
  return 1;
}

Table pointTable(const ExperimentPlan& plan, const SweepResult& result) {
  std::vector<std::string> header;
  for (const Axis& a : plan.axes()) header.push_back(a.name);
  for (const MetricColumn& m : plan.metrics()) header.push_back(m.name);
  Table table(header);
  for (const PointResult& p : result.points) {
    std::vector<std::string> row = p.point.coordinates;
    for (const MetricColumn& m : plan.metrics()) {
      row.push_back(Table::num(m.fn(p.agg), m.precision));
    }
    table.addRow(row);
  }
  return table;
}

Table pivotTable(const ExperimentPlan& plan, const SweepResult& result,
                 const std::string& metricName,
                 const std::string& rowHeader) {
  if (plan.axes().size() != 2) {
    throw std::invalid_argument("pivotTable needs exactly 2 axes, plan '" +
                                plan.name() + "' has " +
                                std::to_string(plan.axes().size()));
  }
  const MetricColumn* metric = nullptr;
  for (const MetricColumn& m : plan.metrics()) {
    if (m.name == metricName) metric = &m;
  }
  if (metric == nullptr) {
    throw std::invalid_argument("plan '" + plan.name() +
                                "' has no metric named '" + metricName + "'");
  }
  const Axis& rows = plan.axes()[0];
  const Axis& cols = plan.axes()[1];
  std::vector<std::string> header;
  header.push_back(rowHeader.empty() ? rows.name : rowHeader);
  for (const AxisValue& c : cols.values) header.push_back(c.label);
  Table table(header);
  // points() is row-major (first axis slowest), so the grid is contiguous.
  for (std::size_t r = 0; r < rows.values.size(); ++r) {
    std::vector<std::string> row{rows.values[r].label};
    for (std::size_t c = 0; c < cols.values.size(); ++c) {
      const PointResult& p =
          result.points[r * cols.values.size() + c];
      row.push_back(Table::num(metric->fn(p.agg), metric->precision));
    }
    table.addRow(row);
  }
  return table;
}

}  // namespace manet::scenario
