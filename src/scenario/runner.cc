#include "src/scenario/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/telemetry/export.h"
#include "src/telemetry/telemetry_config.h"
#include "src/util/logging.h"

namespace manet::scenario {

namespace {

ScenarioConfig taskConfig(const SweepPoint& point, int rep, int replications,
                          std::size_t numPoints) {
  ScenarioConfig cfg = point.config;
  cfg.mobilitySeed =
      point.config.mobilitySeed + static_cast<std::uint64_t>(rep);
  // Concurrent runs must never share a trace file: tag the path with the
  // point label (multi-point sweeps) and replication index. A single
  // (point, seed) run keeps the configured path untouched.
  const auto tagPath = [&](std::string& path) {
    if (path.empty()) return;
    if (numPoints > 1) {
      path = telemetry::perRunPath(path, point.label, rep);
    } else if (replications > 1) {
      path = telemetry::perRunPath(path, rep);
    }
  };
  tagPath(cfg.telemetry.traceJsonlPath);
  tagPath(cfg.telemetry.perfettoPath);
  return cfg;
}

void addToAggregate(AggregateResult& agg, const RunResult& r) {
  const metrics::Metrics& m = r.metrics;
  agg.deliveryFraction.add(m.packetDeliveryFraction());
  agg.avgDelaySec.add(m.avgDelaySec());
  agg.normalizedOverhead.add(m.normalizedOverhead());
  agg.throughputKbps.add(m.throughputKbps(r.duration));
  agg.goodReplyPct.add(m.goodReplyPct());
  agg.invalidCacheHitPct.add(m.invalidCacheHitPct());
  agg.cacheHits.add(static_cast<double>(m.cacheHits));
  agg.linkBreaks.add(static_cast<double>(m.linkBreaksDetected));
  for (std::size_t i = 0; i < net::kNumRouteOrigins; ++i) {
    agg.invalidHitsByOrigin[i].add(
        static_cast<double>(m.invalidCacheHitsByOrigin[i]));
  }
}

}  // namespace

const AggregateResult& SweepResult::at(std::string_view label) const {
  for (const PointResult& p : points) {
    if (p.point.label == label) return p.agg;
  }
  throw std::out_of_range("sweep result has no point labelled '" +
                          std::string(label) + "'");
}

int resolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  if (const char* v = std::getenv("MANET_JOBS"); v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

SweepResult runPlan(const ExperimentPlan& plan, RunnerOptions opts) {
  if (opts.replications < 1) {
    throw std::invalid_argument("experiment plan '" + plan.name() +
                                "': replications must be >= 1, got " +
                                std::to_string(opts.replications));
  }
  const std::vector<SweepPoint> points = plan.points();  // validates
  const int reps = opts.replications;
  const std::size_t numTasks = points.size() * static_cast<std::size_t>(reps);
  const int jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(resolveJobs(opts.jobs)),
                            numTasks));

  // Preallocated result grid: workers write disjoint slots, so the only
  // shared mutable state is the task cursor.
  std::vector<std::vector<RunResult>> results(points.size());
  std::vector<std::vector<std::exception_ptr>> errors(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    results[p].resize(static_cast<std::size_t>(reps));
    errors[p].resize(static_cast<std::size_t>(reps));
  }

  std::atomic<std::size_t> nextTask{0};
  std::atomic<std::size_t> doneTasks{0};

  const auto runTask = [&](std::size_t taskIdx) {
    const std::size_t pointIdx = taskIdx / static_cast<std::size_t>(reps);
    const int rep = static_cast<int>(taskIdx % static_cast<std::size_t>(reps));
    const SweepPoint& point = points[pointIdx];
    try {
      const ScenarioConfig cfg =
          taskConfig(point, rep, reps, points.size());
      RunResult r = opts.runFn ? opts.runFn(point, rep, cfg)
                               : runScenario(cfg);
      if (opts.progress) {
        const std::size_t done =
            doneTasks.fetch_add(1, std::memory_order_relaxed) + 1;
        const std::lock_guard<std::mutex> lock(util::stderrMutex());
        std::fprintf(stderr,
                     "  [%zu/%zu] %s r%d: delivery %.3f, %.2fs wall\n", done,
                     numTasks, point.label.c_str(), rep,
                     r.metrics.packetDeliveryFraction(), r.wallSeconds);
      }
      results[pointIdx][static_cast<std::size_t>(rep)] = std::move(r);
    } catch (...) {
      errors[pointIdx][static_cast<std::size_t>(rep)] =
          std::current_exception();
    }
  };

  // Audited wall-clock read: brackets the whole sweep for throughput
  // reporting only (SweepResult::wallSeconds, a volatile field excluded
  // from deterministic exports); no simulation decision reads it.
  // manet-lint: allow(wall-clock): sweep timing for reports only
  const auto wallStart = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    // Serial path: run in the calling thread, no pool — behaviourally the
    // legacy runReplicated loop (heartbeats, sinks and all).
    for (std::size_t t = 0; t < numTasks; ++t) runTask(t);
  } else {
    // Work-stealing pool: idle workers pull the next unclaimed task from
    // the shared cursor, so long cells (e.g. pause-0 high-mobility runs)
    // never leave a fixed shard of short ones idle.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t t =
              nextTask.fetch_add(1, std::memory_order_relaxed);
          if (t >= numTasks) return;
          runTask(t);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  // manet-lint: allow(wall-clock): sweep timing for reports only
  const auto wallEnd = std::chrono::steady_clock::now();

  // Failures surface deterministically: first failing cell in task order,
  // regardless of which worker hit it first.
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (const std::exception_ptr& e : errors[p]) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Deterministic merge: plan order, then seed order. Aggregation, onRun
  // observation and export all happen here, serially, so every artifact is
  // byte-identical no matter how the pool interleaved the runs.
  SweepResult out;
  out.jobs = jobs;
  out.replications = reps;
  out.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  out.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult pr;
    pr.point = points[p];
    for (int rep = 0; rep < reps; ++rep) {
      RunResult& r = results[p][static_cast<std::size_t>(rep)];
      addToAggregate(pr.agg, r);
      if (opts.onRun) opts.onRun(pr.point, rep, r);
      pr.agg.runs.push_back(std::move(r));
    }
    if (!pr.point.config.telemetry.exportDir.empty()) {
      telemetry::exportAggregate(pr.agg, pr.point.config, pr.point.label);
    }
    if (!opts.keepRuns) {
      // The aggregate and exports are complete; drop the per-run payloads
      // (sampled series, profiles) so big grids stay flat in memory.
      pr.agg.runs.clear();
      pr.agg.runs.shrink_to_fit();
    }
    out.points.push_back(std::move(pr));
  }
  return out;
}

Table pointTable(const ExperimentPlan& plan, const SweepResult& result) {
  std::vector<std::string> header;
  for (const Axis& a : plan.axes()) header.push_back(a.name);
  for (const MetricColumn& m : plan.metrics()) header.push_back(m.name);
  Table table(header);
  for (const PointResult& p : result.points) {
    std::vector<std::string> row = p.point.coordinates;
    for (const MetricColumn& m : plan.metrics()) {
      row.push_back(Table::num(m.fn(p.agg), m.precision));
    }
    table.addRow(row);
  }
  return table;
}

Table pivotTable(const ExperimentPlan& plan, const SweepResult& result,
                 const std::string& metricName,
                 const std::string& rowHeader) {
  if (plan.axes().size() != 2) {
    throw std::invalid_argument("pivotTable needs exactly 2 axes, plan '" +
                                plan.name() + "' has " +
                                std::to_string(plan.axes().size()));
  }
  const MetricColumn* metric = nullptr;
  for (const MetricColumn& m : plan.metrics()) {
    if (m.name == metricName) metric = &m;
  }
  if (metric == nullptr) {
    throw std::invalid_argument("plan '" + plan.name() +
                                "' has no metric named '" + metricName + "'");
  }
  const Axis& rows = plan.axes()[0];
  const Axis& cols = plan.axes()[1];
  std::vector<std::string> header;
  header.push_back(rowHeader.empty() ? rows.name : rowHeader);
  for (const AxisValue& c : cols.values) header.push_back(c.label);
  Table table(header);
  // points() is row-major (first axis slowest), so the grid is contiguous.
  for (std::size_t r = 0; r < rows.values.size(); ++r) {
    std::vector<std::string> row{rows.values[r].label};
    for (std::size_t c = 0; c < cols.values.size(); ++c) {
      const PointResult& p =
          result.points[r * cols.values.size() + c];
      row.push_back(Table::num(metric->fn(p.agg), metric->precision));
    }
    table.addRow(row);
  }
  return table;
}

}  // namespace manet::scenario
