// Aligned text tables and CSV output for the bench harnesses, so each bench
// prints the same rows/series the paper's figures and tables report.
#pragma once

#include <string>
#include <vector>

namespace manet::scenario {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);
  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Render with aligned columns.
  std::string str() const;
  /// Render as CSV (for plotting).
  std::string csv() const;

  /// Print both table (stdout) and, if `csvPath` is non-empty, write CSV.
  void print(const std::string& title, const std::string& csvPath = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manet::scenario
