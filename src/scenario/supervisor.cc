#include "src/scenario/supervisor.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

extern char** environ;

namespace manet::scenario {

std::string ChildResult::describe() const {
  char buf[96];
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kExit:
      std::snprintf(buf, sizeof(buf), "exit %d", exitCode);
      return buf;
    case Outcome::kSignal:
      std::snprintf(buf, sizeof(buf), "signal %d (%s)", signal,
                    strsignal(signal));
      return buf;
    case Outcome::kTimeout:
      std::snprintf(buf, sizeof(buf), "timeout after %.1fs", wallSeconds);
      return buf;
    case Outcome::kSpawnFailed:
      return "spawn failed";
  }
  return "unknown";
}

ChildResult runChildProcess(const std::vector<std::string>& argv,
                            double timeoutSec) {
  ChildResult res;
  if (argv.empty()) return res;
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  // posix_spawnp instead of fork+exec: runPlan's worker threads may be
  // alive when a cell is dispatched, and fork() in a multithreaded process
  // only leaves async-signal-safe calls available before exec. The p
  // variant resolves a bare program name through PATH, matching how the
  // campaign binary itself was invoked.
  pid_t pid = -1;
  // manet-lint: allow(subprocess): supervised cell isolation IS this layer
  const int rc = ::posix_spawnp(&pid, cargv[0], nullptr, nullptr,
                                cargv.data(), environ);
  if (rc != 0) {
    std::fprintf(stderr, "supervisor: posix_spawn %s: %s\n", argv[0].c_str(),
                 std::strerror(rc));
    return res;
  }

  // Wall-clock watchdog: the deadline bounds real elapsed time of an
  // external process, which has nothing to do with simulated time.
  // manet-lint: allow(wall-clock): child-process watchdog deadline
  const auto start = std::chrono::steady_clock::now();
  bool killed = false;
  int status = 0;
  for (;;) {
    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid) break;
    if (w < 0 && errno != EINTR) {
      std::fprintf(stderr, "supervisor: waitpid: %s\n", std::strerror(errno));
      return res;
    }
    // manet-lint: allow(wall-clock): child-process watchdog deadline
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - start).count();
    if (timeoutSec > 0 && elapsed >= timeoutSec && !killed) {
      ::kill(pid, SIGKILL);
      killed = true;  // keep polling: reap the corpse, then report timeout
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // manet-lint: allow(wall-clock): child-process watchdog deadline
  const auto end = std::chrono::steady_clock::now();
  res.wallSeconds = std::chrono::duration<double>(end - start).count();

  if (killed) {
    res.outcome = ChildResult::Outcome::kTimeout;
  } else if (WIFEXITED(status)) {
    res.exitCode = WEXITSTATUS(status);
    res.outcome = res.exitCode == 0 ? ChildResult::Outcome::kOk
                                    : ChildResult::Outcome::kExit;
  } else if (WIFSIGNALED(status)) {
    res.signal = WTERMSIG(status);
    res.outcome = ChildResult::Outcome::kSignal;
  }
  return res;
}

}  // namespace manet::scenario
