// Supervised child-process execution for isolated experiment cells.
//
// With --isolate-cells, runPlan re-executes its own binary per cell
// (replay_runner-style: same argv rebuilds the same deterministic plan, a
// hidden --run-cell flag selects one cell, the child writes its lossless
// result JSON atomically and exits). The supervisor here spawns that child,
// enforces a wall-clock watchdog deadline (SIGKILL on expiry — safe because
// the child owns no shared state), and reports exactly how it ended so the
// runner can retry, quarantine, or accept the result.
#pragma once

#include <string>
#include <vector>

namespace manet::scenario {

/// How a supervised child ended.
struct ChildResult {
  enum class Outcome {
    kOk,       // exited 0
    kExit,     // exited nonzero (exitCode set)
    kSignal,   // killed by a signal, e.g. a sanitizer abort (signal set)
    kTimeout,  // watchdog deadline hit; child was SIGKILLed
    kSpawnFailed,
  };
  Outcome outcome = Outcome::kSpawnFailed;
  int exitCode = 0;
  int signal = 0;
  double wallSeconds = 0.0;

  bool ok() const { return outcome == Outcome::kOk; }
  /// Human-readable failure description ("exit 3", "signal 11 (SIGSEGV)",
  /// "timeout after 4.0s", ...).
  std::string describe() const;
};

/// Spawn `argv` (argv[0] is the executable path) and wait for it, killing
/// it if it outlives `timeoutSec` (<= 0 means no deadline). Stdout/stderr
/// are inherited. Never throws; spawn failures are reported in the result.
ChildResult runChildProcess(const std::vector<std::string>& argv,
                            double timeoutSec);

}  // namespace manet::scenario
