// Durable per-cell result journal for experiment campaigns.
//
// A campaign (one runPlan call) appends one JSONL record per completed
// (point x seed) cell to an append-only journal file, each append flushed
// and fsynced (util::appendLineDurable) so a crash, OOM kill, or power cut
// loses at most the cell that was in flight. Records are keyed by the
// plan's collision-checked stable cell label plus a content hash of
// (config fingerprint, per-cell mobility seed, code version); --resume
// loads the journal, restores every matching completed cell losslessly
// (doubles serialized with %.17g round-trip exactly), and re-runs only the
// rest — aggregates and exports are byte-identical to an uninterrupted run
// (proven by tests/integration/resume_determinism_test.cc).
//
// Journal line shapes (schema version kJournalSchemaVersion):
//   {"type":"campaign","schema":1,"plan":...,"points":N,"replications":R,
//    "code_version":...,"cmd":...}
//   {"type":"cell","label":...,"rep":N,"key":"<16-hex>","status":"done",
//    "attempts":N,"result":{...lossless RunResult...}}
//   {"type":"cell",...,"status":"quarantined"|"failed","error":...}
//
// The loader is deliberately forgiving: a truncated or corrupt line (the
// tail a crash can leave despite O_APPEND, or a concurrent writer bug)
// is counted and skipped, never fatal — an interrupted campaign must
// always be resumable from whatever prefix survived.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::scenario {

inline constexpr int kJournalSchemaVersion = 1;

/// Build/code identity baked in at configure time (git SHA when available).
/// Part of every cell key: results journaled by a different build never
/// satisfy a --resume, they are re-run.
std::string codeVersion();

/// Stable serialization of every config knob that can influence simulation
/// results (topology, traffic, protocol + DSR/AODV/MAC/PHY knobs, fault
/// plan). Telemetry/profiling knobs are excluded on purpose: tracing is
/// proven not to perturb results, so a resume may change trace settings.
std::string configFingerprint(const ScenarioConfig& cfg);

/// Content hash (16 hex chars, FNV-1a 64) of configFingerprint + the
/// cell's final mobility seed + codeVersion().
std::string cellKey(const ScenarioConfig& cfg);

/// Lossless RunResult serialization for journal payloads and the
/// isolated-cell child protocol. Unlike telemetry::runResultJson (a
/// human-facing %.9g export), doubles are printed with %.17g so parsing
/// reproduces bit-identical values; volatile profile data is dropped,
/// wall_seconds is carried for reporting only.
std::string runResultToJournalJson(const RunResult& r);

/// Inverse of runResultToJournalJson. Returns nullopt (with a message in
/// `err` when non-null) on malformed input.
std::optional<RunResult> runResultFromJournalJson(const std::string& json,
                                                  std::string* err = nullptr);

struct JournalEntry {
  std::string label;
  int rep = 0;
  std::string key;     // cellKey() hex at the time the cell ran
  std::string status;  // "done" | "quarantined" | "failed"
  int attempts = 1;
  std::string error;          // for quarantined/failed cells
  std::string resultJson;     // raw payload for done cells
  double wallSeconds = 0.0;   // reporting only
};

struct CampaignInfo {
  std::string plan;
  std::size_t points = 0;
  int replications = 0;
  std::string codeVersion;
  std::string cmd;  // how the campaign was launched (for resume-cmd)
};

/// Everything a loaded journal knows. `cells` keeps the LAST record per
/// (label, rep) — a resumed campaign appends fresh records for re-run
/// cells, and the latest attempt wins.
struct JournalState {
  std::vector<CampaignInfo> campaigns;
  std::map<std::pair<std::string, int>, JournalEntry> cells;
  std::size_t corruptLines = 0;  // skipped, never fatal
  std::size_t totalLines = 0;

  std::size_t countStatus(const std::string& status) const;
};

/// Append-side handle: serializes concurrent workers' appends and makes
/// each record durable before returning.
class JournalWriter {
 public:
  explicit JournalWriter(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Write the campaign header record (call once per runPlan invocation).
  bool campaign(const CampaignInfo& info) EXCLUDES(mu_);

  /// Append one cell record. Thread-safe.
  bool cell(const JournalEntry& e) EXCLUDES(mu_);

 private:
  std::string path_;
  // manet-lint: allow(lock-discipline): serializes the append-fsync
  // sequence on the journal file, an external resource; the only member it
  // could guard (path_) is set once in the constructor and read-only after.
  util::Mutex mu_;
};

/// Parse a journal file. Missing file yields an empty state (resuming a
/// campaign that never started is just a fresh campaign); corrupt lines are
/// skipped and counted.
JournalState loadJournal(const std::string& path);

}  // namespace manet::scenario
