#include "src/scenario/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/telemetry/export.h"
#include "src/util/atomic_file.h"

namespace manet::scenario {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print(const std::string& title, const std::string& csvPath) const {
  std::printf("\n== %s ==\n%s", title.c_str(), str().c_str());
  if (!csvPath.empty()) {
    // Atomic (write-temp-rename) like every other artifact: a crash during
    // a table dump must not leave a truncated CSV under the final name.
    util::atomicWriteFile(csvPath, csv());
    std::printf("(csv written to %s)\n", csvPath.c_str());
    // Mirror the CSV into the structured-export directory, if configured.
    if (const char* dir = std::getenv("MANET_EXPORT_DIR");  // NOLINT(concurrency-mt-unsafe)
        dir != nullptr && dir[0] != '\0') {
      telemetry::writeFile(std::string(dir) + "/" + csvPath, csv());
    }
  }
  std::fflush(stdout);
}

}  // namespace manet::scenario
