#include "src/scenario/scenario.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/mobility/waypoint.h"
#include "src/sim/rng.h"
#include "src/util/logging.h"

namespace manet::scenario {

void ScenarioConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("scenario config: " + what);
  };
  if (numNodes <= 0) {
    fail("numNodes must be > 0, got " + std::to_string(numNodes));
  }
  if (field.x <= 0.0 || field.y <= 0.0) {
    fail("field dimensions must be > 0, got " + std::to_string(field.x) +
         " x " + std::to_string(field.y));
  }
  if (minSpeed < 0.0) {
    fail("minSpeed must be >= 0, got " + std::to_string(minSpeed));
  }
  if (maxSpeed <= 0.0 || maxSpeed < minSpeed) {
    fail("maxSpeed must be > 0 and >= minSpeed, got minSpeed=" +
         std::to_string(minSpeed) + " maxSpeed=" + std::to_string(maxSpeed));
  }
  if (numFlows < 0) {
    fail("numFlows must be >= 0, got " + std::to_string(numFlows));
  }
  const long long orderablePairs =
      static_cast<long long>(numNodes) * (numNodes - 1);
  if (numFlows > orderablePairs) {
    fail("numFlows (" + std::to_string(numFlows) + ") exceeds the " +
         std::to_string(orderablePairs) + " orderable src/dst pairs of " +
         std::to_string(numNodes) + " nodes");
  }
  if (numFlows > 0 && packetsPerSecond <= 0.0) {
    fail("packetsPerSecond must be > 0, got " +
         std::to_string(packetsPerSecond));
  }
  if (numFlows > 0 && payloadBytes == 0) fail("payloadBytes must be > 0");
  if (duration <= sim::Time::zero()) fail("duration must be > 0");
  if (flowStartWindow <= sim::Time::zero()) {
    fail("flowStartWindow must be > 0");
  }
  core::validate(dsr);
  fault.validate(numNodes, duration);
}

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  // Packet uids and cache-provenance ids restart at 1 for every run so
  // traces are a deterministic function of the config alone — byte-identical
  // whether the run executes serially, on a sweep worker thread, or in a
  // fresh process.
  net::Packet::resetUidCounter();
  net::RouteProvenance::resetIdCounter();
  // The neighbor index must bound node speed to stay an exact superset
  // filter; random waypoint never exceeds the configured maxSpeed.
  cfg_.phy.indexSpeedBound = std::max(cfg_.phy.indexSpeedBound, cfg_.maxSpeed);
  net::NetworkConfig netCfg{cfg_.phy, cfg.mac, cfg.protocol, cfg.dsr,
                            cfg.aodv, cfg_.eventQueue};
  // Seed the network (MAC jitter, DSR jitter) from the mobility seed so a
  // different replication is a genuinely different random world, while the
  // traffic pattern below stays fixed across replications.
  network_ = std::make_unique<net::Network>(netCfg, cfg.mobilitySeed);

  // Profiling attaches first so even construction-time events (flow start
  // jitter, sampler probes) are attributed. Wall-clock only: cannot
  // perturb the run.
  network_->enableProfiling(cfg_.prof);

  // Telemetry: attach sinks before any node exists so even construction-time
  // events would be caught, and start the sampler before traffic begins.
  const telemetry::TelemetryConfig& tel = cfg.telemetry;
  if (tel.ringCapacity > 0) {
    ring_ = std::make_unique<telemetry::RingBufferSink>(tel.ringCapacity);
    network_->tracer().addSink(ring_.get());
  }
  if (!tel.traceJsonlPath.empty()) {
    jsonl_ = std::make_unique<telemetry::JsonlFileSink>(tel.traceJsonlPath);
    if (jsonl_->ok()) network_->tracer().addSink(jsonl_.get());
  }
  if (!tel.perfettoPath.empty()) {
    perfetto_ = std::make_unique<telemetry::PerfettoSink>(tel.perfettoPath);
    if (perfetto_->ok()) network_->tracer().addSink(perfetto_.get());
  }
  if (tel.dispatchSpanCapacity > 0) {
    network_->scheduler().enableSpanCapture(tel.dispatchSpanCapacity);
  }
  if (tel.samplePeriod > sim::Time::zero()) {
    sampler_ =
        std::make_unique<telemetry::Sampler>(*network_, tel.samplePeriod);
    sampler_->start();
  }
  if (tel.logLevel != util::LogLevel::kNone) {
    util::setLogLevel(tel.logLevel);
  }
  if (cfg_.invariantChecks || fault::InvariantChecker::enabledFromEnv()) {
    checker_ = std::make_unique<fault::InvariantChecker>(
        static_cast<std::size_t>(cfg_.numNodes));
    network_->tracer().addSink(checker_.get());
  }
  if (tel.captureLogs && network_->tracer().enabled()) {
    network_->tracer().setLogCaptureLevel(tel.logLevel);
    telemetry::Tracer* tracer = &network_->tracer();
    util::setLogSink([tracer](util::LogLevel level, std::string_view msg) {
      tracer->emitLog(level, msg);
    });
    logSinkInstalled_ = true;
  }

  sim::Rng mobilityRng(cfg.mobilitySeed);
  mobility::RandomWaypoint::Params wp;
  wp.field = cfg.field;
  wp.minSpeed = cfg.minSpeed;
  wp.maxSpeed = cfg.maxSpeed;
  wp.pause = cfg.pause;
  wp.horizon = cfg.duration;
  for (int i = 0; i < cfg.numNodes; ++i) {
    network_->addNode(std::make_unique<mobility::RandomWaypoint>(
        mobilityRng.stream("waypoint", static_cast<std::uint64_t>(i)), wp));
  }

  // Traffic: source-destination pairs spread randomly over the network,
  // fixed by the traffic seed.
  sim::Rng trafficRng(cfg.trafficSeed);
  for (int f = 0; f < cfg.numFlows; ++f) {
    net::NodeId src, dst;
    do {
      src = static_cast<net::NodeId>(
          trafficRng.uniformInt(0, cfg.numNodes - 1));
      dst = static_cast<net::NodeId>(
          trafficRng.uniformInt(0, cfg.numNodes - 1));
    } while (src == dst);
    flowEndpoints_.emplace_back(src, dst);

    traffic::CbrSource::Params p;
    p.dst = dst;
    p.packetsPerSecond = cfg.packetsPerSecond;
    p.payloadBytes = cfg.payloadBytes;
    p.start = sim::Time::nanos(trafficRng.uniformInt(
        1, std::max<std::int64_t>(1, cfg.flowStartWindow.ns())));
    p.stop = cfg.duration;
    p.flowId = static_cast<std::uint32_t>(f);
    sources_.push_back(std::make_unique<traffic::CbrSource>(
        network_->node(src).routing(), network_->scheduler(), p));
  }

  // Faults go in after nodes and sources exist; an empty plan installs
  // nothing and the run stays bit-identical to a fault-free build.
  network_->installFaults(cfg_.fault, cfg_.duration);
  if (fault::FaultInjector* fi = network_->faults()) {
    for (const auto& s : sources_) fi->attachTrafficSource(s.get());
  }
  if (checker_) scheduleCacheConsistencySweep(sim::Time::seconds(1));
}

void Scenario::scheduleCacheConsistencySweep(sim::Time at) {
  if (at >= cfg_.duration) return;
  network_->scheduler().scheduleAt(
      at,
      [this, at] {
        fault::checkCacheConsistency(*network_, *checker_);
        scheduleCacheConsistencySweep(at + sim::Time::seconds(1));
      },
      prof::Category::kTelemetry);
}

Scenario::~Scenario() {
  if (logSinkInstalled_) util::setLogSink({});
}

RunResult Scenario::run() {
  // Audited: these are the only wall-clock reads outside src/prof//bench/.
  // They bracket the whole run and land solely in RunResult::wallSeconds,
  // which is excluded from deterministic exports; no simulation decision
  // ever reads them. All simulated time comes from Scheduler::now().
  // manet-lint: allow(wall-clock): run timing for reports only
  const auto wallStart = std::chrono::steady_clock::now();
  network_->run(cfg_.duration);
  // manet-lint: allow(wall-clock): run timing for reports only
  const auto wallEnd = std::chrono::steady_clock::now();
  network_->tracer().flush();
  if (perfetto_ && perfetto_->ok()) {
    // Append the scheduler's captured dispatch spans before the timeline
    // closes; the sink flushed its instants above.
    telemetry::writeDispatchSpans(perfetto_->writer(),
                                  network_->scheduler().dispatchSpans());
    perfetto_->writer().close();
  }
  RunResult r;
  r.metrics = network_->metrics();
  r.duration = cfg_.duration;
  r.eventsExecuted = network_->scheduler().executedCount();
  r.wallSeconds = std::chrono::duration<double>(wallEnd - wallStart).count();
  r.schedQueuePeak = network_->scheduler().queueHighWater();
  if (prof::Profiler* p = network_->profiler()) {
    r.profile = p->report();
    if (r.profile.enabled) {
      // Final node positions for the spatial heatmap; taken after the
      // report snapshot so the position queries don't pollute it.
      r.nodePositions.reserve(network_->size());
      for (std::size_t n = 0; n < network_->size(); ++n) {
        r.nodePositions.push_back(network_->positionOf(
            static_cast<net::NodeId>(n), cfg_.duration));
      }
    }
  }
  if (sampler_) r.series = sampler_->takeSeries();
  if (checker_) {
    checker_->finalCheck(r.metrics);
    if (!checker_->violations().empty()) {
      std::string msg = "invariant violations (" +
                        std::to_string(checker_->violations().size()) + "):";
      for (const auto& v : checker_->violations()) msg += "\n  " + v;
      throw std::runtime_error(msg);
    }
  }
  return r;
}

RunResult runScenario(const ScenarioConfig& cfg) {
  Scenario s(cfg);
  return s.run();
}

}  // namespace manet::scenario
