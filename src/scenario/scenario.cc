#include "src/scenario/scenario.h"

#include <chrono>

#include "src/mobility/waypoint.h"
#include "src/sim/rng.h"
#include "src/util/logging.h"

namespace manet::scenario {

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  net::NetworkConfig netCfg{cfg.phy, cfg.mac, cfg.protocol, cfg.dsr,
                            cfg.aodv};
  // Seed the network (MAC jitter, DSR jitter) from the mobility seed so a
  // different replication is a genuinely different random world, while the
  // traffic pattern below stays fixed across replications.
  network_ = std::make_unique<net::Network>(netCfg, cfg.mobilitySeed);

  // Telemetry: attach sinks before any node exists so even construction-time
  // events would be caught, and start the sampler before traffic begins.
  const telemetry::TelemetryConfig& tel = cfg.telemetry;
  if (tel.ringCapacity > 0) {
    ring_ = std::make_unique<telemetry::RingBufferSink>(tel.ringCapacity);
    network_->tracer().addSink(ring_.get());
  }
  if (!tel.traceJsonlPath.empty()) {
    jsonl_ = std::make_unique<telemetry::JsonlFileSink>(tel.traceJsonlPath);
    if (jsonl_->ok()) network_->tracer().addSink(jsonl_.get());
  }
  if (tel.samplePeriod > sim::Time::zero()) {
    sampler_ =
        std::make_unique<telemetry::Sampler>(*network_, tel.samplePeriod);
    sampler_->start();
  }
  if (tel.logLevel != util::LogLevel::kNone) {
    util::setLogLevel(tel.logLevel);
  }
  if (tel.captureLogs && network_->tracer().enabled()) {
    network_->tracer().setLogCaptureLevel(tel.logLevel);
    telemetry::Tracer* tracer = &network_->tracer();
    util::setLogSink([tracer](util::LogLevel level, std::string_view msg) {
      tracer->emitLog(level, msg);
    });
    logSinkInstalled_ = true;
  }

  sim::Rng mobilityRng(cfg.mobilitySeed);
  mobility::RandomWaypoint::Params wp;
  wp.field = cfg.field;
  wp.minSpeed = cfg.minSpeed;
  wp.maxSpeed = cfg.maxSpeed;
  wp.pause = cfg.pause;
  wp.horizon = cfg.duration;
  for (int i = 0; i < cfg.numNodes; ++i) {
    network_->addNode(std::make_unique<mobility::RandomWaypoint>(
        mobilityRng.stream("waypoint", static_cast<std::uint64_t>(i)), wp));
  }

  // Traffic: source-destination pairs spread randomly over the network,
  // fixed by the traffic seed.
  sim::Rng trafficRng(cfg.trafficSeed);
  for (int f = 0; f < cfg.numFlows; ++f) {
    net::NodeId src, dst;
    do {
      src = static_cast<net::NodeId>(
          trafficRng.uniformInt(0, cfg.numNodes - 1));
      dst = static_cast<net::NodeId>(
          trafficRng.uniformInt(0, cfg.numNodes - 1));
    } while (src == dst);
    flowEndpoints_.emplace_back(src, dst);

    traffic::CbrSource::Params p;
    p.dst = dst;
    p.packetsPerSecond = cfg.packetsPerSecond;
    p.payloadBytes = cfg.payloadBytes;
    p.start = sim::Time::nanos(trafficRng.uniformInt(
        1, std::max<std::int64_t>(1, cfg.flowStartWindow.ns())));
    p.stop = cfg.duration;
    p.flowId = static_cast<std::uint32_t>(f);
    sources_.push_back(std::make_unique<traffic::CbrSource>(
        network_->node(src).routing(), network_->scheduler(), p));
  }
}

Scenario::~Scenario() {
  if (logSinkInstalled_) util::setLogSink({});
}

RunResult Scenario::run() {
  const auto wallStart = std::chrono::steady_clock::now();
  network_->run(cfg_.duration);
  const auto wallEnd = std::chrono::steady_clock::now();
  network_->tracer().flush();
  RunResult r;
  r.metrics = network_->metrics();
  r.duration = cfg_.duration;
  r.eventsExecuted = network_->scheduler().executedCount();
  r.wallSeconds = std::chrono::duration<double>(wallEnd - wallStart).count();
  if (sampler_) r.series = sampler_->takeSeries();
  return r;
}

RunResult runScenario(const ScenarioConfig& cfg) {
  Scenario s(cfg);
  return s.run();
}

}  // namespace manet::scenario
