#include "src/scenario/bench_cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace manet::scenario {

namespace {

[[noreturn]] void usage(const std::string& benchName, int exitCode) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --jobs N            worker threads (0 = MANET_JOBS or hardware "
      "concurrency)\n"
      "  --scale TIER        tiny | quick | full (default quick; "
      "REPRO_FULL=1 => full)\n"
      "  --seeds N           replications per sweep point (default: tier's "
      "count)\n"
      "  --filter AXIS=VALUE keep one value of a plan axis (repeatable)\n"
      "  --export-dir DIR    write structured exports under DIR\n"
      "  --progress          per-run progress lines on stderr\n"
      "  --journal FILE      durable per-cell result journal (JSONL)\n"
      "  --resume            skip cells already in the journal "
      "(needs --journal)\n"
      "  --isolate-cells     run each cell in a supervised child process\n"
      "  --cell-timeout SEC  per-cell wall-clock deadline\n"
      "  --retries N         extra attempts per failed cell\n"
      "  --help              this text\n"
      "Output artifacts are byte-identical for every --jobs value, and for\n"
      "a --resume'd campaign vs an uninterrupted one.\n",
      benchName.c_str());
  std::exit(exitCode);
}

[[noreturn]] void die(const std::string& benchName, const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", benchName.c_str(), msg.c_str());
  usage(benchName, 2);
}

/// Value of a `--flag VALUE` pair; advances `i` past the value.
const char* flagValue(int argc, char** argv, int& i,
                      const std::string& benchName) {
  if (i + 1 >= argc) {
    die(benchName, std::string(argv[i]) + " needs a value");
  }
  return argv[++i];
}

int parseInt(std::string_view flag, const char* s,
             const std::string& benchName) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    die(benchName, std::string(flag) + " expects an integer, got '" +
                       std::string(s) + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

BenchCli::BenchCli(int argc, char** argv, std::string benchName)
    : benchName_(std::move(benchName)), scale_(benchScale()) {
  bool seedsSet = false;
  // selfCommand_ collects argv[0] + plan-shaping flags only; supervision
  // and journal flags are deliberately dropped so a --run-cell child can
  // never recurse into spawning grandchildren or touching the journal.
  selfCommand_.push_back(argc > 0 ? argv[0] : benchName_);
  for (int i = 0; i < argc; ++i) {
    if (i > 0) campaignCmd_ += ' ';
    campaignCmd_ += argv[i];
  }
  const auto keepForChild = [&](int first, int last) {
    for (int k = first; k <= last; ++k) selfCommand_.push_back(argv[k]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(benchName_, 0);
    } else if (arg == "--jobs") {
      jobs_ = parseInt(arg, flagValue(argc, argv, i, benchName_), benchName_);
      if (jobs_ < 0) die(benchName_, "--jobs must be >= 0");
    } else if (arg == "--scale") {
      const int first = i;
      const char* tier = flagValue(argc, argv, i, benchName_);
      try {
        scale_ = benchScaleNamed(tier);
      } catch (const std::invalid_argument& e) {
        die(benchName_, e.what());
      }
      keepForChild(first, i);
    } else if (arg == "--seeds") {
      const int first = i;
      replications_ =
          parseInt(arg, flagValue(argc, argv, i, benchName_), benchName_);
      if (replications_ < 1) die(benchName_, "--seeds must be >= 1");
      seedsSet = true;
      keepForChild(first, i);
    } else if (arg == "--filter") {
      const int first = i;
      const std::string spec = flagValue(argc, argv, i, benchName_);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        die(benchName_, "--filter expects AXIS=VALUE, got '" + spec + "'");
      }
      filters_.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      keepForChild(first, i);
    } else if (arg == "--export-dir") {
      const int first = i;
      // The telemetry config and Table's CSV mirror both read
      // MANET_EXPORT_DIR from the environment; setting it here (before the
      // bench builds any ScenarioConfig) routes every artifact at once.
      setenv("MANET_EXPORT_DIR", flagValue(argc, argv, i, benchName_), 1);
      // Children keep it too: the cell config (and so its journal key) must
      // be identical in parent and child. Cell mode exits before exporting.
      keepForChild(first, i);
    } else if (arg == "--progress") {
      progress_ = true;
    } else if (arg == "--journal") {
      journalPath_ = flagValue(argc, argv, i, benchName_);
    } else if (arg == "--resume") {
      resume_ = true;
    } else if (arg == "--isolate-cells") {
      isolateCells_ = true;
    } else if (arg == "--cell-timeout") {
      const char* v = flagValue(argc, argv, i, benchName_);
      char* end = nullptr;
      cellTimeoutSec_ = std::strtod(v, &end);
      if (end == v || *end != '\0' || cellTimeoutSec_ < 0) {
        die(benchName_, "--cell-timeout expects a non-negative number of "
                        "seconds, got '" +
                            std::string(v) + "'");
      }
    } else if (arg == "--retries") {
      retries_ =
          parseInt(arg, flagValue(argc, argv, i, benchName_), benchName_);
      if (retries_ < 0) die(benchName_, "--retries must be >= 0");
    } else if (arg == "--run-cell") {
      // Hidden child protocol: --run-cell LABEL REP OUT.
      if (i + 3 >= argc) {
        die(benchName_, "--run-cell expects LABEL REP OUT");
      }
      runCellLabel_ = argv[++i];
      runCellRep_ = parseInt(arg, argv[++i], benchName_);
      runCellOut_ = argv[++i];
    } else {
      die(benchName_, "unknown flag '" + std::string(arg) + "'");
    }
  }
  if (resume_ && journalPath_.empty()) {
    die(benchName_, "--resume requires --journal FILE");
  }
  if (!seedsSet) replications_ = scale_.replications;
  filterUsed_.assign(filters_.size(), false);
}

RunnerOptions BenchCli::runnerOptions() const {
  RunnerOptions opts;
  opts.jobs = jobs_;
  opts.replications = replications_;
  opts.progress = progress_;
  opts.journalPath = journalPath_;
  opts.resume = resume_;
  opts.campaignCmd = campaignCmd_;
  opts.isolateCells = isolateCells_;
  opts.selfCommand = selfCommand_;
  opts.cellTimeoutSec = cellTimeoutSec_;
  opts.maxAttempts = retries_ + 1;
  opts.runCellLabel = runCellLabel_;
  opts.runCellRep = runCellRep_;
  opts.runCellOut = runCellOut_;
  return opts;
}

int BenchCli::finish(const SweepResult& result) const {
  return reportFailures(result);
}

ExperimentPlan& BenchCli::applyFilters(ExperimentPlan& plan) const {
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    try {
      plan.filter(filters_[i].first, filters_[i].second);
      filterUsed_[i] = true;
    } catch (const std::invalid_argument& e) {
      die(benchName_, e.what());
    }
  }
  return plan;
}

ExperimentPlan& BenchCli::applyMatchingFilters(ExperimentPlan& plan) const {
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    bool hasAxis = false;
    for (const Axis& a : plan.axes()) {
      if (a.name == filters_[i].first) hasAxis = true;
    }
    if (!hasAxis) continue;
    try {
      plan.filter(filters_[i].first, filters_[i].second);
      filterUsed_[i] = true;
    } catch (const std::invalid_argument& e) {
      die(benchName_, e.what());
    }
  }
  return plan;
}

void BenchCli::checkFiltersConsumed() const {
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (!filterUsed_[i]) {
      die(benchName_, "--filter " + filters_[i].first + "=" +
                          filters_[i].second +
                          " names an axis no plan in this bench has");
    }
  }
}

}  // namespace manet::scenario
