#include "src/scenario/sweep.h"

#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

namespace manet::scenario {

std::string sanitizeLabel(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string_view SweepPoint::coordinate(const ExperimentPlan& plan,
                                        std::string_view axis) const {
  const std::vector<Axis>& axes = plan.axes();
  for (std::size_t i = 0; i < axes.size() && i < coordinates.size(); ++i) {
    if (axes[i].name == axis) return coordinates[i];
  }
  return {};
}

ExperimentPlan::ExperimentPlan(std::string name, ScenarioConfig base)
    : name_(std::move(name)), base_(std::move(base)) {}

ExperimentPlan& ExperimentPlan::axis(std::string axisName,
                                     std::vector<AxisValue> values) {
  axes_.push_back(Axis{std::move(axisName), std::move(values)});
  return *this;
}

ExperimentPlan& ExperimentPlan::axis(
    std::string axisName, const std::vector<double>& values,
    const std::function<void(ScenarioConfig&, double)>& fn,
    int labelPrecision) {
  std::vector<AxisValue> vals;
  vals.reserve(values.size());
  for (double v : values) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", labelPrecision, v);
    vals.push_back(AxisValue{buf, [fn, v](ScenarioConfig& c) { fn(c, v); }});
  }
  return axis(std::move(axisName), std::move(vals));
}

ExperimentPlan& ExperimentPlan::metric(
    std::string metricName, std::function<double(const AggregateResult&)> fn,
    int precision) {
  metrics_.push_back(
      MetricColumn{std::move(metricName), std::move(fn), precision});
  return *this;
}

ExperimentPlan& ExperimentPlan::filter(const std::string& axisName,
                                       const std::string& value) {
  for (Axis& a : axes_) {
    if (a.name != axisName) continue;
    std::vector<AxisValue> kept;
    for (AxisValue& v : a.values) {
      if (v.label == value) kept.push_back(std::move(v));
    }
    if (kept.empty()) {
      throw std::invalid_argument("experiment plan '" + name_ +
                                  "': --filter " + axisName + "=" + value +
                                  " matches no value of that axis");
    }
    a.values = std::move(kept);
    return *this;
  }
  throw std::invalid_argument("experiment plan '" + name_ +
                              "': --filter names unknown axis '" + axisName +
                              "'");
}

std::size_t ExperimentPlan::pointCount() const {
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

void ExperimentPlan::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("experiment plan '" + name_ + "': " + what);
  };
  if (name_.empty()) fail("plan name must be non-empty");
  for (const Axis& a : axes_) {
    if (a.name.empty()) fail("axis name must be non-empty");
    if (a.values.empty()) fail("axis '" + a.name + "' has no values");
    std::set<std::string> seen;
    for (const AxisValue& v : a.values) {
      if (v.label.empty()) fail("axis '" + a.name + "' has an empty label");
      if (!seen.insert(v.label).second) {
        fail("axis '" + a.name + "' repeats value label '" + v.label + "'");
      }
    }
  }
  // Label collisions after sanitization: two points must never export to
  // the same file (this is the hard-error fix for runReplicated's silent
  // "<exportDir>/run.json" clobbering).
  std::set<std::string> labels;
  for (const SweepPoint& p : expand(/*checkLabels=*/false)) {
    if (!labels.insert(p.label).second) {
      fail("sanitized export label '" + p.label +
           "' names two different sweep points; make axis value labels "
           "distinguishable after [A-Za-z0-9._-] sanitization");
    }
  }
}

std::vector<SweepPoint> ExperimentPlan::expand(bool checkLabels) const {
  if (checkLabels) validate();
  std::vector<SweepPoint> out;
  const std::size_t total = pointCount();
  out.reserve(total);
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint p;
    p.index = i;
    p.config = base_;
    std::string label = sanitizeLabel(name_);
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const AxisValue& v = axes_[a].values[idx[a]];
      p.coordinates.push_back(v.label);
      if (v.apply) v.apply(p.config);
      label += '_';
      label += sanitizeLabel(axes_[a].name);
      label += '=';
      label += sanitizeLabel(v.label);
    }
    p.label = std::move(label);
    out.push_back(std::move(p));
    // Row-major increment: last axis fastest.
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return out;
}

std::vector<SweepPoint> ExperimentPlan::points() const {
  return expand(/*checkLabels=*/true);
}

}  // namespace manet::scenario
