// Parallel experiment runner: executes every (point x seed) cell of an
// ExperimentPlan as an independent task on a work-stealing thread pool,
// then merges results in deterministic plan order.
//
// Determinism contract (see DESIGN.md "Parallel experiment engine"):
//  * Each task builds its own Scenario from its own config copy; runs share
//    no mutable state (per-run RNG streams, run-local tracer/profiler,
//    thread-local packet-uid counter and log sink).
//  * Workers pull tasks from a shared queue in any order, but aggregation,
//    onRun observation and export all happen after the barrier, in plan
//    order x seed order — so aggregates, exported JSON/CSV and table rows
//    are byte-identical regardless of --jobs.
//  * Exported per-run entries exclude volatile fields (wall_seconds,
//    profile); wall time is reported only on the SweepResult itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/scenario/experiment.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

namespace manet::scenario {

struct RunnerOptions {
  /// Worker threads. 1 = serial in the calling thread (no threads spawned
  /// — exactly the legacy runReplicated path); 0 = resolveJobs() default
  /// (MANET_JOBS, else hardware concurrency).
  int jobs = 0;
  /// The implicit seed axis: each point runs `replications` times with
  /// mobilitySeed = config.mobilitySeed + rep.
  int replications = 1;
  /// Retain every full RunResult (sampled series, profile, ...) in
  /// AggregateResult::runs. Off by default: a 200-point grid must not hold
  /// 200 x seeds runs' series in memory; aggregates and exports are
  /// already complete without them.
  bool keepRuns = false;
  /// Print one progress line per completed run to stderr (serialized
  /// through util::stderrMutex).
  bool progress = false;
  /// Observer invoked during the deterministic merge (plan order, then
  /// seed order) — NOT concurrently and NOT in completion order.
  std::function<void(const SweepPoint&, int rep, const RunResult&)> onRun;
  /// Custom executor for one run (default: Scenario(cfg).run()). The
  /// config already carries the per-rep mobility seed and per-run trace
  /// path. Must be thread-safe across (point, rep) cells.
  std::function<RunResult(const SweepPoint&, int rep,
                          const ScenarioConfig&)> runFn;
};

struct PointResult {
  SweepPoint point;
  AggregateResult agg;
};

struct SweepResult {
  std::vector<PointResult> points;  // plan order
  double wallSeconds = 0.0;         // whole-sweep wall time
  int jobs = 1;                     // resolved worker count actually used
  int replications = 1;

  /// The aggregate for the point with the given export label; throws
  /// std::out_of_range when absent.
  const AggregateResult& at(std::string_view label) const;
};

/// Resolve a --jobs request: n >= 1 is taken as-is; n <= 0 falls back to
/// MANET_JOBS when set, else std::thread::hardware_concurrency (min 1).
int resolveJobs(int jobs);

/// Execute the plan. Exceptions thrown by runs are rethrown (first failing
/// task in deterministic task order) after all workers drain.
SweepResult runPlan(const ExperimentPlan& plan, RunnerOptions opts = {});

/// One table row per sweep point: coordinate columns (one per axis) then
/// the plan's metric columns.
Table pointTable(const ExperimentPlan& plan, const SweepResult& result);

/// Pivot a two-axis plan: rows = first-axis values, columns = second-axis
/// values, cells = `metricName` (which must be registered on the plan).
/// `rowHeader` overrides the first column's title (default: the axis name).
Table pivotTable(const ExperimentPlan& plan, const SweepResult& result,
                 const std::string& metricName,
                 const std::string& rowHeader = "");

}  // namespace manet::scenario
