// Parallel experiment runner: executes every (point x seed) cell of an
// ExperimentPlan as an independent task on a work-stealing thread pool,
// then merges results in deterministic plan order.
//
// Determinism contract (see DESIGN.md "Parallel experiment engine"):
//  * Each task builds its own Scenario from its own config copy; runs share
//    no mutable state (per-run RNG streams, run-local tracer/profiler,
//    thread-local packet-uid counter and log sink).
//  * Workers pull tasks from a shared queue in any order, but aggregation,
//    onRun observation and export all happen after the barrier, in plan
//    order x seed order — so aggregates, exported JSON/CSV and table rows
//    are byte-identical regardless of --jobs.
//  * Exported per-run entries exclude volatile fields (wall_seconds,
//    profile); wall time is reported only on the SweepResult itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/scenario/experiment.h"
#include "src/scenario/sweep.h"
#include "src/scenario/table.h"

namespace manet::scenario {

struct RunnerOptions {
  /// Worker threads. 1 = serial in the calling thread (no threads spawned
  /// — exactly the legacy runReplicated path); 0 = resolveJobs() default
  /// (MANET_JOBS, else hardware concurrency).
  int jobs = 0;
  /// The implicit seed axis: each point runs `replications` times with
  /// mobilitySeed = config.mobilitySeed + rep.
  int replications = 1;
  /// Retain every full RunResult (sampled series, profile, ...) in
  /// AggregateResult::runs. Off by default: a 200-point grid must not hold
  /// 200 x seeds runs' series in memory; aggregates and exports are
  /// already complete without them.
  bool keepRuns = false;
  /// Print one progress line per completed run to stderr (serialized
  /// through util::stderrMutex).
  bool progress = false;
  /// Observer invoked during the deterministic merge (plan order, then
  /// seed order) — NOT concurrently and NOT in completion order.
  std::function<void(const SweepPoint&, int rep, const RunResult&)> onRun;
  /// Custom executor for one run (default: Scenario(cfg).run()). The
  /// config already carries the per-rep mobility seed and per-run trace
  /// path. Must be thread-safe across (point, rep) cells.
  std::function<RunResult(const SweepPoint&, int rep,
                          const ScenarioConfig&)> runFn;

  // ---- durability (see DESIGN.md "Experiment durability & supervision") --
  /// Append-only JSONL journal: every finished cell (done / quarantined /
  /// failed) is recorded durably before the campaign moves on. Empty =
  /// no journal.
  std::string journalPath;
  /// Load `journalPath` before running and skip every cell whose journaled
  /// key (config fingerprint + seed + code version) still matches —
  /// restored cells are bit-identical to re-run ones, so aggregates and
  /// exports match an uninterrupted campaign byte for byte.
  bool resume = false;
  /// Recorded in the journal's campaign header (manet_ctl resume-cmd).
  std::string campaignCmd;

  // ---- supervision -------------------------------------------------------
  /// Run every cell in a re-exec'd child process (selfCommand + the hidden
  /// --run-cell protocol): a crashing, sanitizer-killed or hung cell is
  /// quarantined instead of taking down the campaign.
  bool isolateCells = false;
  /// How this binary re-invokes itself with the same plan: argv[0] plus
  /// plan-shaping flags only (no supervision/journal flags — children must
  /// not recurse). Required when isolateCells is set.
  std::vector<std::string> selfCommand;
  /// Per-cell wall-clock watchdog. Isolated cells are SIGKILLed on expiry;
  /// in-process cells only get a stderr warning (threads cannot be killed
  /// safely). 0 = no deadline.
  double cellTimeoutSec = 0.0;
  /// Attempts per cell before giving up (>= 1). Retries back off
  /// exponentially from retryBackoffSec.
  int maxAttempts = 1;
  double retryBackoffSec = 0.5;

  // ---- hidden child mode (set by bench_cli's --run-cell) ----------------
  /// When runCellOut is non-empty, runPlan executes only the
  /// (runCellLabel, runCellRep) cell, atomically writes its lossless
  /// result JSON to runCellOut, and exits the process.
  std::string runCellLabel;
  int runCellRep = 0;
  std::string runCellOut;
};

/// One cell the supervisor gave up on (isolateCells only). The campaign
/// still completes; quarantined cells are excluded from aggregates and
/// marked in the journal and in exported aggregate JSON.
struct CellOutcome {
  std::string label;
  int rep = 0;
  int attempts = 1;
  std::string error;
};

struct PointResult {
  SweepPoint point;
  AggregateResult agg;
};

struct SweepResult {
  std::vector<PointResult> points;  // plan order
  double wallSeconds = 0.0;         // whole-sweep wall time
  int jobs = 1;                     // resolved worker count actually used
  int replications = 1;
  /// Cells restored from the journal instead of re-run (--resume).
  std::size_t resumedCells = 0;
  /// Cells the supervisor quarantined (task order); empty on a clean run.
  std::vector<CellOutcome> quarantined;

  bool clean() const { return quarantined.empty(); }

  /// The aggregate for the point with the given export label; throws
  /// std::out_of_range when absent.
  const AggregateResult& at(std::string_view label) const;
};

/// Resolve a --jobs request: n >= 1 is taken as-is; n <= 0 falls back to
/// MANET_JOBS when set, else std::thread::hardware_concurrency (min 1).
int resolveJobs(int jobs);

/// Execute the plan. In-process failures are rethrown (first failing task
/// in deterministic task order) after all workers drain; under
/// opts.isolateCells a failing cell is quarantined instead and the sweep
/// completes (check SweepResult::clean() / reportFailures). Fails fast —
/// before any cell runs — when the export directory or journal is not
/// writable.
SweepResult runPlan(const ExperimentPlan& plan, RunnerOptions opts = {});

/// Multi-line human-readable summary of quarantined cells; empty string
/// when the sweep was clean.
std::string failureDigest(const SweepResult& result);

/// Print the failure digest (if any) to stderr and return the process exit
/// code a campaign driver should use: 0 when clean, 1 otherwise.
int reportFailures(const SweepResult& result);

/// One table row per sweep point: coordinate columns (one per axis) then
/// the plan's metric columns.
Table pointTable(const ExperimentPlan& plan, const SweepResult& result);

/// Pivot a two-axis plan: rows = first-axis values, columns = second-axis
/// values, cells = `metricName` (which must be registered on the plan).
/// `rowHeader` overrides the first column's title (default: the axis name).
Table pivotTable(const ExperimentPlan& plan, const SweepResult& result,
                 const std::string& metricName,
                 const std::string& rowHeader = "");

}  // namespace manet::scenario
