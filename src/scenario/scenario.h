// Scenario construction and single-run execution: the paper's simulation
// setup (100 nodes, 2200 m x 600 m, random waypoint, 25 CBR flows, 500 s).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/dsr_config.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/mac/dcf_mac.h"
#include "src/metrics/metrics.h"
#include "src/net/network.h"
#include "src/phy/channel.h"
#include "src/prof/profiler.h"
#include "src/telemetry/perfetto.h"
#include "src/telemetry/sampler.h"
#include "src/telemetry/telemetry_config.h"
#include "src/telemetry/trace.h"
#include "src/traffic/cbr.h"
#include "src/util/vec2.h"

namespace manet::scenario {

struct ScenarioConfig {
  int numNodes = 100;
  Vec2 field{2200.0, 600.0};
  double minSpeed = 0.1;   // m/s
  double maxSpeed = 20.0;  // m/s
  sim::Time pause = sim::Time::zero();
  int numFlows = 25;
  double packetsPerSecond = 3.0;
  std::uint32_t payloadBytes = 512;
  sim::Time duration = sim::Time::seconds(500);
  /// Flows start uniformly within this window ("at random times near the
  /// beginning of the simulation run").
  sim::Time flowStartWindow = sim::Time::seconds(5);
  /// Varies per replication (new mobility pattern per run).
  std::uint64_t mobilitySeed = 1;
  /// Fixed across replications (identical traffic endpoints and rates).
  std::uint64_t trafficSeed = 42;

  /// Routing protocol to run (DSR is the paper's subject; AODV is the
  /// comparison protocol of its companion studies).
  net::Protocol protocol = net::Protocol::kDsr;
  core::DsrConfig dsr;
  aodv::AodvConfig aodv;
  mac::MacConfig mac;
  /// The default picks up MANET_PHY_* environment overrides (neighbor-index
  /// selection); Scenario's constructor additionally raises the index speed
  /// bound to this scenario's maxSpeed so grid queries stay exact.
  phy::PhyConfig phy = phy::PhyConfig::fromEnv();

  /// Scheduler pending-set implementation. Purely a performance knob —
  /// both kinds dispatch in identical (time, id) order, so runs are
  /// byte-identical either way (enforced by tests/integration). Default is
  /// the calendar queue, overridable with MANET_EVENT_QUEUE=heap|calendar.
  sim::EventQueueKind eventQueue =
      sim::eventQueueKindFromEnv(sim::EventQueueKind::kCalendar);

  /// Tracing / sampling / export knobs; defaults pick up the MANET_*
  /// environment overrides so every bench binary is switchable without
  /// recompiling (see src/telemetry/telemetry_config.h).
  telemetry::TelemetryConfig telemetry = telemetry::TelemetryConfig::fromEnv();

  /// Injected adversities (node churn, blackouts, noise, surges); the
  /// default picks up MANET_FAULT_* environment overrides and is otherwise
  /// empty — an empty plan is a strict no-op (bit-identical runs).
  fault::FaultPlan fault = fault::FaultPlan::fromEnv();

  /// Self-profiling knobs (per-category wall-time attribution, progress
  /// heartbeat); defaults pick up MANET_PROF_* environment overrides.
  /// Profiling reads only the wall clock, so enabling it keeps runs
  /// bit-identical (enforced by tests/integration).
  prof::ProfConfig prof = prof::ProfConfig::fromEnv();

  /// Install the InvariantChecker for this run (also switchable globally
  /// with MANET_CHECK=1). Violations make Scenario::run() throw.
  bool invariantChecks = false;

  /// Fail-fast sanity checks over every knob above (and the nested dsr /
  /// fault configs). Throws std::invalid_argument; called by Scenario's
  /// constructor so a bad config can never start a run.
  void validate() const;
};

struct RunResult {
  metrics::Metrics metrics;
  sim::Time duration;
  std::uint64_t eventsExecuted = 0;
  double wallSeconds = 0.0;
  /// Scheduler-queue high-water mark; always tracked, profiling or not.
  std::uint64_t schedQueuePeak = 0;
  /// Time-series samples (empty unless cfg.telemetry.samplePeriod > 0).
  telemetry::SampleSeries series;
  /// Per-category wall-time breakdown (profile.enabled is false unless
  /// cfg.prof.enabled was set for the run).
  prof::Report profile;
  /// End-of-run node positions, captured only for profiled runs so the
  /// per-entity costs in profile.hotspot can be rendered as a spatial
  /// heatmap (telemetry::heatmapCsv). Empty otherwise.
  std::vector<Vec2> nodePositions;
};

/// A live scenario: the network plus its traffic sources. Exposed (rather
/// than only runScenario) so examples and tests can poke at nodes mid-run.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  net::Network& network() { return *network_; }
  const ScenarioConfig& config() const { return cfg_; }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& flows() const {
    return flowEndpoints_;
  }

  /// Run to completion and collect results.
  RunResult run();

  /// The in-memory ring sink, if cfg.telemetry.ringCapacity > 0.
  const telemetry::RingBufferSink* ring() const { return ring_.get(); }

  /// The invariant checker, if installed for this run.
  const fault::InvariantChecker* checker() const { return checker_.get(); }

  ~Scenario();

 private:
  ScenarioConfig cfg_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources_;
  std::vector<std::pair<net::NodeId, net::NodeId>> flowEndpoints_;
  // Telemetry plumbing (sinks outlive the network's Tracer pointers).
  std::unique_ptr<telemetry::RingBufferSink> ring_;
  std::unique_ptr<telemetry::JsonlFileSink> jsonl_;
  std::unique_ptr<telemetry::PerfettoSink> perfetto_;
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::unique_ptr<fault::InvariantChecker> checker_;
  bool logSinkInstalled_ = false;

  void scheduleCacheConsistencySweep(sim::Time at);
};

/// Convenience: build and run in one call.
RunResult runScenario(const ScenarioConfig& cfg);

}  // namespace manet::scenario
