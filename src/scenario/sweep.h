// Declarative experiment plans: every figure/table in Marina & Das is a
// grid of independent simulations (e.g. Fig. 1 sweeps static timeouts x
// strategies x mobility seeds). An ExperimentPlan names that grid once —
// axes with per-value config mutators over a base ScenarioConfig, plus
// named metric extractors — and the runner (src/scenario/runner.h)
// executes every (point x seed) cell as an independent task.
//
// Determinism contract: points() expands the cross product in a fixed
// order (first axis slowest, row-major) and derives a unique, filename-
// safe export label per point from the plan name and axis coordinates.
// Two points whose sanitized labels collide are a validate()-style hard
// error — silently overwriting another point's export artifact is exactly
// the bug runReplicated's old empty-label default allowed.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/scenario/table.h"
#include "src/util/stats.h"

namespace manet::scenario {

struct AggregateResult;  // experiment.h

/// One value of one axis: a display label plus the config mutation that
/// selects it.
struct AxisValue {
  std::string label;
  std::function<void(ScenarioConfig&)> apply;
};

/// A named experiment dimension.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One cell of the expanded grid.
struct SweepPoint {
  std::size_t index = 0;                 // position in plan order
  std::vector<std::string> coordinates;  // one value label per axis
  std::string label;                     // unique filename-safe export label
  ScenarioConfig config;                 // base + every axis mutator applied

  /// The label of the axis named `axis` ("" when the plan has no such
  /// axis). `plan` supplies the axis order.
  std::string_view coordinate(const class ExperimentPlan& plan,
                              std::string_view axis) const;
};

/// A named column derived from a point's aggregate (delivery fraction,
/// delay, ...), used by the table helpers below.
struct MetricColumn {
  std::string name;
  std::function<double(const AggregateResult&)> fn;
  int precision = 3;
};

/// Replace every character outside [A-Za-z0-9._-] with '_', so axis labels
/// compose into export file names.
std::string sanitizeLabel(std::string_view s);

class ExperimentPlan {
 public:
  ExperimentPlan(std::string name, ScenarioConfig base);

  /// Add an axis with explicit per-value mutators. Axes expand first-
  /// declared-slowest; value labels within one axis must be unique.
  /// Returns *this for chaining.
  ExperimentPlan& axis(std::string axisName, std::vector<AxisValue> values);

  /// Numeric convenience: one value per entry, labelled with fixed
  /// precision, mutator receives the numeric value.
  ExperimentPlan& axis(std::string axisName, const std::vector<double>& values,
                       const std::function<void(ScenarioConfig&, double)>& fn,
                       int labelPrecision = 2);

  /// Register a named metric column for the table helpers.
  ExperimentPlan& metric(std::string metricName,
                         std::function<double(const AggregateResult&)> fn,
                         int precision = 3);

  /// Keep only the values of axis `axisName` whose label equals `value`
  /// (bench CLI --filter axis=value). Unknown axis or no matching value is
  /// a hard error: a filter that silently matches nothing would turn a
  /// typo into an empty, "successful" sweep.
  ExperimentPlan& filter(const std::string& axisName,
                         const std::string& value);

  const std::string& name() const { return name_; }
  const ScenarioConfig& base() const { return base_; }
  const std::vector<Axis>& axes() const { return axes_; }
  const std::vector<MetricColumn>& metrics() const { return metrics_; }

  /// Points in the full cross product (at least one: a plan with no axes is
  /// a single point — plain seed replication).
  std::size_t pointCount() const;

  /// Expand the grid in deterministic plan order with derived labels.
  /// Calls validate() first.
  std::vector<SweepPoint> points() const;

  /// Fail fast on empty axes, duplicate value labels within an axis, or
  /// point-label collisions after sanitization. Throws
  /// std::invalid_argument with the offending names.
  void validate() const;

 private:
  /// Cross-product expansion; validate() reuses it with label checking off
  /// to avoid recursion.
  std::vector<SweepPoint> expand(bool checkLabels) const;

  std::string name_;
  ScenarioConfig base_;
  std::vector<Axis> axes_;
  std::vector<MetricColumn> metrics_;
};

}  // namespace manet::scenario
